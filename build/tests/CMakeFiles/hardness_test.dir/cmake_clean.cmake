file(REMOVE_RECURSE
  "CMakeFiles/hardness_test.dir/hardness_test.cc.o"
  "CMakeFiles/hardness_test.dir/hardness_test.cc.o.d"
  "hardness_test"
  "hardness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
