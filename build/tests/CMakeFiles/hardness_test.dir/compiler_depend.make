# Empty compiler generated dependencies file for hardness_test.
# This may be replaced when dependencies are built.
