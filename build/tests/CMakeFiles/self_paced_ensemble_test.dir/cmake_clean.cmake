file(REMOVE_RECURSE
  "CMakeFiles/self_paced_ensemble_test.dir/self_paced_ensemble_test.cc.o"
  "CMakeFiles/self_paced_ensemble_test.dir/self_paced_ensemble_test.cc.o.d"
  "self_paced_ensemble_test"
  "self_paced_ensemble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_paced_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
