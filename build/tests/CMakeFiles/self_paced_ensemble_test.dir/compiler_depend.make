# Empty compiler generated dependencies file for self_paced_ensemble_test.
# This may be replaced when dependencies are built.
