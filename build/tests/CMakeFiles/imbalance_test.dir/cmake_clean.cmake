file(REMOVE_RECURSE
  "CMakeFiles/imbalance_test.dir/imbalance_test.cc.o"
  "CMakeFiles/imbalance_test.dir/imbalance_test.cc.o.d"
  "imbalance_test"
  "imbalance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imbalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
