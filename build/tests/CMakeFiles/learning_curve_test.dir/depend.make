# Empty dependencies file for learning_curve_test.
# This may be replaced when dependencies are built.
