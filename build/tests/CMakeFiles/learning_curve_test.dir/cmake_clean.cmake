file(REMOVE_RECURSE
  "CMakeFiles/learning_curve_test.dir/learning_curve_test.cc.o"
  "CMakeFiles/learning_curve_test.dir/learning_curve_test.cc.o.d"
  "learning_curve_test"
  "learning_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
