# Empty dependencies file for sampler_property_test.
# This may be replaced when dependencies are built.
