file(REMOVE_RECURSE
  "CMakeFiles/sampler_property_test.dir/sampler_property_test.cc.o"
  "CMakeFiles/sampler_property_test.dir/sampler_property_test.cc.o.d"
  "sampler_property_test"
  "sampler_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
