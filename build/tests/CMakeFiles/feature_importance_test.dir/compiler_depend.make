# Empty compiler generated dependencies file for feature_importance_test.
# This may be replaced when dependencies are built.
