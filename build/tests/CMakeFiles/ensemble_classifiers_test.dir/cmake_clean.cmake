file(REMOVE_RECURSE
  "CMakeFiles/ensemble_classifiers_test.dir/ensemble_classifiers_test.cc.o"
  "CMakeFiles/ensemble_classifiers_test.dir/ensemble_classifiers_test.cc.o.d"
  "ensemble_classifiers_test"
  "ensemble_classifiers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_classifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
