# Empty dependencies file for ensemble_classifiers_test.
# This may be replaced when dependencies are built.
