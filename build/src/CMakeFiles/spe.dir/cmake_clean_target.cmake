file(REMOVE_RECURSE
  "libspe.a"
)
