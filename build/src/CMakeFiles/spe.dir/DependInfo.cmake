
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spe/classifiers/adaboost.cc" "src/CMakeFiles/spe.dir/spe/classifiers/adaboost.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/adaboost.cc.o.d"
  "/root/repo/src/spe/classifiers/bagging.cc" "src/CMakeFiles/spe.dir/spe/classifiers/bagging.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/bagging.cc.o.d"
  "/root/repo/src/spe/classifiers/classifier.cc" "src/CMakeFiles/spe.dir/spe/classifiers/classifier.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/classifier.cc.o.d"
  "/root/repo/src/spe/classifiers/decision_tree.cc" "src/CMakeFiles/spe.dir/spe/classifiers/decision_tree.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/decision_tree.cc.o.d"
  "/root/repo/src/spe/classifiers/factory.cc" "src/CMakeFiles/spe.dir/spe/classifiers/factory.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/factory.cc.o.d"
  "/root/repo/src/spe/classifiers/gbdt/binning.cc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/binning.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/binning.cc.o.d"
  "/root/repo/src/spe/classifiers/gbdt/gbdt.cc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/gbdt.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/gbdt.cc.o.d"
  "/root/repo/src/spe/classifiers/gbdt/histogram.cc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/histogram.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/histogram.cc.o.d"
  "/root/repo/src/spe/classifiers/gbdt/tree.cc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/tree.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/gbdt/tree.cc.o.d"
  "/root/repo/src/spe/classifiers/knn.cc" "src/CMakeFiles/spe.dir/spe/classifiers/knn.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/knn.cc.o.d"
  "/root/repo/src/spe/classifiers/lda.cc" "src/CMakeFiles/spe.dir/spe/classifiers/lda.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/lda.cc.o.d"
  "/root/repo/src/spe/classifiers/linear_svm.cc" "src/CMakeFiles/spe.dir/spe/classifiers/linear_svm.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/linear_svm.cc.o.d"
  "/root/repo/src/spe/classifiers/logistic_regression.cc" "src/CMakeFiles/spe.dir/spe/classifiers/logistic_regression.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/logistic_regression.cc.o.d"
  "/root/repo/src/spe/classifiers/mlp.cc" "src/CMakeFiles/spe.dir/spe/classifiers/mlp.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/mlp.cc.o.d"
  "/root/repo/src/spe/classifiers/naive_bayes.cc" "src/CMakeFiles/spe.dir/spe/classifiers/naive_bayes.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/naive_bayes.cc.o.d"
  "/root/repo/src/spe/classifiers/random_forest.cc" "src/CMakeFiles/spe.dir/spe/classifiers/random_forest.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/random_forest.cc.o.d"
  "/root/repo/src/spe/classifiers/rff.cc" "src/CMakeFiles/spe.dir/spe/classifiers/rff.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/classifiers/rff.cc.o.d"
  "/root/repo/src/spe/cluster/kmeans.cc" "src/CMakeFiles/spe.dir/spe/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/cluster/kmeans.cc.o.d"
  "/root/repo/src/spe/common/check.cc" "src/CMakeFiles/spe.dir/spe/common/check.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/common/check.cc.o.d"
  "/root/repo/src/spe/common/parallel.cc" "src/CMakeFiles/spe.dir/spe/common/parallel.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/common/parallel.cc.o.d"
  "/root/repo/src/spe/core/hardness.cc" "src/CMakeFiles/spe.dir/spe/core/hardness.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/core/hardness.cc.o.d"
  "/root/repo/src/spe/core/self_paced_ensemble.cc" "src/CMakeFiles/spe.dir/spe/core/self_paced_ensemble.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/core/self_paced_ensemble.cc.o.d"
  "/root/repo/src/spe/core/self_paced_sampler.cc" "src/CMakeFiles/spe.dir/spe/core/self_paced_sampler.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/core/self_paced_sampler.cc.o.d"
  "/root/repo/src/spe/data/csv.cc" "src/CMakeFiles/spe.dir/spe/data/csv.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/csv.cc.o.d"
  "/root/repo/src/spe/data/dataset.cc" "src/CMakeFiles/spe.dir/spe/data/dataset.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/dataset.cc.o.d"
  "/root/repo/src/spe/data/encoding.cc" "src/CMakeFiles/spe.dir/spe/data/encoding.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/encoding.cc.o.d"
  "/root/repo/src/spe/data/libsvm.cc" "src/CMakeFiles/spe.dir/spe/data/libsvm.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/libsvm.cc.o.d"
  "/root/repo/src/spe/data/simulated.cc" "src/CMakeFiles/spe.dir/spe/data/simulated.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/simulated.cc.o.d"
  "/root/repo/src/spe/data/split.cc" "src/CMakeFiles/spe.dir/spe/data/split.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/split.cc.o.d"
  "/root/repo/src/spe/data/synthetic.cc" "src/CMakeFiles/spe.dir/spe/data/synthetic.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/data/synthetic.cc.o.d"
  "/root/repo/src/spe/eval/cross_validation.cc" "src/CMakeFiles/spe.dir/spe/eval/cross_validation.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/eval/cross_validation.cc.o.d"
  "/root/repo/src/spe/eval/experiment.cc" "src/CMakeFiles/spe.dir/spe/eval/experiment.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/eval/experiment.cc.o.d"
  "/root/repo/src/spe/eval/learning_curve.cc" "src/CMakeFiles/spe.dir/spe/eval/learning_curve.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/eval/learning_curve.cc.o.d"
  "/root/repo/src/spe/eval/table.cc" "src/CMakeFiles/spe.dir/spe/eval/table.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/eval/table.cc.o.d"
  "/root/repo/src/spe/imbalance/balance_cascade.cc" "src/CMakeFiles/spe.dir/spe/imbalance/balance_cascade.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/imbalance/balance_cascade.cc.o.d"
  "/root/repo/src/spe/imbalance/easy_ensemble.cc" "src/CMakeFiles/spe.dir/spe/imbalance/easy_ensemble.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/imbalance/easy_ensemble.cc.o.d"
  "/root/repo/src/spe/imbalance/rus_boost.cc" "src/CMakeFiles/spe.dir/spe/imbalance/rus_boost.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/imbalance/rus_boost.cc.o.d"
  "/root/repo/src/spe/imbalance/smote_bagging.cc" "src/CMakeFiles/spe.dir/spe/imbalance/smote_bagging.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/imbalance/smote_bagging.cc.o.d"
  "/root/repo/src/spe/imbalance/smote_boost.cc" "src/CMakeFiles/spe.dir/spe/imbalance/smote_boost.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/imbalance/smote_boost.cc.o.d"
  "/root/repo/src/spe/imbalance/under_bagging.cc" "src/CMakeFiles/spe.dir/spe/imbalance/under_bagging.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/imbalance/under_bagging.cc.o.d"
  "/root/repo/src/spe/io/image.cc" "src/CMakeFiles/spe.dir/spe/io/image.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/io/image.cc.o.d"
  "/root/repo/src/spe/io/model_io.cc" "src/CMakeFiles/spe.dir/spe/io/model_io.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/io/model_io.cc.o.d"
  "/root/repo/src/spe/metrics/calibration.cc" "src/CMakeFiles/spe.dir/spe/metrics/calibration.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/metrics/calibration.cc.o.d"
  "/root/repo/src/spe/metrics/confusion.cc" "src/CMakeFiles/spe.dir/spe/metrics/confusion.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/metrics/confusion.cc.o.d"
  "/root/repo/src/spe/metrics/metrics.cc" "src/CMakeFiles/spe.dir/spe/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/metrics/metrics.cc.o.d"
  "/root/repo/src/spe/sampling/adasyn.cc" "src/CMakeFiles/spe.dir/spe/sampling/adasyn.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/adasyn.cc.o.d"
  "/root/repo/src/spe/sampling/all_knn.cc" "src/CMakeFiles/spe.dir/spe/sampling/all_knn.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/all_knn.cc.o.d"
  "/root/repo/src/spe/sampling/borderline_smote.cc" "src/CMakeFiles/spe.dir/spe/sampling/borderline_smote.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/borderline_smote.cc.o.d"
  "/root/repo/src/spe/sampling/cluster_centroids.cc" "src/CMakeFiles/spe.dir/spe/sampling/cluster_centroids.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/cluster_centroids.cc.o.d"
  "/root/repo/src/spe/sampling/condensed_nn.cc" "src/CMakeFiles/spe.dir/spe/sampling/condensed_nn.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/condensed_nn.cc.o.d"
  "/root/repo/src/spe/sampling/enn.cc" "src/CMakeFiles/spe.dir/spe/sampling/enn.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/enn.cc.o.d"
  "/root/repo/src/spe/sampling/instance_hardness_threshold.cc" "src/CMakeFiles/spe.dir/spe/sampling/instance_hardness_threshold.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/instance_hardness_threshold.cc.o.d"
  "/root/repo/src/spe/sampling/kmeans_smote.cc" "src/CMakeFiles/spe.dir/spe/sampling/kmeans_smote.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/kmeans_smote.cc.o.d"
  "/root/repo/src/spe/sampling/ncr.cc" "src/CMakeFiles/spe.dir/spe/sampling/ncr.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/ncr.cc.o.d"
  "/root/repo/src/spe/sampling/near_miss.cc" "src/CMakeFiles/spe.dir/spe/sampling/near_miss.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/near_miss.cc.o.d"
  "/root/repo/src/spe/sampling/neighbors.cc" "src/CMakeFiles/spe.dir/spe/sampling/neighbors.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/neighbors.cc.o.d"
  "/root/repo/src/spe/sampling/one_side_selection.cc" "src/CMakeFiles/spe.dir/spe/sampling/one_side_selection.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/one_side_selection.cc.o.d"
  "/root/repo/src/spe/sampling/random_over.cc" "src/CMakeFiles/spe.dir/spe/sampling/random_over.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/random_over.cc.o.d"
  "/root/repo/src/spe/sampling/random_under.cc" "src/CMakeFiles/spe.dir/spe/sampling/random_under.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/random_under.cc.o.d"
  "/root/repo/src/spe/sampling/sampler_factory.cc" "src/CMakeFiles/spe.dir/spe/sampling/sampler_factory.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/sampler_factory.cc.o.d"
  "/root/repo/src/spe/sampling/smote.cc" "src/CMakeFiles/spe.dir/spe/sampling/smote.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/smote.cc.o.d"
  "/root/repo/src/spe/sampling/smote_enn.cc" "src/CMakeFiles/spe.dir/spe/sampling/smote_enn.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/smote_enn.cc.o.d"
  "/root/repo/src/spe/sampling/smote_tomek.cc" "src/CMakeFiles/spe.dir/spe/sampling/smote_tomek.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/smote_tomek.cc.o.d"
  "/root/repo/src/spe/sampling/tomek_links.cc" "src/CMakeFiles/spe.dir/spe/sampling/tomek_links.cc.o" "gcc" "src/CMakeFiles/spe.dir/spe/sampling/tomek_links.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
