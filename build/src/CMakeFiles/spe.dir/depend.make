# Empty dependencies file for spe.
# This may be replaced when dependencies are built.
