# Empty dependencies file for model_pipeline.
# This may be replaced when dependencies are built.
