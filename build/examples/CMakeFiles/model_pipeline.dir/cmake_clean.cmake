file(REMOVE_RECURSE
  "CMakeFiles/model_pipeline.dir/model_pipeline.cpp.o"
  "CMakeFiles/model_pipeline.dir/model_pipeline.cpp.o.d"
  "model_pipeline"
  "model_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
