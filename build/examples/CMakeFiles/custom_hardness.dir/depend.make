# Empty dependencies file for custom_hardness.
# This may be replaced when dependencies are built.
