file(REMOVE_RECURSE
  "CMakeFiles/custom_hardness.dir/custom_hardness.cpp.o"
  "CMakeFiles/custom_hardness.dir/custom_hardness.cpp.o.d"
  "custom_hardness"
  "custom_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
