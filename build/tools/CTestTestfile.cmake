# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(spe_cli_usage "/root/repo/build/tools/spe_cli")
set_tests_properties(spe_cli_usage PROPERTIES  PASS_REGULAR_EXPRESSION "usage:" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
