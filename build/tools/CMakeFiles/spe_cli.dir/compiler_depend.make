# Empty compiler generated dependencies file for spe_cli.
# This may be replaced when dependencies are built.
