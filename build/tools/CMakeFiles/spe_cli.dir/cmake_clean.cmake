file(REMOVE_RECURSE
  "CMakeFiles/spe_cli.dir/spe_cli.cc.o"
  "CMakeFiles/spe_cli.dir/spe_cli.cc.o.d"
  "spe_cli"
  "spe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
