# Empty compiler generated dependencies file for table4_realworld.
# This may be replaced when dependencies are built.
