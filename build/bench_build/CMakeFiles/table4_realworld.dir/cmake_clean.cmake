file(REMOVE_RECURSE
  "../bench/table4_realworld"
  "../bench/table4_realworld.pdb"
  "CMakeFiles/table4_realworld.dir/table4_realworld.cc.o"
  "CMakeFiles/table4_realworld.dir/table4_realworld.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
