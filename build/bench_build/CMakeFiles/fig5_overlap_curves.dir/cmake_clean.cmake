file(REMOVE_RECURSE
  "../bench/fig5_overlap_curves"
  "../bench/fig5_overlap_curves.pdb"
  "CMakeFiles/fig5_overlap_curves.dir/fig5_overlap_curves.cc.o"
  "CMakeFiles/fig5_overlap_curves.dir/fig5_overlap_curves.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_overlap_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
