# Empty dependencies file for fig5_overlap_curves.
# This may be replaced when dependencies are built.
