file(REMOVE_RECURSE
  "../bench/table4_appendix"
  "../bench/table4_appendix.pdb"
  "CMakeFiles/table4_appendix.dir/table4_appendix.cc.o"
  "CMakeFiles/table4_appendix.dir/table4_appendix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
