# Empty dependencies file for table4_appendix.
# This may be replaced when dependencies are built.
