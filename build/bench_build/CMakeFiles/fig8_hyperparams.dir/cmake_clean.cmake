file(REMOVE_RECURSE
  "../bench/fig8_hyperparams"
  "../bench/fig8_hyperparams.pdb"
  "CMakeFiles/fig8_hyperparams.dir/fig8_hyperparams.cc.o"
  "CMakeFiles/fig8_hyperparams.dir/fig8_hyperparams.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
