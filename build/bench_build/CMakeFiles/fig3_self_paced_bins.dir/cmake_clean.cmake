file(REMOVE_RECURSE
  "../bench/fig3_self_paced_bins"
  "../bench/fig3_self_paced_bins.pdb"
  "CMakeFiles/fig3_self_paced_bins.dir/fig3_self_paced_bins.cc.o"
  "CMakeFiles/fig3_self_paced_bins.dir/fig3_self_paced_bins.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_self_paced_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
