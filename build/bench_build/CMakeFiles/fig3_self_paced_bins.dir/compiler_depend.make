# Empty compiler generated dependencies file for fig3_self_paced_bins.
# This may be replaced when dependencies are built.
