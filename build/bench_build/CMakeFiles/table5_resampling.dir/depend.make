# Empty dependencies file for table5_resampling.
# This may be replaced when dependencies are built.
