file(REMOVE_RECURSE
  "../bench/table5_resampling"
  "../bench/table5_resampling.pdb"
  "CMakeFiles/table5_resampling.dir/table5_resampling.cc.o"
  "CMakeFiles/table5_resampling.dir/table5_resampling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_resampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
