file(REMOVE_RECURSE
  "../bench/fig7_n_curves"
  "../bench/fig7_n_curves.pdb"
  "CMakeFiles/fig7_n_curves.dir/fig7_n_curves.cc.o"
  "CMakeFiles/fig7_n_curves.dir/fig7_n_curves.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_n_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
