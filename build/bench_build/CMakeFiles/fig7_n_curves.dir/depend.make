# Empty dependencies file for fig7_n_curves.
# This may be replaced when dependencies are built.
