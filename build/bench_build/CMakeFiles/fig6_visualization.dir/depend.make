# Empty dependencies file for fig6_visualization.
# This may be replaced when dependencies are built.
