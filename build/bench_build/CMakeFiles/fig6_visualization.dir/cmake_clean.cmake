file(REMOVE_RECURSE
  "../bench/fig6_visualization"
  "../bench/fig6_visualization.pdb"
  "CMakeFiles/fig6_visualization.dir/fig6_visualization.cc.o"
  "CMakeFiles/fig6_visualization.dir/fig6_visualization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
