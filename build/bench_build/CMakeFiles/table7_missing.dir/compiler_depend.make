# Empty compiler generated dependencies file for table7_missing.
# This may be replaced when dependencies are built.
