file(REMOVE_RECURSE
  "../bench/table7_missing"
  "../bench/table7_missing.pdb"
  "CMakeFiles/table7_missing.dir/table7_missing.cc.o"
  "CMakeFiles/table7_missing.dir/table7_missing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
