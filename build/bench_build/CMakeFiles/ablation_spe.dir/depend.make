# Empty dependencies file for ablation_spe.
# This may be replaced when dependencies are built.
