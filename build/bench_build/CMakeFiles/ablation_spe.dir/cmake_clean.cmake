file(REMOVE_RECURSE
  "../bench/ablation_spe"
  "../bench/ablation_spe.pdb"
  "CMakeFiles/ablation_spe.dir/ablation_spe.cc.o"
  "CMakeFiles/ablation_spe.dir/ablation_spe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
