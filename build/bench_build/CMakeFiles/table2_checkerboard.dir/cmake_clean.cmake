file(REMOVE_RECURSE
  "../bench/table2_checkerboard"
  "../bench/table2_checkerboard.pdb"
  "CMakeFiles/table2_checkerboard.dir/table2_checkerboard.cc.o"
  "CMakeFiles/table2_checkerboard.dir/table2_checkerboard.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_checkerboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
