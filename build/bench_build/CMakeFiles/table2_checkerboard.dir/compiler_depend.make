# Empty compiler generated dependencies file for table2_checkerboard.
# This may be replaced when dependencies are built.
