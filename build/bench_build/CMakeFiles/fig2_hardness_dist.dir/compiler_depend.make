# Empty compiler generated dependencies file for fig2_hardness_dist.
# This may be replaced when dependencies are built.
