file(REMOVE_RECURSE
  "../bench/fig2_hardness_dist"
  "../bench/fig2_hardness_dist.pdb"
  "CMakeFiles/fig2_hardness_dist.dir/fig2_hardness_dist.cc.o"
  "CMakeFiles/fig2_hardness_dist.dir/fig2_hardness_dist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hardness_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
