# Empty dependencies file for table6_ensembles.
# This may be replaced when dependencies are built.
