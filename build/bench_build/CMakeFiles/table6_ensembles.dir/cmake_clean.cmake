file(REMOVE_RECURSE
  "../bench/table6_ensembles"
  "../bench/table6_ensembles.pdb"
  "CMakeFiles/table6_ensembles.dir/table6_ensembles.cc.o"
  "CMakeFiles/table6_ensembles.dir/table6_ensembles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ensembles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
