// Live-socket tests for the epoll serving loop (spe/serve/event_loop.h):
// protocol negotiation, response bit-identity against the scorer's own
// future path, slow clients that force partial writes, the capacity
// refusal line, !reload ordering, and drain. Everything runs against
// 127.0.0.1 on an ephemeral port; no test sleeps for correctness —
// sockets block with generous timeouts instead.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/event_loop.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/wire.h"
#include "test_util.h"

namespace spe {
namespace {

std::unique_ptr<Classifier> TinyModel() {
  auto tree = std::make_unique<DecisionTree>(DecisionTreeConfig{});
  tree->Fit(testing::SeparableBlobs(200, 40, 11));
  return tree;
}

/// Scorer + loop on an ephemeral port, with the loop on its own thread.
class LoopHarness {
 public:
  explicit LoopHarness(serve::EventLoopConfig config = {},
                       serve::ReloadRequestFn reload_fn = {}) {
    BatchScorerConfig scorer_config;
    scorer_config.num_workers = 2;
    scorer_ = std::make_unique<BatchScorer>(TinyModel(), 2, scorer_config);
    loop_ = std::make_unique<serve::EventLoop>(*scorer_, config,
                                               std::move(reload_fn));
    const std::string error = loop_->Listen("127.0.0.1", 0);
    EXPECT_TRUE(error.empty()) << error;
    thread_ = std::thread([this] { loop_->Run(); });
  }

  ~LoopHarness() {
    loop_->RequestDrain();
    thread_.join();
    scorer_->Shutdown();
  }

  BatchScorer& scorer() { return *scorer_; }
  serve::EventLoop& loop() { return *loop_; }

  int Connect(int rcvbuf_bytes = 0) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (rcvbuf_bytes > 0) {
      // Must be set before connect so the window scale is negotiated
      // small — this is what turns the peer into a slow reader the
      // server can overrun.
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
    }
    const timeval timeout{.tv_sec = 30, .tv_usec = 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(loop_->port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << std::strerror(errno);
    return fd;
  }

 private:
  std::unique_ptr<BatchScorer> scorer_;
  std::unique_ptr<serve::EventLoop> loop_;
  std::thread thread_;
};

void SendAll(int fd, std::string_view bytes) {
  std::size_t put = 0;
  while (put < bytes.size()) {
    const ssize_t n = send(fd, bytes.data() + put, bytes.size() - put, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    put += static_cast<std::size_t>(n);
  }
}

/// Reads until `count` newline-terminated lines arrived (or EOF/timeout
/// fails the test). Returns the lines without their newlines.
std::vector<std::string> RecvLines(int fd, std::size_t count) {
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  while (lines.size() < count) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ADD_FAILURE() << "connection ended after " << lines.size() << "/"
                    << count << " lines: " << std::strerror(errno);
      return lines;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while (lines.size() < count &&
           (nl = buffer.find('\n')) != std::string::npos) {
      lines.push_back(buffer.substr(0, nl));
      buffer.erase(0, nl + 1);
    }
  }
  return lines;
}

/// Reads exactly one binary response frame.
wire::DecodedResponse RecvFrame(int fd) {
  unsigned char raw[wire::kHeaderBytes];
  auto read_full = [&](unsigned char* dst, std::size_t n) {
    std::size_t at = 0;
    while (at < n) {
      const ssize_t r = recv(fd, dst + at, n - at, 0);
      if (r <= 0) return false;
      at += static_cast<std::size_t>(r);
    }
    return true;
  };
  wire::DecodedResponse response;
  if (!read_full(raw, sizeof(raw))) {
    ADD_FAILURE() << "no response frame header";
    return response;
  }
  const wire::FrameHeader header = wire::DecodeHeader(raw);
  EXPECT_EQ(header.magic, wire::kMagic);
  EXPECT_LE(header.payload_len, wire::kMaxPayloadBytes);
  std::vector<unsigned char> payload(header.payload_len);
  if (!read_full(payload.data(), payload.size())) {
    ADD_FAILURE() << "truncated response frame";
    return response;
  }
  EXPECT_EQ(wire::DecodeResponse(header, payload.data(), response), "");
  return response;
}

TEST(EventLoopTest, TextResponsesAreBitIdenticalToTheScorer) {
  LoopHarness harness;
  const std::vector<std::vector<double>> rows = {
      {0.5, 1.5}, {4.0, 4.0}, {-1.0, 2.0}};
  const int fd = harness.Connect();
  std::string request_text;
  for (const auto& row : rows) {
    request_text += std::to_string(row[0]) + "," + std::to_string(row[1]);
    request_text += '\n';
  }
  request_text += "{\"id\":9,\"features\":[4.0,4.0]}\n";
  SendAll(fd, request_text);
  const std::vector<std::string> lines = RecvLines(fd, rows.size() + 1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScoreResult truth = harness.scorer().Submit(rows[i]).get();
    ServeRequest csv;
    csv.json = false;
    EXPECT_EQ(lines[i], FormatScoreResponse(csv, truth.proba, truth.degraded));
  }
  const ScoreResult truth = harness.scorer().Submit({4.0, 4.0}).get();
  ServeRequest json;
  json.json = true;
  json.id = "9";
  EXPECT_EQ(lines[rows.size()],
            FormatScoreResponse(json, truth.proba, truth.degraded));
  close(fd);
}

TEST(EventLoopTest, BinaryScoresMatchTextScoresBitForBit) {
  LoopHarness harness;
  const std::vector<std::vector<double>> rows = {
      {0.25, -1.5}, {3.75, 4.25}, {0.0, 0.0}};
  // Text connection.
  const int text_fd = harness.Connect();
  std::string text;
  for (const auto& row : rows) {
    char line[64];
    std::snprintf(line, sizeof(line), "%.17g,%.17g\n", row[0], row[1]);
    text += line;
  }
  SendAll(text_fd, text);
  const std::vector<std::string> text_lines = RecvLines(text_fd, rows.size());
  // Binary connection, same rows.
  const int bin_fd = harness.Connect();
  std::string frames;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    wire::AppendScoreRequest(frames, i + 1, rows[i].data(), rows[i].size());
  }
  SendAll(bin_fd, frames);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const wire::DecodedResponse response = RecvFrame(bin_fd);
    EXPECT_EQ(response.type, wire::FrameType::kScoreOk);
    EXPECT_EQ(response.id, i + 1);
    char formatted[40];
    std::snprintf(formatted, sizeof(formatted), "%.17g", response.proba);
    EXPECT_EQ(text_lines[i], formatted)
        << "binary and text scores diverge for row " << i;
  }
  close(text_fd);
  close(bin_fd);
}

TEST(EventLoopTest, SlowClientGetsEveryResponseDespitePartialWrites) {
  LoopHarness harness;
  // A tiny receive window plus a reader that does not read until all
  // requests are sent: the server's writes hit EAGAIN and must finish
  // through EPOLLOUT without dropping or reordering anything.
  const int fd = harness.Connect(/*rcvbuf_bytes=*/2048);
  constexpr int kRequests = 400;
  // Fat ids make fat JSON responses — more bytes than the client's
  // receive window can hold, guaranteeing backpressure.
  const std::string padding(180, 'x');
  std::string requests;
  for (int i = 0; i < kRequests; ++i) {
    requests += "{\"id\":\"" + std::to_string(i) + "-" + padding +
                "\",\"features\":[1.5,2.5]}\n";
  }
  SendAll(fd, requests);
  const std::vector<std::string> lines = RecvLines(fd, kRequests);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const std::string expected_prefix =
        "{\"id\":\"" + std::to_string(i) + "-";
    EXPECT_EQ(lines[i].rfind(expected_prefix, 0), 0u)
        << "response " << i << " out of order: " << lines[i];
  }
  close(fd);
}

TEST(EventLoopTest, PipelinedBacklogBeyondPendingCapIsFullyAnswered) {
  // Regression: a client that pipelines more requests than
  // max_pending_per_conn in one burst puts everything into the server's
  // input buffer before the cap is hit, so no further EPOLLIN arrives.
  // Parsing must resume as pending slots drain, and the half-close must
  // not drop buffered-but-unparsed requests.
  serve::EventLoopConfig config;
  config.max_pending_per_conn = 4;
  LoopHarness harness(config);
  const int fd = harness.Connect();
  constexpr int kRequests = 64;
  std::string requests;
  for (int i = 0; i < kRequests; ++i) {
    requests += "{\"id\":" + std::to_string(i) + ",\"features\":[1.5,2.5]}\n";
  }
  SendAll(fd, requests);
  shutdown(fd, SHUT_WR);  // half-close: every accepted request still owed
  const std::vector<std::string> lines = RecvLines(fd, kRequests);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const std::string expected_prefix = "{\"id\":" + std::to_string(i) + ",";
    EXPECT_EQ(lines[i].rfind(expected_prefix, 0), 0u)
        << "response " << i << " missing or out of order: " << lines[i];
  }
  // Everything answered, nothing more coming: the server closes.
  char byte;
  EXPECT_EQ(recv(fd, &byte, 1, 0), 0);
  close(fd);
}

TEST(EventLoopTest, OversizedTerminatedLineIsRefusedAndSessionContinues) {
  // A line over the cap whose '\n' is already buffered when the parser
  // runs must get the same refusal as the no-newline discard path, and
  // the connection must keep serving afterwards.
  LoopHarness harness;
  const int fd = harness.Connect();
  std::string oversized(kMaxRequestLineBytes + 1, 'x');
  oversized += "\n1.0,2.0\n";
  SendAll(fd, oversized);
  const std::vector<std::string> lines = RecvLines(fd, 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "ERR request line exceeds " +
                          std::to_string(kMaxRequestLineBytes) + " bytes");
  EXPECT_EQ(lines[1].rfind("ERR", 0), std::string::npos) << lines[1];
  EXPECT_FALSE(lines[1].empty());
  close(fd);
}

TEST(EventLoopTest, PartialTrailingBinaryFrameIsDroppedAtEof) {
  // Complete frames before a truncated one are answered; the truncated
  // tail has no id to answer, so after half-close the server drops it
  // and closes instead of waiting forever for the rest of the frame.
  LoopHarness harness;
  const int fd = harness.Connect();
  std::string frames;
  const double row[] = {1.0, 2.0};
  wire::AppendScoreRequest(frames, 7, row, 2);
  wire::AppendScoreRequest(frames, 8, row, 2);
  std::string truncated;
  wire::AppendScoreRequest(truncated, 9, row, 2);
  frames += truncated.substr(0, wire::kHeaderBytes + 3);
  SendAll(fd, frames);
  shutdown(fd, SHUT_WR);
  for (std::uint64_t id = 7; id <= 8; ++id) {
    const wire::DecodedResponse response = RecvFrame(fd);
    EXPECT_EQ(response.type, wire::FrameType::kScoreOk);
    EXPECT_EQ(response.id, id);
  }
  char byte;
  EXPECT_EQ(recv(fd, &byte, 1, 0), 0);  // EOF, not a stall
  close(fd);
}

TEST(EventLoopTest, CapacityRefusalLineArrivesWhole) {
  serve::EventLoopConfig config;
  config.max_connections = 1;
  LoopHarness harness(config);
  const int first = harness.Connect();
  SendAll(first, "1.0,2.0\n");
  RecvLines(first, 1);  // session established and answered
  const int second = harness.Connect();
  const std::vector<std::string> refusal = RecvLines(second, 1);
  ASSERT_EQ(refusal.size(), 1u);
  EXPECT_EQ(refusal[0], "ERR server at connection capacity");
  // The refused socket is closed by the server.
  char byte;
  EXPECT_EQ(recv(second, &byte, 1, 0), 0);
  close(second);
  close(first);
  EXPECT_GE(harness.loop().counters().refused.load(), 1u);
}

TEST(EventLoopTest, ReloadAnswersInOrderAndLaterRequestsWaitForIt) {
  std::atomic<int> reloads{0};
  serve::EventLoopConfig config;
  LoopHarness harness(
      config, [&reloads](std::string path,
                         std::function<void(std::string)> done) {
        // Answer from another thread after a delay, like the real
        // lifecycle coordinator: requests after the !reload must not
        // be answered before this resolves.
        std::thread([&reloads, path = std::move(path),
                     done = std::move(done)] {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          reloads.fetch_add(1);
          done("OK fake reload of " + path);
        }).detach();
      });
  const int fd = harness.Connect();
  SendAll(fd, "1.0,2.0\n!reload candidate.model\n3.0,4.0\n");
  const std::vector<std::string> lines = RecvLines(fd, 3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0], "");
  EXPECT_EQ(lines[1], "OK fake reload of candidate.model");
  // The request read after the !reload must still be scored (a bare
  // number, not an error line).
  EXPECT_EQ(lines[2].rfind("ERR", 0), std::string::npos);
  EXPECT_FALSE(lines[2].empty());
  EXPECT_EQ(reloads.load(), 1);
  close(fd);
}

TEST(EventLoopTest, DrainAnswersAcceptedRequestsThenCloses) {
  auto harness = std::make_unique<LoopHarness>();
  const int fd = harness->Connect();
  SendAll(fd, "1.0,2.0\n2.0,3.0\n");
  const std::vector<std::string> before = RecvLines(fd, 2);
  ASSERT_EQ(before.size(), 2u);
  harness->loop().RequestDrain();
  // After the drain the connection must reach EOF (server closed it)
  // without garbage in between.
  char byte;
  ssize_t n;
  while ((n = recv(fd, &byte, 1, 0)) > 0) {
  }
  EXPECT_EQ(n, 0) << std::strerror(errno);
  close(fd);
  harness.reset();  // Run() must have returned; ~LoopHarness joins
}

TEST(EventLoopTest, MixedProtocolConnectionsCoexist) {
  LoopHarness harness;
  const int text_fd = harness.Connect();
  const int bin_fd = harness.Connect();
  std::string frame;
  const double row[] = {1.0, 2.0};
  wire::AppendScoreRequest(frame, 42, row, 2);
  SendAll(bin_fd, frame);
  SendAll(text_fd, "1.0,2.0\n");
  const wire::DecodedResponse bin = RecvFrame(bin_fd);
  const std::vector<std::string> text = RecvLines(text_fd, 1);
  EXPECT_EQ(bin.type, wire::FrameType::kScoreOk);
  EXPECT_EQ(bin.id, 42u);
  ASSERT_EQ(text.size(), 1u);
  char formatted[40];
  std::snprintf(formatted, sizeof(formatted), "%.17g", bin.proba);
  EXPECT_EQ(text[0], formatted);
  close(text_fd);
  close(bin_fd);
}

}  // namespace
}  // namespace spe
