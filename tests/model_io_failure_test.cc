// Failure-path tests for model_io bundle loading: legacy artifacts load
// with a warning, integrity violations (truncation, bit rot) abort with
// messages that name the real problem, the non-aborting probe reports
// the same conditions as errors, and the v3 hardness-histogram line
// round-trips byte-identically through save -> load -> re-save.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/fault.h"
#include "spe/common/retry.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/io/model_io.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

std::unique_ptr<SelfPacedEnsemble> TrainSpe(std::uint64_t seed) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 3;
  config.seed = seed;
  auto model = std::make_unique<SelfPacedEnsemble>(config);
  model->Fit(OverlappingBlobs(200, 30, seed));
  return model;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("spe_model_io_failure_") + name))
      .string();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string SaveBundleString(const Classifier& model) {
  std::ostringstream os;
  SaveModelBundle(model, 2, os);
  return os.str();
}

TEST(ModelIoFailureTest, BareStreamLoadsWithChecksumWarning) {
  auto model = TrainSpe(1);
  std::stringstream stream;
  SaveClassifier(*model, stream);

  ::testing::internal::CaptureStderr();
  ModelBundle bundle = LoadModelBundle(stream);
  const std::string warning = ::testing::internal::GetCapturedStderr();

  EXPECT_NE(warning.find("without an integrity checksum"), std::string::npos)
      << warning;
  EXPECT_NE(warning.find("bare spe-model artifact"), std::string::npos)
      << warning;
  ASSERT_NE(bundle.model, nullptr);
  EXPECT_EQ(bundle.format_version, 0);
  EXPECT_EQ(bundle.num_features, 0u);  // bare streams carry no schema
  EXPECT_TRUE(bundle.crc32_hex.empty());
  EXPECT_TRUE(bundle.hardness_histogram.empty());
}

TEST(ModelIoFailureTest, V1BundleLoadsWithWarningAndKeepsSchema) {
  auto model = TrainSpe(2);
  std::ostringstream payload;
  SaveClassifier(*model, payload);
  std::stringstream stream;
  stream << "spe-bundle 1 num_features 2\n" << payload.str();

  ::testing::internal::CaptureStderr();
  ModelBundle bundle = LoadModelBundle(stream);
  const std::string warning = ::testing::internal::GetCapturedStderr();

  EXPECT_NE(warning.find("version-1 model bundle"), std::string::npos)
      << warning;
  ASSERT_NE(bundle.model, nullptr);
  EXPECT_EQ(bundle.format_version, 1);
  EXPECT_EQ(bundle.num_features, 2u);

  const Dataset test = OverlappingBlobs(30, 10, 3);
  const std::vector<double> expected = model->PredictProba(test);
  const std::vector<double> restored = bundle.model->PredictProba(test);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(expected[i], restored[i]) << "row " << i;
  }
}

TEST(ModelIoFailureTest, CrcMismatchAbortsWithCorruptionMessage) {
  auto model = TrainSpe(4);
  std::string bytes = SaveBundleString(*model);
  // Flip one payload byte (past the two header lines) — the artifact
  // still parses as text, so only the checksum can catch this.
  const std::size_t payload_start =
      bytes.find('\n', bytes.find('\n') + 1) + 1;
  ASSERT_LT(payload_start + 10, bytes.size());
  bytes[payload_start + 10] ^= 0x01;
  const std::string path = TempPath("corrupt.model");
  WriteFile(path, bytes);

  EXPECT_DEATH(LoadModelBundleFromFile(path), "model artifact corrupted");
  std::filesystem::remove(path);
}

TEST(ModelIoFailureTest, TruncatedPayloadAbortsWithTruncationMessage) {
  auto model = TrainSpe(5);
  const std::string bytes = SaveBundleString(*model);
  const std::string path = TempPath("truncated.model");
  WriteFile(path, bytes.substr(0, bytes.size() / 2));

  EXPECT_DEATH(LoadModelBundleFromFile(path), "model artifact truncated");
  std::filesystem::remove(path);
}

TEST(ModelIoFailureTest, ProbeReportsEveryFailureWithoutAborting) {
  auto model = TrainSpe(6);
  const std::string bytes = SaveBundleString(*model);

  const std::string good = TempPath("probe_good.model");
  WriteFile(good, bytes);
  BundleProbe probe = ProbeModelBundleFile(good);
  EXPECT_TRUE(probe.ok) << probe.error;
  EXPECT_EQ(probe.format_version, 3);
  EXPECT_EQ(probe.num_features, 2u);
  EXPECT_GT(probe.payload_bytes, 0u);
  EXPECT_EQ(probe.crc32_hex.size(), 8u);
  EXPECT_TRUE(probe.has_hardness_histogram);

  probe = ProbeModelBundleFile(TempPath("probe_missing.model"));
  EXPECT_FALSE(probe.ok);
  EXPECT_NE(probe.error.find("cannot open"), std::string::npos);

  const std::string truncated = TempPath("probe_truncated.model");
  WriteFile(truncated, bytes.substr(0, bytes.size() - 7));
  probe = ProbeModelBundleFile(truncated);
  EXPECT_FALSE(probe.ok);
  EXPECT_NE(probe.error.find("truncated"), std::string::npos) << probe.error;

  std::string corrupt_bytes = bytes;
  corrupt_bytes[corrupt_bytes.size() - 2] ^= 0x01;
  const std::string corrupt = TempPath("probe_corrupt.model");
  WriteFile(corrupt, corrupt_bytes);
  probe = ProbeModelBundleFile(corrupt);
  EXPECT_FALSE(probe.ok);
  EXPECT_NE(probe.error.find("corrupted"), std::string::npos) << probe.error;

  const std::string garbage = TempPath("probe_garbage.model");
  WriteFile(garbage, "hello world\n");
  probe = ProbeModelBundleFile(garbage);
  EXPECT_FALSE(probe.ok);
  EXPECT_FALSE(probe.error.empty());

  for (const std::string& p : {good, truncated, corrupt, garbage}) {
    std::filesystem::remove(p);
  }
}

TEST(ModelIoFailureTest, TransientWriteFaultThrowsWithoutPublishing) {
  // artifact_write_fail_rate models recoverable I/O weather: unlike
  // model_io_fail_rate's abort, it throws TransientIoError *before* the
  // tmp file is written, so no fault ever leaves a torn artifact.
  auto model = TrainSpe(9);
  const std::string path = TempPath("transient_write.model");
  FaultConfig faults;
  faults.artifact_write_fail_rate = 1.0;
  Faults().Configure(faults);
  EXPECT_THROW(SaveModelBundleToFile(*model, 2, path), TransientIoError);
  Faults().Reset();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // With faults off the same call publishes, and a transient *read*
  // fault on the way back throws without consuming the file.
  SaveModelBundleToFile(*model, 2, path);
  faults.artifact_write_fail_rate = 0.0;
  faults.artifact_read_fail_rate = 1.0;
  Faults().Configure(faults);
  EXPECT_THROW(LoadModelBundleFromFile(path), TransientIoError);
  Faults().Reset();
  ModelBundle bundle = LoadModelBundleFromFile(path);
  EXPECT_NE(bundle.model, nullptr);
  std::filesystem::remove(path);
}

TEST(ModelIoFailureTest, V3HistogramRoundTripsByteIdentically) {
  auto model = TrainSpe(7);
  ASSERT_NE(model->training_hardness(), nullptr);
  const std::string first = SaveBundleString(*model);
  EXPECT_EQ(first.rfind("spe-bundle 3 num_features 2 payload_bytes ", 0), 0u);
  EXPECT_NE(first.find("\nhardness_histogram "), std::string::npos);

  std::istringstream is(first);
  ModelBundle bundle = LoadModelBundle(is);
  ASSERT_FALSE(bundle.hardness_histogram.empty());
  EXPECT_EQ(bundle.hardness_histogram.total(),
            model->training_hardness()->total());

  // Re-saving the loaded model must reproduce the artifact byte for
  // byte — the histogram (17-significant-digit min/max included)
  // survives the round trip exactly.
  const std::string second = SaveBundleString(*bundle.model);
  EXPECT_EQ(first, second);
}

TEST(ModelIoFailureTest, HandcraftedV2BundleStillLoads) {
  auto model = TrainSpe(8);
  const std::string v3 = SaveBundleString(*model);
  const std::size_t header_end = v3.find('\n');
  const std::size_t histogram_end = v3.find('\n', header_end + 1);
  ASSERT_NE(histogram_end, std::string::npos);

  // Rebuild the header as version 2 (same payload, same integrity
  // fields, no histogram line) — the pre-lifecycle on-disk format.
  std::istringstream header(v3.substr(0, header_end));
  std::string magic, kw_features, kw_payload, kw_crc, crc;
  int version = 0;
  std::size_t num_features = 0, payload_bytes = 0;
  header >> magic >> version >> kw_features >> num_features >> kw_payload >>
      payload_bytes >> kw_crc >> crc;
  ASSERT_EQ(version, 3);
  std::ostringstream v2;
  v2 << "spe-bundle 2 num_features " << num_features << " payload_bytes "
     << payload_bytes << " crc32 " << crc << "\n"
     << v3.substr(histogram_end + 1);

  std::istringstream is(v2.str());
  ModelBundle bundle = LoadModelBundle(is);
  ASSERT_NE(bundle.model, nullptr);
  EXPECT_EQ(bundle.format_version, 2);
  EXPECT_EQ(bundle.num_features, 2u);
  EXPECT_TRUE(bundle.hardness_histogram.empty());

  const Dataset test = OverlappingBlobs(30, 10, 9);
  const std::vector<double> expected = model->PredictProba(test);
  const std::vector<double> restored = bundle.model->PredictProba(test);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(expected[i], restored[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace spe
