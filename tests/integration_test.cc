// End-to-end integration tests: the full production pipeline — generate
// or load data, split, train an imbalance-aware ensemble, evaluate,
// persist, reload, predict — plus cross-module consistency checks that
// no unit test covers.

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/csv.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/data/synthetic.h"
#include "spe/eval/cross_validation.h"
#include "spe/io/model_io.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/sampler_factory.h"
#include "tests/test_util.h"

namespace spe {
namespace {

TEST(IntegrationTest, FullPipelineCsvToServedModel) {
  // 1. Generate an imbalanced dataset and persist it as CSV (simulating
  //    ingestion from an external source).
  Rng rng(1);
  CheckerboardConfig data_config;
  data_config.num_minority = 300;
  data_config.num_majority = 3000;
  const Dataset generated = MakeCheckerboard(data_config, rng);
  const std::string csv_path =
      (std::filesystem::temp_directory_path() / "spe_integration.csv").string();
  SaveCsv(generated, csv_path);

  // 2. Load, split, train SPE over GBDT.
  const Dataset data = LoadCsv(csv_path, /*label_column=*/2);
  ASSERT_EQ(data.num_rows(), generated.num_rows());
  const TrainTest split = StratifiedSplit2(data, 0.7, rng);
  GbdtConfig gbdt_config;
  gbdt_config.boost_rounds = 8;
  SelfPacedEnsembleConfig config;
  config.n_estimators = 8;
  config.seed = 2;
  SelfPacedEnsemble model(config, std::make_unique<Gbdt>(gbdt_config));
  model.Fit(split.train);

  // 3. Evaluate: must clearly beat the prevalence baseline.
  const std::vector<double> probs = model.PredictProba(split.test);
  const double auc = AucPrc(split.test.labels(), probs);
  EXPECT_GT(auc, 0.4);

  // 4. Deployment: tune the threshold, persist the model, reload, and
  //    verify the served artifact reproduces the training-side outputs.
  const ThresholdSearchResult threshold =
      BestF1Threshold(split.test.labels(), probs);
  EXPECT_GT(threshold.value,
            F1Score(ConfusionAt(split.test.labels(), probs, 0.5)) - 1e-12);

  const std::string model_path =
      (std::filesystem::temp_directory_path() / "spe_integration.model").string();
  SaveClassifierToFile(model, model_path);
  const auto served = LoadClassifierFromFile(model_path);
  const std::vector<double> served_probs = served->PredictProba(split.test);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_DOUBLE_EQ(probs[i], served_probs[i]);
  }

  std::remove(csv_path.c_str());
  std::remove(model_path.c_str());
}

TEST(IntegrationTest, ResampleThenTrainMatchesDirectTrainOnBalancedData) {
  // RandomUnder + classifier must behave exactly like training on the
  // balanced subset it produces — guards against hidden state leaking
  // between the sampling and training layers.
  const Dataset data = testing::OverlappingBlobs(500, 50, 3);
  Rng rng_a(4);
  Rng rng_b(4);
  const Dataset balanced_a = MakeSampler("RandUnder")->Resample(data, rng_a);
  const Dataset balanced_b = MakeSampler("RandUnder")->Resample(data, rng_b);
  Gbdt model_a;
  Gbdt model_b;
  model_a.Fit(balanced_a);
  model_b.Fit(balanced_b);
  const Dataset probe = testing::OverlappingBlobs(50, 10, 5);
  EXPECT_EQ(model_a.PredictProba(probe), model_b.PredictProba(probe));
}

TEST(IntegrationTest, CrossValidationOnSimulatedFraud) {
  Rng rng(6);
  const Dataset data = MakeCreditFraudSim(rng, /*scale=*/0.15);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  const SelfPacedEnsemble prototype(config);
  Rng cv_rng(7);
  const CrossValidationResult result = CrossValidate(prototype, data, 3, cv_rng);
  EXPECT_EQ(result.folds.size(), 3u);
  const double prevalence = 1.0 / (1.0 + data.ImbalanceRatio());
  EXPECT_GT(result.aggregate().aucprc.mean, 2.0 * prevalence);
}

TEST(IntegrationTest, MissingValueInjectionDegradesButDoesNotBreakSpe) {
  // Table VII's qualitative claim as an invariant: SPE must survive 75%
  // missing values and still emit valid probabilities.
  Rng rng(8);
  Dataset data = MakeCreditFraudSim(rng, 0.15);
  InjectMissingValues(data, 0.75, rng);
  const TrainTest split = StratifiedSplit2(data, 0.7, rng);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  SelfPacedEnsemble model(config);
  model.Fit(split.train);
  for (double p : model.PredictProba(split.test)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(IntegrationTest, CategoricalDataEndToEnd) {
  // The full applicability story: payment-style categorical data flows
  // through split -> SPE(GBDT) -> metrics without any distance metric.
  Rng rng(9);
  const Dataset data = MakePaymentSim(rng, 0.1);
  ASSERT_TRUE(data.HasCategoricalFeatures());
  const TrainTest split = StratifiedSplit2(data, 0.7, rng);
  GbdtConfig gbdt_config;
  gbdt_config.boost_rounds = 5;
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  SelfPacedEnsemble model(config, std::make_unique<Gbdt>(gbdt_config));
  model.Fit(split.train);
  const double auc =
      AucPrc(split.test.labels(), model.PredictProba(split.test));
  const double prevalence = 1.0 / (1.0 + split.test.ImbalanceRatio());
  EXPECT_GT(auc, 2.0 * prevalence);
}

}  // namespace
}  // namespace spe
