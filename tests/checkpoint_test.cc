// Tests for spe::checkpoint and the crash-safe training contract
// (docs/robustness.md): the retry helper's backoff/exhaustion behavior,
// the checkpoint envelope's integrity checks, and — the heart of it —
// the resume determinism matrix: a run halted at the first, a middle,
// or the last self-paced iteration and then resumed must produce a
// model bundle byte-identical to an uninterrupted run, under
// SetNumThreads(1) and (8), for plain Fit and for FitWithValidation's
// early-stop truncation. Threaded — carries the `sanitize` ctest label.

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/checkpoint/checkpoint.h"
#include "spe/common/fault.h"
#include "spe/common/parallel.h"
#include "spe/common/retry.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/io/model_io.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

std::string TempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("spe_checkpoint_test_") + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Bundle bytes are the determinism currency: they embed every member,
/// the schema and the v3 hardness histogram, so byte equality is the
/// strongest statement available about two trained models.
std::string BundleBytes(const Classifier& model) {
  std::ostringstream os;
  SaveModelBundle(model, 2, os);
  return os.str();
}

SelfPacedEnsembleConfig TestConfig(std::uint64_t seed = 3) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = seed;
  return config;
}

// ---------------------------------------------------------------------
// Retry helper
// ---------------------------------------------------------------------

TEST(RetryTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  int calls = 0;
  const int result = RetryWithBackoff(policy, "unit op", [&] {
    if (++calls < 3) throw TransientIoError("flaky");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustionRethrowsTheLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  int calls = 0;
  EXPECT_THROW(RetryWithBackoff(policy, "unit op",
                                [&]() -> int {
                                  ++calls;
                                  throw TransientIoError("still flaky");
                                }),
               TransientIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonTransientErrorsPropagateImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  EXPECT_THROW(RetryWithBackoff(policy, "unit op",
                                [&]() -> int {
                                  ++calls;
                                  throw std::runtime_error("bit rot");
                                }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);  // permanent failures must not burn the budget
}

TEST(RetryTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 30;
  policy.jitter = 0.0;  // deterministic: the exact geometric series
  std::uint64_t state = 123;
  EXPECT_EQ(internal_retry::BackoffMs(policy, 1, state), 5u);
  EXPECT_EQ(internal_retry::BackoffMs(policy, 2, state), 10u);
  EXPECT_EQ(internal_retry::BackoffMs(policy, 3, state), 20u);
  EXPECT_EQ(internal_retry::BackoffMs(policy, 4, state), 30u);  // capped
  EXPECT_EQ(internal_retry::BackoffMs(policy, 9, state), 30u);
}

TEST(RetryTest, JitterStaysWithinTheConfiguredFraction) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1000;
  policy.multiplier = 1.0;
  policy.jitter = 0.5;
  std::uint64_t state = 7;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t delay = internal_retry::BackoffMs(policy, 1, state);
    EXPECT_GE(delay, 500u);
    EXPECT_LE(delay, 1000u);
  }
}

// ---------------------------------------------------------------------
// Checkpoint envelope
// ---------------------------------------------------------------------

/// Trains with a halt after `halt_at`, leaving a real checkpoint behind.
void WriteRealCheckpoint(const std::string& dir, const Dataset& data,
                         std::size_t halt_at, std::uint64_t seed = 3) {
  SelfPacedEnsemble model(TestConfig(seed));
  FitCheckpointOptions options;
  options.directory = dir;
  options.halt_after_iteration = halt_at;
  model.set_checkpoint_options(options);
  model.Fit(data);
}

TEST(CheckpointEnvelopeTest, RealCheckpointReserializesByteIdentically) {
  const std::string dir = TempDir("roundtrip");
  const Dataset data = OverlappingBlobs(200, 30, 3);
  WriteRealCheckpoint(dir, data, 4);

  const std::string path = checkpoint::CheckpointPath(dir);
  checkpoint::LoadResult loaded = checkpoint::LoadTrainerStateFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.core.next_iteration, 5u);
  EXPECT_EQ(loaded.core.prob_count, 5u);  // f0 + iterations 1..4
  EXPECT_EQ(loaded.members.size(), 4u);   // f0 votes but is not a member
  // f0 is not a member, so the checkpoint must carry its bytes for the
  // resume replay (no accumulator is stored at all).
  EXPECT_FALSE(loaded.core.bootstrap_blob.empty());
  EXPECT_FALSE(loaded.core.rng_state.empty());
  EXPECT_FALSE(loaded.core.has_validation);
  EXPECT_EQ(loaded.core.data_fingerprint,
            checkpoint::DatasetFingerprint(data));

  // Load -> save must reproduce the state byte for byte; any drift here
  // would break the kill-resume-kill-resume chains the chaos harness
  // runs, where later checkpoints descend from restored state. The live
  // manifest is append-only (and how many of its records coalesced is a
  // scheduling accident), so the resaved single-record manifest must
  // equal its *newest* record — i.e. its byte suffix — exactly.
  const std::string resaved = dir + "/resaved.ckpt";
  checkpoint::SaveTrainerStateToFile(loaded.core, loaded.members, resaved);
  const std::string real_manifest = ReadFile(path);
  const std::string resaved_manifest = ReadFile(resaved);
  ASSERT_GE(real_manifest.size(), resaved_manifest.size());
  EXPECT_EQ(real_manifest.substr(real_manifest.size() -
                                 resaved_manifest.size()),
            resaved_manifest);
  EXPECT_EQ(ReadFile(checkpoint::MemberLogPath(path)),
            ReadFile(checkpoint::MemberLogPath(resaved)));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointEnvelopeTest, MissingFileIsAFreshStartNotAnError) {
  const std::string dir = TempDir("missing");
  checkpoint::LoadResult loaded = checkpoint::LoadTrainerStateFromFile(
      checkpoint::CheckpointPath(dir));
  EXPECT_TRUE(loaded.missing);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointEnvelopeTest, IntegrityViolationsAreRefusedWithReasons) {
  const std::string dir = TempDir("integrity");
  const Dataset data = OverlappingBlobs(120, 20, 3);
  WriteRealCheckpoint(dir, data, 2);
  const std::string path = checkpoint::CheckpointPath(dir);
  const std::string bytes = ReadFile(path);

  std::string corrupt = bytes;
  corrupt[corrupt.size() - 3] ^= 0x01;
  WriteFile(path, corrupt);
  checkpoint::LoadResult loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_NE(loaded.error.find("crc32 mismatch"), std::string::npos)
      << loaded.error;

  // Cut inside the *first* record so no complete record survives: that
  // is unrecoverable truncation. (Cutting the file elsewhere may leave
  // an earlier record intact, which is legitimate fallback, not error.)
  const std::size_t first_payload = bytes.find('\n') + 1;
  WriteFile(path, bytes.substr(0, first_payload + 3));
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_NE(loaded.error.find("truncated"), std::string::npos)
      << loaded.error;

  WriteFile(path, "hello world\n");
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_NE(loaded.error.find("bad magic"), std::string::npos)
      << loaded.error;

  // A torn *manifest* tail — the prefix of a commit record that never
  // finished — must fall back to the newest complete record, while
  // complete garbage after a valid record can only be bit rot and must
  // be refused.
  WriteFile(path, bytes + "spe-checkpoint 1 payload_bytes 999 crc32 0000");
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_TRUE(loaded.ok()) << loaded.error;
  WriteFile(path,
            bytes + "spe-checkpoint 1 payload_bytes 4 crc32 00000000\nto");
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_TRUE(loaded.ok()) << loaded.error;
  WriteFile(path, bytes + "not-a-record 9 payload_bytes 4 crc32 0\nrotted\n");
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_NE(loaded.error.find("malformed record after a valid checkpoint"),
            std::string::npos)
      << loaded.error;

  // The manifest CRCs the member-log prefix it vouches for, so bit rot
  // in the log (not just the manifest) must also be refused.
  WriteFile(path, bytes);
  const std::string log_path = checkpoint::MemberLogPath(path);
  const std::string log_bytes = ReadFile(log_path);
  std::string log_corrupt = log_bytes;
  log_corrupt[log_corrupt.size() / 2] ^= 0x01;
  WriteFile(log_path, log_corrupt);
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_NE(loaded.error.find("member log corrupted"), std::string::npos)
      << loaded.error;

  WriteFile(log_path, log_bytes.substr(0, log_bytes.size() / 2));
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_NE(loaded.error.find("member log truncated"), std::string::npos)
      << loaded.error;

  // A torn tail past the vouched prefix is a normal crash artifact,
  // not corruption: the loader must ignore it.
  WriteFile(log_path, log_bytes + "garbage from a torn append");
  loaded = checkpoint::LoadTrainerStateFromFile(path);
  EXPECT_TRUE(loaded.ok()) << loaded.error;
  std::filesystem::remove_all(dir);
}

TEST(DatasetFingerprintTest, SensitiveToEveryBitThatCouldAlterTraining) {
  const Dataset a = OverlappingBlobs(100, 15, 3);
  const Dataset b = OverlappingBlobs(100, 15, 3);
  EXPECT_EQ(checkpoint::DatasetFingerprint(a),
            checkpoint::DatasetFingerprint(b));

  const Dataset other_seed = OverlappingBlobs(100, 15, 4);
  EXPECT_NE(checkpoint::DatasetFingerprint(a),
            checkpoint::DatasetFingerprint(other_seed));

  Dataset extra_row = OverlappingBlobs(100, 15, 3);
  extra_row.AddRow(std::vector<double>{0.0, 0.0}, 1);
  EXPECT_NE(checkpoint::DatasetFingerprint(a),
            checkpoint::DatasetFingerprint(extra_row));
}

// ---------------------------------------------------------------------
// Resume determinism matrix
// ---------------------------------------------------------------------

class ResumeDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(0); }

  /// Halts a checkpointed run after `halt_at`, resumes it in a fresh
  /// trainer, and returns the resumed model's bundle bytes.
  std::string HaltAndResume(const Dataset& data, std::size_t halt_at,
                            std::size_t every) {
    const std::string dir = TempDir("matrix");
    {
      SelfPacedEnsemble halted(TestConfig());
      FitCheckpointOptions options;
      options.directory = dir;
      options.every = every;
      options.halt_after_iteration = halt_at;
      halted.set_checkpoint_options(options);
      halted.Fit(data);
    }
    SelfPacedEnsemble resumed(TestConfig());
    FitCheckpointOptions options;
    options.directory = dir;
    options.every = every;
    options.resume = true;
    resumed.set_checkpoint_options(options);
    resumed.Fit(data);
    const std::string bytes = BundleBytes(resumed);
    std::filesystem::remove_all(dir);
    return bytes;
  }
};

TEST_F(ResumeDeterminismTest, KilledAtFirstMiddleLastMatchesStraightThrough) {
  const Dataset data = OverlappingBlobs(300, 40, 3);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SetNumThreads(threads);
    SelfPacedEnsemble truth(TestConfig());
    truth.Fit(data);
    const std::string truth_bytes = BundleBytes(truth);
    for (const std::size_t halt_at :
         {std::size_t{1}, std::size_t{5}, std::size_t{10}}) {
      EXPECT_EQ(HaltAndResume(data, halt_at, 1), truth_bytes)
          << "halt at iteration " << halt_at << " under " << threads
          << " thread(s) diverged from the uninterrupted run";
    }
  }
}

TEST_F(ResumeDeterminismTest, SparseCheckpointsReplayKilledIterations) {
  // --checkpoint-every 2 with a halt at 3: the newest checkpoint is
  // from iteration 2, so the resume must *replay* iteration 3 from
  // restored RNG state and still land on identical bytes.
  const Dataset data = OverlappingBlobs(300, 40, 3);
  SetNumThreads(1);
  SelfPacedEnsemble truth(TestConfig());
  truth.Fit(data);
  EXPECT_EQ(HaltAndResume(data, 3, 2), BundleBytes(truth));
}

TEST_F(ResumeDeterminismTest, ValidationEarlyStopSurvivesKillAndResume) {
  const Dataset train = OverlappingBlobs(300, 40, 3);
  const Dataset validation = OverlappingBlobs(80, 12, 17);

  SelfPacedEnsemble truth(TestConfig());
  const std::size_t truth_size = truth.FitWithValidation(train, validation);
  const std::string truth_bytes = BundleBytes(truth);

  const std::string dir = TempDir("validation");
  {
    SelfPacedEnsemble halted(TestConfig());
    FitCheckpointOptions options;
    options.directory = dir;
    options.halt_after_iteration = 5;
    halted.set_checkpoint_options(options);
    halted.FitWithValidation(train, validation);
  }
  SelfPacedEnsemble resumed(TestConfig());
  FitCheckpointOptions options;
  options.directory = dir;
  options.resume = true;
  resumed.set_checkpoint_options(options);
  const std::size_t resumed_size =
      resumed.FitWithValidation(train, validation);
  EXPECT_EQ(resumed_size, truth_size);
  EXPECT_EQ(BundleBytes(resumed), truth_bytes);

  // Crash *after* the last iteration but before the artifact publishes:
  // the final checkpoint (next_iteration = n + 1) restores the full
  // ensemble and validation history, and the resume only re-runs the
  // early-stop truncation.
  SelfPacedEnsemble post(TestConfig());
  post.set_checkpoint_options(options);
  const std::size_t post_size = post.FitWithValidation(train, validation);
  EXPECT_EQ(post_size, truth_size);
  EXPECT_EQ(BundleBytes(post), truth_bytes);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Resume refusals
// ---------------------------------------------------------------------

TEST(ResumeRefusalTest, DifferentTrainingDataAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = TempDir("wrong_data");
  const Dataset data = OverlappingBlobs(150, 25, 3);
  WriteRealCheckpoint(dir, data, 2);

  const Dataset other = OverlappingBlobs(150, 25, 4);
  SelfPacedEnsemble model(TestConfig());
  FitCheckpointOptions options;
  options.directory = dir;
  options.resume = true;
  model.set_checkpoint_options(options);
  EXPECT_DEATH(model.Fit(other), "different training data");
  std::filesystem::remove_all(dir);
}

TEST(ResumeRefusalTest, CheckResumableReportsConfigMismatchWithoutAborting) {
  const std::string dir = TempDir("wrong_config");
  const Dataset data = OverlappingBlobs(150, 25, 3);
  WriteRealCheckpoint(dir, data, 2, /*seed=*/3);

  SelfPacedEnsemble model(TestConfig(/*seed=*/4));
  FitCheckpointOptions options;
  options.directory = dir;
  options.resume = true;
  model.set_checkpoint_options(options);
  const std::string reason = model.CheckResumable(data);
  EXPECT_NE(reason.find("different trainer configuration"),
            std::string::npos)
      << reason;
  std::filesystem::remove_all(dir);
}

TEST(ResumeRefusalTest, CheckResumableIsQuietWithNoDirOrNoFile) {
  const Dataset data = OverlappingBlobs(50, 10, 3);
  SelfPacedEnsemble model(TestConfig());
  EXPECT_TRUE(model.CheckResumable(data).empty());

  const std::string dir = TempDir("empty");
  FitCheckpointOptions options;
  options.directory = dir;
  options.resume = true;
  model.set_checkpoint_options(options);
  EXPECT_TRUE(model.CheckResumable(data).empty());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

TEST(CheckpointFaultTest, WriteFaultsExhaustRetriesThenThrow) {
  const std::string dir = TempDir("write_fault");
  const Dataset data = OverlappingBlobs(120, 20, 3);
  WriteRealCheckpoint(dir, data, 2);
  checkpoint::LoadResult loaded = checkpoint::LoadTrainerStateFromFile(
      checkpoint::CheckpointPath(dir));
  ASSERT_TRUE(loaded.ok()) << loaded.error;

  FaultConfig faults;
  faults.artifact_write_fail_rate = 1.0;
  Faults().Configure(faults);
  RetryPolicy fast;
  fast.max_attempts = 3;
  fast.initial_backoff_ms = 1;
  EXPECT_THROW(checkpoint::SaveTrainerStateToFile(
                   loaded.core, loaded.members, dir + "/denied.ckpt", fast),
               TransientIoError);
  Faults().Reset();
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFaultTest, FlakyWritesRecoverThroughBackoff) {
  const std::string dir = TempDir("flaky_write");
  const Dataset data = OverlappingBlobs(120, 20, 3);
  WriteRealCheckpoint(dir, data, 2);
  checkpoint::LoadResult loaded = checkpoint::LoadTrainerStateFromFile(
      checkpoint::CheckpointPath(dir));
  ASSERT_TRUE(loaded.ok()) << loaded.error;

  FaultConfig faults;
  faults.artifact_write_fail_rate = 0.5;
  faults.seed = 3;
  Faults().Configure(faults);
  RetryPolicy patient;
  patient.max_attempts = 8;
  patient.initial_backoff_ms = 1;
  const std::string path = dir + "/flaky.ckpt";
  checkpoint::SaveTrainerStateToFile(loaded.core, loaded.members, path,
                                     patient);
  Faults().Reset();
  EXPECT_TRUE(std::filesystem::exists(path));
  // The flaky save carries the same state as the live manifest's newest
  // commit record (its byte suffix).
  const std::string real_manifest = ReadFile(checkpoint::CheckpointPath(dir));
  const std::string flaky_manifest = ReadFile(path);
  ASSERT_GE(real_manifest.size(), flaky_manifest.size());
  EXPECT_EQ(
      real_manifest.substr(real_manifest.size() - flaky_manifest.size()),
      flaky_manifest);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFaultTest, CrashAtIterationDeliversARealSigkill) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = TempDir("sigkill");
  const Dataset data = OverlappingBlobs(120, 20, 3);

  FaultConfig faults;
  faults.crash_at_iteration = 2;
  SelfPacedEnsemble model(TestConfig());
  FitCheckpointOptions options;
  options.directory = dir;
  model.set_checkpoint_options(options);
  EXPECT_EXIT(
      {
        Faults().Configure(faults);
        model.Fit(data);
      },
      ::testing::KilledBySignal(SIGKILL), "killing process");
  // The kill fires only after the iteration's checkpoint published.
  EXPECT_TRUE(std::filesystem::exists(checkpoint::CheckpointPath(dir)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spe
