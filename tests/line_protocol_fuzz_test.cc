// Fuzz-ish property test for both serve protocols: 10k seeded random
// byte strings — embedded NULs, overlong lines, malformed JSON/CSV,
// NaN/Inf spellings — go through ParseRequestLine, and random /
// mutated binary frames go through the wire decoders. Neither parser
// may ever crash or trip UB (run this under SPE_SANITIZE=address/
// undefined/thread builds — it carries the `sanitize` ctest label), and
// every rejection must land in its documented error taxonomy, so a
// refactor cannot silently invent new failure modes mid-protocol.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "spe/common/rng.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/wire.h"

namespace spe {
namespace {

// Every error ParseRequestLine can produce starts with one of these.
// Adding a message is fine (extend the list); renaming one is a
// wire-visible behaviour change that must be deliberate.
const char* const kErrorTaxonomy[] = {
    "expected '{'",
    "expected object key",
    "expected ':'",
    "\"features\" must be an array",
    "bad number in \"features\"",
    "non-finite value in \"features\"",
    "expected ',' or ']' in \"features\"",
    "\"deadline_ms\" must be a non-negative number",
    "unterminated string",
    "unsupported value for key",
    "\"id\" longer than",
    "missing \"features\"",
    "expected ',' or '}'",
    "bad number at column",
    "non-finite value at column",
    "expected ','",
    "request line exceeds",
};

bool InTaxonomy(const std::string& error) {
  for (const char* prefix : kErrorTaxonomy) {
    if (error.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void CheckParseInvariants(std::string_view line) {
  const ServeRequest request = ParseRequestLine(line);
  switch (request.kind) {
    case RequestKind::kScore:
      EXPECT_TRUE(request.error.empty());
      for (const double v : request.features) {
        EXPECT_TRUE(std::isfinite(v)) << "parser let a non-finite through";
      }
      EXPECT_LE(request.id.size(), kMaxIdBytes + 2);  // quotes included
      break;
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kEmpty:
      EXPECT_TRUE(request.error.empty());
      EXPECT_TRUE(request.features.empty());
      break;
    case RequestKind::kReload:
      EXPECT_TRUE(request.error.empty());
      EXPECT_TRUE(request.features.empty());
      // The path is verbatim operator input but never contains the
      // surrounding whitespace.
      if (!request.reload_path.empty()) {
        EXPECT_FALSE(
            std::isspace(static_cast<unsigned char>(request.reload_path.front())));
        EXPECT_FALSE(
            std::isspace(static_cast<unsigned char>(request.reload_path.back())));
      }
      break;
    case RequestKind::kInvalid:
      EXPECT_FALSE(request.error.empty());
      EXPECT_TRUE(InTaxonomy(request.error))
          << "error outside the documented taxonomy: " << request.error;
      // The error response must render without throwing, in either
      // shape.
      EXPECT_FALSE(FormatErrorResponse(request, request.error).empty());
      break;
  }
}

TEST(LineProtocolFuzzTest, RandomBytesNeverCrashAndErrorsStayInTaxonomy) {
  Rng rng(20260807);
  // Byte palette biased toward protocol-significant characters so the
  // random walk actually reaches deep parser states, plus raw bytes
  // (including NUL) for the torture component.
  const std::string palette =
      "{}[]:,\"0123456789.eE+-naifNAIFxy \t_features id deadline_ms";
  for (int iter = 0; iter < 10000; ++iter) {
    const std::size_t len = rng.Index(161);
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.Index(5) == 0) {
        line.push_back(static_cast<char>(rng.Index(256)));
      } else {
        line.push_back(palette[rng.Index(palette.size())]);
      }
    }
    CheckParseInvariants(line);
  }
}

TEST(LineProtocolFuzzTest, MutatedValidRequestsNeverCrash) {
  Rng rng(7);
  const std::string seed_requests[] = {
      "{\"id\":17,\"features\":[0.5,-1.25,3e2],\"deadline_ms\":50}",
      "{\"id\":\"abc\",\"features\":[1,2,3]}",
      "0.5,1.25,-3,4e-2",
      "STATS",
      "!stats",
  };
  for (int iter = 0; iter < 10000; ++iter) {
    std::string line = seed_requests[rng.Index(std::size(seed_requests))];
    // 1-4 random point mutations: overwrite, insert, or delete.
    const std::size_t mutations = 1 + rng.Index(4);
    for (std::size_t m = 0; m < mutations && !line.empty(); ++m) {
      const std::size_t pos = rng.Index(line.size());
      switch (rng.Index(3)) {
        case 0:
          line[pos] = static_cast<char>(rng.Index(256));
          break;
        case 1:
          line.insert(line.begin() + pos,
                      static_cast<char>(rng.Index(256)));
          break;
        default:
          line.erase(line.begin() + pos);
          break;
      }
    }
    CheckParseInvariants(line);
  }
}

TEST(LineProtocolFuzzTest, NonFiniteSpellingsAreRejectedNotParsed) {
  for (const char* line :
       {"nan", "NaN,1", "1,inf", "-inf,0", "1,Infinity",
        "{\"features\":[nan]}", "{\"features\":[1,-inf]}",
        "{\"features\":[1e999]}", "1e999,2"}) {
    const ServeRequest request = ParseRequestLine(line);
    EXPECT_EQ(request.kind, RequestKind::kInvalid) << line;
    EXPECT_TRUE(InTaxonomy(request.error)) << request.error;
  }
}

TEST(LineProtocolFuzzTest, OverlongLineIsRejectedUpFront) {
  const std::string line(kMaxRequestLineBytes + 1, '5');
  const ServeRequest request = ParseRequestLine(line);
  EXPECT_EQ(request.kind, RequestKind::kInvalid);
  EXPECT_EQ(request.error.rfind("request line exceeds", 0), 0u);
  // One byte under the cap parses (as a giant CSV number -> invalid
  // because it overflows, or valid — either way, no crash).
  CheckParseInvariants(std::string(kMaxRequestLineBytes - 1, '1'));
}

TEST(LineProtocolFuzzTest, EmbeddedNulsDoNotTruncateParsing) {
  const std::string nul_line = std::string("1,2\0,3", 6);
  const ServeRequest request = ParseRequestLine(nul_line);
  // A NUL inside a CSV number is malformed, not an early terminator.
  EXPECT_EQ(request.kind, RequestKind::kInvalid);
  EXPECT_TRUE(InTaxonomy(request.error)) << request.error;
  const std::string nul_json =
      std::string("{\"features\":[1\0]}", 17);
  CheckParseInvariants(nul_json);
}

// ---- binary wire protocol ------------------------------------------

// Every refusal the binary request decoders can produce starts with one
// of these. Two entries ("deadline_ms", "non-finite value at column")
// are deliberately shared with the text taxonomy: the same defect must
// read the same over either protocol.
const char* const kBinaryTaxonomy[] = {
    "bad frame magic",
    "unsupported frame version",
    "frame payload exceeds",
    "score frame payload too short",
    "unknown frame type",
    "\"deadline_ms\" must be a non-negative number",
    "feature payload is not a whole number of",
    "non-finite value at column",
};

bool InBinaryTaxonomy(const std::string& error) {
  for (const char* prefix : kBinaryTaxonomy) {
    if (error.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Runs one raw frame (header + payload bytes) through the same decode
/// sequence the event loop uses and checks the invariants.
void CheckFrameInvariants(const unsigned char* header_bytes,
                          const std::vector<unsigned char>& payload) {
  const wire::FrameHeader header = wire::DecodeHeader(header_bytes);
  const std::string header_error = wire::ValidateRequestHeader(header);
  if (!header_error.empty()) {
    EXPECT_TRUE(InBinaryTaxonomy(header_error)) << header_error;
    // Framing is lost exactly when resynchronization is impossible —
    // bad magic or unknown version, never for a refused payload.
    if (header.magic != wire::kMagic ||
        header.version != wire::kVersion) {
      EXPECT_TRUE(wire::IsFramingLost(header_error)) << header_error;
    } else {
      EXPECT_FALSE(wire::IsFramingLost(header_error)) << header_error;
    }
    return;
  }
  // Validated headers always fit the cap, so the transport's buffering
  // is bounded.
  EXPECT_LE(header.payload_len, wire::kMaxPayloadBytes);
  if (static_cast<wire::FrameType>(header.type) != wire::FrameType::kScore) {
    return;  // control payloads are opaque bytes, nothing to decode
  }
  ASSERT_GE(payload.size(), header.payload_len);
  wire::ScoreFrame frame;
  std::vector<double> features;
  const std::string error =
      wire::DecodeScorePayload(header, payload.data(), frame, features);
  if (!error.empty()) {
    EXPECT_TRUE(InBinaryTaxonomy(error)) << error;
    return;
  }
  for (const double v : features) {
    EXPECT_TRUE(std::isfinite(v)) << "decoder let a non-finite through";
  }
  EXPECT_TRUE(frame.deadline_ms >= 0.0 || frame.deadline_ms == -1.0);
}

TEST(WireFuzzTest, RandomHeadersAndPayloadsNeverCrash) {
  Rng rng(20260808);
  for (int iter = 0; iter < 10000; ++iter) {
    unsigned char header_bytes[wire::kHeaderBytes];
    // Bias toward well-formed prefixes so the walk reaches payload
    // decoding, not just the magic check.
    header_bytes[0] = rng.Index(2) ? wire::kMagic
                                   : static_cast<unsigned char>(rng.Index(256));
    header_bytes[1] = rng.Index(2) ? wire::kVersion
                                   : static_cast<unsigned char>(rng.Index(256));
    header_bytes[2] = static_cast<unsigned char>(rng.Index(8));  // flags
    header_bytes[3] = rng.Index(2) ? static_cast<unsigned char>(1 + rng.Index(4))
                                   : static_cast<unsigned char>(rng.Index(256));
    // Keep declared lengths small enough to materialize the payload.
    const std::uint32_t len = static_cast<std::uint32_t>(rng.Index(128));
    header_bytes[4] = static_cast<unsigned char>(len);
    header_bytes[5] = static_cast<unsigned char>(len >> 8);
    header_bytes[6] = static_cast<unsigned char>(len >> 16);
    header_bytes[7] = static_cast<unsigned char>(len >> 24);
    std::vector<unsigned char> payload(len);
    for (auto& b : payload) b = static_cast<unsigned char>(rng.Index(256));
    CheckFrameInvariants(header_bytes, payload);
  }
}

TEST(WireFuzzTest, MutatedValidFramesNeverCrash) {
  Rng rng(31);
  for (int iter = 0; iter < 10000; ++iter) {
    std::string frame;
    const double features[] = {0.5, -1.25, 3e2};
    const bool f32 = rng.Index(2) == 0;
    const double deadline = rng.Index(2) == 0 ? 50.0 : -1.0;
    wire::AppendScoreRequest(frame, rng.Index(1000), features, 3, f32,
                             deadline);
    const std::size_t mutations = 1 + rng.Index(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      frame[rng.Index(frame.size())] = static_cast<char>(rng.Index(256));
    }
    // A mutation in the length field may declare more payload than the
    // mutated frame carries; feed it what a transport would have read.
    const auto* bytes = reinterpret_cast<const unsigned char*>(frame.data());
    const wire::FrameHeader header = wire::DecodeHeader(bytes);
    std::vector<unsigned char> payload(
        bytes + wire::kHeaderBytes,
        bytes + frame.size());
    if (header.payload_len <= wire::kMaxPayloadBytes) {
      // Over-cap declarations are refused at the header, so only
      // in-cap payloads ever need to exist.
      payload.resize(
          std::max<std::size_t>(payload.size(), header.payload_len));
    }
    CheckFrameInvariants(bytes, payload);
  }
}

TEST(WireFuzzTest, ScoreRequestRoundTripsExactly) {
  const double features[] = {0.5, -1.25, 3e2, 1e-300};
  std::string frame;
  wire::AppendScoreRequest(frame, 77, features, 4, /*f32=*/false,
                           /*deadline_ms=*/12.5);
  const auto* bytes = reinterpret_cast<const unsigned char*>(frame.data());
  const wire::FrameHeader header = wire::DecodeHeader(bytes);
  ASSERT_EQ(wire::ValidateRequestHeader(header), "");
  wire::ScoreFrame decoded;
  std::vector<double> out;
  ASSERT_EQ(wire::DecodeScorePayload(header, bytes + wire::kHeaderBytes,
                                     decoded, out),
            "");
  EXPECT_EQ(decoded.id, 77u);
  EXPECT_EQ(decoded.deadline_ms, 12.5);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], features[i]) << "f64 features must round-trip bitwise";
  }
  // f32 widens to the rounded value, not the original.
  frame.clear();
  wire::AppendScoreRequest(frame, 1, features, 4, /*f32=*/true);
  const auto* b32 = reinterpret_cast<const unsigned char*>(frame.data());
  const wire::FrameHeader h32 = wire::DecodeHeader(b32);
  ASSERT_EQ(wire::ValidateRequestHeader(h32), "");
  ASSERT_EQ(wire::DecodeScorePayload(h32, b32 + wire::kHeaderBytes, decoded,
                                     out),
            "");
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], static_cast<double>(static_cast<float>(features[i])));
  }
}

TEST(WireFuzzTest, NonFiniteAndMisalignedBinaryPayloadsAreRefused) {
  // NaN feature: same taxonomy line as the text protocol.
  const double bad[] = {1.0, std::nan("")};
  std::string frame;
  wire::AppendScoreRequest(frame, 5, bad, 2);
  const auto* bytes = reinterpret_cast<const unsigned char*>(frame.data());
  wire::FrameHeader header = wire::DecodeHeader(bytes);
  wire::ScoreFrame decoded;
  std::vector<double> out;
  EXPECT_EQ(wire::DecodeScorePayload(header, bytes + wire::kHeaderBytes,
                                     decoded, out),
            "non-finite value at column 2");
  // A payload that is not a whole number of values.
  frame.clear();
  wire::AppendHeader(frame, wire::FrameType::kScore, 0, 8 + 12);
  frame.append(20, '\0');
  const auto* misaligned = reinterpret_cast<const unsigned char*>(frame.data());
  header = wire::DecodeHeader(misaligned);
  ASSERT_EQ(wire::ValidateRequestHeader(header), "");
  EXPECT_EQ(wire::DecodeScorePayload(header, misaligned + wire::kHeaderBytes,
                                     decoded, out),
            "feature payload is not a whole number of 64-bit values");
  // Negative deadline.
  frame.clear();
  const double row[] = {1.0};
  wire::AppendScoreRequest(frame, 5, row, 1, false, 0.0);
  frame[2] |= wire::kFlagDeadline;
  // Overwrite the deadline field (bytes 8..16 of the payload) with -1.
  const double negative = -1.0;
  std::memcpy(frame.data() + wire::kHeaderBytes + 8, &negative, 8);
  const auto* nd = reinterpret_cast<const unsigned char*>(frame.data());
  header = wire::DecodeHeader(nd);
  ASSERT_EQ(wire::ValidateRequestHeader(header), "");
  EXPECT_EQ(wire::DecodeScorePayload(header, nd + wire::kHeaderBytes, decoded,
                                     out),
            "\"deadline_ms\" must be a non-negative number");
}

TEST(WireFuzzTest, ResponsesRoundTripThroughDecodeResponse) {
  std::string out;
  wire::AppendScoreResponse(out, 9, 0.123456789, /*degraded=*/true);
  wire::AppendErrorResponse(out, 3, "expected 2 features, got 3");
  wire::AppendTextResponse(out, "OK reloaded version 2");
  const auto* p = reinterpret_cast<const unsigned char*>(out.data());
  std::size_t at = 0;
  wire::DecodedResponse r;
  wire::FrameHeader h = wire::DecodeHeader(p + at);
  at += wire::kHeaderBytes;
  ASSERT_EQ(wire::DecodeResponse(h, p + at, r), "");
  EXPECT_EQ(r.type, wire::FrameType::kScoreOk);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.id, 9u);
  EXPECT_EQ(r.proba, 0.123456789);
  at += h.payload_len;
  h = wire::DecodeHeader(p + at);
  at += wire::kHeaderBytes;
  ASSERT_EQ(wire::DecodeResponse(h, p + at, r), "");
  EXPECT_EQ(r.type, wire::FrameType::kError);
  EXPECT_EQ(r.id, 3u);
  EXPECT_EQ(r.text, "expected 2 features, got 3");
  at += h.payload_len;
  h = wire::DecodeHeader(p + at);
  at += wire::kHeaderBytes;
  ASSERT_EQ(wire::DecodeResponse(h, p + at, r), "");
  EXPECT_EQ(r.type, wire::FrameType::kText);
  EXPECT_EQ(r.text, "OK reloaded version 2");
  EXPECT_EQ(at + h.payload_len, out.size());
}

}  // namespace
}  // namespace spe
