// Fuzz-ish property test for the serve line protocol: 10k seeded random
// byte strings — embedded NULs, overlong lines, malformed JSON/CSV,
// NaN/Inf spellings — go through ParseRequestLine. The parser must
// never crash or trip UB (run this under SPE_SANITIZE=address/
// undefined/thread builds — it carries the `sanitize` ctest label), and
// every rejection must land in the documented error taxonomy, so a
// refactor cannot silently invent new failure modes mid-protocol.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "spe/common/rng.h"
#include "spe/serve/line_protocol.h"

namespace spe {
namespace {

// Every error ParseRequestLine can produce starts with one of these.
// Adding a message is fine (extend the list); renaming one is a
// wire-visible behaviour change that must be deliberate.
const char* const kErrorTaxonomy[] = {
    "expected '{'",
    "expected object key",
    "expected ':'",
    "\"features\" must be an array",
    "bad number in \"features\"",
    "non-finite value in \"features\"",
    "expected ',' or ']' in \"features\"",
    "\"deadline_ms\" must be a non-negative number",
    "unterminated string",
    "unsupported value for key",
    "\"id\" longer than",
    "missing \"features\"",
    "expected ',' or '}'",
    "bad number at column",
    "non-finite value at column",
    "expected ','",
    "request line exceeds",
};

bool InTaxonomy(const std::string& error) {
  for (const char* prefix : kErrorTaxonomy) {
    if (error.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void CheckParseInvariants(std::string_view line) {
  const ServeRequest request = ParseRequestLine(line);
  switch (request.kind) {
    case RequestKind::kScore:
      EXPECT_TRUE(request.error.empty());
      for (const double v : request.features) {
        EXPECT_TRUE(std::isfinite(v)) << "parser let a non-finite through";
      }
      EXPECT_LE(request.id.size(), kMaxIdBytes + 2);  // quotes included
      break;
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kEmpty:
      EXPECT_TRUE(request.error.empty());
      EXPECT_TRUE(request.features.empty());
      break;
    case RequestKind::kReload:
      EXPECT_TRUE(request.error.empty());
      EXPECT_TRUE(request.features.empty());
      // The path is verbatim operator input but never contains the
      // surrounding whitespace.
      if (!request.reload_path.empty()) {
        EXPECT_FALSE(
            std::isspace(static_cast<unsigned char>(request.reload_path.front())));
        EXPECT_FALSE(
            std::isspace(static_cast<unsigned char>(request.reload_path.back())));
      }
      break;
    case RequestKind::kInvalid:
      EXPECT_FALSE(request.error.empty());
      EXPECT_TRUE(InTaxonomy(request.error))
          << "error outside the documented taxonomy: " << request.error;
      // The error response must render without throwing, in either
      // shape.
      EXPECT_FALSE(FormatErrorResponse(request, request.error).empty());
      break;
  }
}

TEST(LineProtocolFuzzTest, RandomBytesNeverCrashAndErrorsStayInTaxonomy) {
  Rng rng(20260807);
  // Byte palette biased toward protocol-significant characters so the
  // random walk actually reaches deep parser states, plus raw bytes
  // (including NUL) for the torture component.
  const std::string palette =
      "{}[]:,\"0123456789.eE+-naifNAIFxy \t_features id deadline_ms";
  for (int iter = 0; iter < 10000; ++iter) {
    const std::size_t len = rng.Index(161);
    std::string line;
    line.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.Index(5) == 0) {
        line.push_back(static_cast<char>(rng.Index(256)));
      } else {
        line.push_back(palette[rng.Index(palette.size())]);
      }
    }
    CheckParseInvariants(line);
  }
}

TEST(LineProtocolFuzzTest, MutatedValidRequestsNeverCrash) {
  Rng rng(7);
  const std::string seed_requests[] = {
      "{\"id\":17,\"features\":[0.5,-1.25,3e2],\"deadline_ms\":50}",
      "{\"id\":\"abc\",\"features\":[1,2,3]}",
      "0.5,1.25,-3,4e-2",
      "STATS",
      "!stats",
  };
  for (int iter = 0; iter < 10000; ++iter) {
    std::string line = seed_requests[rng.Index(std::size(seed_requests))];
    // 1-4 random point mutations: overwrite, insert, or delete.
    const std::size_t mutations = 1 + rng.Index(4);
    for (std::size_t m = 0; m < mutations && !line.empty(); ++m) {
      const std::size_t pos = rng.Index(line.size());
      switch (rng.Index(3)) {
        case 0:
          line[pos] = static_cast<char>(rng.Index(256));
          break;
        case 1:
          line.insert(line.begin() + pos,
                      static_cast<char>(rng.Index(256)));
          break;
        default:
          line.erase(line.begin() + pos);
          break;
      }
    }
    CheckParseInvariants(line);
  }
}

TEST(LineProtocolFuzzTest, NonFiniteSpellingsAreRejectedNotParsed) {
  for (const char* line :
       {"nan", "NaN,1", "1,inf", "-inf,0", "1,Infinity",
        "{\"features\":[nan]}", "{\"features\":[1,-inf]}",
        "{\"features\":[1e999]}", "1e999,2"}) {
    const ServeRequest request = ParseRequestLine(line);
    EXPECT_EQ(request.kind, RequestKind::kInvalid) << line;
    EXPECT_TRUE(InTaxonomy(request.error)) << request.error;
  }
}

TEST(LineProtocolFuzzTest, OverlongLineIsRejectedUpFront) {
  const std::string line(kMaxRequestLineBytes + 1, '5');
  const ServeRequest request = ParseRequestLine(line);
  EXPECT_EQ(request.kind, RequestKind::kInvalid);
  EXPECT_EQ(request.error.rfind("request line exceeds", 0), 0u);
  // One byte under the cap parses (as a giant CSV number -> invalid
  // because it overflows, or valid — either way, no crash).
  CheckParseInvariants(std::string(kMaxRequestLineBytes - 1, '1'));
}

TEST(LineProtocolFuzzTest, EmbeddedNulsDoNotTruncateParsing) {
  const std::string nul_line = std::string("1,2\0,3", 6);
  const ServeRequest request = ParseRequestLine(nul_line);
  // A NUL inside a CSV number is malformed, not an early terminator.
  EXPECT_EQ(request.kind, RequestKind::kInvalid);
  EXPECT_TRUE(InTaxonomy(request.error)) << request.error;
  const std::string nul_json =
      std::string("{\"features\":[1\0]}", 17);
  CheckParseInvariants(nul_json);
}

}  // namespace
}  // namespace spe
