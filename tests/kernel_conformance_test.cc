// Differential conformance suite for the v2 inference kernels
// (spe/kernels/flat_forest.h). Every ensemble scored here runs through
// four paths — reference loop, flat f64 scalar, flat f64 with the
// vectorized descent, and the uint8 binned lowering — plus the opt-in
// f32 mode, and the paths are compared against each other:
//
//   flat scalar  == reference   byte-for-byte (memcmp)
//   flat SIMD    == reference   byte-for-byte (the vectorized walk
//                               computes the scalar walk's exact leaf
//                               indices; accumulation is shared)
//   flat binned  == reference   byte-for-byte (bin-rank descent is the
//                               same comparison in the feature's order;
//                               leaves accumulate in double)
//   f32 SIMD     == f32 scalar  byte-for-byte
//   f32          ~~ reference   AUC-parity + bounded probability error
//                               (float thresholds may route a value
//                               that falls between t and float(t) the
//                               other way, so no bit claim)
//
// The matrix covers randomized ensembles across tree counts, depths,
// NaN patterns and the block-boundary row counts 0/1/63/64/65/10k. On
// hosts whose build carries a SIMD backend, the scalar fallback is
// exercised explicitly via SetSimdEnabled(false); on scalar builds the
// "SIMD" runs exercise the same dispatch with the fallback walk, so all
// four paths are covered on every build. Registered under both the
// `kernel` and `sanitize` ctest labels: the intrinsic and binning code
// must stay ASan/UBSan/TSan-clean.

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/parallel.h"
#include "spe/common/rng.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/io/model_io.h"
#include "spe/kernels/flat_forest.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Every test leaves the process-wide knobs where it found them.
class KernelConformanceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    kernels::SetFlatKernelEnabled(true);
    kernels::SetScoreMode(kernels::ScoreMode::kF64);
    kernels::SetSimdEnabled(true);
    SetNumThreads(0);
  }
};

enum class NanPattern { kNone, kSparse, kAllNanRows, kNanColumn };

// Randomized scoring batch in `features` dimensions (wider than the
// 2-D training blobs exercise only the first two feature columns, but
// widen the gather strides), with labels for AUC parity and the chosen
// hostile-NaN shape.
Dataset RandomBatch(std::size_t rows, std::size_t features,
                    std::uint64_t seed, NanPattern pattern) {
  Rng rng(seed);
  Dataset data(features);
  std::vector<double> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = rng.Uniform() < 0.25 ? 1 : 0;
    const double shift = label == 1 ? 1.5 : 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = rng.Gaussian(shift, 1.0);
    }
    data.AddRow(row, label);
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  switch (pattern) {
    case NanPattern::kNone:
      break;
    case NanPattern::kSparse:
      for (std::size_t i = 0; i < rows; i += 7) data.Set(i, 0, nan);
      for (std::size_t i = 3; i < rows; i += 11) data.Set(i, 1 % features, nan);
      break;
    case NanPattern::kAllNanRows:
      for (std::size_t i = 0; i < rows; i += 5) {
        for (std::size_t f = 0; f < features; ++f) data.Set(i, f, nan);
      }
      break;
    case NanPattern::kNanColumn:
      for (std::size_t i = 0; i < rows; ++i) data.Set(i, 0, nan);
      break;
  }
  return data;
}

// A fitted SPE forest of `trees` depth-`depth` trees — the randomized
// ensemble under test. Seeds flow into training so every (trees, depth)
// cell scores a genuinely different forest.
SelfPacedEnsemble RandomForestModel(int trees, int depth,
                                    std::uint64_t seed) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = trees;
  DecisionTreeConfig tree;
  tree.max_depth = depth;
  SelfPacedEnsemble model(config, std::make_unique<DecisionTree>(tree));
  const Dataset train = OverlappingBlobs(700, 120, seed);
  model.Fit(train);
  return model;
}

// One scoring pass per kernel path, all collected with the same model
// and batch.
struct PathScores {
  std::vector<double> reference;
  std::vector<double> scalar;      // f64, vectorized descent off
  std::vector<double> simd;        // f64, vectorized descent on
  std::vector<double> binned;      // uint8 descent (f64 when unavailable)
  std::vector<double> f32_scalar;  // f32, vectorized descent off
  std::vector<double> f32_simd;    // f32, vectorized descent on
};

PathScores ScoreAllPaths(const Classifier& model, const Dataset& batch) {
  PathScores out;
  kernels::SetFlatKernelEnabled(false);
  out.reference = model.PredictProba(batch);
  kernels::SetFlatKernelEnabled(true);

  kernels::SetScoreMode(kernels::ScoreMode::kF64);
  kernels::SetSimdEnabled(false);
  out.scalar = model.PredictProba(batch);
  kernels::SetSimdEnabled(true);
  out.simd = model.PredictProba(batch);

  kernels::SetScoreMode(kernels::ScoreMode::kBinned);
  out.binned = model.PredictProba(batch);

  kernels::SetScoreMode(kernels::ScoreMode::kF32);
  kernels::SetSimdEnabled(false);
  out.f32_scalar = model.PredictProba(batch);
  kernels::SetSimdEnabled(true);
  out.f32_simd = model.PredictProba(batch);

  kernels::SetScoreMode(kernels::ScoreMode::kF64);
  return out;
}

// The conformance contract over one model × batch. The f32 bound is
// loose by design: a row whose feature falls between a double threshold
// and its float image can legitimately take the other branch, but with
// these fixed seeds none does, and the probability error is pure
// accumulation rounding.
void ExpectConformance(const Classifier& model, const Dataset& batch,
                       const char* what) {
  const PathScores p = ScoreAllPaths(model, batch);
  EXPECT_TRUE(SameBytes(p.reference, p.scalar)) << what << ": scalar";
  EXPECT_TRUE(SameBytes(p.reference, p.simd)) << what << ": simd";
  EXPECT_TRUE(SameBytes(p.reference, p.binned)) << what << ": binned";
  EXPECT_TRUE(SameBytes(p.f32_scalar, p.f32_simd)) << what << ": f32 simd";
  ASSERT_EQ(p.f32_scalar.size(), p.reference.size()) << what;
  for (std::size_t i = 0; i < p.reference.size(); ++i) {
    EXPECT_NEAR(p.f32_scalar[i], p.reference[i], 5e-5)
        << what << ": f32 row " << i;
    EXPECT_GE(p.f32_scalar[i], 0.0);
    EXPECT_LE(p.f32_scalar[i], 1.0);
  }
}

// Block-boundary row counts: 0 rows, 1 row, one row short of a block,
// exactly one block, one row into the second block, and a large batch
// that spans many parallel grains.
TEST_F(KernelConformanceTest, RowCountMatrix) {
  const SelfPacedEnsemble model = RandomForestModel(5, 6, 101);
  for (const std::size_t rows :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{10000}}) {
    const Dataset batch = RandomBatch(rows, 2, 200 + rows, NanPattern::kSparse);
    ExpectConformance(model, batch,
                      ("rows=" + std::to_string(rows)).c_str());
  }
}

// Randomized ensembles across tree counts and depths. Depth 10 over
// 2-D data exceeds the binned capacity (more than kBinnedMaxCuts
// distinct thresholds per feature) — those cells exercise the silent
// binned→f64 fallback, shallower cells the real uint8 descent.
TEST_F(KernelConformanceTest, TreeDepthMatrix) {
  std::uint64_t seed = 300;
  for (const int trees : {1, 4, 10}) {
    for (const int depth : {1, 4, 10}) {
      const SelfPacedEnsemble model = RandomForestModel(trees, depth, ++seed);
      const Dataset batch = RandomBatch(400, 2, seed * 7, NanPattern::kSparse);
      ExpectConformance(
          model, batch,
          ("trees=" + std::to_string(trees) + " depth=" + std::to_string(depth))
              .c_str());
    }
  }
}

TEST_F(KernelConformanceTest, NanPatternMatrix) {
  const SelfPacedEnsemble model = RandomForestModel(6, 5, 400);
  int i = 0;
  for (const NanPattern pattern :
       {NanPattern::kNone, NanPattern::kSparse, NanPattern::kAllNanRows,
        NanPattern::kNanColumn}) {
    const Dataset batch = RandomBatch(500, 2, 500 + i, pattern);
    ExpectConformance(model, batch, ("nan pattern " + std::to_string(i)).c_str());
    ++i;
  }
}

// GBDT members bin their training features, so their recorded
// thresholds are quantile boundaries — few per feature. This is the
// workload the binned lowering is really for: assert it actually
// engages (no fallback) and conforms.
TEST_F(KernelConformanceTest, GbdtEnsembleConformsAndLowersBinned) {
  const Dataset train = OverlappingBlobs(800, 110, 600);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  GbdtConfig gbdt;
  gbdt.boost_rounds = 10;
  SelfPacedEnsemble model(config, std::make_unique<Gbdt>(gbdt));
  model.Fit(train);

  const kernels::FlatForest* forest = model.members().flat_kernel();
  ASSERT_NE(forest, nullptr);
  EXPECT_TRUE(forest->BinnedAvailable());
  kernels::SetScoreMode(kernels::ScoreMode::kBinned);
  EXPECT_STREQ("flat_binned", kernels::ActiveKernel(model));
  kernels::SetScoreMode(kernels::ScoreMode::kF64);

  ExpectConformance(model, RandomBatch(700, 2, 601, NanPattern::kSparse),
                    "spe over gbdt");
}

// Capacity fallback is observable, not just silent: one unbounded tree
// over a large sample records far more than kBinnedMaxCuts distinct
// midpoint thresholds per feature, so the program cannot lower — binned
// mode reports the f64 path and still scores identically. (An SPE
// forest of depth-10 members does NOT overflow: undersampled members
// are small and their midpoints dedupe, which TreeDepthMatrix covers
// on the lowering side.)
TEST_F(KernelConformanceTest, BinnedCapacityFallback) {
  const Dataset train = OverlappingBlobs(2500, 2500, 700);
  DecisionTreeConfig config;
  config.max_depth = 30;
  auto tree = std::make_unique<DecisionTree>(config);
  tree->Fit(train);
  VotingEnsemble members;
  members.Add(std::move(tree));
  const VotingEnsembleModel model(std::move(members));
  const auto* scorable = dynamic_cast<const kernels::FlatScorable*>(&model);
  ASSERT_NE(scorable, nullptr);
  const kernels::FlatForest* forest = scorable->flat_kernel();
  ASSERT_NE(forest, nullptr);
  ASSERT_FALSE(forest->BinnedAvailable());
  kernels::SetScoreMode(kernels::ScoreMode::kBinned);
  EXPECT_STREQ("flat", kernels::ActiveKernel(model));

  const Dataset batch = RandomBatch(300, 2, 701, NanPattern::kSparse);
  const std::vector<double> binned = model.PredictProba(batch);
  kernels::SetFlatKernelEnabled(false);
  const std::vector<double> reference = model.PredictProba(batch);
  EXPECT_TRUE(SameBytes(reference, binned));
}

// Prefix scoring (the serve layer's degradation knob) conforms in every
// mode at k = 1, mid, all.
TEST_F(KernelConformanceTest, PrefixConformance) {
  const SelfPacedEnsemble model = RandomForestModel(8, 5, 800);
  const Dataset batch = RandomBatch(300, 2, 801, NanPattern::kSparse);
  for (const std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    kernels::SetFlatKernelEnabled(false);
    const std::vector<double> reference = model.PredictProbaPrefix(batch, k);
    kernels::SetFlatKernelEnabled(true);
    for (const kernels::ScoreMode mode :
         {kernels::ScoreMode::kF64, kernels::ScoreMode::kBinned}) {
      kernels::SetScoreMode(mode);
      EXPECT_TRUE(SameBytes(reference, model.PredictProbaPrefix(batch, k)))
          << "mode=" << kernels::ScoreModeName(mode) << " k=" << k;
    }
    kernels::SetScoreMode(kernels::ScoreMode::kF32);
    const std::vector<double> f32 = model.PredictProbaPrefix(batch, k);
    ASSERT_EQ(f32.size(), reference.size());
    for (std::size_t i = 0; i < f32.size(); ++i) {
      EXPECT_NEAR(f32[i], reference[i], 5e-5) << "f32 prefix k=" << k;
    }
    kernels::SetScoreMode(kernels::ScoreMode::kF64);
  }
}

// Thread-count invariance per mode: blocks write disjoint ranges with
// identical arithmetic, so 1 vs 8 threads must agree to the byte even
// in f32.
TEST_F(KernelConformanceTest, ThreadCountInvariance) {
  const SelfPacedEnsemble model = RandomForestModel(6, 6, 900);
  const Dataset batch = RandomBatch(2000, 2, 901, NanPattern::kSparse);
  for (const kernels::ScoreMode mode :
       {kernels::ScoreMode::kF64, kernels::ScoreMode::kF32,
        kernels::ScoreMode::kBinned}) {
    kernels::SetScoreMode(mode);
    SetNumThreads(1);
    const std::vector<double> one = model.PredictProba(batch);
    SetNumThreads(8);
    const std::vector<double> eight = model.PredictProba(batch);
    EXPECT_TRUE(SameBytes(one, eight))
        << "mode=" << kernels::ScoreModeName(mode);
    SetNumThreads(0);
  }
}

// AUC parity for the f32 mode on a batch large enough for the metric to
// be meaningful. Float narrowing can reorder genuinely near-tied
// probabilities, so AUCPRC on 10k random rows agrees to ~1e-5, not to
// the 1e-6 the golden checkerboard suite pins (where the score
// distribution is far from tied). Threshold metrics (F1/G-mean/MCC)
// only move if a probability crosses 0.5, which none does here.
TEST_F(KernelConformanceTest, F32AucParity) {
  const SelfPacedEnsemble model = RandomForestModel(10, 6, 1000);
  const Dataset batch = RandomBatch(10000, 2, 1001, NanPattern::kNone);

  kernels::SetFlatKernelEnabled(false);
  const ScoreSummary f64 = Evaluate(batch.labels(), model.PredictProba(batch));
  kernels::SetFlatKernelEnabled(true);
  kernels::SetScoreMode(kernels::ScoreMode::kF32);
  const ScoreSummary f32 = Evaluate(batch.labels(), model.PredictProba(batch));

  EXPECT_NEAR(f64.aucprc, f32.aucprc, 1e-5);
  EXPECT_NEAR(f64.f1, f32.f1, 1e-6);
  EXPECT_NEAR(f64.gmean, f32.gmean, 1e-6);
  EXPECT_NEAR(f64.mcc, f32.mcc, 1e-6);
}

// The runtime SIMD switch: on a SIMD build both settings must produce
// identical bytes (the fallback walk is the specification); on a scalar
// build the switch is inert and SimdEnabled() stays false. Either way
// the scalar walk ran under this binary's dispatch.
TEST_F(KernelConformanceTest, ScalarFallbackMatchesSimd) {
  const SelfPacedEnsemble model = RandomForestModel(6, 6, 1100);
  const Dataset batch = RandomBatch(500, 2, 1101, NanPattern::kSparse);

  kernels::SetSimdEnabled(true);
  const bool simd_build = kernels::SimdEnabled();
  const std::vector<double> with_simd = model.PredictProba(batch);
  kernels::SetSimdEnabled(false);
  EXPECT_FALSE(kernels::SimdEnabled());
  const std::vector<double> without = model.PredictProba(batch);
  EXPECT_TRUE(SameBytes(with_simd, without));

  if (!simd_build) {
    EXPECT_STREQ("scalar", kernels::SimdIsa());
  } else {
    EXPECT_STRNE("scalar", kernels::SimdIsa());
  }
}

// Mode knob plumbing: name round-trips and rejection of unknown names.
TEST_F(KernelConformanceTest, ScoreModeParsing) {
  kernels::ScoreMode mode = kernels::ScoreMode::kF64;
  EXPECT_TRUE(kernels::ParseScoreMode("f32", &mode));
  EXPECT_EQ(mode, kernels::ScoreMode::kF32);
  EXPECT_TRUE(kernels::ParseScoreMode("binned", &mode));
  EXPECT_EQ(mode, kernels::ScoreMode::kBinned);
  EXPECT_TRUE(kernels::ParseScoreMode("f64", &mode));
  EXPECT_EQ(mode, kernels::ScoreMode::kF64);
  EXPECT_FALSE(kernels::ParseScoreMode("f16", &mode));
  EXPECT_EQ(mode, kernels::ScoreMode::kF64);
  for (const kernels::ScoreMode m :
       {kernels::ScoreMode::kF64, kernels::ScoreMode::kF32,
        kernels::ScoreMode::kBinned}) {
    kernels::ScoreMode parsed = kernels::ScoreMode::kF64;
    EXPECT_TRUE(kernels::ParseScoreMode(kernels::ScoreModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
}

}  // namespace
}  // namespace spe
