// Sidecar cache (`.spmc`) behaviour: a valid sidecar loads the same
// bytes the parser would, a stale or corrupt one is detected and falls
// back to the parser, and the cache never changes observable values —
// only load speed.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/data/csv.h"
#include "spe/data/dataset.h"
#include "spe/data/mmap_cache.h"
#include "tests/test_util.h"

namespace spe {
namespace {

namespace fs = std::filesystem;

using ::spe::testing::OverlappingBlobs;

class MmapCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("spe_mmap_cache_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    csv_path_ = (dir_ / "data.csv").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteBlobsCsv(std::uint64_t seed, std::size_t majority = 40,
                            std::size_t minority = 10) {
    const Dataset data = OverlappingBlobs(majority, minority, seed);
    SaveCsv(data, csv_path_);
    return csv_path_;
  }

  fs::path dir_;
  std::string csv_path_;
};

void ExpectSameValues(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t j = 0; j < a.num_features(); ++j) {
    const std::span<const double> ca = a.Column(j).values;
    const std::span<const double> cb = b.Column(j).values;
    EXPECT_EQ(std::memcmp(ca.data(), cb.data(), ca.size() * sizeof(double)),
              0)
        << "column " << j;
  }
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.Label(i), b.Label(i)) << "row " << i;
  }
}

TEST_F(MmapCacheTest, SidecarPathAppendsExtension) {
  EXPECT_EQ(SidecarPathFor("/tmp/x/train.csv"), "/tmp/x/train.csv.spmc");
}

TEST_F(MmapCacheTest, AbsentBeforeFirstCachedLoad) {
  WriteBlobsCsv(1);
  const SidecarInfo info = InspectSidecar(csv_path_, 2);
  EXPECT_EQ(info.status, SidecarStatus::kAbsent);
  EXPECT_STREQ(SidecarStatusName(info.status), "absent");
}

TEST_F(MmapCacheTest, ColdLoadPublishesValidSidecar) {
  WriteBlobsCsv(2);
  const Dataset parsed = LoadCsv(csv_path_, 2);
  const Dataset cold = LoadCsvCached(csv_path_, 2);
  ExpectSameValues(parsed, cold);

  const SidecarInfo info = InspectSidecar(csv_path_, 2);
  EXPECT_EQ(info.status, SidecarStatus::kValid);
  EXPECT_STREQ(SidecarStatusName(info.status), "valid");
  EXPECT_EQ(info.num_rows, parsed.num_rows());
  EXPECT_EQ(info.num_features, parsed.num_features());
  EXPECT_TRUE(fs::exists(info.sidecar_path));
}

TEST_F(MmapCacheTest, WarmLoadIsValueIdenticalToParse) {
  WriteBlobsCsv(3);
  const Dataset cold = LoadCsvCached(csv_path_, 2);
  ASSERT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kValid);
  const Dataset warm = LoadCsvCached(csv_path_, 2);
  ExpectSameValues(cold, warm);
  // The warm copy really is backed by the sidecar mapping.
  EXPECT_TRUE(warm.matrix().mapped());
}

TEST_F(MmapCacheTest, RewrittenSourceIsDetectedAsStale) {
  WriteBlobsCsv(4);
  (void)LoadCsvCached(csv_path_, 2);
  ASSERT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kValid);

  // Rewrite the CSV with different content (different row count, so the
  // size fingerprint must differ even on coarse-mtime filesystems).
  WriteBlobsCsv(5, 50, 12);
  EXPECT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kStale);

  // A cached load falls back to the parser, returns the new data, and
  // republishes a fresh sidecar.
  const Dataset parsed = LoadCsv(csv_path_, 2);
  const Dataset reloaded = LoadCsvCached(csv_path_, 2);
  ExpectSameValues(parsed, reloaded);
  EXPECT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kValid);
}

TEST_F(MmapCacheTest, MismatchedLabelColumnIsStale) {
  // Sidecars remember which column was the label; asking for a different
  // split must not reuse them.
  const Dataset data = OverlappingBlobs(30, 8, 6);
  SaveCsv(data, csv_path_);
  (void)LoadCsvCached(csv_path_, 2);
  ASSERT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kValid);
  EXPECT_EQ(InspectSidecar(csv_path_, 0).status, SidecarStatus::kStale);
}

TEST_F(MmapCacheTest, CorruptSidecarFallsBackToParser) {
  WriteBlobsCsv(7);
  const Dataset parsed = LoadCsv(csv_path_, 2);
  (void)LoadCsvCached(csv_path_, 2);
  const std::string sidecar = SidecarPathFor(csv_path_);
  ASSERT_TRUE(fs::exists(sidecar));

  // Flip one byte in the middle of the column payload: the CRC must
  // catch it and the load must come from the parser, value-identical.
  {
    std::fstream f(sidecar,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 64);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  EXPECT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kCorrupt);
  const Dataset loaded = LoadCsvCached(csv_path_, 2);
  ExpectSameValues(parsed, loaded);
}

TEST_F(MmapCacheTest, TruncatedSidecarIsCorruptNotFatal) {
  WriteBlobsCsv(8);
  (void)LoadCsvCached(csv_path_, 2);
  const std::string sidecar = SidecarPathFor(csv_path_);
  fs::resize_file(sidecar, 20);  // shorter than the fixed header
  EXPECT_EQ(InspectSidecar(csv_path_, 2).status, SidecarStatus::kCorrupt);
  const Dataset parsed = LoadCsv(csv_path_, 2);
  const Dataset loaded = LoadCsvCached(csv_path_, 2);
  ExpectSameValues(parsed, loaded);
}

TEST_F(MmapCacheTest, MappedDatasetSurvivesSidecarUnlink) {
  // mmap keeps the pages alive after the file is removed — a dataset
  // loaded from cache must not depend on the sidecar's directory entry.
  WriteBlobsCsv(9);
  (void)LoadCsvCached(csv_path_, 2);
  const Dataset warm = LoadCsvCached(csv_path_, 2);
  ASSERT_TRUE(warm.matrix().mapped());
  fs::remove(SidecarPathFor(csv_path_));
  double sum = 0.0;
  for (std::size_t j = 0; j < warm.num_features(); ++j) {
    for (double v : warm.Column(j).values) sum += v;
  }
  EXPECT_TRUE(std::isfinite(sum));
}

TEST_F(MmapCacheTest, WriteSidecarRoundTripsExplicitly) {
  const Dataset data = OverlappingBlobs(25, 5, 10);
  SaveCsv(data, csv_path_);
  ASSERT_TRUE(WriteSidecar(data, csv_path_, 2));
  const SidecarInfo info = InspectSidecar(csv_path_, 2);
  EXPECT_EQ(info.status, SidecarStatus::kValid);
  const Dataset loaded = LoadCsvCached(csv_path_, 2);
  ExpectSameValues(data, loaded);
}

}  // namespace
}  // namespace spe
