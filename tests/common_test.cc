#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/check.h"
#include "spe/common/crc32.h"
#include "spe/common/fault.h"
#include "spe/common/math.h"
#include "spe/common/parallel.h"
#include "spe/common/parse.h"
#include "spe/common/rng.h"
#include "spe/common/stats.h"

namespace spe {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.Uniform() == b.Uniform());
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, IndexWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(17), 17u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementCoversUniformly) {
  // Every index should be picked roughly count/n of the time.
  Rng rng(11);
  std::vector<int> hits(20, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t v : rng.SampleWithoutReplacement(20, 5)) ++hits[v];
  }
  for (int h : hits) {
    EXPECT_GT(h, trials / 4 * 0.7);
    EXPECT_LT(h, trials / 4 * 1.3);
  }
}

TEST(RngTest, SampleWithReplacementSizeAndRange) {
  Rng rng(5);
  const auto sample = rng.SampleWithReplacement(3, 100);
  EXPECT_EQ(sample.size(), 100u);
  for (std::size_t v : sample) EXPECT_LT(v, 3u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's next values.
  Rng parent_copy(9);
  (void)parent_copy.Fork();
  EXPECT_DOUBLE_EQ(parent.Uniform(), parent_copy.Uniform());
  double diff = 0.0;
  for (int i = 0; i < 10; ++i) diff += std::abs(child.Uniform() - parent.Uniform());
  EXPECT_GT(diff, 1e-9);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  std::vector<double> values(20000);
  for (double& v : values) v = rng.Gaussian(2.0, 3.0);
  EXPECT_NEAR(Mean(values), 2.0, 0.1);
  EXPECT_NEAR(StdDev(values), 3.0, 0.1);
}

TEST(StatsTest, MeanAndStdDev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
}

TEST(StatsTest, AggregateSingleValue) {
  const MeanStd agg = Aggregate({7.0});
  EXPECT_DOUBLE_EQ(agg.mean, 7.0);
  EXPECT_DOUBLE_EQ(agg.std, 0.0);
}

TEST(MathTest, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(MathTest, HalfLogOddsSymmetry) {
  EXPECT_DOUBLE_EQ(HalfLogOdds(0.5), 0.0);
  EXPECT_NEAR(HalfLogOdds(0.9), -HalfLogOdds(0.1), 1e-12);
  // Clamped: extreme inputs stay finite.
  EXPECT_TRUE(std::isfinite(HalfLogOdds(0.0)));
  EXPECT_TRUE(std::isfinite(HalfLogOdds(1.0)));
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  ParallelFor(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, OffsetRange) {
  std::atomic<long> sum = 0;
  ParallelFor(10, 20, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelTest, WorkerExceptionPropagatesToCaller) {
  // Large range so the parallel (multi-thread) regime is exercised; an
  // uncaught exception there used to std::terminate the process.
  EXPECT_THROW(
      ParallelFor(0, 10000,
                  [](std::size_t i) {
                    if (i == 5678) throw std::runtime_error("worker boom");
                  }),
      std::runtime_error);
}

TEST(ParallelTest, SerialRegimeExceptionAlsoPropagates) {
  EXPECT_THROW(ParallelFor(0, 2,
                           [](std::size_t) {
                             throw std::invalid_argument("serial boom");
                           }),
               std::invalid_argument);
}

TEST(ParallelGrainTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(20000);
  for (auto& h : hits) h = 0;
  ParallelForGrain(0, hits.size(), 256, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelGrainTest, RangeBelowGrainRunsOnCallingThread) {
  // 100 indices with a 256 grain: zero workers qualify, so the loop must
  // stay inline — this is what keeps serving-sized batches off the pool.
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  ParallelForGrain(0, 100, 256, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) ++off_thread;
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ParallelGrainTest, ExceptionPropagates) {
  EXPECT_THROW(ParallelForGrain(0, 100000, 256,
                                [](std::size_t i) {
                                  if (i == 54321) {
                                    throw std::runtime_error("grain boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ParallelTasksTest, RunsTinyTaskCounts) {
  // Unlike ParallelFor, a task range of 2 is already eligible for
  // fan-out (that is its purpose: a 10-member ensemble on 8 threads).
  std::vector<std::atomic<int>> hits(2);
  for (auto& h : hits) h = 0;
  ParallelForTasks(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelTasksTest, NestedParallelCallsComplete) {
  // A task that itself calls a parallel loop must not deadlock: inside a
  // pool worker, nested calls run serially inline.
  std::vector<std::atomic<int>> hits(8 * 1000);
  for (auto& h : hits) h = 0;
  ParallelForTasks(0, 8, [&](std::size_t t) {
    ParallelFor(0, 1000, [&](std::size_t i) { ++hits[t * 1000 + i]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTasksTest, ExceptionPropagates) {
  EXPECT_THROW(ParallelForTasks(0, 16,
                                [](std::size_t i) {
                                  if (i == 7) {
                                    throw std::invalid_argument("task boom");
                                  }
                                }),
               std::invalid_argument);
}

TEST(SetNumThreadsTest, OverridePinsToOneThreadAndRestores) {
  SetNumThreads(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  ParallelForTasks(0, 8, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) ++off_thread;
  });
  EXPECT_EQ(off_thread.load(), 0);

  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(5000);
  for (auto& h : hits) h = 0;
  ParallelFor(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  SetNumThreads(0);  // back to SPE_THREADS / hardware default
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ SPE_CHECK(false) << "boom"; }, "boom");
}

TEST(CheckDeathTest, ComparisonMacroPrintsValues) {
  EXPECT_DEATH({ SPE_CHECK_EQ(1, 2); }, "1 vs 2");
}

TEST(CheckTest, PassingCheckDoesNothing) {
  SPE_CHECK(true);
  SPE_CHECK_LE(1, 1);
  SPE_CHECK_GT(2, 1);
}

TEST(ParseTest, Int64AcceptsWholeNumbersOnly) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("  123  "), 123);  // surrounding whitespace ok
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("9223372036854775807"), 9223372036854775807LL);

  EXPECT_FALSE(ParseInt64(""));
  EXPECT_FALSE(ParseInt64("   "));
  EXPECT_FALSE(ParseInt64("12abc"));  // what atoi silently truncates
  EXPECT_FALSE(ParseInt64("abc"));
  EXPECT_FALSE(ParseInt64("1 2"));
  EXPECT_FALSE(ParseInt64("1.5"));
  EXPECT_FALSE(ParseInt64("0x10"));
  EXPECT_FALSE(ParseInt64("9223372036854775808"));  // overflow
  EXPECT_FALSE(ParseInt64("--3"));
}

TEST(ParseTest, FiniteDoubleRejectsJunkAndNonFinite) {
  EXPECT_EQ(ParseFiniteDouble("0.25"), 0.25);
  EXPECT_EQ(ParseFiniteDouble("-1e3"), -1000.0);
  EXPECT_EQ(ParseFiniteDouble(" 2.5 "), 2.5);

  EXPECT_FALSE(ParseFiniteDouble(""));
  EXPECT_FALSE(ParseFiniteDouble("1.5x"));
  EXPECT_FALSE(ParseFiniteDouble("nan"));
  EXPECT_FALSE(ParseFiniteDouble("inf"));
  EXPECT_FALSE(ParseFiniteDouble("-inf"));
  EXPECT_FALSE(ParseFiniteDouble("1e999"));  // overflows to infinity
  // Underflow is ERANGE too: strtod rejected "1e-400", so we do.
  EXPECT_FALSE(ParseFiniteDouble("1e-400"));
  EXPECT_FALSE(ParseFiniteDouble("-1e-400"));

  // The prefix parser keeps strtod's value semantics (underflow is
  // ±0.0 on the wire) but reports the range condition to callers that
  // want strtod's errno policing.
  std::size_t i = 0;
  double v = 1.0;
  bool out_of_range = false;
  EXPECT_TRUE(ParseDoublePrefix("1e-400", i, &v, &out_of_range));
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(out_of_range);
  i = 0;
  out_of_range = true;
  EXPECT_TRUE(ParseDoublePrefix("0.5", i, &v, &out_of_range));
  EXPECT_EQ(v, 0.5);
  EXPECT_FALSE(out_of_range);
}

TEST(Crc32Test, MatchesIeeeCheckValueAndComposes) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  // Incremental updates must equal one-shot computation.
  std::uint32_t crc = Crc32Update(Crc32("12345"), "6789");
  EXPECT_EQ(crc, Crc32("123456789"));
  // Sensitive to a single bit flip.
  EXPECT_NE(Crc32("123456788"), Crc32("123456789"));
}

TEST(FaultTest, ParseSpecRoundTripsAndRejectsGarbage) {
  FaultConfig config;
  std::string error;
  EXPECT_TRUE(FaultRegistry::ParseSpec(
      "score_delay_ms=50,model_io_fail_rate=0.25,seed=7", &config, &error))
      << error;
  EXPECT_EQ(config.score_delay_ms, 50u);
  EXPECT_EQ(config.model_io_fail_rate, 0.25);
  EXPECT_EQ(config.seed, 7u);

  // Empty spec and stray commas are fine (everything stays off).
  EXPECT_TRUE(FaultRegistry::ParseSpec("", &config, &error));
  EXPECT_TRUE(FaultRegistry::ParseSpec(",score_delay_ms=1,", &config, &error));

  EXPECT_FALSE(FaultRegistry::ParseSpec("bogus_fault=1", &config, &error));
  EXPECT_NE(error.find("bogus_fault"), std::string::npos);
  EXPECT_FALSE(
      FaultRegistry::ParseSpec("score_delay_ms=soon", &config, &error));
  EXPECT_FALSE(
      FaultRegistry::ParseSpec("model_io_fail_rate=1.5", &config, &error));
  EXPECT_FALSE(FaultRegistry::ParseSpec("score_delay_ms", &config, &error));
}

TEST(FaultTest, ParseSpecHandlesTheRobustnessFaultKeys) {
  FaultConfig config;
  std::string error;
  EXPECT_TRUE(FaultRegistry::ParseSpec(
      "artifact_write_fail_rate=0.25,artifact_read_fail_rate=0.5,"
      "data_io_fail_rate=1,crash_at_iteration=7",
      &config, &error))
      << error;
  EXPECT_EQ(config.artifact_write_fail_rate, 0.25);
  EXPECT_EQ(config.artifact_read_fail_rate, 0.5);
  EXPECT_EQ(config.data_io_fail_rate, 1.0);
  EXPECT_EQ(config.crash_at_iteration, 7u);

  // Rates outside [0, 1] and non-numeric values are spec errors that
  // name the offending key.
  EXPECT_FALSE(FaultRegistry::ParseSpec("artifact_write_fail_rate=1.5",
                                        &config, &error));
  EXPECT_NE(error.find("artifact_write_fail_rate"), std::string::npos);
  EXPECT_FALSE(
      FaultRegistry::ParseSpec("data_io_fail_rate=often", &config, &error));
  EXPECT_FALSE(
      FaultRegistry::ParseSpec("crash_at_iteration=soon", &config, &error));

  // Any single robustness fault arms the registry.
  FaultRegistry::Instance().Configure(config);
  EXPECT_TRUE(FaultRegistry::Instance().enabled());
  FaultRegistry::Instance().Reset();

  // Zero-rate faults never draw from the shared engine, so arming one
  // fault leaves the others' sequences untouched (determinism contract
  // for byte-identical kill/resume runs).
  FaultConfig quiet;
  quiet.crash_at_iteration = 99;  // armed but never reached here
  FaultRegistry::Instance().Configure(quiet);
  EXPECT_FALSE(FaultRegistry::Instance().ShouldFailArtifactWrite());
  EXPECT_FALSE(FaultRegistry::Instance().ShouldFailArtifactRead());
  EXPECT_FALSE(FaultRegistry::Instance().ShouldFailDataIo());
  FaultRegistry::Instance().Reset();
}

TEST(FaultTest, ModelIoFaultsAreDeterministicPerSeed) {
  FaultConfig config;
  config.model_io_fail_rate = 0.5;
  config.seed = 17;
  auto draw_sequence = [&] {
    FaultRegistry::Instance().Configure(config);
    std::vector<bool> draws;
    for (int i = 0; i < 64; ++i) {
      draws.push_back(FaultRegistry::Instance().ShouldFailModelIo());
    }
    return draws;
  };
  const std::vector<bool> first = draw_sequence();
  const std::vector<bool> second = draw_sequence();
  EXPECT_EQ(first, second) << "same seed must give the same fault stream";
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  config.seed = 18;
  const std::vector<bool> other = draw_sequence();
  EXPECT_NE(first, other) << "different seeds must differ";

  FaultRegistry::Instance().Reset();
  EXPECT_FALSE(FaultRegistry::Instance().enabled());
  EXPECT_FALSE(FaultRegistry::Instance().ShouldFailModelIo());
}

}  // namespace
}  // namespace spe
