#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/mpmc_queue.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/io/model_io.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/server_stats.h"

#if defined(__SANITIZE_THREAD__)
// libstdc++ is not TSan-instrumented in this toolchain, so the atomic
// refcount inside std::exception_ptr (libsupc++/eh_ptr.cc) is invisible
// to TSan. A worker thread releasing its last reference to an exception
// stored in a promise — after a client thread caught and inspected it
// through the future — then reports as a race on the exception object,
// even though the refcount fully orders the two accesses.
extern "C" const char* __tsan_default_suppressions() {
  return "race:std::__exception_ptr::exception_ptr::_M_release\n";
}
#endif

namespace spe {
namespace {

Dataset SmallCheckerboard(std::uint64_t seed, std::size_t minority = 150,
                          std::size_t majority = 1500) {
  CheckerboardConfig config;
  config.num_minority = minority;
  config.num_majority = majority;
  Rng rng(seed);
  return MakeCheckerboard(config, rng);
}

std::unique_ptr<Classifier> TrainedSpe(const Dataset& train) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  config.seed = 7;
  auto model = std::make_unique<SelfPacedEnsemble>(
      config, std::make_unique<DecisionTree>(DecisionTreeConfig{}));
  model->Fit(train);
  return model;
}

// ---------------------------------------------------------------- queue

TEST(BoundedQueueTest, PopBatchRespectsMaxItems) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(batch, 4, std::chrono::microseconds(0)), 4u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6u);
}

TEST(BoundedQueueTest, TryPushShedsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  std::vector<int> batch;
  q.PopBatch(batch, 8, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(batch, 1, std::chrono::microseconds(0)), 1u);
  EXPECT_EQ(q.PopBatch(batch, 8, std::chrono::microseconds(0)), 1u);
  EXPECT_EQ(q.PopBatch(batch, 8, std::chrono::microseconds(0)), 0u);
}

TEST(BoundedQueueTest, BlockedPushWakesWhenConsumerDrains) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  std::vector<int> batch;
  // Eventually both items flow through; the producer unblocks.
  std::size_t seen = 0;
  while (seen < 2) {
    seen += q.PopBatch(batch, 1, std::chrono::microseconds(100));
  }
  producer.join();
}

// ------------------------------------------------------------- scoring

TEST(BatchScorerTest, ServedBitIdenticalToDirectPredictProba) {
  const Dataset train = SmallCheckerboard(1);
  const Dataset test = SmallCheckerboard(2, 100, 400);
  const auto trained = TrainedSpe(train);

  // Round-trip the trained ensemble through the persistence layer, the
  // way a real deployment ships a model to the server.
  std::stringstream artifact;
  SaveModelBundle(*trained, train.num_features(), artifact);
  ModelBundle bundle = LoadModelBundle(artifact);
  ASSERT_EQ(bundle.num_features, train.num_features());

  const std::vector<double> direct = bundle.model->PredictProba(test);

  BatchScorerConfig config;
  config.max_batch_size = 32;  // force many batch boundaries
  config.max_batch_delay_us = 50;
  BatchScorer scorer(std::move(bundle.model), bundle.num_features, config);
  const std::vector<double> served = scorer.ScoreBatch(test);

  ASSERT_EQ(served.size(), direct.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    // Bit-identical, not approximately equal: micro-batch boundaries
    // must be invisible in the output.
    EXPECT_EQ(std::memcmp(&served[i], &direct[i], sizeof(double)), 0)
        << "row " << i << ": " << served[i] << " vs " << direct[i];
  }
  EXPECT_EQ(scorer.stats().Snapshot().rows, test.num_rows());
}

TEST(BatchScorerTest, MultiThreadedProducersRandomizedDelays) {
  const Dataset train = SmallCheckerboard(3);
  const Dataset test = SmallCheckerboard(4, 60, 240);
  const auto model = TrainedSpe(train);
  const std::vector<double> expected = model->PredictProba(test);

  BatchScorerConfig config;
  config.max_batch_size = 16;
  config.max_batch_delay_us = 300;
  config.num_workers = 4;
  config.queue_capacity = 64;  // small: exercises producer blocking
  BatchScorer scorer(TrainedSpe(train), train.num_features(), config);

  constexpr int kProducers = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937 rng(static_cast<unsigned>(p));
      std::uniform_int_distribution<int> jitter_us(0, 200);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<ScoreResult>> futures;
        std::vector<std::size_t> rows;
        for (std::size_t i = static_cast<std::size_t>(p); i < test.num_rows();
             i += kProducers) {
          std::vector<double> row(test.num_features());
          test.CopyRowTo(i, row);
          futures.push_back(scorer.Submit(std::move(row)));
          rows.push_back(i);
          if (jitter_us(rng) < 20) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(jitter_us(rng)));
          }
        }
        for (std::size_t k = 0; k < futures.size(); ++k) {
          if (futures[k].get().proba != expected[rows[k]]) ++mismatches;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServeStatsSnapshot s = scorer.stats().Snapshot();
  // Each round, the producers partition the test set exactly once.
  EXPECT_EQ(s.rows, static_cast<std::uint64_t>(kRounds) * test.num_rows());
  EXPECT_GT(s.batches, 0u);
  EXPECT_GE(s.mean_batch_size, 1.0);
  EXPECT_EQ(s.shed, 0u);
}

TEST(BatchScorerTest, ShutdownDrainsEveryAcceptedRequest) {
  const Dataset train = SmallCheckerboard(5);
  const Dataset test = SmallCheckerboard(6, 40, 160);

  BatchScorerConfig config;
  config.max_batch_size = 8;
  // Long fill deadline: requests sit in partial batches when Shutdown
  // lands, which is exactly the drain path under test.
  config.max_batch_delay_us = 50'000;
  config.num_workers = 2;
  BatchScorer scorer(TrainedSpe(train), train.num_features(), config);

  std::vector<std::future<ScoreResult>> futures;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    std::vector<double> row(test.num_features());
    test.CopyRowTo(i, row);
    futures.push_back(scorer.Submit(std::move(row)));
  }
  scorer.Shutdown();

  for (auto& f : futures) {
    const double p = f.get().proba;  // must not throw: accepted => completed
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(scorer.stats().Snapshot().rows, test.num_rows());

  // After shutdown, new submissions are refused via the future.
  auto rejected = scorer.Submit(std::vector<double>(test.num_features(), 0.0));
  EXPECT_THROW(rejected.get(), ScorerOverloaded);
}

// A model slow enough to keep the queue backed up, for shedding tests.
class SlowConstantModel final : public Classifier {
 public:
  void Fit(const DatasetView&) override {}
  double PredictRow(std::span<const double>) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return 0.25;
  }
  std::vector<double> PredictProba(const DatasetView& data) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return std::vector<double>(data.num_rows(), 0.25);
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<SlowConstantModel>();
  }
  std::string Name() const override { return "SlowConstant"; }
};

TEST(BatchScorerTest, ShedPolicyRejectsWhenQueueFull) {
  BatchScorerConfig config;
  config.max_batch_size = 1;
  config.max_batch_delay_us = 0;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.overflow = OverflowPolicy::kShed;
  BatchScorer scorer(std::make_unique<SlowConstantModel>(), 2, config);

  std::vector<std::future<ScoreResult>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(scorer.Submit({0.0, 1.0}));
  }
  int ok = 0;
  int shed = 0;
  for (auto& f : futures) {
    try {
      EXPECT_EQ(f.get().proba, 0.25);
      ++ok;
    } catch (const ScorerOverloaded&) {
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), scorer.stats().Snapshot().shed);
}

// ----------------------------------------------------- ensemble prefix

TEST(EnsemblePrefixTest, FullPrefixBitIdenticalToPredictProba) {
  const Dataset train = SmallCheckerboard(11);
  const Dataset test = SmallCheckerboard(12, 50, 200);
  const auto model = TrainedSpe(train);
  const auto* voter = dynamic_cast<const PrefixVoter*>(model.get());
  ASSERT_NE(voter, nullptr);
  EXPECT_EQ(voter->NumPrefixMembers(), 5u);

  const std::vector<double> full = model->PredictProba(test);
  const std::vector<double> prefix_all = voter->PredictProbaPrefix(test, 5);
  // Overlong k clamps to the ensemble size instead of faulting.
  const std::vector<double> prefix_over = voter->PredictProbaPrefix(test, 99);
  ASSERT_EQ(prefix_all.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(std::memcmp(&prefix_all[i], &full[i], sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&prefix_over[i], &full[i], sizeof(double)), 0);
  }
  // A strict prefix is a different (coarser) hypothesis — it must not
  // silently collapse to the full ensemble on a non-trivial test set.
  const std::vector<double> prefix_one = voter->PredictProbaPrefix(test, 1);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (prefix_one[i] != full[i]) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

// ------------------------------------------------------------ deadlines

/// Counts PredictProba invocations so tests can prove an expired request
/// never reached the model.
class CountingConstantModel final : public Classifier {
 public:
  void Fit(const DatasetView&) override {}
  double PredictRow(std::span<const double>) const override {
    ++calls_;
    return 0.5;
  }
  std::vector<double> PredictProba(const DatasetView& data) const override {
    calls_ += data.num_rows();
    return std::vector<double>(data.num_rows(), 0.5);
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<CountingConstantModel>();
  }
  std::string Name() const override { return "CountingConstant"; }
  std::size_t calls() const { return calls_.load(); }

 private:
  mutable std::atomic<std::size_t> calls_{0};
};

TEST(BatchScorerTest, ExpiredDeadlineFailsFastWithoutScoring) {
  auto model = std::make_unique<CountingConstantModel>();
  const auto* counter = model.get();
  BatchScorerConfig config;
  config.num_workers = 1;
  BatchScorer scorer(std::move(model), 2, config);

  // Already-past deadline: no sleeps needed, the triage in the worker
  // must expire it no matter how fast the pop happens.
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto expired = scorer.Submit({1.0, 2.0}, past);
  try {
    (void)expired.get();
    FAIL() << "expired request was scored";
  } catch (const DeadlineExceeded& e) {
    // The wire-stable token clients match on.
    EXPECT_STREQ(e.what(), "DEADLINE_EXCEEDED");
  }
  EXPECT_EQ(counter->calls(), 0u) << "expired request reached the model";

  // A generous deadline and no deadline both still score normally.
  const auto future_deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(scorer.Submit({1.0, 2.0}, future_deadline).get().proba, 0.5);
  EXPECT_EQ(scorer.Submit({1.0, 2.0}).get().proba, 0.5);
  EXPECT_EQ(counter->calls(), 2u);

  const ServeStatsSnapshot s = scorer.stats().Snapshot();
  EXPECT_EQ(s.deadline_expired, 1u);
  EXPECT_EQ(s.rows, 2u);  // only scored rows count as served
}

// ---------------------------------------------------------- degradation

/// PrefixVoter fake with a controllable gate: a row whose first feature
/// is -1 blocks inside the model until Release(). Lets a test pin the
/// single worker while it builds up a known backlog, making watermark
/// transitions deterministic. Full scoring returns 0.75; prefix scoring
/// returns 0.1 * k — trivially distinguishable.
class GatePrefixModel final : public Classifier, public PrefixVoter {
 public:
  void Fit(const DatasetView&) override {}
  double PredictRow(std::span<const double> row) const override {
    MaybeBlock(row[0]);
    return 0.75;
  }
  std::vector<double> PredictProba(const DatasetView& data) const override {
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      MaybeBlock(data.At(i, 0));
    }
    return std::vector<double>(data.num_rows(), 0.75);
  }
  std::size_t NumPrefixMembers() const override { return 4; }
  std::vector<double> PredictProbaPrefix(const DatasetView& data,
                                         std::size_t k) const override {
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      MaybeBlock(data.At(i, 0));
    }
    return std::vector<double>(data.num_rows(),
                               0.1 * static_cast<double>(k));
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GatePrefixModel>();
  }
  std::string Name() const override { return "GatePrefix"; }

  void AwaitGateEntered() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  void MaybeBlock(double first_feature) const {
    if (first_feature != -1.0) return;
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
  }
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  mutable bool released_ = false;
};

TEST(BatchScorerTest, WatermarksEngageAndRestoreWithHysteresis) {
  auto model = std::make_unique<GatePrefixModel>();
  auto* gate = model.get();
  BatchScorerConfig config;
  config.num_workers = 1;
  config.max_batch_size = 1;   // one pop per request: backlog is exact
  config.max_batch_delay_us = 0;
  config.queue_capacity = 64;
  config.degrade_high_watermark = 4;
  config.degrade_low_watermark = 0;  // restore only once fully drained
  config.degrade_prefix = 2;
  BatchScorer scorer(std::move(model), 2, config);

  // Pin the worker: it pops the gate row with an empty backlog (so the
  // gate row itself is scored at full fidelity) and blocks in the model.
  auto gated = scorer.Submit({-1.0, 0.0});
  gate->AwaitGateEntered();
  EXPECT_FALSE(scorer.degraded());

  // Build a backlog of 6 behind the pinned worker, then open the gate.
  std::vector<std::future<ScoreResult>> queued;
  for (int i = 0; i < 6; ++i) queued.push_back(scorer.Submit({0.0, 0.0}));
  gate->Release();

  const ScoreResult first = gated.get();
  EXPECT_EQ(first.proba, 0.75);
  EXPECT_FALSE(first.degraded);

  // Backlog after each subsequent pop: 5,4,3,2,1,0. The controller
  // engages at >= 4, holds through the hysteresis band (backlog > 0),
  // and restores at the final pop (backlog 0 <= low watermark). Every
  // degraded result must be bit-identical to PredictProbaPrefix(k=2).
  GatePrefixModel reference;
  Dataset one_row(2);
  one_row.AddRow(std::vector<double>{0.0, 0.0}, 0);
  const double expect_prefix = reference.PredictProbaPrefix(one_row, 2)[0];
  for (int i = 0; i < 5; ++i) {
    const ScoreResult r = queued[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(r.degraded) << "request " << i;
    EXPECT_EQ(std::memcmp(&r.proba, &expect_prefix, sizeof(double)), 0);
  }
  const ScoreResult last = queued[5].get();
  EXPECT_FALSE(last.degraded) << "mode must restore once drained";
  EXPECT_EQ(last.proba, 0.75);
  EXPECT_FALSE(scorer.degraded());

  const ServeStatsSnapshot s = scorer.stats().Snapshot();
  EXPECT_EQ(s.degraded_batches, 5u);
  EXPECT_EQ(s.degraded_rows, 5u);
  EXPECT_EQ(s.rows, 7u);
}

TEST(BatchScorerTest, DegradedResultsBitIdenticalToPrefixScoring) {
  // End-to-end with a real SPE ensemble: whether or not a given request
  // hits a degraded window, its probability must be bit-identical to the
  // corresponding direct computation.
  const Dataset train = SmallCheckerboard(13);
  const Dataset test = SmallCheckerboard(14, 40, 160);
  const auto model = TrainedSpe(train);
  const auto* voter = dynamic_cast<const PrefixVoter*>(model.get());
  ASSERT_NE(voter, nullptr);
  const std::vector<double> expect_full = model->PredictProba(test);
  const std::vector<double> expect_prefix = voter->PredictProbaPrefix(test, 2);

  BatchScorerConfig config;
  config.num_workers = 1;
  config.max_batch_size = 8;
  config.queue_capacity = 32;
  config.degrade_high_watermark = 16;
  config.degrade_low_watermark = 4;
  config.degrade_prefix = 2;
  BatchScorer scorer(TrainedSpe(train), train.num_features(), config);

  std::vector<std::future<ScoreResult>> futures;
  std::vector<std::size_t> rows;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < test.num_rows(); ++i) {
      std::vector<double> row(test.num_features());
      test.CopyRowTo(i, row);
      futures.push_back(scorer.Submit(std::move(row)));
      rows.push_back(i);
    }
  }
  std::size_t degraded_rows = 0;
  for (std::size_t k = 0; k < futures.size(); ++k) {
    const ScoreResult r = futures[k].get();
    const double expect =
        r.degraded ? expect_prefix[rows[k]] : expect_full[rows[k]];
    EXPECT_EQ(std::memcmp(&r.proba, &expect, sizeof(double)), 0)
        << "request " << k << (r.degraded ? " (degraded)" : "");
    degraded_rows += r.degraded ? 1u : 0u;
  }
  EXPECT_EQ(scorer.stats().Snapshot().degraded_rows, degraded_rows);
}

TEST(BatchScorerDeathTest, WatermarksRequirePrefixCapableModel) {
  BatchScorerConfig config;
  config.degrade_high_watermark = 4;
  EXPECT_DEATH(
      BatchScorer(std::make_unique<SlowConstantModel>(), 2, config),
      "prefix scoring");
}

// ------------------------------------------------------------ protocol

TEST(LineProtocolTest, ParsesCsvRow) {
  const ServeRequest r = ParseRequestLine("0.5, -1.25,3e2");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_FALSE(r.json);
  EXPECT_EQ(r.features, (std::vector<double>{0.5, -1.25, 300.0}));
}

TEST(LineProtocolTest, ParsesJsonWithId) {
  const ServeRequest r =
      ParseRequestLine(R"({"id": "row-9", "features": [1, 2.5, -3]})");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_TRUE(r.json);
  EXPECT_EQ(r.id, "\"row-9\"");
  EXPECT_EQ(r.features, (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_EQ(FormatScoreResponse(r, 0.5), R"({"id":"row-9","proba":0.5})");
}

TEST(LineProtocolTest, JsonNumericIdAndKeyOrder) {
  const ServeRequest r = ParseRequestLine(R"({"features":[4],"id":17})");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_EQ(r.id, "17");
  EXPECT_EQ(r.features, std::vector<double>{4.0});
}

TEST(LineProtocolTest, SpecialLines) {
  EXPECT_EQ(ParseRequestLine("").kind, RequestKind::kEmpty);
  EXPECT_EQ(ParseRequestLine("   ").kind, RequestKind::kEmpty);
  EXPECT_EQ(ParseRequestLine("STATS").kind, RequestKind::kStats);
}

TEST(LineProtocolTest, MalformedLinesReportErrors) {
  EXPECT_EQ(ParseRequestLine("1.0,,2.0").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine("abc").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine("{\"features\":}").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine("{\"id\":1}").kind, RequestKind::kInvalid);
  const ServeRequest bad = ParseRequestLine("{bad json");
  EXPECT_EQ(bad.kind, RequestKind::kInvalid);
  EXPECT_EQ(FormatErrorResponse(bad, bad.error),
            "{\"error\":\"" + bad.error + "\"}");
  const ServeRequest bad_csv = ParseRequestLine("x");
  EXPECT_EQ(FormatErrorResponse(bad_csv, bad_csv.error),
            "ERR " + bad_csv.error);
}

TEST(LineProtocolTest, RejectsNonFiniteFeatures) {
  for (const char* line : {"nan,1.0", "1.0,inf", "-inf", "1.0,NaN,2.0"}) {
    const ServeRequest r = ParseRequestLine(line);
    EXPECT_EQ(r.kind, RequestKind::kInvalid) << line;
    EXPECT_NE(r.error.find("non-finite"), std::string::npos) << line;
  }
  for (const char* line : {R"({"features":[nan]})", R"({"features":[1,inf]})",
                           R"({"features":[-inf,2]})"}) {
    const ServeRequest r = ParseRequestLine(line);
    EXPECT_EQ(r.kind, RequestKind::kInvalid) << line;
    EXPECT_NE(r.error.find("non-finite"), std::string::npos) << line;
  }
}

TEST(LineProtocolTest, RejectsOversizedLine) {
  std::string line(kMaxRequestLineBytes + 1, '1');
  const ServeRequest r = ParseRequestLine(line);
  EXPECT_EQ(r.kind, RequestKind::kInvalid);
  EXPECT_NE(r.error.find("exceeds"), std::string::npos);
  // A line exactly at the cap is still parsed (as a garbage number here,
  // but through the parser, not the length check).
  std::string at_cap(kMaxRequestLineBytes, '1');
  EXPECT_EQ(ParseRequestLine(at_cap).error.find("exceeds"),
            std::string::npos);
}

TEST(LineProtocolTest, RejectsHugeId) {
  const std::string huge(kMaxIdBytes + 10, 'x');
  const ServeRequest r =
      ParseRequestLine("{\"id\":\"" + huge + "\",\"features\":[1]}");
  EXPECT_EQ(r.kind, RequestKind::kInvalid);
  EXPECT_NE(r.error.find("longer than"), std::string::npos);
}

TEST(LineProtocolTest, RejectsTruncatedJson) {
  for (const char* line :
       {R"({"features":[1,2)", R"({"features":[1,2],)", R"({"id":"unterm)",
        R"({"features":)"}) {
    EXPECT_EQ(ParseRequestLine(line).kind, RequestKind::kInvalid) << line;
  }
}

TEST(LineProtocolTest, ParsesDeadlineMs) {
  EXPECT_EQ(ParseRequestLine(R"({"features":[1]})").deadline_ms, -1.0);
  const ServeRequest r =
      ParseRequestLine(R"({"features":[1],"deadline_ms":50})");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_EQ(r.deadline_ms, 50.0);
  // 0 is valid ("already due"); negatives and non-numbers are not.
  EXPECT_EQ(ParseRequestLine(R"({"features":[1],"deadline_ms":0})")
                .deadline_ms,
            0.0);
  EXPECT_EQ(ParseRequestLine(R"({"features":[1],"deadline_ms":-5})").kind,
            RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine(R"({"features":[1],"deadline_ms":"soon"})").kind,
            RequestKind::kInvalid);
}

TEST(LineProtocolTest, DegradedResponsesAreMarked) {
  const ServeRequest json =
      ParseRequestLine(R"({"id":7,"features":[1]})");
  EXPECT_EQ(FormatScoreResponse(json, 0.5, /*degraded=*/true),
            R"({"id":7,"proba":0.5,"degraded":true})");
  EXPECT_EQ(FormatScoreResponse(json, 0.5, /*degraded=*/false),
            R"({"id":7,"proba":0.5})");
  // CSV responses stay a bare number either way.
  const ServeRequest csv = ParseRequestLine("1.0");
  EXPECT_EQ(FormatScoreResponse(csv, 0.5, /*degraded=*/true), "0.5");
}

TEST(LineProtocolTest, ResponseRoundTripsDoubleExactly) {
  ServeRequest r;
  r.json = false;
  const double p = 0.123456789012345678;  // not representable exactly
  const std::string text = FormatScoreResponse(r, p);
  EXPECT_EQ(std::strtod(text.c_str(), nullptr), p);
}

// --------------------------------------------------------------- stats

TEST(ServerStatsTest, BucketBoundsAreMonotone) {
  std::uint64_t prev = 0;
  for (std::size_t i = 1; i < ServerStats::kLatencyBuckets; ++i) {
    const std::uint64_t lo = ServerStats::BucketLowerBound(i);
    EXPECT_GT(lo, prev) << "bucket " << i;
    prev = lo;
  }
  // A value always lands in the bucket whose range contains it.
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 100ull, 4096ull,
                          1'000'000ull, 123'456'789ull}) {
    const std::size_t b = ServerStats::BucketIndex(v);
    EXPECT_LE(ServerStats::BucketLowerBound(b), v);
    if (b + 1 < ServerStats::kLatencyBuckets) {
      EXPECT_GT(ServerStats::BucketLowerBound(b + 1), v);
    }
  }
}

TEST(ServerStatsTest, PercentilesTrackUniformLatencies) {
  ServerStats stats;
  for (std::uint64_t us = 1; us <= 1000; ++us) stats.RecordRequest(us);
  const ServeStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.rows, 1000u);
  EXPECT_EQ(s.max_us, 1000u);
  // Geometric buckets guarantee <= 12.5% relative error.
  EXPECT_NEAR(s.p50_us, 500.0, 0.15 * 500);
  EXPECT_NEAR(s.p95_us, 950.0, 0.15 * 950);
  EXPECT_NEAR(s.p99_us, 990.0, 0.15 * 990);
  EXPECT_GE(s.p95_us, s.p50_us);
  EXPECT_GE(s.p99_us, s.p95_us);
}

TEST(ServerStatsTest, BatchHistogramAndJson) {
  ServerStats stats;
  stats.RecordBatch(1);
  stats.RecordBatch(3);
  stats.RecordBatch(200);
  stats.RecordShed();
  const ServeStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.max_batch_size, 200u);
  EXPECT_NEAR(s.mean_batch_size, 68.0, 1e-9);
  ASSERT_EQ(s.batch_size_hist.size(), 8u);  // 200 -> bucket 7
  EXPECT_EQ(s.batch_size_hist[0], 1u);
  EXPECT_EQ(s.batch_size_hist[1], 1u);
  EXPECT_EQ(s.batch_size_hist[7], 1u);
  const std::string json = ToJson(s);
  EXPECT_NE(json.find("\"rows\":0"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size_hist\":[1,1,0,0,0,0,0,1]"),
            std::string::npos);
}

TEST(ServerStatsTest, RobustnessCountersAndJsonKeys) {
  ServerStats stats;
  stats.RecordBatch(3, /*degraded=*/true);
  stats.RecordBatch(5, /*degraded=*/false);
  stats.RecordBatch(2, /*degraded=*/true);
  stats.RecordDeadlineExpired();
  stats.RecordDeadlineExpired();
  const ServeStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.degraded_batches, 2u);
  EXPECT_EQ(s.degraded_rows, 5u);
  EXPECT_EQ(s.deadline_expired, 2u);
  const std::string json = ToJson(s);
  EXPECT_NE(json.find("\"deadline_expired\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded_batches\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded_rows\":5"), std::string::npos) << json;
}

TEST(StatsReporterTest, EmitsSnapshotsAndStopsPromptly) {
  ServerStats stats;
  stats.RecordRequest(10);
  std::ostringstream os;
  {
    StatsReporter reporter(stats, os, std::chrono::milliseconds(20));
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }  // destructor must not wait out a full interval
  const std::string out = os.str();
  EXPECT_NE(out.find("\"rows\":1"), std::string::npos);
}

}  // namespace
}  // namespace spe
