#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/mpmc_queue.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/io/model_io.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/line_protocol.h"
#include "spe/serve/server_stats.h"

namespace spe {
namespace {

Dataset SmallCheckerboard(std::uint64_t seed, std::size_t minority = 150,
                          std::size_t majority = 1500) {
  CheckerboardConfig config;
  config.num_minority = minority;
  config.num_majority = majority;
  Rng rng(seed);
  return MakeCheckerboard(config, rng);
}

std::unique_ptr<Classifier> TrainedSpe(const Dataset& train) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  config.seed = 7;
  auto model = std::make_unique<SelfPacedEnsemble>(
      config, std::make_unique<DecisionTree>(DecisionTreeConfig{}));
  model->Fit(train);
  return model;
}

// ---------------------------------------------------------------- queue

TEST(BoundedQueueTest, PopBatchRespectsMaxItems) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(batch, 4, std::chrono::microseconds(0)), 4u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6u);
}

TEST(BoundedQueueTest, TryPushShedsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  std::vector<int> batch;
  q.PopBatch(batch, 8, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(batch, 1, std::chrono::microseconds(0)), 1u);
  EXPECT_EQ(q.PopBatch(batch, 8, std::chrono::microseconds(0)), 1u);
  EXPECT_EQ(q.PopBatch(batch, 8, std::chrono::microseconds(0)), 0u);
}

TEST(BoundedQueueTest, BlockedPushWakesWhenConsumerDrains) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  std::vector<int> batch;
  // Eventually both items flow through; the producer unblocks.
  std::size_t seen = 0;
  while (seen < 2) {
    seen += q.PopBatch(batch, 1, std::chrono::microseconds(100));
  }
  producer.join();
}

// ------------------------------------------------------------- scoring

TEST(BatchScorerTest, ServedBitIdenticalToDirectPredictProba) {
  const Dataset train = SmallCheckerboard(1);
  const Dataset test = SmallCheckerboard(2, 100, 400);
  const auto trained = TrainedSpe(train);

  // Round-trip the trained ensemble through the persistence layer, the
  // way a real deployment ships a model to the server.
  std::stringstream artifact;
  SaveModelBundle(*trained, train.num_features(), artifact);
  ModelBundle bundle = LoadModelBundle(artifact);
  ASSERT_EQ(bundle.num_features, train.num_features());

  const std::vector<double> direct = bundle.model->PredictProba(test);

  BatchScorerConfig config;
  config.max_batch_size = 32;  // force many batch boundaries
  config.max_batch_delay_us = 50;
  BatchScorer scorer(std::move(bundle.model), bundle.num_features, config);
  const std::vector<double> served = scorer.ScoreBatch(test);

  ASSERT_EQ(served.size(), direct.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    // Bit-identical, not approximately equal: micro-batch boundaries
    // must be invisible in the output.
    EXPECT_EQ(std::memcmp(&served[i], &direct[i], sizeof(double)), 0)
        << "row " << i << ": " << served[i] << " vs " << direct[i];
  }
  EXPECT_EQ(scorer.stats().Snapshot().rows, test.num_rows());
}

TEST(BatchScorerTest, MultiThreadedProducersRandomizedDelays) {
  const Dataset train = SmallCheckerboard(3);
  const Dataset test = SmallCheckerboard(4, 60, 240);
  const auto model = TrainedSpe(train);
  const std::vector<double> expected = model->PredictProba(test);

  BatchScorerConfig config;
  config.max_batch_size = 16;
  config.max_batch_delay_us = 300;
  config.num_workers = 4;
  config.queue_capacity = 64;  // small: exercises producer blocking
  BatchScorer scorer(TrainedSpe(train), train.num_features(), config);

  constexpr int kProducers = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937 rng(static_cast<unsigned>(p));
      std::uniform_int_distribution<int> jitter_us(0, 200);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<double>> futures;
        std::vector<std::size_t> rows;
        for (std::size_t i = static_cast<std::size_t>(p); i < test.num_rows();
             i += kProducers) {
          const auto row = test.Row(i);
          futures.push_back(
              scorer.Submit(std::vector<double>(row.begin(), row.end())));
          rows.push_back(i);
          if (jitter_us(rng) < 20) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(jitter_us(rng)));
          }
        }
        for (std::size_t k = 0; k < futures.size(); ++k) {
          if (futures[k].get() != expected[rows[k]]) ++mismatches;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServeStatsSnapshot s = scorer.stats().Snapshot();
  // Each round, the producers partition the test set exactly once.
  EXPECT_EQ(s.rows, static_cast<std::uint64_t>(kRounds) * test.num_rows());
  EXPECT_GT(s.batches, 0u);
  EXPECT_GE(s.mean_batch_size, 1.0);
  EXPECT_EQ(s.shed, 0u);
}

TEST(BatchScorerTest, ShutdownDrainsEveryAcceptedRequest) {
  const Dataset train = SmallCheckerboard(5);
  const Dataset test = SmallCheckerboard(6, 40, 160);

  BatchScorerConfig config;
  config.max_batch_size = 8;
  // Long fill deadline: requests sit in partial batches when Shutdown
  // lands, which is exactly the drain path under test.
  config.max_batch_delay_us = 50'000;
  config.num_workers = 2;
  BatchScorer scorer(TrainedSpe(train), train.num_features(), config);

  std::vector<std::future<double>> futures;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const auto row = test.Row(i);
    futures.push_back(
        scorer.Submit(std::vector<double>(row.begin(), row.end())));
  }
  scorer.Shutdown();

  for (auto& f : futures) {
    const double p = f.get();  // must not throw: accepted => completed
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(scorer.stats().Snapshot().rows, test.num_rows());

  // After shutdown, new submissions are refused via the future.
  auto rejected = scorer.Submit(std::vector<double>(test.num_features(), 0.0));
  EXPECT_THROW(rejected.get(), ScorerOverloaded);
}

// A model slow enough to keep the queue backed up, for shedding tests.
class SlowConstantModel final : public Classifier {
 public:
  void Fit(const Dataset&) override {}
  double PredictRow(std::span<const double>) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return 0.25;
  }
  std::vector<double> PredictProba(const Dataset& data) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return std::vector<double>(data.num_rows(), 0.25);
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<SlowConstantModel>();
  }
  std::string Name() const override { return "SlowConstant"; }
};

TEST(BatchScorerTest, ShedPolicyRejectsWhenQueueFull) {
  BatchScorerConfig config;
  config.max_batch_size = 1;
  config.max_batch_delay_us = 0;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.overflow = OverflowPolicy::kShed;
  BatchScorer scorer(std::make_unique<SlowConstantModel>(), 2, config);

  std::vector<std::future<double>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(scorer.Submit({0.0, 1.0}));
  }
  int ok = 0;
  int shed = 0;
  for (auto& f : futures) {
    try {
      EXPECT_EQ(f.get(), 0.25);
      ++ok;
    } catch (const ScorerOverloaded&) {
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), scorer.stats().Snapshot().shed);
}

// ------------------------------------------------------------ protocol

TEST(LineProtocolTest, ParsesCsvRow) {
  const ServeRequest r = ParseRequestLine("0.5, -1.25,3e2");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_FALSE(r.json);
  EXPECT_EQ(r.features, (std::vector<double>{0.5, -1.25, 300.0}));
}

TEST(LineProtocolTest, ParsesJsonWithId) {
  const ServeRequest r =
      ParseRequestLine(R"({"id": "row-9", "features": [1, 2.5, -3]})");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_TRUE(r.json);
  EXPECT_EQ(r.id, "\"row-9\"");
  EXPECT_EQ(r.features, (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_EQ(FormatScoreResponse(r, 0.5), R"({"id":"row-9","proba":0.5})");
}

TEST(LineProtocolTest, JsonNumericIdAndKeyOrder) {
  const ServeRequest r = ParseRequestLine(R"({"features":[4],"id":17})");
  ASSERT_EQ(r.kind, RequestKind::kScore);
  EXPECT_EQ(r.id, "17");
  EXPECT_EQ(r.features, std::vector<double>{4.0});
}

TEST(LineProtocolTest, SpecialLines) {
  EXPECT_EQ(ParseRequestLine("").kind, RequestKind::kEmpty);
  EXPECT_EQ(ParseRequestLine("   ").kind, RequestKind::kEmpty);
  EXPECT_EQ(ParseRequestLine("STATS").kind, RequestKind::kStats);
}

TEST(LineProtocolTest, MalformedLinesReportErrors) {
  EXPECT_EQ(ParseRequestLine("1.0,,2.0").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine("abc").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine("{\"features\":}").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequestLine("{\"id\":1}").kind, RequestKind::kInvalid);
  const ServeRequest bad = ParseRequestLine("{bad json");
  EXPECT_EQ(bad.kind, RequestKind::kInvalid);
  EXPECT_EQ(FormatErrorResponse(bad, bad.error),
            "{\"error\":\"" + bad.error + "\"}");
  const ServeRequest bad_csv = ParseRequestLine("x");
  EXPECT_EQ(FormatErrorResponse(bad_csv, bad_csv.error),
            "ERR " + bad_csv.error);
}

TEST(LineProtocolTest, ResponseRoundTripsDoubleExactly) {
  ServeRequest r;
  r.json = false;
  const double p = 0.123456789012345678;  // not representable exactly
  const std::string text = FormatScoreResponse(r, p);
  EXPECT_EQ(std::strtod(text.c_str(), nullptr), p);
}

// --------------------------------------------------------------- stats

TEST(ServerStatsTest, BucketBoundsAreMonotone) {
  std::uint64_t prev = 0;
  for (std::size_t i = 1; i < ServerStats::kLatencyBuckets; ++i) {
    const std::uint64_t lo = ServerStats::BucketLowerBound(i);
    EXPECT_GT(lo, prev) << "bucket " << i;
    prev = lo;
  }
  // A value always lands in the bucket whose range contains it.
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 100ull, 4096ull,
                          1'000'000ull, 123'456'789ull}) {
    const std::size_t b = ServerStats::BucketIndex(v);
    EXPECT_LE(ServerStats::BucketLowerBound(b), v);
    if (b + 1 < ServerStats::kLatencyBuckets) {
      EXPECT_GT(ServerStats::BucketLowerBound(b + 1), v);
    }
  }
}

TEST(ServerStatsTest, PercentilesTrackUniformLatencies) {
  ServerStats stats;
  for (std::uint64_t us = 1; us <= 1000; ++us) stats.RecordRequest(us);
  const ServeStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.rows, 1000u);
  EXPECT_EQ(s.max_us, 1000u);
  // Geometric buckets guarantee <= 12.5% relative error.
  EXPECT_NEAR(s.p50_us, 500.0, 0.15 * 500);
  EXPECT_NEAR(s.p95_us, 950.0, 0.15 * 950);
  EXPECT_NEAR(s.p99_us, 990.0, 0.15 * 990);
  EXPECT_GE(s.p95_us, s.p50_us);
  EXPECT_GE(s.p99_us, s.p95_us);
}

TEST(ServerStatsTest, BatchHistogramAndJson) {
  ServerStats stats;
  stats.RecordBatch(1);
  stats.RecordBatch(3);
  stats.RecordBatch(200);
  stats.RecordShed();
  const ServeStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.max_batch_size, 200u);
  EXPECT_NEAR(s.mean_batch_size, 68.0, 1e-9);
  ASSERT_EQ(s.batch_size_hist.size(), 8u);  // 200 -> bucket 7
  EXPECT_EQ(s.batch_size_hist[0], 1u);
  EXPECT_EQ(s.batch_size_hist[1], 1u);
  EXPECT_EQ(s.batch_size_hist[7], 1u);
  const std::string json = ToJson(s);
  EXPECT_NE(json.find("\"rows\":0"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size_hist\":[1,1,0,0,0,0,0,1]"),
            std::string::npos);
}

TEST(StatsReporterTest, EmitsSnapshotsAndStopsPromptly) {
  ServerStats stats;
  stats.RecordRequest(10);
  std::ostringstream os;
  {
    StatsReporter reporter(stats, os, std::chrono::milliseconds(20));
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }  // destructor must not wait out a full interval
  const std::string out = os.str();
  EXPECT_NE(out.find("\"rows\":1"), std::string::npos);
}

}  // namespace
}  // namespace spe
