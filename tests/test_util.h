#ifndef SPE_TESTS_TEST_UTIL_H_
#define SPE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {
namespace testing {

/// Two well-separated Gaussian blobs in 2-D: majority at the origin,
/// minority at (4, 4). Linearly separable — any sane classifier should
/// reach near-perfect AUCPRC.
inline Dataset SeparableBlobs(std::size_t num_majority, std::size_t num_minority,
                              std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  data.Reserve(num_majority + num_minority);
  for (std::size_t i = 0; i < num_majority; ++i) {
    const std::vector<double> row = {rng.Gaussian(0.0, 0.7), rng.Gaussian(0.0, 0.7)};
    data.AddRow(row, 0);
  }
  for (std::size_t i = 0; i < num_minority; ++i) {
    const std::vector<double> row = {rng.Gaussian(4.0, 0.7), rng.Gaussian(4.0, 0.7)};
    data.AddRow(row, 1);
  }
  return data;
}

/// Overlapping imbalanced blobs: minority sits inside the majority cloud
/// with partial separation — the regime where hardness-aware methods
/// should beat blind under-sampling.
inline Dataset OverlappingBlobs(std::size_t num_majority, std::size_t num_minority,
                                std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  data.Reserve(num_majority + num_minority);
  for (std::size_t i = 0; i < num_majority; ++i) {
    const std::vector<double> row = {rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)};
    data.AddRow(row, 0);
  }
  for (std::size_t i = 0; i < num_minority; ++i) {
    const std::vector<double> row = {rng.Gaussian(1.5, 1.0), rng.Gaussian(1.5, 1.0)};
    data.AddRow(row, 1);
  }
  return data;
}

/// XOR pattern: four tight clusters with alternating labels — not
/// linearly separable, learnable by trees / boosted models.
inline Dataset XorClusters(std::size_t per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  data.Reserve(4 * per_cluster);
  const double centers[4][2] = {{0, 0}, {1, 1}, {0, 1}, {1, 0}};
  for (int c = 0; c < 4; ++c) {
    const int label = c < 2 ? 0 : 1;
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::vector<double> row = {rng.Gaussian(centers[c][0], 0.08),
                                       rng.Gaussian(centers[c][1], 0.08)};
      data.AddRow(row, label);
    }
  }
  return data;
}

}  // namespace testing
}  // namespace spe

#endif  // SPE_TESTS_TEST_UTIL_H_
