// Round-trip property tests for the CSV and LIBSVM loaders/writers:
// save -> load -> save must reproduce the exact feature doubles
// (max_digits10 formatting) and the second save must be byte-identical
// to the first, across random datasets with extreme magnitudes, sparse
// zeros, and categorical codes. Where a format legitimately loses
// information (LIBSVM drops trailing all-zero columns and signed zero;
// no text format persists FeatureKind), the loss is pinned here as
// documented behaviour instead of drifting silently.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "spe/common/rng.h"
#include "spe/data/csv.h"
#include "spe/data/dataset.h"
#include "spe/data/libsvm.h"

namespace spe {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Magnitude palette stressing the formatter: exact integers, values
// needing all 17 significant digits, the largest/smallest *normal*
// doubles (subnormals are excluded on purpose — glibc std::stod throws
// out_of_range for them, which is a loader limitation worth keeping
// visible rather than papering over here), and plain zero for sparsity.
double DrawValue(Rng& rng) {
  switch (rng.Index(8)) {
    case 0:
      return 0.0;  // LIBSVM sparsity path
    case 1:
      return static_cast<double>(rng.Index(1000)) - 500.0;
    case 2:
      return rng.Uniform(-1.0, 1.0);
    case 3:
      return std::numeric_limits<double>::max();
    case 4:
      return std::numeric_limits<double>::min();  // smallest normal
    case 5:
      return 0.1 + rng.Uniform() * 1e-15;  // needs max_digits10
    case 6:
      return rng.Uniform() * 1e300;
    default:
      return -rng.Uniform() * 1e-300;
  }
}

Dataset RandomDataset(Rng& rng, std::size_t rows, std::size_t cols) {
  Dataset data(cols);
  std::vector<double> row(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) row[j] = DrawValue(rng);
    data.AddRow(row, rng.Index(2) == 0 ? 0 : 1);
  }
  return data;
}

void ExpectSameValues(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_features(), b.num_features());
  std::vector<double> ra(a.num_features());
  std::vector<double> rb(b.num_features());
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.Label(i), b.Label(i)) << "row " << i;
    a.CopyRowTo(i, ra);
    b.CopyRowTo(i, rb);
    // memcmp, not ==: bit-exact round trip is the contract, and it must
    // hold for -0.0 too where the format preserves it.
    EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)),
              0)
        << "row " << i << " changed across save/load";
  }
}

TEST(CsvRoundTripTest, RandomDatasetsSurviveExactly) {
  Rng rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t rows = 1 + rng.Index(40);
    const std::size_t cols = 1 + rng.Index(6);
    const Dataset original = RandomDataset(rng, rows, cols);

    const std::string path_a = TempPath("roundtrip_a.csv");
    const std::string path_b = TempPath("roundtrip_b.csv");
    SaveCsv(original, path_a);
    const Dataset loaded = LoadCsv(path_a, cols, /*has_header=*/true);
    ExpectSameValues(original, loaded);

    SaveCsv(loaded, path_b);
    EXPECT_EQ(ReadFileBytes(path_a), ReadFileBytes(path_b))
        << "second CSV save differs from the first (trial " << trial << ")";
  }
}

TEST(CsvRoundTripTest, NegativeZeroAndExtremesSurvive) {
  Dataset data(3);
  data.AddRow(std::vector<double>{-0.0, std::numeric_limits<double>::max(),
                                  std::numeric_limits<double>::min()},
              1);
  data.AddRow(std::vector<double>{1e308, -1e308, 2.2250738585072014e-308},
              0);
  const std::string path = TempPath("roundtrip_extreme.csv");
  SaveCsv(data, path);
  const Dataset loaded = LoadCsv(path, 3);
  ExpectSameValues(data, loaded);
  // CSV preserves the sign of zero (prints "-0").
  EXPECT_TRUE(std::signbit(loaded.At(0, 0)));
}

TEST(CsvRoundTripTest, FeatureKindsAreNotPersisted) {
  // CSV carries no schema row, so categorical marks do not survive a
  // round trip — only the codes do. Pinned as documented behaviour:
  // callers must re-apply set_feature_kind after LoadCsv.
  Dataset data(2);
  data.set_feature_kind(1, FeatureKind::kCategorical);
  data.AddRow(std::vector<double>{0.5, 3.0}, 1);
  data.AddRow(std::vector<double>{-1.5, 7.0}, 0);
  const std::string path = TempPath("roundtrip_kinds.csv");
  SaveCsv(data, path);
  const Dataset loaded = LoadCsv(path, 2);
  ExpectSameValues(data, loaded);
  EXPECT_EQ(loaded.feature_kind(1), FeatureKind::kNumerical);
  EXPECT_FALSE(loaded.HasCategoricalFeatures());
}

TEST(LibsvmRoundTripTest, RandomSparseDatasetsSurviveExactly) {
  Rng rng(97);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t rows = 1 + rng.Index(40);
    const std::size_t cols = 1 + rng.Index(6);
    const Dataset original = RandomDataset(rng, rows, cols);

    const std::string path_a = TempPath("roundtrip_a.libsvm");
    const std::string path_b = TempPath("roundtrip_b.libsvm");
    SaveLibsvm(original, path_a);
    // Explicit width: the sparse format cannot represent trailing
    // all-zero columns, so inference would narrow the dataset.
    const Dataset loaded = LoadLibsvm(path_a, cols);
    ASSERT_EQ(loaded.num_features(), cols);
    ASSERT_EQ(loaded.num_rows(), original.num_rows());
    for (std::size_t i = 0; i < original.num_rows(); ++i) {
      EXPECT_EQ(original.Label(i), loaded.Label(i));
      for (std::size_t j = 0; j < cols; ++j) {
        const double v = original.At(i, j);
        const double w = loaded.At(i, j);
        if (v == 0.0) {
          // Sparse convention: any zero (including -0.0) is omitted and
          // reloads as +0.0. Documented lossiness.
          EXPECT_EQ(w, 0.0);
        } else {
          EXPECT_EQ(std::memcmp(&v, &w, sizeof(double)), 0)
              << "trial " << trial << " row " << i << " col " << j;
        }
      }
    }

    SaveLibsvm(loaded, path_b);
    EXPECT_EQ(ReadFileBytes(path_a), ReadFileBytes(path_b))
        << "second LIBSVM save differs from the first (trial " << trial
        << ")";
  }
}

TEST(LibsvmRoundTripTest, WidthInferenceDropsTrailingZeroColumns) {
  // The documented trap: without an explicit num_features, a dataset
  // whose last column is all zeros comes back narrower.
  Dataset data(3);
  data.AddRow(std::vector<double>{1.0, 2.0, 0.0}, 1);
  data.AddRow(std::vector<double>{0.0, 4.0, 0.0}, 0);
  const std::string path = TempPath("roundtrip_width.libsvm");
  SaveLibsvm(data, path);
  EXPECT_EQ(LoadLibsvm(path).num_features(), 2u);
  EXPECT_EQ(LoadLibsvm(path, 3).num_features(), 3u);
}

TEST(LibsvmRoundTripTest, LabelEncodingsNormalizeToZeroOne) {
  // {-1,+1} and {1,2} files both load as {0,1}; a save after load uses
  // the canonical encoding, so the *second* round trip is stable even
  // though the first normalizes.
  const std::string path = TempPath("roundtrip_labels.libsvm");
  {
    std::ofstream out(path);
    out << "-1 1:0.5\n+1 2:1.5\n";
  }
  const Dataset pm = LoadLibsvm(path, 2);
  EXPECT_EQ(pm.Label(0), 0);
  EXPECT_EQ(pm.Label(1), 1);
  {
    std::ofstream out(path);
    out << "1 1:0.5\n2 2:1.5\n";
  }
  const Dataset one_two = LoadLibsvm(path, 2);
  EXPECT_EQ(one_two.Label(0), 0);
  EXPECT_EQ(one_two.Label(1), 1);

  const std::string path_b = TempPath("roundtrip_labels_b.libsvm");
  const std::string path_c = TempPath("roundtrip_labels_c.libsvm");
  SaveLibsvm(one_two, path_b);
  SaveLibsvm(LoadLibsvm(path_b, 2), path_c);
  EXPECT_EQ(ReadFileBytes(path_b), ReadFileBytes(path_c));
}

}  // namespace
}  // namespace spe
