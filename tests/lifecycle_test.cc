// Tests for the spe::lifecycle layer: the versioned model registry, the
// atomic hot-swap contract (every batch scored entirely by one version,
// bit-identical to that version standalone), shadow scoring, and the
// hardness-distribution drift detector. Threaded — carries the
// `sanitize` ctest label so the swap-under-load test runs under
// SPE_SANITIZE=thread builds.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/fault.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/io/model_io.h"
#include "spe/lifecycle/drift.h"
#include "spe/lifecycle/model_registry.h"
#include "spe/obs/metrics.h"
#include "spe/serve/batch_scorer.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using lifecycle::DriftConfig;
using lifecycle::HardnessDriftDetector;
using lifecycle::ModelRegistry;
using lifecycle::ModelVersion;

std::unique_ptr<SelfPacedEnsemble> TrainSpe(std::uint64_t seed) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 4;
  config.seed = seed;
  auto model = std::make_unique<SelfPacedEnsemble>(config);
  model->Fit(OverlappingBlobs(300, 40, seed));
  return model;
}

std::uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

double GaugeValue(const char* name) {
  return obs::MetricsRegistry::Global().GetGauge(name).value();
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("spe_lifecycle_test_") + name))
      .string();
}

TEST(ModelRegistryTest, InstallAssignsMonotonicVersionsAndRoles) {
  ModelRegistry registry;
  auto a = registry.Install(TrainSpe(1), 2, "a.model");
  auto b = registry.Install(TrainSpe(2), 2);
  auto c = registry.Install(TrainSpe(3), 2);
  EXPECT_EQ(a->version(), 1u);
  EXPECT_EQ(b->version(), 2u);
  EXPECT_EQ(c->version(), 3u);
  EXPECT_EQ(a->manifest().source_path, "a.model");
  EXPECT_EQ(a->manifest().model_name, "SPE4");

  EXPECT_EQ(registry.active(), nullptr);
  EXPECT_TRUE(registry.Activate(a).empty());
  ASSERT_NE(registry.active(), nullptr);
  EXPECT_EQ(registry.active()->version(), 1u);
  registry.SetShadow(b);

  const auto manifests = registry.Manifests();
  ASSERT_EQ(manifests.size(), 3u);
  EXPECT_EQ(manifests[0].role, "active");
  EXPECT_EQ(manifests[1].role, "shadow");
  EXPECT_EQ(manifests[2].role, "loaded");

  // Activating b promotes it and demotes a to a plain loaded version.
  EXPECT_TRUE(registry.Activate(b).empty());
  EXPECT_EQ(registry.active()->version(), 2u);
  EXPECT_EQ(registry.Manifests()[0].role, "loaded");
}

TEST(ModelRegistryTest, ActivateRefusesFeatureWidthChange) {
  ModelRegistry registry;
  auto narrow = registry.Install(TrainSpe(1), 2);
  ASSERT_TRUE(registry.Activate(narrow).empty());
  // Declared three-wide: the registry must refuse to swap the input
  // schema out from under a live stream.
  auto wide = registry.Install(TrainSpe(2), 3);
  const std::string error = registry.Activate(wide);
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("feature"), std::string::npos) << error;
  EXPECT_EQ(registry.active()->version(), narrow->version());
}

TEST(ModelRegistryTest, LoadFromFileRefusesBrokenArtifactsWithoutAborting) {
  ModelRegistry registry;
  const std::uint64_t failures_before =
      CounterValue("spe_lifecycle_load_failures_total");

  auto missing = registry.LoadFromFile(TempPath("does_not_exist.model"));
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos)
      << missing.error;

  const std::string garbage_path = TempPath("garbage.model");
  {
    std::ofstream os(garbage_path);
    os << "definitely not a model artifact\n";
  }
  auto garbage = registry.LoadFromFile(garbage_path);
  EXPECT_FALSE(garbage.ok());
  EXPECT_FALSE(garbage.error.empty());

  // A refused load must leave no trace in the version list and count as
  // a failure, not a load.
  EXPECT_TRUE(registry.Manifests().empty());
  EXPECT_EQ(CounterValue("spe_lifecycle_load_failures_total"),
            failures_before + 2);
  std::filesystem::remove(garbage_path);
}

TEST(ModelRegistryTest, FlakyArtifactReadEventuallyLoadsAndActivates) {
  // A healthy artifact behind flaky I/O (injected transient read
  // faults) must load through the retry policy and activate — the
  // difference between a mount blip and a lost deploy.
  const std::string path = TempPath("flaky.model");
  {
    auto model = TrainSpe(11);
    SaveModelBundleToFile(*model, 2, path);
  }
  ModelRegistry registry;
  RetryPolicy fast;
  fast.max_attempts = 8;
  fast.initial_backoff_ms = 1;
  registry.set_load_retry(fast);

  // Certain failure first: every attempt faults, the retry budget runs
  // out, and the load is refused without touching the version list.
  FaultConfig faults;
  faults.artifact_read_fail_rate = 1.0;
  Faults().Configure(faults);
  auto refused = registry.LoadFromFile(path);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.error.find("injected fault"), std::string::npos)
      << refused.error;
  EXPECT_TRUE(registry.Manifests().empty());

  // Flaky-then-healthy: at a 50% deterministic fault rate the retries
  // get through well inside 8 attempts, and the loaded version
  // activates normally.
  faults.artifact_read_fail_rate = 0.5;
  faults.seed = 3;
  Faults().Configure(faults);
  auto loaded = registry.LoadFromFile(path);
  Faults().Reset();
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_TRUE(registry.Activate(loaded.version).empty());
  EXPECT_EQ(registry.active()->version(), loaded.version->version());
  std::filesystem::remove(path);
}

TEST(ModelRegistryTest, LoadFromFileCarriesManifestAndDriftBaseline) {
  const std::string path = TempPath("v3.model");
  {
    auto model = TrainSpe(5);
    ASSERT_NE(model->training_hardness(), nullptr);
    SaveModelBundleToFile(*model, 2, path);
  }
  ModelRegistry registry;
  auto loaded = registry.LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const lifecycle::VersionManifest& manifest = loaded.version->manifest();
  EXPECT_EQ(manifest.format_version, 3);
  EXPECT_EQ(manifest.num_features, 2u);
  EXPECT_GT(manifest.payload_bytes, 0u);
  EXPECT_EQ(manifest.crc32_hex.size(), 8u);
  EXPECT_TRUE(manifest.has_hardness_histogram);
  EXPECT_EQ(manifest.model_name, "VotingEnsemble");
  // The v3 histogram becomes a live drift baseline on the version.
  ASSERT_NE(loaded.version->drift(), nullptr);
  EXPECT_FALSE(loaded.version->drift()->baseline().empty());
  std::filesystem::remove(path);
}

TEST(LifecycleScorerTest, HotSwapIsBitIdenticalPerVersion) {
  auto registry = std::make_shared<ModelRegistry>();
  auto a = registry->Install(TrainSpe(11), 2);
  auto b = registry->Install(TrainSpe(12), 2);
  ASSERT_TRUE(registry->Activate(a).empty());

  const Dataset test = OverlappingBlobs(40, 10, 99);
  const std::vector<double> expect_a = a->model().PredictProba(test);
  const std::vector<double> expect_b = b->model().PredictProba(test);

  BatchScorerConfig config;
  config.num_workers = 2;
  BatchScorer scorer(registry, config);
  const std::vector<double> before = scorer.ScoreBatch(test);
  ASSERT_EQ(before.size(), expect_a.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], expect_a[i]) << "row " << i << " pre-swap";
  }

  ASSERT_TRUE(registry->Activate(b).empty());
  const std::vector<double> after = scorer.ScoreBatch(test);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], expect_b[i]) << "row " << i << " post-swap";
  }
  EXPECT_EQ(GaugeValue("spe_lifecycle_active_version"),
            static_cast<double>(b->version()));
}

TEST(LifecycleScorerTest, SwapUnderConcurrentLoadDropsNothing) {
  auto registry = std::make_shared<ModelRegistry>();
  auto a = registry->Install(TrainSpe(21), 2);
  auto b = registry->Install(TrainSpe(22), 2);
  ASSERT_TRUE(registry->Activate(a).empty());

  const std::vector<double> row = {1.0, 0.5};
  Dataset one(2);
  one.AddRow(row, 0);
  const double proba_a = a->model().PredictProba(one)[0];
  const double proba_b = b->model().PredictProba(one)[0];
  ASSERT_NE(proba_a, proba_b) << "seeds produced identical models";

  BatchScorerConfig config;
  config.num_workers = 2;
  config.max_batch_delay_us = 0;
  BatchScorer scorer(registry, config);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scored{0};
  std::atomic<std::uint64_t> alien{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const double p = scorer.Score(row);
        // Every response must be one of the two versions' exact
        // outputs — a swap mid-batch would blend them.
        if (p != proba_a && p != proba_b) {
          alien.fetch_add(1, std::memory_order_relaxed);
        }
        scored.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int swap = 0; swap < 50; ++swap) {
    ASSERT_TRUE(registry->Activate(swap % 2 == 0 ? b : a).empty());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(alien.load(), 0u);
  EXPECT_GT(scored.load(), 0u);
}

TEST(LifecycleScorerTest, ShadowScoringPopulatesDiffCounters) {
  auto registry = std::make_shared<ModelRegistry>();
  auto a = registry->Install(TrainSpe(31), 2);
  auto b = registry->Install(TrainSpe(32), 2);
  ASSERT_TRUE(registry->Activate(a).empty());
  registry->SetShadow(b);

  const std::uint64_t batches_before =
      CounterValue("spe_lifecycle_shadow_batches_total");
  const std::uint64_t rows_before =
      CounterValue("spe_lifecycle_shadow_rows_total");

  BatchScorerConfig config;
  config.num_workers = 1;
  config.shadow_every = 1;  // shadow every batch — deterministic counts
  BatchScorer scorer(registry, config);
  const Dataset rows = OverlappingBlobs(30, 10, 77);
  scorer.ScoreBatch(rows);
  scorer.Shutdown();

  EXPECT_GT(CounterValue("spe_lifecycle_shadow_batches_total"),
            batches_before);
  EXPECT_EQ(CounterValue("spe_lifecycle_shadow_rows_total"),
            rows_before + rows.num_rows());
  EXPECT_EQ(GaugeValue("spe_lifecycle_shadow_version"),
            static_cast<double>(b->version()));
}

TEST(DriftDetectorTest, SilentOnTrainingDistribution) {
  auto model = TrainSpe(41);
  ASSERT_NE(model->training_hardness(), nullptr);
  DriftConfig config;
  config.min_samples = 100;
  HardnessDriftDetector detector(*model->training_hardness(), config);

  // Live traffic that looks exactly like training: the model's own
  // probabilities on the majority rows it was profiled on (for AE
  // hardness with label 0, hardness == probability).
  const Dataset train = OverlappingBlobs(300, 40, 41);
  const std::vector<double> probs = model->PredictProba(train);
  std::vector<double> majority_probs;
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    if (train.Label(i) == 0) majority_probs.push_back(probs[i]);
  }
  ASSERT_GE(majority_probs.size(), config.min_samples);
  detector.ObserveBatch(majority_probs);

  EXPECT_GE(detector.live_total(), config.min_samples);
  EXPECT_LT(detector.Psi(), config.psi_threshold);
  EXPECT_FALSE(detector.Alerting());
}

TEST(DriftDetectorTest, FiresOnShiftedDistributionAfterMinSamples) {
  auto model = TrainSpe(42);
  ASSERT_NE(model->training_hardness(), nullptr);
  DriftConfig config;
  config.min_samples = 100;
  HardnessDriftDetector detector(*model->training_hardness(), config);
  const double hard = detector.baseline().max;  // lands in the top bin

  // Below min_samples no verdict is rendered, however extreme the data.
  for (std::uint64_t i = 0; i + 1 < config.min_samples; ++i) {
    detector.Observe(hard);
  }
  EXPECT_FALSE(detector.Alerting());

  const std::uint64_t alerts_before =
      CounterValue("spe_lifecycle_drift_alerts_total");
  for (int i = 0; i < 200; ++i) detector.Observe(hard);
  EXPECT_GT(detector.Psi(), config.psi_threshold);
  EXPECT_TRUE(detector.Alerting());

  // Publish increments the alert counter on the 0 -> 1 edge only.
  detector.Publish();
  detector.Publish();
  EXPECT_EQ(CounterValue("spe_lifecycle_drift_alerts_total"),
            alerts_before + 1);
  EXPECT_EQ(GaugeValue("spe_lifecycle_drift_alert"), 1.0);
  EXPECT_GT(GaugeValue("spe_lifecycle_drift_psi"), config.psi_threshold);
}

TEST(DriftDetectorTest, ScoringThroughRegistryFeedsActiveVersionsDetector) {
  const std::string path = TempPath("drift_feed.model");
  {
    auto model = TrainSpe(43);
    SaveModelBundleToFile(*model, 2, path);
  }
  DriftConfig drift;
  drift.min_samples = 8;
  auto registry = std::make_shared<ModelRegistry>(drift);
  auto loaded = registry->LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  ASSERT_TRUE(registry->Activate(loaded.version).empty());
  ASSERT_NE(loaded.version->drift(), nullptr);

  BatchScorerConfig config;
  config.num_workers = 1;
  BatchScorer scorer(registry, config);
  scorer.ScoreBatch(OverlappingBlobs(20, 5, 44));
  scorer.Shutdown();
  EXPECT_EQ(loaded.version->drift()->live_total(), 25u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace spe
