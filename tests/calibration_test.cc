#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/split.h"
#include "spe/metrics/calibration.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

TEST(PlattCalibratorTest, RecoversASigmoidRelationship) {
  // Labels drawn from sigmoid(3s - 1): the fitted (a, b) must land close.
  Rng rng(1);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 4000; ++i) {
    const double s = rng.Uniform(-2.0, 2.0);
    scores.push_back(s);
    labels.push_back(rng.Uniform() < 1.0 / (1.0 + std::exp(-(3.0 * s - 1.0))));
  }
  PlattCalibrator calibrator;
  calibrator.Fit(labels, scores);
  EXPECT_NEAR(calibrator.a(), 3.0, 0.5);
  EXPECT_NEAR(calibrator.b(), -1.0, 0.3);
}

TEST(PlattCalibratorTest, TransformIsMonotone) {
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.3, 0.6, 0.9};
  PlattCalibrator calibrator;
  calibrator.Fit(labels, scores);
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double p = calibrator.Transform(s);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(PlattCalibratorDeathTest, SingleClassAborts) {
  PlattCalibrator calibrator;
  EXPECT_DEATH(calibrator.Fit({1, 1}, {0.2, 0.4}), "both classes");
}

TEST(IsotonicCalibratorTest, HandComputedPava) {
  // Score-sorted labels 0, 1, 0, 1: PAVA pools the middle violation
  // (1 then 0) into one 0.5 block, leaving blocks {0}, {0.5}, {1}.
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<double> scores = {0.1, 0.4, 0.6, 0.9};
  IsotonicCalibrator calibrator;
  calibrator.Fit(labels, scores);
  ASSERT_EQ(calibrator.knot_values().size(), 3u);
  EXPECT_DOUBLE_EQ(calibrator.knot_values()[0], 0.0);
  EXPECT_DOUBLE_EQ(calibrator.knot_values()[1], 0.5);
  EXPECT_DOUBLE_EQ(calibrator.knot_values()[2], 1.0);
  EXPECT_DOUBLE_EQ(calibrator.knot_scores()[1], 0.5);  // centroid of 0.4, 0.6
}

TEST(IsotonicCalibratorTest, PerfectlySortedDataIsUntouched) {
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  IsotonicCalibrator calibrator;
  calibrator.Fit(labels, scores);
  EXPECT_DOUBLE_EQ(calibrator.Transform(0.05), 0.0);
  EXPECT_DOUBLE_EQ(calibrator.Transform(0.95), 1.0);
}

TEST(IsotonicCalibratorTest, TransformIsMonotoneAndClamped) {
  Rng rng(2);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) {
    const double s = rng.Uniform();
    scores.push_back(s);
    labels.push_back(rng.Uniform() < s * s);  // convex miscalibration
  }
  IsotonicCalibrator calibrator;
  calibrator.Fit(labels, scores);
  double prev = -1.0;
  for (double s = -0.5; s <= 1.5; s += 0.01) {
    const double p = calibrator.Transform(s);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(IsotonicCalibratorTest, ReducesBrierScoreOfMiscalibratedScores) {
  // Scores = sqrt(true probability): ranking is perfect, calibration is
  // badly convex. Isotonic regression must cut the Brier score.
  Rng rng(3);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 3000; ++i) {
    const double p = rng.Uniform();
    labels.push_back(rng.Uniform() < p);
    scores.push_back(std::sqrt(p));
  }
  IsotonicCalibrator calibrator;
  calibrator.Fit(labels, scores);
  const std::vector<double> calibrated = calibrator.Transform(scores);
  EXPECT_LT(BrierScore(labels, calibrated), BrierScore(labels, scores) - 0.01);
  // Monotone map: ranking metrics unchanged (up to PAVA's flat ties).
  EXPECT_NEAR(AucRoc(labels, calibrated), AucRoc(labels, scores), 0.02);
}

TEST(CalibrationIntegrationTest, CalibratingSpeScoresHelpsOnSkewedData) {
  // SPE trains on balanced subsets, so raw scores over-estimate the
  // positive rate on imbalanced data; Platt scaling on Ddev must lower
  // the Brier score on the test split.
  const Dataset data = testing::OverlappingBlobs(4000, 120, 4);
  Rng rng(5);
  const TrainValTest parts = StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  SelfPacedEnsemble model(config);
  model.Fit(parts.train);

  PlattCalibrator calibrator;
  calibrator.Fit(parts.validation.labels(),
                 model.PredictProba(parts.validation));
  const std::vector<double> raw = model.PredictProba(parts.test);
  const std::vector<double> calibrated = calibrator.Transform(raw);
  EXPECT_LT(BrierScore(parts.test.labels(), calibrated),
            BrierScore(parts.test.labels(), raw));
}

}  // namespace
}  // namespace spe
