// The determinism contract of the parallel training engine: training
// and scoring are bit-identical for any thread count. Verified by
// running every parallelized trainer at SetNumThreads(1) and (8) and
// byte-comparing predictions and serialized model artifacts.
//
// These tests are also the TSan workload: a `cmake -DSPE_SANITIZE=thread`
// build instruments this binary like every other test, and the 8-thread
// runs here drive the pool through member-parallel training, row-chunked
// scoring, and nested parallel regions.

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/bagging.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/parallel.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/io/model_io.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

// Serialized-artifact text for a trained model; SaveClassifier prints
// doubles at max_digits10, so equal strings mean equal bits.
std::string Artifact(const Classifier& model) {
  std::ostringstream os;
  SaveClassifier(model, os);
  return os.str();
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(double)) == 0);
}

// Trains a fresh model at each thread count and requires bit-identical
// predictions and artifacts. The train set is big enough (> 2 * 256
// rows) that scoring actually fans out at 8 threads.
template <typename MakeModel>
void ExpectThreadCountInvariant(MakeModel make_model) {
  const Dataset train = OverlappingBlobs(1200, 80, 50);
  const Dataset test = OverlappingBlobs(900, 45, 51);

  SetNumThreads(1);
  auto serial = make_model();
  serial->Fit(train);
  const std::vector<double> serial_probs = serial->PredictProba(test);
  const std::string serial_artifact = Artifact(*serial);

  SetNumThreads(8);
  auto parallel = make_model();
  parallel->Fit(train);
  const std::vector<double> parallel_probs = parallel->PredictProba(test);
  const std::string parallel_artifact = Artifact(*parallel);
  SetNumThreads(0);

  EXPECT_TRUE(SameBits(serial_probs, parallel_probs));
  EXPECT_EQ(serial_artifact, parallel_artifact);
}

TEST(ParallelTrainTest, SelfPacedEnsembleIsThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    SelfPacedEnsembleConfig config;
    config.n_estimators = 6;
    config.seed = 21;
    return std::make_unique<SelfPacedEnsemble>(config);
  });
}

TEST(ParallelTrainTest, SpeWithBootstrapIsThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    SelfPacedEnsembleConfig config;
    config.n_estimators = 5;
    config.include_bootstrap_model = true;
    config.seed = 22;
    return std::make_unique<SelfPacedEnsemble>(config);
  });
}

TEST(ParallelTrainTest, BaggingIsThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    BaggingConfig config;
    config.n_estimators = 6;
    config.seed = 23;
    return std::make_unique<Bagging>(config);
  });
}

TEST(ParallelTrainTest, RandomForestIsThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    RandomForestConfig config;
    config.n_estimators = 6;
    config.seed = 24;
    return std::make_unique<RandomForest>(config);
  });
}

TEST(ParallelTrainTest, PrefixScoringIsThreadCountInvariant) {
  // The serving layer's degradation knob must honor the same contract:
  // every prefix length scores bit-identically at 1 and 8 threads.
  const Dataset train = OverlappingBlobs(1000, 60, 52);
  const Dataset test = OverlappingBlobs(800, 40, 53);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  config.seed = 25;

  SetNumThreads(1);
  SelfPacedEnsemble model(config);
  model.Fit(train);
  std::vector<std::vector<double>> serial;
  for (std::size_t k = 1; k <= model.NumMembers(); ++k) {
    serial.push_back(model.PredictProbaPrefix(test, k));
  }
  SetNumThreads(8);
  for (std::size_t k = 1; k <= model.NumMembers(); ++k) {
    EXPECT_TRUE(SameBits(serial[k - 1], model.PredictProbaPrefix(test, k)))
        << "prefix " << k;
  }
  SetNumThreads(0);
}

TEST(ParallelTrainTest, FitWithValidationKeepsSamePrefixAcrossThreadCounts) {
  // The early-stop decision rides on float comparisons of validation
  // scores, so it inherits the bit-identity contract end to end.
  const Dataset train = OverlappingBlobs(900, 45, 54);
  const Dataset validation = OverlappingBlobs(400, 25, 55);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 8;
  config.seed = 26;

  SetNumThreads(1);
  SelfPacedEnsemble serial(config);
  const std::size_t kept_serial = serial.FitWithValidation(train, validation);
  SetNumThreads(8);
  SelfPacedEnsemble parallel(config);
  const std::size_t kept_parallel =
      parallel.FitWithValidation(train, validation);
  SetNumThreads(0);

  EXPECT_EQ(kept_serial, kept_parallel);
  EXPECT_EQ(Artifact(serial), Artifact(parallel));
}

}  // namespace
}  // namespace spe
