// Paper-faithfulness golden tests: pinned, seeded expectations for the
// quantities the paper reports — Table 2 checkerboard scores (AUCPRC /
// F1 / G-mean / MCC), the Fig. 3 per-bin sampling populations across the
// self-paced iterations, and the alpha schedule values of Algorithm 1.
// Expectations live in tests/golden/ (SPE_GOLDEN_DIR, compiled in) so a
// behaviour change shows up as a reviewable diff in version control.
//
// Regenerate after an intentional change with:
//
//   SPE_UPDATE_GOLDEN=1 ./paper_regression_test
//
// which rewrites the golden files in the *source* tree and passes.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/common/rng.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/core/self_paced_sampler.h"
#include "spe/data/synthetic.h"
#include "spe/kernels/flat_forest.h"
#include "spe/metrics/metrics.h"
#include "spe/obs/metrics.h"

namespace spe {
namespace {

using GoldenMap = std::map<std::string, double>;

bool UpdateMode() { return std::getenv("SPE_UPDATE_GOLDEN") != nullptr; }

std::string GoldenPath(const char* name) {
  return std::string(SPE_GOLDEN_DIR) + "/" + name;
}

GoldenMap LoadGolden(const char* name) {
  std::ifstream in(GoldenPath(name));
  EXPECT_TRUE(in.good()) << "missing golden file " << GoldenPath(name)
                         << " — run with SPE_UPDATE_GOLDEN=1 to create it";
  GoldenMap golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    std::string token;
    // strtod, not istream extraction: istream num_get rejects the
    // "inf" spelling the writer produces for the schedule's terminal
    // alpha.
    if (fields >> key >> token) golden[key] = std::strtod(token.c_str(), nullptr);
  }
  return golden;
}

void SaveGolden(const char* name, const GoldenMap& golden,
                const char* header) {
  std::ofstream out(GoldenPath(name));
  ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath(name);
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# " << header << "\n# Regenerate: SPE_UPDATE_GOLDEN=1 "
      << "./paper_regression_test\n";
  for (const auto& [key, value] : golden) out << key << " " << value << "\n";
}

// Compares actual against golden: every golden key must be present and
// within `tolerance`, and no unexpected keys may appear (a silently
// grown key set usually means the generator and the checker diverged).
void CompareToGolden(const char* name, const GoldenMap& actual,
                     double tolerance, const char* header) {
  if (UpdateMode()) {
    SaveGolden(name, actual, header);
    GTEST_SKIP() << "golden file " << name << " regenerated";
  }
  const GoldenMap golden = LoadGolden(name);
  EXPECT_EQ(golden.size(), actual.size()) << "key set changed for " << name;
  for (const auto& [key, expected] : golden) {
    const auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << name << " lost key " << key;
    if (std::isinf(expected)) {
      EXPECT_EQ(it->second, expected) << name << ": " << key;
    } else {
      EXPECT_NEAR(it->second, expected, tolerance) << name << ": " << key;
    }
  }
}

// ---------------------------------------------------------------------
// Alpha schedule (Algorithm 1 line 7). Pure math on pinned inputs, so
// the tolerance is essentially exact.

TEST(PaperRegressionTest, AlphaScheduleMatchesGolden) {
  GoldenMap actual;
  for (std::size_t i = 1; i <= 10; ++i) {
    actual["tan_" + std::to_string(i) + "_of_10"] =
        SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, i, 10);
    actual["linear_" + std::to_string(i) + "_of_10"] =
        SelfPacedEnsemble::AlphaAt(AlphaSchedule::kLinear, i, 10);
  }
  actual["tan_1_of_1"] = SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, 1, 1);
  actual["zero_3_of_10"] =
      SelfPacedEnsemble::AlphaAt(AlphaSchedule::kZero, 3, 10);
  actual["infinity_3_of_10"] =
      SelfPacedEnsemble::AlphaAt(AlphaSchedule::kInfinity, 3, 10);
  CompareToGolden("alpha_schedule.golden", actual, 1e-12,
                  "Algorithm 1 alpha schedule, tan(progress*pi/2) on "
                  "progress=(i-1)/(n-1)");
}

// ---------------------------------------------------------------------
// Fig. 3: per-bin drawn populations across the self-paced iterations.
// The hardness distribution is a pinned two-component mixture (mostly
// trivial samples plus a hard tail — the shape the figure illustrates);
// the per-bin draw counts are integers from a seeded Rng, so the
// comparison is exact.

TEST(PaperRegressionTest, Fig3BinPopulationsMatchGolden) {
  Rng hardness_rng(123);
  std::vector<double> hardness(5000);
  for (double& h : hardness) {
    h = hardness_rng.Index(5) == 0 ? hardness_rng.Uniform(0.6, 1.0)
                                   : hardness_rng.Uniform(0.0, 0.2);
  }

  constexpr std::size_t kBins = 10;
  constexpr std::size_t kIterations = 10;
  constexpr std::size_t kTarget = 500;
  Rng draw_rng(7);
  GoldenMap actual;
  for (std::size_t i = 1; i <= kIterations; ++i) {
    const double alpha =
        SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, i, kIterations);
    std::vector<std::size_t> population;
    const std::vector<std::size_t> pick = SelfPacedUnderSample(
        hardness, alpha, kBins, kTarget, draw_rng, &population);
    ASSERT_EQ(population.size(), kBins);
    std::size_t drawn = 0;
    for (std::size_t b = 0; b < kBins; ++b) {
      actual["iter" + std::to_string(i) + "_bin" + std::to_string(b)] =
          static_cast<double>(population[b]);
      drawn += population[b];
    }
    // The population report must account for exactly the rows picked.
    EXPECT_EQ(drawn, pick.size()) << "iteration " << i;
  }
  CompareToGolden("fig3_bin_population.golden", actual, 0.0,
                  "Fig. 3 per-bin draw counts, seeded mixture hardness");
}

// ---------------------------------------------------------------------
// Table 2 (checkerboard column): SPE10 scored on a held-out set from
// the paper's Sec. VI-A generator. Seeded end to end, and the repo's
// determinism contract makes the run thread-count-invariant, so the
// tolerance only has to absorb libm variation across toolchains.

TEST(PaperRegressionTest, CheckerboardTable2CellMatchesGolden) {
  CheckerboardConfig train_config;  // paper defaults: 1000/10000, IR = 10
  // Fig. 5's low-noise setting: with covariance 0.10 the 4x4 cells
  // overlap enough that the cell scores hover near 0.5 and the golden
  // would mostly pin label noise; 0.05 keeps the grid separable so the
  // pinned scores sit in the high-signal regime Table 2 reports.
  train_config.covariance = 0.05;
  CheckerboardConfig test_config = train_config;
  Rng rng(42);
  const Dataset train = MakeCheckerboard(train_config, rng);
  const Dataset test = MakeCheckerboard(test_config, rng);

  SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = 42;
  SelfPacedEnsemble model(config,
                          std::make_unique<DecisionTree>(DecisionTreeConfig{}));
  model.Fit(train);
  const ScoreSummary scores =
      Evaluate(test.labels(), model.PredictProba(test));

  GoldenMap actual;
  actual["aucprc"] = scores.aucprc;
  actual["f1"] = scores.f1;
  actual["gmean"] = scores.gmean;
  actual["mcc"] = scores.mcc;
  CompareToGolden("checkerboard_table2.golden", actual, 5e-3,
                  "SPE10 on seeded 4x4 checkerboard (IR=10), Table 2 "
                  "criteria at threshold 0.5");

  // The scores must also clear the paper's qualitative bar: SPE beats
  // the random-guess AUCPRC baseline (prevalence ~ 1/11) by a wide
  // margin on this easy synthetic geometry.
  EXPECT_GT(scores.aucprc, 0.5);
  EXPECT_GT(scores.f1, 0.5);

  // Fit ran instrumented (obs defaults on): the final iteration's alpha
  // gauge must show the schedule's terminal +inf and the bin-population
  // gauges must be populated — the observable side of the same run.
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    EXPECT_TRUE(std::isinf(registry.GetGauge("spe_fit_alpha").value()));
    double population = 0.0;
    for (std::size_t b = 0; b < config.num_bins; ++b) {
      population += registry
                        .GetGauge("spe_fit_bin_population{bin=\"" +
                                  std::to_string(b) + "\"}")
                        .value();
    }
    EXPECT_GT(population, 0.0);
  }
}

// ---------------------------------------------------------------------
// Kernel v2 parity contract: the opt-in f32 scoring mode must reproduce
// the Table 2 checkerboard cell to golden precision. The conformance
// suite bounds per-row probability drift; this pins the *reported paper
// numbers*, failing loudly if the f32 kernel ever drifts enough to move
// a 0.5-threshold decision or materially reshape the PR curve. The
// threshold metrics (F1/G-mean/MCC) are exactly stable under float
// narrowing on this geometry — no score sits near 0.5 — so they get
// 1e-6. AUCPRC gets 5e-5: SPE's vote-averaged scores form discrete,
// heavily tied levels, and float accumulation can merge or reorder
// near-tied rows, shifting the PR interpolation by O(1e-5) without any
// row changing side of the threshold. Both bounds are still two orders
// of magnitude below the golden tolerance (5e-3).

TEST(PaperRegressionTest, CheckerboardTable2F32KernelParity) {
  CheckerboardConfig train_config;  // same cell as the golden test above
  train_config.covariance = 0.05;
  CheckerboardConfig test_config = train_config;
  Rng rng(42);
  const Dataset train = MakeCheckerboard(train_config, rng);
  const Dataset test = MakeCheckerboard(test_config, rng);

  SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = 42;
  SelfPacedEnsemble model(config,
                          std::make_unique<DecisionTree>(DecisionTreeConfig{}));
  model.Fit(train);

  const ScoreSummary f64_scores =
      Evaluate(test.labels(), model.PredictProba(test));

  kernels::SetScoreMode(kernels::ScoreMode::kF32);
  const ScoreSummary f32_scores =
      Evaluate(test.labels(), model.PredictProba(test));
  kernels::SetScoreMode(kernels::ScoreMode::kF64);

  EXPECT_NEAR(f32_scores.aucprc, f64_scores.aucprc, 5e-5);
  EXPECT_NEAR(f32_scores.f1, f64_scores.f1, 1e-6);
  EXPECT_NEAR(f32_scores.gmean, f64_scores.gmean, 1e-6);
  EXPECT_NEAR(f32_scores.mcc, f64_scores.mcc, 1e-6);

  // And against the stored goldens themselves, at the golden tolerance:
  // the f32 numbers are the f64 numbers for Table 2 purposes.
  if (!UpdateMode()) {
    const GoldenMap golden = LoadGolden("checkerboard_table2.golden");
    EXPECT_NEAR(f32_scores.aucprc, golden.at("aucprc"), 5e-3);
    EXPECT_NEAR(f32_scores.f1, golden.at("f1"), 5e-3);
    EXPECT_NEAR(f32_scores.gmean, golden.at("gmean"), 5e-3);
    EXPECT_NEAR(f32_scores.mcc, golden.at("mcc"), 5e-3);
  }
}

}  // namespace
}  // namespace spe
