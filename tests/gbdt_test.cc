#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/gbdt/binning.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/gbdt/histogram.h"
#include "spe/classifiers/gbdt/tree.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;
using ::spe::testing::XorClusters;

// -------------------------------------------------------------- Binning --

TEST(BinningTest, BinsAreMonotoneInValue) {
  Rng rng(1);
  Dataset data(1);
  for (int i = 0; i < 1000; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian()}, 0);
  }
  gbdt::FeatureBinner binner;
  binner.Fit(data, 16);
  EXPECT_LE(binner.NumBins(0), 16);
  double prev = -10.0;
  std::uint8_t prev_bin = 0;
  for (double v = -3.0; v <= 3.0; v += 0.01) {
    const std::uint8_t bin = binner.BinOf(0, v);
    EXPECT_GE(bin, prev_bin) << "bin decreased from " << prev << " to " << v;
    prev_bin = bin;
    prev = v;
  }
}

TEST(BinningTest, UpperEdgeConsistentWithBinOf) {
  Rng rng(2);
  Dataset data(1);
  for (int i = 0; i < 500; ++i) {
    data.AddRow(std::vector<double>{rng.Uniform(0, 100)}, 0);
  }
  gbdt::FeatureBinner binner;
  binner.Fit(data, 32);
  for (int b = 0; b + 1 < binner.NumBins(0); ++b) {
    const double edge = binner.UpperEdge(0, b);
    EXPECT_LE(binner.BinOf(0, edge), b);
    EXPECT_GT(binner.BinOf(0, edge + 1e-9), b);
  }
}

TEST(BinningTest, ConstantFeatureGetsOneBin) {
  Dataset data(1);
  for (int i = 0; i < 50; ++i) data.AddRow(std::vector<double>{5.0}, 0);
  gbdt::FeatureBinner binner;
  binner.Fit(data, 64);
  EXPECT_EQ(binner.NumBins(0), 1);
}

TEST(BinningTest, FewDistinctValuesFewBins) {
  Dataset data(1);
  for (int i = 0; i < 300; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i % 3)}, 0);
  }
  gbdt::FeatureBinner binner;
  binner.Fit(data, 64);
  EXPECT_EQ(binner.NumBins(0), 3);
  EXPECT_EQ(binner.BinOf(0, 0.0), 0);
  EXPECT_EQ(binner.BinOf(0, 1.0), 1);
  EXPECT_EQ(binner.BinOf(0, 2.0), 2);
}

// ------------------------------------------------------------ Histogram --

TEST(HistogramTest, TotalsMatchInputs) {
  Rng rng(3);
  Dataset data(2);
  for (int i = 0; i < 400; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian(), rng.Uniform()}, i % 4 == 0);
  }
  gbdt::FeatureBinner binner;
  binner.Fit(data, 16);
  const gbdt::BinnedMatrix binned = binner.Transform(data);

  std::vector<double> grads(data.num_rows());
  std::vector<double> hess(data.num_rows());
  double grad_total = 0.0;
  double hess_total = 0.0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    grads[i] = rng.Gaussian();
    hess[i] = rng.Uniform(0.1, 1.0);
    grad_total += grads[i];
    hess_total += hess[i];
  }
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});

  std::vector<int> bins_per_feature = {binner.NumBins(0), binner.NumBins(1)};
  gbdt::Histograms hist(bins_per_feature);
  hist.Build(binned, rows, grads, hess);
  for (std::size_t f = 0; f < 2; ++f) {
    double g = 0.0;
    double h = 0.0;
    std::size_t count = 0;
    for (int b = 0; b < hist.NumBins(f); ++b) {
      g += hist.At(f, b).grad;
      h += hist.At(f, b).hess;
      count += hist.At(f, b).count;
    }
    EXPECT_NEAR(g, grad_total, 1e-9);
    EXPECT_NEAR(h, hess_total, 1e-9);
    EXPECT_EQ(count, data.num_rows());
  }
}

// ----------------------------------------------------------------- Tree --

TEST(RegressionTreeTest, FitsSignalAndWritesTrainScores) {
  // Step-function gradients: rows with x < 0 want +1, others want -1.
  Dataset data(1);
  for (int i = -100; i < 100; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, 0);
  }
  gbdt::FeatureBinner binner;
  binner.Fit(data, 64);
  const gbdt::BinnedMatrix binned = binner.Transform(data);
  std::vector<double> grads(data.num_rows());
  std::vector<double> hess(data.num_rows(), 1.0);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    grads[i] = data.At(i, 0) < 0 ? -1.0 : 1.0;  // leaf value = -G/H
  }
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::vector<double> scores(data.num_rows(), 0.0);
  gbdt::TreeParams params;
  gbdt::RegressionTree tree;
  tree.Fit(binned, binner, grads, hess, rows, params, scores);

  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double expected = data.At(i, 0) < 0 ? 1.0 : -1.0;
    EXPECT_NEAR(scores[i], expected, 0.1);
    data.CopyRowTo(i, row);
    EXPECT_NEAR(tree.Predict(row), scores[i], 1e-12);
  }
}

TEST(RegressionTreeTest, RespectsMaxLeaves) {
  Rng rng(4);
  Dataset data(1);
  for (int i = 0; i < 500; ++i) {
    data.AddRow(std::vector<double>{rng.Uniform()}, 0);
  }
  gbdt::FeatureBinner binner;
  binner.Fit(data, 64);
  const gbdt::BinnedMatrix binned = binner.Transform(data);
  std::vector<double> grads(data.num_rows());
  for (double& g : grads) g = rng.Gaussian();
  std::vector<double> hess(data.num_rows(), 1.0);
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::vector<double> scores(data.num_rows());
  gbdt::TreeParams params;
  params.max_leaves = 4;
  params.min_gain = 0.0;
  gbdt::RegressionTree tree;
  tree.Fit(binned, binner, grads, hess, rows, params, scores);
  EXPECT_LE(tree.NumLeaves(), 4u);
}

// ----------------------------------------------------------------- GBDT --

TEST(GbdtTest, LearnsXor) {
  const Dataset train = XorClusters(150, 5);
  const Dataset test = XorClusters(60, 6);
  GbdtConfig config;
  config.boost_rounds = 20;
  Gbdt gbdt(config);
  gbdt.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), gbdt.PredictProba(test)), 0.98);
}

TEST(GbdtTest, MoreRoundsReduceTrainError) {
  const Dataset train = OverlappingBlobs(400, 100, 7);
  GbdtConfig few;
  few.boost_rounds = 2;
  GbdtConfig many;
  many.boost_rounds = 40;
  Gbdt a(few);
  Gbdt b(many);
  a.Fit(train);
  b.Fit(train);
  EXPECT_GT(AucPrc(train.labels(), b.PredictProba(train)),
            AucPrc(train.labels(), a.PredictProba(train)));
}

TEST(GbdtTest, PriorMatchesBaseRateOnSingleRound) {
  Dataset train(1);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    train.AddRow(std::vector<double>{rng.Uniform()}, i < 200);
  }
  Gbdt gbdt;
  gbdt.Fit(train);
  EXPECT_NEAR(gbdt.base_score(), std::log(0.2 / 0.8), 1e-9);
}

TEST(GbdtTest, EarlyStoppingTruncatesRounds) {
  // Pure-noise labels: validation loss cannot improve, so training should
  // stop after the patience window instead of running all rounds.
  Rng rng(9);
  Dataset train(2);
  Dataset validation(2);
  for (int i = 0; i < 600; ++i) {
    const std::vector<double> row = {rng.Gaussian(), rng.Gaussian()};
    (i < 400 ? train : validation).AddRow(row, rng.Uniform() < 0.5);
  }
  GbdtConfig config;
  config.boost_rounds = 100;
  config.early_stopping_rounds = 3;
  Gbdt gbdt(config);
  gbdt.FitWithValidation(train, validation);
  EXPECT_LT(gbdt.NumTrees(), 100u);
}

TEST(GbdtTest, SampleWeightsShiftPrior) {
  Dataset train(1);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    train.AddRow(std::vector<double>{rng.Uniform()}, i < 50);
  }
  std::vector<double> w(100, 1.0);
  for (int i = 0; i < 50; ++i) w[i] = 3.0;  // upweight positives
  Gbdt gbdt;
  gbdt.FitWeighted(train, w);
  EXPECT_NEAR(gbdt.base_score(), std::log(0.75 / 0.25), 1e-9);
}

TEST(GbdtTest, DeterministicAcrossFits) {
  const Dataset train = OverlappingBlobs(200, 100, 11);
  const Dataset test = OverlappingBlobs(50, 50, 12);
  Gbdt a;
  Gbdt b;
  a.Fit(train);
  b.Fit(train);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(GbdtTest, StochasticSubsamplingStillLearns) {
  const Dataset train = XorClusters(150, 20);
  const Dataset test = XorClusters(60, 21);
  GbdtConfig config;
  config.boost_rounds = 30;
  config.subsample = 0.5;
  config.seed = 7;
  Gbdt gbdt(config);
  gbdt.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), gbdt.PredictProba(test)), 0.97);
}

TEST(GbdtTest, SubsamplingSeedChangesTheModel) {
  const Dataset train = OverlappingBlobs(300, 100, 22);
  const Dataset test = OverlappingBlobs(80, 30, 23);
  GbdtConfig config;
  config.subsample = 0.6;
  Gbdt a(config);
  Gbdt b(config);
  b.Reseed(999);
  a.Fit(train);
  b.Fit(train);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  double diff = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) diff += std::abs(pa[i] - pb[i]);
  EXPECT_GT(diff, 1e-9);
}

TEST(GbdtTest, HandlesImbalancedDataWithoutCrashing) {
  const Dataset train = OverlappingBlobs(2000, 20, 13);
  Gbdt gbdt;
  gbdt.Fit(train);
  for (double p : gbdt.PredictProba(train)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace spe
