#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/metrics/metrics.h"

namespace spe {
namespace {

TEST(RocCurveTest, StartsAtOriginEndsAtOneOne) {
  const std::vector<int> labels = {1, 0, 1, 0, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.6, 0.4, 0.2};
  const auto curve = RocCurve(labels, scores);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(RocCurveTest, TrapezoidAreaMatchesAucRoc) {
  Rng rng(1);
  std::vector<int> labels(300);
  std::vector<double> scores(300);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.Uniform() < 0.3 ? 1 : 0;
    scores[i] = labels[i] == 1 ? rng.Uniform(0.3, 1.0) : rng.Uniform(0.0, 0.7);
  }
  labels[0] = 1;
  labels[1] = 0;
  const auto curve = RocCurve(labels, scores);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].fpr - curve[i - 1].fpr) *
            (curve[i].tpr + curve[i - 1].tpr) / 2.0;
  }
  EXPECT_NEAR(area, AucRoc(labels, scores), 1e-9);
}

TEST(BrierScoreTest, HandComputed) {
  const std::vector<int> labels = {1, 0};
  const std::vector<double> scores = {0.8, 0.3};
  EXPECT_NEAR(BrierScore(labels, scores), (0.04 + 0.09) / 2.0, 1e-12);
}

TEST(BrierScoreTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(BrierScore({1, 0}, {1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({1, 0}, {0.0, 1.0}), 1.0);
}

TEST(BestThresholdTest, FindsTheSeparatingCut) {
  // Scores separate perfectly at 0.5: best F1 threshold must land on a
  // positive-side score and reach F1 = 1.
  const std::vector<int> labels = {0, 0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.7, 0.9};
  const ThresholdSearchResult best = BestF1Threshold(labels, scores);
  EXPECT_DOUBLE_EQ(best.value, 1.0);
  EXPECT_GT(best.threshold, 0.3);
  EXPECT_LE(best.threshold, 0.9);
}

TEST(BestThresholdTest, BeatsTheFixedHalfCutOnShiftedScores) {
  // All scores compressed below 0.5: thresholding at 0.5 predicts
  // nothing, the tuned threshold recovers the positives.
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.10, 0.15, 0.30, 0.35};
  EXPECT_DOUBLE_EQ(F1Score(ConfusionAt(labels, scores, 0.5)), 0.0);
  const ThresholdSearchResult best = BestF1Threshold(labels, scores);
  EXPECT_DOUBLE_EQ(best.value, 1.0);
  EXPECT_DOUBLE_EQ(best.threshold, 0.30);
}

TEST(BestThresholdTest, CustomMetricMcc) {
  const std::vector<int> labels = {0, 0, 0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.6, 0.7, 0.8};
  const ThresholdSearchResult best = BestThreshold(
      labels, scores, [](const ConfusionMatrix& m) { return Mcc(m); });
  EXPECT_DOUBLE_EQ(best.value, 1.0);
  EXPECT_DOUBLE_EQ(best.threshold, 0.7);
}

TEST(BestThresholdTest, ThresholdValueMatchesDirectEvaluation) {
  Rng rng(2);
  std::vector<int> labels(200);
  std::vector<double> scores(200);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.Uniform() < 0.2 ? 1 : 0;
    scores[i] = rng.Uniform();
  }
  labels[0] = 1;
  const ThresholdSearchResult best = BestF1Threshold(labels, scores);
  EXPECT_NEAR(F1Score(ConfusionAt(labels, scores, best.threshold)), best.value,
              1e-12);
  // No coarse grid threshold may beat it.
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    EXPECT_LE(F1Score(ConfusionAt(labels, scores, t)), best.value + 1e-12);
  }
}

TEST(BestThresholdTest, AllNegativePredictionsBaseline) {
  // When every score ordering is wrong, predicting nothing can win; the
  // search must consider the +inf baseline without crashing.
  const std::vector<int> labels = {1, 0};
  const std::vector<double> scores = {0.1, 0.9};
  const ThresholdSearchResult best = BestF1Threshold(labels, scores);
  // F1: threshold 0.1 predicts both positive -> F1 = 2/3; that's best.
  EXPECT_NEAR(best.value, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace spe
