#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/knn.h"
#include "spe/data/encoding.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/smote.h"

namespace spe {
namespace {

Dataset MixedData() {
  Dataset data(3);
  data.set_feature_kind(1, FeatureKind::kCategorical);
  data.AddRow(std::vector<double>{1.5, 0.0, -2.0}, 0);
  data.AddRow(std::vector<double>{2.5, 2.0, -3.0}, 1);
  data.AddRow(std::vector<double>{3.5, 1.0, -4.0}, 0);
  data.AddRow(std::vector<double>{4.5, 2.0, -5.0}, 1);
  return data;
}

TEST(OneHotEncoderTest, ExpandsCategoricalColumns) {
  const Dataset data = MixedData();
  OneHotEncoder encoder;
  encoder.Fit(data);
  // 1 numeric + 3 categories + 1 numeric.
  EXPECT_EQ(encoder.num_output_features(), 5u);

  const Dataset out = encoder.Transform(data);
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_FALSE(out.HasCategoricalFeatures());
  // Row 0: category 0 -> one-hot slot 1.
  EXPECT_DOUBLE_EQ(out.At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(out.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.At(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(out.At(0, 4), -2.0);
  // Row 1: category 2 -> slot 3.
  EXPECT_DOUBLE_EQ(out.At(1, 3), 1.0);
  EXPECT_EQ(out.Label(1), 1);
}

TEST(OneHotEncoderTest, ExactlyOneHotPerCategoricalBlock) {
  const Dataset data = MixedData();
  OneHotEncoder encoder;
  encoder.Fit(data);
  const Dataset out = encoder.Transform(data);
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    double block_sum = 0.0;
    for (std::size_t j = 1; j <= 3; ++j) block_sum += out.At(i, j);
    EXPECT_DOUBLE_EQ(block_sum, 1.0);
  }
}

TEST(OneHotEncoderTest, UnseenCategoryMapsToZeros) {
  const Dataset data = MixedData();
  OneHotEncoder encoder;
  encoder.Fit(data);
  Dataset fresh(3);
  fresh.set_feature_kind(1, FeatureKind::kCategorical);
  fresh.AddRow(std::vector<double>{0.0, 7.0, 0.0}, 0);  // code 7 never seen
  const Dataset out = encoder.Transform(fresh);
  for (std::size_t j = 1; j <= 3; ++j) EXPECT_DOUBLE_EQ(out.At(0, j), 0.0);
}

TEST(OneHotEncoderTest, AllNumericDataPassesThrough) {
  Dataset data(2);
  data.AddRow(std::vector<double>{1.0, 2.0}, 0);
  data.AddRow(std::vector<double>{3.0, 4.0}, 1);
  OneHotEncoder encoder;
  encoder.Fit(data);
  EXPECT_EQ(encoder.num_output_features(), 2u);
  const Dataset out = encoder.Transform(data);
  EXPECT_DOUBLE_EQ(out.At(1, 1), 4.0);
}

TEST(OneHotEncoderTest, UnlocksDistanceMethodsOnPaymentSim) {
  // The headline use case: the categorical Payment data becomes
  // SMOTE-able and KNN-able after encoding.
  Rng rng(1);
  const Dataset payment = MakePaymentSim(rng, 0.1);
  ASSERT_TRUE(payment.HasCategoricalFeatures());

  OneHotEncoder encoder;
  encoder.Fit(payment);
  const Dataset encoded = encoder.Transform(payment);
  ASSERT_FALSE(encoded.HasCategoricalFeatures());

  Rng sampler_rng(2);
  const Dataset oversampled = SmoteSampler().Resample(encoded, sampler_rng);
  EXPECT_EQ(oversampled.CountPositives(), oversampled.CountNegatives());

  const TrainTest split = StratifiedSplit2(encoded, 0.7, rng);
  Knn knn;
  knn.Fit(split.train);
  const double auc = AucPrc(split.test.labels(), knn.PredictProba(split.test));
  EXPECT_GE(auc, 0.0);  // runs at all — inapplicable before encoding
}

TEST(OneHotEncoderDeathTest, TransformBeforeFitAborts) {
  OneHotEncoder encoder;
  EXPECT_DEATH(encoder.Transform(MixedData()), "before fit");
}

TEST(OneHotEncoderDeathTest, SchemaMismatchAborts) {
  OneHotEncoder encoder;
  encoder.Fit(MixedData());
  Dataset other(2);
  other.AddRow(std::vector<double>{1.0, 2.0}, 0);
  EXPECT_DEATH(encoder.Transform(other), "CHECK");
}

}  // namespace
}  // namespace spe
