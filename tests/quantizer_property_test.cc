// Property tests for the quantizer under the binned inference kernel:
// gbdt::FeatureBinner's rank semantics and the BinnedProgram lowering
// (spe/kernels/program.h) that rides on them.
//
// The load-bearing lemma, fuzzed here over random distributions and
// pinned on every edge the IEEE order has:
//
//     v <= cuts[c]   ⟺   BinOf(v) <= c
//
// for every double v (±Inf included, boundary values exactly on a cut
// included) and every cut rank c. This is what makes the uint8 descent
// byte-identical to the double comparison — if it ever broke for one
// representable value, the binned kernel would route that row down the
// wrong subtree. NaN is the deliberate exception: BinOf cannot rank it
// (every comparison is false, so lower_bound leaves it in bin 0 — the
// LEFT edge), while tree descent must send it RIGHT; the kernel
// therefore bins NaN as the 255 sentinel, which this file pins too.

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/gbdt/binning.h"
#include "spe/common/rng.h"
#include "spe/data/dataset.h"
#include "spe/kernels/program.h"

namespace spe {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

// Hostile probe values for a given cut list: every cut itself, its
// one-ulp neighbors on both sides, the infinities, zero crossings, and
// a cloud of random draws.
std::vector<double> ProbeValues(const std::vector<double>& cuts, Rng& rng) {
  std::vector<double> probes = {-kInf, kInf, 0.0, -0.0,
                                std::numeric_limits<double>::denorm_min(),
                                -std::numeric_limits<double>::denorm_min(),
                                std::numeric_limits<double>::lowest(),
                                std::numeric_limits<double>::max()};
  for (const double c : cuts) {
    probes.push_back(c);
    probes.push_back(std::nextafter(c, -kInf));
    probes.push_back(std::nextafter(c, kInf));
  }
  for (int i = 0; i < 200; ++i) probes.push_back(rng.Gaussian(0.0, 3.0));
  for (int i = 0; i < 50; ++i) probes.push_back(rng.Uniform(-1e12, 1e12));
  return probes;
}

// The lemma itself, checked exhaustively over probes × cut ranks.
void ExpectRankLemma(const gbdt::FeatureBinner& binner, std::size_t feature,
                     Rng& rng) {
  const std::span<const double> cuts = binner.Boundaries(feature);
  const std::vector<double> probes =
      ProbeValues({cuts.begin(), cuts.end()}, rng);
  for (const double v : probes) {
    const int bin = binner.BinOf(feature, v);
    for (std::size_t c = 0; c < cuts.size(); ++c) {
      EXPECT_EQ(v <= cuts[c], bin <= static_cast<int>(c))
          << "v=" << v << " cut[" << c << "]=" << cuts[c] << " bin=" << bin;
    }
  }
}

// Random continuous + low-cardinality distributions through Fit: the
// learned boundaries must satisfy the lemma regardless of how the cuts
// were chosen.
TEST(QuantizerPropertyTest, FittedBinnerSatisfiesRankLemma) {
  Rng rng(42);
  for (int round = 0; round < 8; ++round) {
    Dataset data(3);
    const std::size_t rows = 200 + 150 * static_cast<std::size_t>(round);
    for (std::size_t i = 0; i < rows; ++i) {
      // Feature 0: continuous; feature 1: heavy ties (categorical-ish);
      // feature 2: mixed sign with large magnitude spread.
      const std::vector<double> row = {
          rng.Gaussian(0.0, 2.0),
          static_cast<double>(static_cast<int>(rng.Uniform(0.0, 6.0))),
          rng.Uniform(-1.0, 1.0) * std::pow(10.0, rng.Uniform(-3.0, 6.0))};
      data.AddRow(row, i % 2 == 0 ? 0 : 1);
    }
    gbdt::FeatureBinner binner;
    binner.Fit(data, 32);
    for (std::size_t f = 0; f < 3; ++f) ExpectRankLemma(binner, f, rng);
  }
}

// Values exactly on a boundary: cut rank c holds its own cut value
// (bin(cuts[c]) == c — the `<=` side of the split), and the next
// representable double above it already ranks c + 1.
TEST(QuantizerPropertyTest, BoundaryValuesPin) {
  const std::vector<double> cuts = {-2.5, -1.0, 0.0, 0.5, 3.25};
  const gbdt::FeatureBinner binner =
      gbdt::FeatureBinner::FromBoundaries({cuts});
  for (std::size_t c = 0; c < cuts.size(); ++c) {
    EXPECT_EQ(binner.BinOf(0, cuts[c]), static_cast<int>(c));
    EXPECT_EQ(binner.BinOf(0, std::nextafter(cuts[c], kInf)),
              static_cast<int>(c) + 1);
    EXPECT_EQ(binner.BinOf(0, std::nextafter(cuts[c], -kInf)),
              static_cast<int>(c));
  }
  EXPECT_EQ(binner.BinOf(0, -kInf), 0);
  EXPECT_EQ(binner.BinOf(0, kInf), static_cast<int>(cuts.size()));
  // NaN lands in bin 0 — the LEFT edge, the opposite of tree-descent
  // routing. This pins why the kernel bins NaN as the sentinel instead
  // of calling BinOf (see kBinnedNaN in spe/kernels/program.h).
  EXPECT_EQ(binner.BinOf(0, kNaN), 0);
  EXPECT_GT(static_cast<int>(kernels::kBinnedNaN),
            static_cast<int>(cuts.size()));
}

// FromBoundaries round-trips through the accessor and UpperEdge keeps
// its contract against BinOf on the external cut lists too.
TEST(QuantizerPropertyTest, FromBoundariesRoundTrip) {
  const std::vector<std::vector<double>> bounds = {
      {-1.0, 0.0, 2.0}, {}, {5.5}};
  const gbdt::FeatureBinner binner = gbdt::FeatureBinner::FromBoundaries(bounds);
  ASSERT_EQ(binner.num_features(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    const std::span<const double> cuts = binner.Boundaries(f);
    ASSERT_EQ(cuts.size(), bounds[f].size());
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      EXPECT_EQ(cuts[i], bounds[f][i]);
      EXPECT_EQ(binner.UpperEdge(f, static_cast<int>(i)), bounds[f][i]);
      EXPECT_EQ(binner.BinOf(f, binner.UpperEdge(f, static_cast<int>(i))),
                static_cast<int>(i));
    }
    EXPECT_EQ(binner.NumBins(f), static_cast<int>(cuts.size()) + 1);
    EXPECT_EQ(binner.UpperEdge(f, static_cast<int>(cuts.size())), kInf);
  }
}

// ---- BinnedProgram lowering ------------------------------------------

// A hand-built program with one split node per threshold, so lowering
// covers every (feature, threshold) pair directly.
kernels::FlatProgram StumpProgram(
    const std::vector<std::pair<int, double>>& splits) {
  kernels::FlatProgram program;
  for (const auto& [feature, threshold] : splits) {
    kernels::FlatTreeBuilder builder(program);
    builder.AddNode(feature, threshold, 1, 2, 0.0);
    builder.AddNode(-1, 0.0, 0, 0, 0.25);
    builder.AddNode(-1, 0.0, 0, 0, 0.75);
    builder.Finish();
  }
  return program;
}

// Fuzz: random stumps lowered through BuildBinnedProgram must give, for
// every split node and every probe value, the same go-right decision as
// the double comparison — with NaN routed right via the sentinel.
TEST(QuantizerPropertyTest, LoweredCutsMatchDoubleComparison) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<int, double>> splits;
    const int n = 1 + static_cast<int>(rng.Uniform(0.0, 40.0));
    for (int i = 0; i < n; ++i) {
      const int feature = static_cast<int>(rng.Uniform(0.0, 3.0));
      // Mix smooth draws with exact duplicates so some stumps share a
      // threshold (same rank) and some differ by one ulp.
      double t = rng.Gaussian(0.0, 2.0);
      if (!splits.empty() && rng.Uniform() < 0.2) t = splits.back().second;
      if (rng.Uniform() < 0.1) t = std::nextafter(t, kInf);
      splits.push_back({feature, t});
    }
    const kernels::FlatProgram program = StumpProgram(splits);
    const kernels::BinnedProgram binned = kernels::BuildBinnedProgram(program);
    ASSERT_TRUE(binned.ok);

    std::vector<double> cut_values;
    for (const auto& [feature, t] : splits) cut_values.push_back(t);
    Rng probe_rng(static_cast<std::uint64_t>(round) + 100);
    const std::vector<double> probes = ProbeValues(cut_values, probe_rng);

    for (std::size_t node = 0; node < program.pool.size(); ++node) {
      const bool leaf =
          program.pool.left[node] == static_cast<std::int32_t>(node);
      if (leaf) continue;
      const auto feature =
          static_cast<std::size_t>(program.pool.feature[node]);
      const double threshold = program.pool.threshold[node];
      for (const double v : probes) {
        const int bin = binned.binner.BinOf(feature, v);
        const bool ref_right = !(v <= threshold);
        const bool bin_right = bin > static_cast<int>(binned.cut[node]);
        EXPECT_EQ(ref_right, bin_right)
            << "node=" << node << " v=" << v << " t=" << threshold;
      }
      // NaN: reference routes right; the kernel's sentinel must too.
      EXPECT_TRUE(!(kNaN <= threshold));
      EXPECT_GT(static_cast<int>(kernels::kBinnedNaN),
                static_cast<int>(binned.cut[node]));
    }
  }
}

// ±Inf thresholds are representable ranks like any other value: the
// lemma is pure ordering, so lowering handles them without special
// cases.
TEST(QuantizerPropertyTest, InfinityThresholdsLower) {
  const kernels::FlatProgram program =
      StumpProgram({{0, -kInf}, {0, 0.0}, {0, kInf}});
  const kernels::BinnedProgram binned = kernels::BuildBinnedProgram(program);
  ASSERT_TRUE(binned.ok);
  Rng rng(11);
  const std::vector<double> probes = ProbeValues({-kInf, 0.0, kInf}, rng);
  for (const std::size_t node : {std::size_t{0}, std::size_t{3},
                                 std::size_t{6}}) {
    const double threshold = program.pool.threshold[node];
    for (const double v : probes) {
      const int bin = binned.binner.BinOf(0, v);
      EXPECT_EQ(!(v <= threshold),
                bin > static_cast<int>(binned.cut[node]))
          << "t=" << threshold << " v=" << v;
    }
  }
}

// Capacity boundary: exactly kBinnedMaxCuts distinct thresholds on one
// feature lowers; one more must refuse (bin indices would collide with
// the NaN sentinel).
TEST(QuantizerPropertyTest, CapacityBoundary) {
  std::vector<std::pair<int, double>> splits;
  for (std::size_t i = 0; i < kernels::kBinnedMaxCuts; ++i) {
    splits.push_back({0, static_cast<double>(i)});
  }
  EXPECT_TRUE(kernels::BuildBinnedProgram(StumpProgram(splits)).ok);
  splits.push_back({0, static_cast<double>(kernels::kBinnedMaxCuts)});
  EXPECT_FALSE(kernels::BuildBinnedProgram(StumpProgram(splits)).ok);
  // Capacity is per feature: the same counts spread over two features
  // lower fine.
  std::vector<std::pair<int, double>> spread;
  for (std::size_t i = 0; i < kernels::kBinnedMaxCuts + 1; ++i) {
    spread.push_back({static_cast<int>(i % 2), static_cast<double>(i)});
  }
  EXPECT_TRUE(kernels::BuildBinnedProgram(StumpProgram(spread)).ok);
}

// A NaN threshold has no rank; the lowering must refuse rather than
// misroute every row.
TEST(QuantizerPropertyTest, NanThresholdRefusesToLower) {
  EXPECT_FALSE(kernels::BuildBinnedProgram(StumpProgram({{0, kNaN}})).ok);
}

}  // namespace
}  // namespace spe
