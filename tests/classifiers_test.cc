#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/factory.h"
#include "spe/classifiers/knn.h"
#include "spe/classifiers/lda.h"
#include "spe/classifiers/linear_svm.h"
#include "spe/classifiers/logistic_regression.h"
#include "spe/classifiers/mlp.h"
#include "spe/classifiers/naive_bayes.h"
#include "spe/classifiers/rff.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::SeparableBlobs;
using ::spe::testing::XorClusters;

// ----------------------------------------------------------------- KNN --

TEST(KnnTest, ExactNeighborVote) {
  Dataset train(1);
  train.AddRow(std::vector<double>{0.0}, 0);
  train.AddRow(std::vector<double>{1.0}, 0);
  train.AddRow(std::vector<double>{10.0}, 1);
  train.AddRow(std::vector<double>{11.0}, 1);
  Knn knn(KnnConfig{.k = 2, .standardize = false});
  knn.Fit(train);
  EXPECT_DOUBLE_EQ(knn.PredictRow(std::vector<double>{0.5}), 0.0);
  EXPECT_DOUBLE_EQ(knn.PredictRow(std::vector<double>{10.5}), 1.0);
  // Midpoint: nearest two are one of each.
  EXPECT_DOUBLE_EQ(knn.PredictRow(std::vector<double>{5.51}), 0.5);
}

TEST(KnnTest, BatchMatchesSingleRow) {
  const Dataset train = SeparableBlobs(100, 50, 1);
  const Dataset test = SeparableBlobs(20, 20, 2);
  Knn knn;
  knn.Fit(train);
  const std::vector<double> batch = knn.PredictProba(test);
  std::vector<double> row(test.num_features());
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    test.CopyRowTo(i, row);
    EXPECT_DOUBLE_EQ(batch[i], knn.PredictRow(row));
  }
}

TEST(KnnTest, StandardizationMattersForSkewedScales) {
  // Feature 1 carries the signal but has tiny scale; feature 0 is noise
  // with huge scale. Standardized KNN must recover the signal.
  Rng rng(3);
  Dataset train(2);
  Dataset test(2);
  for (int i = 0; i < 300; ++i) {
    const int label = i % 2;
    const std::vector<double> row = {rng.Gaussian(0.0, 1000.0),
                                     label == 1 ? 0.01 + 0.001 * rng.Gaussian()
                                                : -0.01 + 0.001 * rng.Gaussian()};
    (i < 200 ? train : test).AddRow(row, label);
  }
  Knn knn(KnnConfig{.k = 5, .standardize = true});
  knn.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), knn.PredictProba(test)), 0.95);
}

TEST(KnnTest, DistanceWeightedVotesFavorTheCloserClass) {
  Dataset train(1);
  train.AddRow(std::vector<double>{0.0}, 0);
  train.AddRow(std::vector<double>{10.0}, 1);
  Knn knn(KnnConfig{.k = 2, .standardize = false, .distance_weighted = true});
  knn.Fit(train);
  // Uniform voting would say 0.5 everywhere; weighting must lean toward
  // the nearer neighbour.
  EXPECT_LT(knn.PredictRow(std::vector<double>{2.0}), 0.5);
  EXPECT_GT(knn.PredictRow(std::vector<double>{8.0}), 0.5);
}

TEST(KnnTest, DistanceWeightingGivesContinuousScores) {
  // Overlapping classes so neighbourhoods are mixed; weighting then
  // produces a distinct score per query point.
  const Dataset train = testing::OverlappingBlobs(100, 100, 30);
  const Dataset test = testing::OverlappingBlobs(50, 50, 31);
  Knn weighted(KnnConfig{.k = 5, .standardize = true, .distance_weighted = true});
  weighted.Fit(train);
  std::set<double> distinct;
  for (double p : weighted.PredictProba(test)) distinct.insert(p);
  // Uniform voting yields at most k + 1 = 6 distinct values.
  EXPECT_GT(distinct.size(), 6u);
}

// ------------------------------------------------- Logistic regression --

TEST(LogisticRegressionTest, LearnsLinearBoundary) {
  const Dataset train = SeparableBlobs(300, 300, 4);
  const Dataset test = SeparableBlobs(100, 100, 5);
  LogisticRegression lr;
  lr.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), lr.PredictProba(test)), 0.99);
}

TEST(LogisticRegressionTest, WeightsTiltTheBoundary) {
  // Overlapping classes: upweighting positives must raise predicted
  // probabilities at the overlap midpoint.
  const Dataset train = testing::OverlappingBlobs(200, 200, 6);
  LogisticRegression plain;
  plain.Fit(train);
  LogisticRegression tilted;
  std::vector<double> w(train.num_rows(), 1.0);
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    if (train.Label(i) == 1) w[i] = 10.0;
  }
  tilted.FitWeighted(train, w);
  const std::vector<double> mid = {0.75, 0.75};
  EXPECT_GT(tilted.PredictRow(mid), plain.PredictRow(mid));
}

TEST(LogisticRegressionTest, DeterministicGivenSeed) {
  const Dataset train = SeparableBlobs(100, 100, 7);
  LogisticRegression a;
  LogisticRegression b;
  a.Fit(train);
  b.Fit(train);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

// ----------------------------------------------------------------- SVM --

TEST(LinearSvmTest, LearnsLinearBoundary) {
  const Dataset train = SeparableBlobs(300, 300, 8);
  const Dataset test = SeparableBlobs(100, 100, 9);
  LinearSvm svm;
  svm.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), svm.PredictProba(test)), 0.99);
}

TEST(LinearSvmTest, MarginSignSeparatesClasses) {
  const Dataset train = SeparableBlobs(200, 200, 10);
  LinearSvm svm;
  svm.Fit(train);
  EXPECT_LT(svm.Margin(std::vector<double>{0.0, 0.0}), 0.0);
  EXPECT_GT(svm.Margin(std::vector<double>{4.0, 4.0}), 0.0);
}

TEST(LinearSvmTest, RbfApproxLearnsXor) {
  // A linear SVM cannot solve XOR; the Fourier-feature kernel
  // approximation must.
  const Dataset train = XorClusters(150, 11);
  const Dataset test = XorClusters(60, 12);
  SvmConfig config;
  config.kernel = SvmConfig::Kernel::kRbfApprox;
  config.c = 1000.0;
  config.rff_dim = 256;
  config.gamma = 4.0;
  LinearSvm rbf(config);
  rbf.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), rbf.PredictProba(test)), 0.95);

  LinearSvm linear;
  linear.Fit(train);
  EXPECT_LT(AucPrc(test.labels(), linear.PredictProba(test)), 0.8);
}

// ----------------------------------------------------------------- RFF --

TEST(RffTest, ApproximatesRbfKernel) {
  // z(x).z(y) should approximate exp(-gamma ||x-y||^2).
  RandomFourierFeatures rff;
  const double gamma = 0.5;
  rff.Init(2, 4096, gamma, 1);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> x = {rng.Gaussian(), rng.Gaussian()};
    const std::vector<double> y = {rng.Gaussian(), rng.Gaussian()};
    const auto zx = rff.TransformRow(x);
    const auto zy = rff.TransformRow(y);
    double dot = 0.0;
    for (std::size_t i = 0; i < zx.size(); ++i) dot += zx[i] * zy[i];
    const double d2 = (x[0] - y[0]) * (x[0] - y[0]) + (x[1] - y[1]) * (x[1] - y[1]);
    EXPECT_NEAR(dot, std::exp(-gamma * d2), 0.06);
  }
}

TEST(RffTest, TransformPreservesLabelsAndDims) {
  RandomFourierFeatures rff;
  rff.Init(2, 32, 0.0, 3);
  const Dataset data = SeparableBlobs(10, 5, 13);
  const Dataset mapped = rff.Transform(data);
  EXPECT_EQ(mapped.num_rows(), data.num_rows());
  EXPECT_EQ(mapped.num_features(), 32u);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(mapped.Label(i), data.Label(i));
  }
}

// ----------------------------------------------------------------- MLP --

TEST(MlpTest, LearnsXor) {
  const Dataset train = XorClusters(150, 14);
  const Dataset test = XorClusters(60, 15);
  MlpConfig config;
  config.hidden_units = 32;
  config.epochs = 80;
  Mlp mlp(config);
  mlp.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), mlp.PredictProba(test)), 0.95);
}

TEST(MlpTest, DeterministicGivenSeed) {
  const Dataset train = SeparableBlobs(100, 100, 16);
  MlpConfig config;
  config.epochs = 5;
  Mlp a(config);
  Mlp b(config);
  a.Fit(train);
  b.Fit(train);
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(a.PredictRow(x), b.PredictRow(x));
}

TEST(MlpTest, ReseedChangesInitialization) {
  const Dataset train = SeparableBlobs(60, 60, 17);
  MlpConfig config;
  config.epochs = 2;
  Mlp a(config);
  Mlp b(config);
  b.Reseed(999);
  a.Fit(train);
  b.Fit(train);
  const std::vector<double> x = {2.0, 2.0};
  EXPECT_NE(a.PredictRow(x), b.PredictRow(x));
}

// ----------------------------------------------------- Gaussian NB / LDA --

TEST(GaussianNaiveBayesTest, RecoversClassMeansOnBlobs) {
  const Dataset train = SeparableBlobs(400, 400, 20);
  const Dataset test = SeparableBlobs(100, 100, 21);
  GaussianNaiveBayes gnb;
  gnb.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), gnb.PredictProba(test)), 0.99);
  // Centres of the generator: majority (0,0), minority (4,4).
  EXPECT_GT(gnb.PredictRow(std::vector<double>{4.0, 4.0}), 0.95);
  EXPECT_LT(gnb.PredictRow(std::vector<double>{0.0, 0.0}), 0.05);
}

TEST(GaussianNaiveBayesTest, PriorFollowsClassBalance) {
  // Identical feature distributions: the prediction must equal the
  // class prior everywhere.
  Rng rng(22);
  Dataset train(1);
  for (int i = 0; i < 1000; ++i) {
    train.AddRow(std::vector<double>{rng.Gaussian()}, i < 250);
  }
  GaussianNaiveBayes gnb;
  gnb.Fit(train);
  EXPECT_NEAR(gnb.PredictRow(std::vector<double>{0.0}), 0.25, 0.05);
}

TEST(GaussianNaiveBayesTest, SampleWeightsShiftThePrior) {
  Rng rng(23);
  Dataset train(1);
  for (int i = 0; i < 200; ++i) {
    train.AddRow(std::vector<double>{rng.Gaussian()}, i < 100);
  }
  std::vector<double> w(200, 1.0);
  for (int i = 0; i < 100; ++i) w[i] = 3.0;  // upweight positives
  GaussianNaiveBayes gnb;
  gnb.FitWeighted(train, w);
  EXPECT_NEAR(gnb.PredictRow(std::vector<double>{0.0}), 0.75, 0.07);
}

TEST(LinearDiscriminantTest, LearnsLinearBoundary) {
  const Dataset train = SeparableBlobs(300, 300, 24);
  const Dataset test = SeparableBlobs(100, 100, 25);
  LinearDiscriminant lda;
  lda.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), lda.PredictProba(test)), 0.99);
}

TEST(LinearDiscriminantTest, HandlesCorrelatedFeatures) {
  // Signal along x0 - x1 with strong positive correlation: a diagonal
  // method (GNB) is confused by the shared variance, LDA's pooled
  // covariance solve recovers the discriminative direction.
  Rng rng(26);
  Dataset train(2);
  Dataset test(2);
  for (int i = 0; i < 1200; ++i) {
    const int label = i % 2;
    const double common = rng.Gaussian(0.0, 3.0);
    const double offset = label == 1 ? 0.8 : -0.8;
    const std::vector<double> row = {common + offset + rng.Gaussian(0.0, 0.4),
                                     common - offset + rng.Gaussian(0.0, 0.4)};
    (i < 800 ? train : test).AddRow(row, label);
  }
  LinearDiscriminant lda;
  lda.Fit(train);
  GaussianNaiveBayes gnb;
  gnb.Fit(train);
  const double lda_auc = AucPrc(test.labels(), lda.PredictProba(test));
  EXPECT_GT(lda_auc, 0.95);
  EXPECT_GT(lda_auc, AucPrc(test.labels(), gnb.PredictProba(test)) + 0.02);
}

TEST(LinearDiscriminantTest, DeterministicClosedForm) {
  const Dataset train = SeparableBlobs(100, 50, 27);
  LinearDiscriminant a;
  LinearDiscriminant b;
  a.Fit(train);
  b.Fit(train);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(LinearDiscriminantDeathTest, SingleClassAborts) {
  Dataset train(1);
  for (int i = 0; i < 10; ++i) train.AddRow(std::vector<double>{1.0 * i}, 0);
  LinearDiscriminant lda;
  EXPECT_DEATH(lda.Fit(train), "both classes");
}

// ------------------------------------------------------------- Factory --

class FactoryLearnsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FactoryLearnsTest, EveryKnownClassifierLearnsSeparableBlobs) {
  const Dataset train = SeparableBlobs(250, 120, 18);
  const Dataset test = SeparableBlobs(80, 80, 19);
  auto model = MakeClassifier(GetParam(), /*seed=*/1);
  model->Fit(train);
  const double auc = AucPrc(test.labels(), model->PredictProba(test));
  EXPECT_GT(auc, 0.95) << GetParam() << " scored " << auc;
}

TEST_P(FactoryLearnsTest, CloneHasSameName) {
  auto model = MakeClassifier(GetParam());
  EXPECT_EQ(model->Clone()->Name(), model->Name());
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, FactoryLearnsTest,
                         ::testing::ValuesIn(KnownClassifierNames()));

TEST(FactoryTest, TrailingCountParsed) {
  EXPECT_EQ(MakeClassifier("GBDT25")->Name(), "GBDT25");
  EXPECT_EQ(MakeClassifier("AdaBoost3")->Name(), "AdaBoost3");
}

TEST(FactoryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeClassifier("Oracle"), "unknown classifier");
}

}  // namespace
}  // namespace spe
