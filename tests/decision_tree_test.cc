#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::SeparableBlobs;
using ::spe::testing::XorClusters;

TEST(DecisionTreeTest, LearnsSeparableBlobs) {
  const Dataset train = SeparableBlobs(200, 200, 1);
  const Dataset test = SeparableBlobs(100, 100, 2);
  DecisionTree tree;
  tree.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), tree.PredictProba(test)), 0.97);
}

TEST(DecisionTreeTest, LearnsXor) {
  const Dataset train = XorClusters(100, 1);
  const Dataset test = XorClusters(50, 2);
  DecisionTreeConfig config;
  config.max_depth = 4;
  DecisionTree tree(config);
  tree.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), tree.PredictProba(test)), 0.97);
}

TEST(DecisionTreeTest, DepthZeroIsPrior) {
  DecisionTreeConfig config;
  config.max_depth = 0;
  DecisionTree tree(config);
  const Dataset train = SeparableBlobs(80, 20, 3);
  tree.Fit(train);
  EXPECT_EQ(tree.NumNodes(), 1u);
  const std::vector<double> point = {0.0, 0.0};
  EXPECT_NEAR(tree.PredictRow(point), 0.2, 1e-9);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  DecisionTreeConfig config;
  config.max_depth = 3;
  DecisionTree tree(config);
  tree.Fit(SeparableBlobs(300, 300, 4));
  EXPECT_LE(tree.Depth(), 3);
}

TEST(DecisionTreeTest, PureNodeBecomesLeafEarly) {
  Dataset data(1);
  for (int i = 0; i < 50; ++i) data.AddRow(std::vector<double>{double(i)}, 0);
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_EQ(tree.NumNodes(), 1u);  // no impurity, no split
  const std::vector<double> x = {25.0};
  EXPECT_DOUBLE_EQ(tree.PredictRow(x), 0.0);
}

TEST(DecisionTreeTest, MinSamplesLeafLimitsSplits) {
  DecisionTreeConfig config;
  config.min_samples_leaf = 100;
  DecisionTree tree(config);
  const Dataset train = SeparableBlobs(90, 90, 5);  // 180 < 2 * 100
  tree.Fit(train);
  EXPECT_EQ(tree.NumNodes(), 1u);
}

TEST(DecisionTreeTest, SampleWeightsShiftLeafProbabilities) {
  // One feature, perfectly mixed labels; weights decide the leaf value.
  Dataset data(1);
  data.AddRow(std::vector<double>{0.0}, 0);
  data.AddRow(std::vector<double>{0.0}, 1);
  DecisionTree tree;
  tree.FitWeighted(data, {1.0, 3.0});
  const std::vector<double> x = {0.0};
  EXPECT_NEAR(tree.PredictRow(x), 0.75, 1e-9);
}

TEST(DecisionTreeTest, WeightZeroSamplesAreIgnoredInLeafValues) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.AddRow(std::vector<double>{0.0}, i < 5);
  std::vector<double> weights(10, 1.0);
  // Rows 0..4 are the positives; zeroing their weight must drive the
  // leaf probability to 0 as if they were absent.
  for (int i = 0; i < 5; ++i) weights[i] = 0.0;
  DecisionTree tree;
  tree.FitWeighted(data, weights);
  const std::vector<double> x = {0.0};
  EXPECT_NEAR(tree.PredictRow(x), 0.0, 1e-9);
}

TEST(DecisionTreeTest, EntropyCriterionAlsoLearns) {
  DecisionTreeConfig config;
  config.criterion = DecisionTreeConfig::Criterion::kEntropy;
  DecisionTree tree(config);
  const Dataset train = XorClusters(80, 6);
  tree.Fit(train);
  const Dataset test = XorClusters(40, 7);
  EXPECT_GT(AucPrc(test.labels(), tree.PredictProba(test)), 0.95);
}

TEST(DecisionTreeTest, DeterministicAcrossFits) {
  const Dataset train = SeparableBlobs(150, 50, 8);
  const Dataset test = SeparableBlobs(30, 30, 9);
  DecisionTree a;
  DecisionTree b;
  a.Fit(train);
  b.Fit(train);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(DecisionTreeTest, FeatureSubsamplingStillLearns) {
  DecisionTreeConfig config;
  config.max_features = 1;
  config.seed = 3;
  DecisionTree tree(config);
  const Dataset train = SeparableBlobs(200, 200, 10);
  tree.Fit(train);
  const Dataset test = SeparableBlobs(60, 60, 11);
  EXPECT_GT(AucPrc(test.labels(), tree.PredictProba(test)), 0.9);
}

TEST(DecisionTreeTest, CloneIsUntrainedWithSameConfig) {
  DecisionTreeConfig config;
  config.max_depth = 2;
  DecisionTree tree(config);
  tree.Fit(SeparableBlobs(50, 50, 12));
  auto clone = tree.Clone();
  const std::vector<double> x = {0.0, 0.0};
  EXPECT_DEATH(clone->PredictRow(x), "predict before fit");
}

// Property sweep: probabilities are valid on arbitrary data.
class TreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TreePropertyTest, PredictionsAreProbabilities) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Dataset data(3);
  for (int i = 0; i < 300; ++i) {
    data.AddRow(
        std::vector<double>{rng.Gaussian(), rng.Uniform(), rng.Gaussian(0, 5)},
        rng.Uniform() < 0.3 ? 1 : 0);
  }
  DecisionTree tree;
  tree.Fit(data);
  for (double p : tree.PredictProba(data)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace spe
