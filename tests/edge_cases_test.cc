// Edge-case robustness sweep: degenerate but reachable inputs that a
// production deployment will eventually feed every component — tiny
// minorities, single-member ensembles, duplicate rows, constant
// features, extreme imbalance. Nothing here may crash or emit an
// invalid probability.

#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/factory.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/rus_boost.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/random_under.h"
#include "spe/sampling/smote.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

void ExpectValidProbabilities(const std::vector<double>& probs) {
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_FALSE(std::isnan(p));
  }
}

TEST(EdgeCaseTest, SpeWithTwoMinoritySamples) {
  Rng rng(1);
  Dataset data(2);
  for (int i = 0; i < 500; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian(), rng.Gaussian()}, 0);
  }
  data.AddRow(std::vector<double>{5.0, 5.0}, 1);
  data.AddRow(std::vector<double>{5.1, 5.1}, 1);

  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  SelfPacedEnsemble model(config);
  model.Fit(data);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, SpeSingleEstimator) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 1;  // alpha = inf immediately
  SelfPacedEnsemble model(config);
  const Dataset data = OverlappingBlobs(200, 20, 2);
  model.Fit(data);
  EXPECT_EQ(model.NumMembers(), 1u);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, SpeMoreBinsThanMajoritySamples) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 3;
  config.num_bins = 1000;
  SelfPacedEnsemble model(config);
  const Dataset data = OverlappingBlobs(50, 10, 3);
  model.Fit(data);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, SpeOnBalancedDataStillWorks) {
  // |N| == |P|: under-sampling degenerates to "take everything".
  SelfPacedEnsembleConfig config;
  config.n_estimators = 3;
  SelfPacedEnsemble model(config);
  const Dataset data = OverlappingBlobs(50, 50, 4);
  model.Fit(data);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, SpeOnExtremeImbalance) {
  // IR = 1000:1 with three positives.
  Rng rng(5);
  Dataset data(2);
  for (int i = 0; i < 3000; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian(), rng.Gaussian()}, 0);
  }
  for (int i = 0; i < 3; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian(6.0, 0.2),
                                    rng.Gaussian(6.0, 0.2)},
                1);
  }
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  SelfPacedEnsemble model(config);
  model.Fit(data);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, EnsemblesWithAllDuplicateMajorityRows) {
  // A constant majority: splits are impossible on most features, SMOTE
  // interpolates identical points, distances are all zero.
  Dataset data(2);
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    data.AddRow(std::vector<double>{1.0, 1.0}, 0);
  }
  for (int i = 0; i < 30; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian(3.0, 0.5),
                                    rng.Gaussian(3.0, 0.5)},
                1);
  }
  {
    SelfPacedEnsembleConfig config;
    config.n_estimators = 4;
    SelfPacedEnsemble model(config);
    model.Fit(data);
    ExpectValidProbabilities(model.PredictProba(data));
  }
  {
    UnderBagging model;
    model.Fit(data);
    ExpectValidProbabilities(model.PredictProba(data));
  }
  {
    Rng sampler_rng(7);
    const Dataset out = SmoteSampler().Resample(data, sampler_rng);
    EXPECT_EQ(out.CountPositives(), out.CountNegatives());
  }
}

TEST(EdgeCaseTest, CascadeWithMoreEstimatorsThanPoolAllows) {
  // n so large the pool hits |P| long before the last iteration.
  BalanceCascadeConfig config;
  config.n_estimators = 30;
  BalanceCascade model(config);
  const Dataset data = OverlappingBlobs(100, 20, 8);
  model.Fit(data);
  EXPECT_EQ(model.NumMembers(), 30u);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, RusBoostSurvivesPerfectlySeparableData) {
  // Perfect stages drive weights to the clamp; updates must stay finite.
  RusBoost model;
  const Dataset data = testing::SeparableBlobs(300, 30, 9);
  model.Fit(data);
  ExpectValidProbabilities(model.PredictProba(data));
}

TEST(EdgeCaseTest, GbdtOnConstantFeatures) {
  Dataset data(3);
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    // Features 0 and 2 constant; only feature 1 informative.
    data.AddRow(std::vector<double>{7.0, rng.Gaussian(i % 2 == 0 ? -1 : 1, 0.3),
                                    -2.5},
                i % 2);
  }
  Gbdt model;
  model.Fit(data);
  const double auc = AucPrc(data.labels(), model.PredictProba(data));
  EXPECT_GT(auc, 0.95);
}

TEST(EdgeCaseTest, FactoryModelsSurviveSingleRowClasses) {
  // 1 positive, many negatives: the harshest trainable input.
  Dataset data(2);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    data.AddRow(std::vector<double>{rng.Gaussian(), rng.Gaussian()}, 0);
  }
  data.AddRow(std::vector<double>{4.0, 4.0}, 1);
  for (const char* name : {"DT", "GNB", "GBDT5", "LR"}) {
    auto model = MakeClassifier(name, 1);
    model->Fit(data);
    ExpectValidProbabilities(model->PredictProba(data));
  }
}

TEST(EdgeCaseTest, RandomUnderWithMinorityLargerThanMajority) {
  const Dataset data = OverlappingBlobs(10, 50, 12);  // inverted balance
  Rng rng(13);
  const Dataset out = RandomUnderSampler().Resample(data, rng);
  // Nothing to remove: the majority (label 0) side is already smaller.
  EXPECT_EQ(out.CountNegatives(), 10u);
  EXPECT_EQ(out.CountPositives(), 50u);
}

TEST(EdgeCaseTest, MetricsOnSingleElementVectors) {
  EXPECT_DOUBLE_EQ(AucPrc({1}, {0.7}), 1.0);
  const ConfusionMatrix m = ConfusionAt({1}, {0.7}, 0.5);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_DOUBLE_EQ(F1Score(m), 1.0);
}

}  // namespace
}  // namespace spe
