#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/core/hardness.h"
#include "spe/core/self_paced_sampler.h"

namespace spe {
namespace {

TEST(HardnessTest, AbsoluteError) {
  const HardnessFn h = MakeHardness(HardnessKind::kAbsoluteError);
  EXPECT_DOUBLE_EQ(h(0.8, 1), 0.2);
  EXPECT_DOUBLE_EQ(h(0.8, 0), 0.8);
  EXPECT_DOUBLE_EQ(h(0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(h(0.0, 1), 1.0);
}

TEST(HardnessTest, SquaredError) {
  const HardnessFn h = MakeHardness(HardnessKind::kSquaredError);
  EXPECT_DOUBLE_EQ(h(0.8, 1), 0.04);
  EXPECT_NEAR(h(0.3, 0), 0.09, 1e-12);
}

TEST(HardnessTest, CrossEntropy) {
  const HardnessFn h = MakeHardness(HardnessKind::kCrossEntropy);
  EXPECT_NEAR(h(0.5, 1), std::log(2.0), 1e-12);
  EXPECT_NEAR(h(0.9, 0), -std::log(0.1), 1e-9);
  // Clamped: extreme probabilities do not produce infinities.
  EXPECT_TRUE(std::isfinite(h(0.0, 1)));
  EXPECT_TRUE(std::isfinite(h(1.0, 0)));
}

TEST(HardnessTest, Names) {
  EXPECT_EQ(HardnessName(HardnessKind::kAbsoluteError), "AE");
  EXPECT_EQ(HardnessName(HardnessKind::kSquaredError), "SE");
  EXPECT_EQ(HardnessName(HardnessKind::kCrossEntropy), "CE");
}

TEST(HardnessTest, ComputeHardnessVectorized) {
  const HardnessFn h = MakeHardness(HardnessKind::kAbsoluteError);
  const std::vector<double> probs = {0.1, 0.9};
  const std::vector<int> labels = {1, 0};
  const std::vector<double> out = ComputeHardness(h, probs, labels);
  EXPECT_DOUBLE_EQ(out[0], 0.9);
  EXPECT_DOUBLE_EQ(out[1], 0.9);
}

TEST(HardnessBinsTest, PopulationSumsToSampleCount) {
  Rng rng(1);
  std::vector<double> hardness(500);
  for (double& h : hardness) h = rng.Uniform();
  const HardnessBins bins = ComputeHardnessBins(hardness, 20);
  EXPECT_EQ(std::accumulate(bins.population.begin(), bins.population.end(),
                            std::size_t{0}),
            500u);
  double total = 0.0;
  for (double c : bins.contribution) total += c;
  double expected = 0.0;
  for (double h : hardness) expected += h;
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(HardnessBinsTest, BinAssignmentSpansObservedRange) {
  // Bins cover [min, max] = [0.0, 1.0] here, so assignments follow the
  // normalized value directly.
  const std::vector<double> hardness = {0.0, 0.15, 0.95, 1.0, 0.5};
  const HardnessBins bins = ComputeHardnessBins(hardness, 10);
  EXPECT_EQ(bins.bin_of_sample[0], 0u);
  EXPECT_EQ(bins.bin_of_sample[1], 1u);
  EXPECT_EQ(bins.bin_of_sample[2], 9u);
  EXPECT_EQ(bins.bin_of_sample[3], 9u);  // h == max goes to the top bin
  EXPECT_EQ(bins.bin_of_sample[4], 5u);
}

TEST(HardnessBinsTest, ConcentratedHardnessStillUsesAllBins) {
  // Every value below 0.2: a fixed [0, 1] grid would collapse everything
  // into two bins; range-based binning keeps the full resolution.
  const std::vector<double> hardness = {0.00, 0.02, 0.04, 0.06, 0.08,
                                        0.10, 0.12, 0.14, 0.16, 0.18};
  const HardnessBins bins = ComputeHardnessBins(hardness, 10);
  for (std::size_t i = 0; i < hardness.size(); ++i) {
    EXPECT_EQ(bins.bin_of_sample[i], std::min<std::size_t>(i, 9));
  }
}

TEST(HardnessBinsTest, ConstantHardnessLandsInOneBin) {
  const std::vector<double> hardness = {0.3, 0.3, 0.3};
  const HardnessBins bins = ComputeHardnessBins(hardness, 5);
  EXPECT_EQ(bins.population[0], 3u);
  for (std::size_t b = 1; b < 5; ++b) EXPECT_EQ(bins.population[b], 0u);
}

TEST(HardnessBinsTest, UnboundedHardnessIsNormalized) {
  // Cross-entropy style values > 1: the grid must still cover them.
  const std::vector<double> hardness = {0.0, 2.0, 8.0};
  const HardnessBins bins = ComputeHardnessBins(hardness, 4);
  EXPECT_EQ(bins.bin_of_sample[0], 0u);
  EXPECT_EQ(bins.bin_of_sample[1], 1u);  // 2/8 = 0.25 -> bin 1
  EXPECT_EQ(bins.bin_of_sample[2], 3u);
}

TEST(HardnessBinsTest, MeanHardnessPerBin) {
  const std::vector<double> hardness = {0.1, 0.12, 0.9};
  const HardnessBins bins = ComputeHardnessBins(hardness, 2);
  EXPECT_NEAR(bins.mean_hardness[0], 0.11, 1e-12);
  EXPECT_NEAR(bins.mean_hardness[1], 0.9, 1e-12);
}

TEST(HardnessBinsDeathTest, NanHardnessNamesTheSample) {
  // A NaN would otherwise surface as the misleading "must be
  // non-negative" abort; the message must point at the actual defect
  // and the offending index.
  const std::vector<double> hardness = {
      0.1, 0.2, std::numeric_limits<double>::quiet_NaN(), 0.4};
  EXPECT_DEATH(ComputeHardnessBins(hardness, 4),
               "hardness is NaN for sample 2");
}

// ------------------------------------------------ Self-paced sampling --

TEST(SelfPacedSamplerTest, ReturnsExactTargetCount) {
  Rng rng(2);
  std::vector<double> hardness(1000);
  for (double& h : hardness) h = rng.Uniform();
  for (double alpha : {0.0, 0.1, 1.0, 100.0}) {
    Rng local(3);
    const auto pick = SelfPacedUnderSample(hardness, alpha, 20, 137, local);
    EXPECT_EQ(pick.size(), 137u) << "alpha=" << alpha;
  }
}

TEST(SelfPacedSamplerTest, IndicesAreUniqueAndValid) {
  Rng rng(4);
  std::vector<double> hardness(300);
  for (double& h : hardness) h = rng.Uniform();
  const auto pick = SelfPacedUnderSample(hardness, 0.5, 10, 100, rng);
  std::set<std::size_t> unique(pick.begin(), pick.end());
  EXPECT_EQ(unique.size(), pick.size());
  for (std::size_t i : pick) EXPECT_LT(i, 300u);
}

TEST(SelfPacedSamplerTest, TargetLargerThanPoolTakesAll) {
  std::vector<double> hardness = {0.1, 0.5, 0.9};
  Rng rng(5);
  const auto pick = SelfPacedUnderSample(hardness, 0.0, 5, 10, rng);
  EXPECT_EQ(pick.size(), 3u);
}

TEST(SelfPacedSamplerTest, AlphaZeroHarmonizesContribution) {
  // Two populations: 9000 easy samples (h=0.1) and 100 hard ones (h=0.9).
  // With alpha=0, bin weights are 1/h, so quotas ~ (1/0.1) : (1/0.9) =
  // 90% : 10% -> per-bin hardness contribution 0.1*q1 ≈ 0.9*q2.
  std::vector<double> hardness;
  hardness.insert(hardness.end(), 9000, 0.1);
  hardness.insert(hardness.end(), 100, 0.9);
  Rng rng(6);
  const auto pick = SelfPacedUnderSample(hardness, 0.0, 10, 1000, rng);
  double easy_contrib = 0.0;
  double hard_contrib = 0.0;
  for (std::size_t i : pick) {
    (hardness[i] < 0.5 ? easy_contrib : hard_contrib) += hardness[i];
  }
  // Hard bin saturates at 100 samples -> 90 hardness; easy bin's quota
  // gives ~900 * 0.1 = 90 hardness. Near-equal contributions.
  EXPECT_NEAR(easy_contrib / hard_contrib, 1.0, 0.25);
}

TEST(SelfPacedSamplerTest, LargeAlphaPrefersHardSamples) {
  // Same two populations; with alpha -> inf quotas are uniform over bins,
  // so the tiny hard bin is fully taken and hard samples are heavily
  // over-represented relative to their 1% share.
  std::vector<double> hardness;
  hardness.insert(hardness.end(), 9900, 0.05);
  hardness.insert(hardness.end(), 100, 0.95);
  Rng rng(7);
  const auto pick = SelfPacedUnderSample(
      hardness, std::numeric_limits<double>::infinity(), 10, 200, rng);
  std::size_t hard = 0;
  for (std::size_t i : pick) hard += (hardness[i] > 0.5);
  EXPECT_EQ(hard, 100u);  // the whole hard bin survives
}

TEST(SelfPacedSamplerTest, AlphaControlsTrivialSampleShare) {
  // Monotonicity: growing alpha shifts mass from the huge easy bin
  // toward uniform-over-bins.
  Rng gen(8);
  std::vector<double> hardness;
  for (int i = 0; i < 5000; ++i) hardness.push_back(gen.Uniform(0.0, 0.2));
  for (int i = 0; i < 500; ++i) hardness.push_back(gen.Uniform(0.2, 1.0));
  std::size_t prev_easy = hardness.size();
  for (double alpha : {0.0, 0.3, 3.0, 1e9}) {
    Rng rng(9);
    const auto pick = SelfPacedUnderSample(hardness, alpha, 10, 500, rng);
    std::size_t easy = 0;
    for (std::size_t i : pick) easy += (hardness[i] <= 0.2);
    EXPECT_LE(easy, prev_easy + 25) << "alpha=" << alpha;
    prev_easy = easy;
  }
}

}  // namespace
}  // namespace spe
