#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/eval/experiment.h"
#include "spe/eval/stopwatch.h"
#include "spe/eval/table.h"
#include "tests/test_util.h"

namespace spe {
namespace {

TEST(RepeatTest, AggregatesOverSeeds) {
  const AggregateScores agg = Repeat(
      [](std::uint64_t seed) {
        ScoreSummary s;
        s.aucprc = static_cast<double>(seed);  // 0, 1, 2
        s.f1 = 1.0;
        return s;
      },
      3, /*base_seed=*/0);
  EXPECT_DOUBLE_EQ(agg.aucprc.mean, 1.0);
  EXPECT_NEAR(agg.aucprc.std, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(agg.f1.mean, 1.0);
  EXPECT_DOUBLE_EQ(agg.f1.std, 0.0);
}

TEST(RepeatTest, PassesDistinctSeeds) {
  std::vector<std::uint64_t> seeds;
  Repeat(
      [&](std::uint64_t seed) {
        seeds.push_back(seed);
        return ScoreSummary{};
      },
      4, 100);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(TrainAndEvaluateTest, EndToEnd) {
  const Dataset train = testing::SeparableBlobs(100, 100, 1);
  const Dataset test = testing::SeparableBlobs(50, 50, 2);
  DecisionTree tree;
  const ScoreSummary s = TrainAndEvaluate(tree, train, test);
  EXPECT_GT(s.aucprc, 0.95);
  EXPECT_GT(s.f1, 0.9);
  EXPECT_GT(s.mcc, 0.8);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"Method", "AUCPRC"});
  table.AddRow({"SPE10", "0.783±0.015"});
  table.AddRow({"Cascade10", "0.610"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Method    |"), std::string::npos);
  EXPECT_NE(out.find("| SPE10     |"), std::string::npos);
  EXPECT_NE(out.find("Cascade10"), std::string::npos);
}

TEST(TextTableDeathTest, RowWidthMustMatch) {
  TextTable table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only one"}), "CHECK");
}

TEST(FormatTest, MeanStdFormatting) {
  EXPECT_EQ(FormatMeanStd({0.7834, 0.0151}), "0.783±0.015");
  EXPECT_EQ(FormatMeanStd({1.0, 0.0}, 2), "1.00±0.00");
  EXPECT_EQ(FormatNumber(3.14159, 2), "3.14");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Burn a little CPU; elapsed must be positive and Restart must reset.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  const double t1 = watch.Seconds();
  EXPECT_GT(t1, 0.0);
  watch.Restart();
  EXPECT_LT(watch.Seconds(), t1 + 1.0);
}

TEST(BenchKnobsTest, DefaultsWithoutEnv) {
  // These read env vars; in the test environment they are unset.
  EXPECT_GE(BenchRuns(), 1u);
  EXPECT_GT(BenchScale(), 0.0);
}

}  // namespace
}  // namespace spe
