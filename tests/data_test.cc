#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/data/csv.h"
#include "spe/data/dataset.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/data/synthetic.h"

namespace spe {
namespace {

// ---------------------------------------------------------------- CSV --

TEST(CsvTest, RoundTrip) {
  Dataset data(3);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    data.AddRow(std::vector<double>{rng.Uniform(), rng.Gaussian(), 3.25}, i % 2);
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "spe_csv_test.csv").string();
  SaveCsv(data, path);
  const Dataset loaded = LoadCsv(path, /*label_column=*/3);
  ASSERT_EQ(loaded.num_rows(), data.num_rows());
  ASSERT_EQ(loaded.num_features(), data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(loaded.Label(i), data.Label(i));
    for (std::size_t j = 0; j < data.num_features(); ++j) {
      EXPECT_NEAR(loaded.At(i, j), data.At(i, j), 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvDeathTest, MissingFileAborts) {
  EXPECT_DEATH(LoadCsv("/nonexistent/nope.csv", 0), "cannot open");
}

// -------------------------------------------------------------- Split --

TEST(SplitTest, StratifiedThreeWayPreservesClassBalance) {
  Rng data_rng(2);
  Dataset data(1);
  for (int i = 0; i < 1000; ++i) {
    data.AddRow(std::vector<double>{data_rng.Uniform()}, i < 100 ? 1 : 0);
  }
  Rng rng(3);
  const TrainValTest parts = StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
  EXPECT_EQ(parts.train.num_rows(), 600u);
  EXPECT_EQ(parts.validation.num_rows(), 200u);
  EXPECT_EQ(parts.test.num_rows(), 200u);
  EXPECT_EQ(parts.train.CountPositives(), 60u);
  EXPECT_EQ(parts.validation.CountPositives(), 20u);
  EXPECT_EQ(parts.test.CountPositives(), 20u);
}

TEST(SplitTest, PartsAreDisjointByFeatureValue) {
  // Unique feature values let us verify no row lands in two parts.
  Dataset data(1);
  for (int i = 0; i < 500; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, i % 10 == 0 ? 1 : 0);
  }
  Rng rng(4);
  const TrainValTest parts = StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
  std::set<double> seen;
  for (const Dataset* part : {&parts.train, &parts.validation, &parts.test}) {
    for (std::size_t i = 0; i < part->num_rows(); ++i) {
      EXPECT_TRUE(seen.insert(part->At(i, 0)).second)
          << "row duplicated across parts";
    }
  }
}

TEST(SplitTest, DeterministicGivenSeed) {
  Dataset data(1);
  for (int i = 0; i < 200; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, i % 5 == 0 ? 1 : 0);
  }
  Rng rng_a(7);
  Rng rng_b(7);
  const TrainValTest a = StratifiedSplit(data, 0.5, 0.25, 0.25, rng_a);
  const TrainValTest b = StratifiedSplit(data, 0.5, 0.25, 0.25, rng_b);
  ASSERT_EQ(a.train.num_rows(), b.train.num_rows());
  for (std::size_t i = 0; i < a.train.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.train.At(i, 0), b.train.At(i, 0));
  }
}

TEST(SplitTest, TwoWaySplit) {
  Dataset data(1);
  for (int i = 0; i < 100; ++i) {
    data.AddRow(std::vector<double>{0.0}, i < 20 ? 1 : 0);
  }
  Rng rng(1);
  const TrainTest parts = StratifiedSplit2(data, 0.75, rng);
  EXPECT_EQ(parts.train.num_rows(), 75u);
  EXPECT_EQ(parts.test.num_rows(), 25u);
  EXPECT_EQ(parts.train.CountPositives(), 15u);
}

// ---------------------------------------------------------- Synthetic --

TEST(CheckerboardTest, SizesAndImbalanceRatio) {
  CheckerboardConfig config;
  Rng rng(1);
  const Dataset data = MakeCheckerboard(config, rng);
  EXPECT_EQ(data.num_rows(), 11000u);
  EXPECT_EQ(data.CountPositives(), 1000u);
  EXPECT_NEAR(data.ImbalanceRatio(), 10.0, 1e-9);
  EXPECT_EQ(data.num_features(), 2u);
}

TEST(CheckerboardTest, MinorityOnOddCells) {
  CheckerboardConfig config;
  config.covariance = 0.001;  // tight clusters so cell membership is clear
  Rng rng(2);
  const Dataset data = MakeCheckerboard(config, rng);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const int gx = static_cast<int>(std::lround(data.At(i, 0)));
    const int gy = static_cast<int>(std::lround(data.At(i, 1)));
    const int expected = (gx + gy) % 2 == 1 ? 1 : 0;
    EXPECT_EQ(data.Label(i), expected);
  }
}

TEST(TwoGaussiansTest, ImbalanceRatioRespected) {
  TwoGaussiansConfig config;
  config.num_minority = 100;
  config.imbalance_ratio = 25.0;
  Rng rng(3);
  const Dataset data = MakeTwoGaussians(config, rng);
  EXPECT_EQ(data.CountPositives(), 100u);
  EXPECT_NEAR(data.ImbalanceRatio(), 25.0, 1e-9);
}

TEST(TwoGaussiansTest, NonOverlappedIsSeparated) {
  TwoGaussiansConfig config;
  config.overlapped = false;
  config.covariance = 0.05;
  Rng rng(4);
  const Dataset data = MakeTwoGaussians(config, rng);
  // Minority sits around (4, 4); majority around (0, 0). A midpoint
  // threshold on x0 + x1 should separate perfectly at this covariance.
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double s = data.At(i, 0) + data.At(i, 1);
    EXPECT_EQ(data.Label(i), s > 4.0 ? 1 : 0);
  }
}

TEST(MissingInjectionTest, ExactFractionZeroed) {
  Dataset data(4);
  Rng rng(5);
  for (int i = 0; i < 250; ++i) {
    data.AddRow(std::vector<double>{1.0, 1.0, 1.0, 1.0}, 0);
  }
  InjectMissingValues(data, 0.25, rng);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) zeros += (data.At(i, j) == 0.0);
  }
  EXPECT_EQ(zeros, 250u);  // 25% of 1000 values
}

TEST(LabelNoiseTest, FlipsExactFraction) {
  Dataset data(1);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) data.AddRow(std::vector<double>{0.0}, 0);
  InjectLabelNoise(data, 0.1, rng);
  EXPECT_EQ(data.CountPositives(), 10u);
}

// ---------------------------------------------------------- Simulated --

TEST(SimulatedTest, CreditFraudShape) {
  Rng rng(1);
  const Dataset data = MakeCreditFraudSim(rng);
  EXPECT_EQ(data.num_features(), 30u);
  EXPECT_FALSE(data.HasCategoricalFeatures());
  EXPECT_GT(data.ImbalanceRatio(), 100.0);
  EXPECT_GT(data.num_rows(), 20000u);
}

TEST(SimulatedTest, PaymentSimShape) {
  Rng rng(2);
  const Dataset data = MakePaymentSim(rng, /*scale=*/0.2);
  EXPECT_EQ(data.num_features(), 11u);
  EXPECT_TRUE(data.HasCategoricalFeatures());
  EXPECT_GT(data.ImbalanceRatio(), 100.0);
}

TEST(SimulatedTest, PaymentFraudOnlyInTransferAndCashout) {
  Rng rng(3);
  const Dataset data = MakePaymentSim(rng, 0.2);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.Label(i) == 1) {
      const int type = static_cast<int>(data.At(i, 0));
      EXPECT_TRUE(type == 1 || type == 3) << "fraud with type " << type;
    }
  }
}

TEST(SimulatedTest, RecordLinkageFeaturesInUnitInterval) {
  Rng rng(4);
  const Dataset data = MakeRecordLinkageSim(rng, 0.1);
  EXPECT_EQ(data.num_features(), 12u);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    for (std::size_t j = 0; j < data.num_features(); ++j) {
      EXPECT_GE(data.At(i, j), 0.0);
      EXPECT_LE(data.At(i, j), 1.0);
    }
  }
}

TEST(SimulatedTest, KddTasksHaveContrastingImbalance) {
  Rng rng(5);
  const Dataset prb = MakeKddSim(KddTask::kDosVsPrb, rng, 0.2);
  const Dataset r2l = MakeKddSim(KddTask::kDosVsR2l, rng, 0.2);
  EXPECT_EQ(prb.num_features(), 20u);
  EXPECT_TRUE(prb.HasCategoricalFeatures());
  // R2L is the far more skewed task, as in the paper (94:1 vs 3449:1).
  EXPECT_GT(r2l.ImbalanceRatio(), 3.0 * prb.ImbalanceRatio());
}

TEST(SimulatedTest, ScaleMultipliesSize) {
  Rng rng_a(6);
  Rng rng_b(6);
  const Dataset small = MakeCreditFraudSim(rng_a, 0.25);
  const Dataset full = MakeCreditFraudSim(rng_b, 1.0);
  EXPECT_NEAR(static_cast<double>(full.num_rows()) /
                  static_cast<double>(small.num_rows()),
              4.0, 0.1);
}

}  // namespace
}  // namespace spe
