// Unit tests for the spe::obs observability layer: the geometric
// histogram's bucket geometry (pinned so exposition output cannot
// silently shift), the metrics registry + collector lifecycle, the
// trace ring, and the exposition text format.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "spe/obs/histogram.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"
#include "spe/serve/server_stats.h"

namespace spe {
namespace {

// ---------------------------------------------------------------------------
// GeometricHistogram geometry. These constants are load-bearing: the
// serve latency exposition publishes these exact bucket bounds, so a
// change here is a breaking change for anything scraping the metrics.

TEST(GeometricHistogramTest, SubBits3FirstBucketsAreExact) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, v), v);
    EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(3, v), v);
  }
}

TEST(GeometricHistogramTest, SubBits3PinnedBoundaries) {
  // One sub-bucket step inside each octave: 8 sub-buckets per power of
  // two from 8 upward.
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, 8), 8u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, 15), 15u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, 16), 16u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, 17), 16u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, 18), 17u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(3, 1000), 63u);
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(3, 8), 8u);
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(3, 16), 16u);
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(3, 17), 18u);
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(3, 63), 960u);
  // The serve layer's 488-bucket histogram: its top bucket's lower
  // bound is the largest that fits in 64 bits.
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(3, 487),
            std::uint64_t{15} << 59);
}

TEST(GeometricHistogramTest, SubBits0IsPowerOfTwoBuckets) {
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 0), 0u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 1), 1u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 2), 2u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 3), 2u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 4), 3u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 255), 8u);
  EXPECT_EQ(obs::GeometricHistogram::IndexFor(0, 256), 9u);
  // Bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(0, 1), 1u);
  EXPECT_EQ(obs::GeometricHistogram::LowerBoundFor(0, 9), 256u);
}

TEST(GeometricHistogramTest, LowerBoundInvertsIndex) {
  for (const int sub_bits : {0, 1, 3, 5}) {
    // Stay inside the representable index domain: past MaxIndexFor the
    // bucket's lower bound would overflow 64 bits (the constructor
    // rejects such geometries).
    const std::size_t limit = std::min<std::size_t>(
        200, obs::GeometricHistogram::MaxIndexFor(sub_bits) + 1);
    for (std::size_t index = 0; index < limit; ++index) {
      const std::uint64_t lo =
          obs::GeometricHistogram::LowerBoundFor(sub_bits, index);
      EXPECT_EQ(obs::GeometricHistogram::IndexFor(sub_bits, lo), index)
          << "sub_bits=" << sub_bits << " index=" << index;
      if (lo > 0) {
        // The value just below the lower bound belongs to the previous
        // bucket — bounds are tight.
        EXPECT_EQ(obs::GeometricHistogram::IndexFor(sub_bits, lo - 1),
                  index - 1);
      }
    }
  }
}

TEST(GeometricHistogramTest, ServerStatsSharesTheGeometry) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{7}, std::uint64_t{8},
        std::uint64_t{100}, std::uint64_t{12345},
        std::uint64_t{1} << 40, ~std::uint64_t{0}}) {
    const std::size_t raw = obs::GeometricHistogram::IndexFor(3, v);
    const std::size_t clamped =
        raw < ServerStats::kLatencyBuckets ? raw
                                           : ServerStats::kLatencyBuckets - 1;
    EXPECT_EQ(ServerStats::BucketIndex(v), clamped);
  }
  for (const std::size_t i : {std::size_t{0}, std::size_t{10},
                              std::size_t{100}, std::size_t{487}}) {
    EXPECT_EQ(ServerStats::BucketLowerBound(i),
              obs::GeometricHistogram::LowerBoundFor(3, i));
  }
}

TEST(GeometricHistogramTest, RecordAndAggregates) {
  obs::GeometricHistogram hist(3, 488);
  hist.Record(5);
  hist.Record(5);
  hist.Record(1000);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 1010u);
  EXPECT_EQ(hist.max(), 1000u);
  EXPECT_EQ(hist.bucket_count(5), 2u);
  EXPECT_EQ(hist.bucket_count(63), 1u);
  // The median lands in the exact bucket for 5.
  EXPECT_NEAR(hist.Percentile(0.50), 5.0, 1.0);
  // Any percentile estimate is capped by the exact max.
  EXPECT_LE(hist.Percentile(0.999), 1000.0);
  EXPECT_EQ(obs::GeometricHistogram(3, 488).Percentile(0.5), 0.0);
}

TEST(GeometricHistogramTest, OverflowLandsInLastBucket) {
  obs::GeometricHistogram hist(0, 4);
  hist.Record(1);    // bucket 1
  hist.Record(100);  // bucket index 7 -> clamped to 3
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
}

// ---------------------------------------------------------------------------
// Exposition format.

TEST(ExpositionTest, FormatMetricValue) {
  EXPECT_EQ(obs::FormatMetricValue(1.0), "1");
  EXPECT_EQ(obs::FormatMetricValue(-3.0), "-3");
  EXPECT_EQ(obs::FormatMetricValue(0.25), "0.25");
  EXPECT_EQ(obs::FormatMetricValue(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::FormatMetricValue(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(obs::FormatMetricValue(std::nan("")), "NaN");
}

TEST(ExpositionTest, HistogramExpositionIsCumulativeAndElided) {
  obs::GeometricHistogram hist(0, 25);
  hist.Record(1);
  hist.Record(3);
  hist.Record(200);
  std::string out;
  obs::AppendHistogramExposition(out, "h", hist);
  EXPECT_EQ(out,
            "h_bucket{le=\"0\"} 0\n"
            "h_bucket{le=\"1\"} 1\n"
            "h_bucket{le=\"3\"} 2\n"
            "h_bucket{le=\"7\"} 2\n"
            "h_bucket{le=\"15\"} 2\n"
            "h_bucket{le=\"31\"} 2\n"
            "h_bucket{le=\"63\"} 2\n"
            "h_bucket{le=\"127\"} 2\n"
            "h_bucket{le=\"255\"} 3\n"
            "h_bucket{le=\"+Inf\"} 3\n"
            "h_sum 204\n"
            "h_count 3\n");
}

TEST(ExpositionTest, EmptyHistogramStillClosesTheSeries) {
  obs::GeometricHistogram hist(3, 488);
  std::string out;
  obs::AppendHistogramExposition(out, "h", hist);
  EXPECT_EQ(out, "h_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n");
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, CounterAndGaugeReferencesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.GetCounter("obs_test_stable_total");
  obs::Counter& c2 = registry.GetCounter("obs_test_stable_total");
  EXPECT_EQ(&c1, &c2);
  c1.Add();
  c2.Add(2);
  EXPECT_EQ(c1.value(), 3u);
  obs::Gauge& g = registry.GetGauge("obs_test_gauge");
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("obs_test_gauge").value(), 1.5);
}

TEST(MetricsRegistryTest, RenderTextShapes) {
  obs::MetricsRegistry registry;
  registry.GetCounter("t_requests_total").Add(4);
  registry.GetGauge("t_alpha{bin=\"0\"}").Set(0.5);
  registry.GetGauge("t_alpha{bin=\"1\"}").Set(1.5);
  registry.GetHistogram("t_lat", 3, 488).Record(7);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE t_requests_total counter\nt_requests_total 4\n"),
            std::string::npos);
  // One TYPE line for the labeled family, then both series.
  EXPECT_NE(text.find("# TYPE t_alpha gauge\nt_alpha{bin=\"0\"} 0.5\n"
                      "t_alpha{bin=\"1\"} 1.5\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE t_alpha gauge"),
            text.rfind("# TYPE t_alpha gauge"));
  EXPECT_NE(text.find("# TYPE t_lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_count 1\n"), std::string::npos);
  // Process family and terminator are always present.
  EXPECT_NE(text.find("spe_threads "), std::string::npos);
  EXPECT_NE(text.find("spe_parallel_loops_total{mode=\"serial\"} "),
            std::string::npos);
  EXPECT_NE(text.find("spe_spans_total "), std::string::npos);
  EXPECT_TRUE(text.ends_with("# EOF\n"));
}

TEST(MetricsRegistryTest, CollectorLifecycle) {
  obs::MetricsRegistry registry;
  {
    const obs::CollectorHandle handle = registry.AddCollector(
        [](std::string& out) { out += "from_collector 1\n"; });
    EXPECT_NE(registry.RenderText().find("from_collector 1\n"),
              std::string::npos);
  }
  // RAII: out of scope means out of the exposition.
  EXPECT_EQ(registry.RenderText().find("from_collector"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectorHandleMoves) {
  obs::MetricsRegistry registry;
  obs::CollectorHandle outer;
  {
    obs::CollectorHandle inner = registry.AddCollector(
        [](std::string& out) { out += "moved_collector 1\n"; });
    outer = std::move(inner);
  }
  EXPECT_NE(registry.RenderText().find("moved_collector 1\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing.

TEST(TraceTest, RingWrapsOldestFirst) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::SpanRecord r;
    r.name = "wrap";
    r.start_us = i;
    ring.Record(r);
  }
  EXPECT_EQ(ring.total(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<obs::SpanRecord> snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().start_us, 2u);
  EXPECT_EQ(snapshot.back().start_us, 5u);
  ring.Clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceTest, SpanRecordsNameDepthAndAggregates) {
  obs::ResetSpansForTest();
  obs::SetEnabled(true);
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0u);
  {
    const obs::TraceSpan outer("obs_test.outer");
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 1u);
    const obs::TraceSpan inner("obs_test.inner");
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 2u);
  }
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0u);
  const auto aggregates = obs::SpanAggregates();
  ASSERT_TRUE(aggregates.count("obs_test.outer"));
  ASSERT_TRUE(aggregates.count("obs_test.inner"));
  EXPECT_EQ(aggregates.at("obs_test.outer").count, 1u);
  // The inner span completed first and at depth 1.
  const auto snapshot = obs::TraceRing::Global().Snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  EXPECT_STREQ(snapshot[snapshot.size() - 2].name, "obs_test.inner");
  EXPECT_EQ(snapshot[snapshot.size() - 2].depth, 1u);
  EXPECT_STREQ(snapshot.back().name, "obs_test.outer");
  EXPECT_EQ(snapshot.back().depth, 0u);

  std::string exposition;
  obs::AppendSpanExposition(exposition);
  EXPECT_NE(exposition.find("spe_span_count{span=\"obs_test.outer\"} 1\n"),
            std::string::npos);
  const std::string json = obs::SpanSummariesJson();
  EXPECT_NE(json.find("\"obs_test.inner\":{\"count\":1,"), std::string::npos);
  obs::ResetSpansForTest();
}

TEST(TraceTest, DisabledSpansAreNoOps) {
  obs::ResetSpansForTest();
  obs::SetEnabled(false);
  {
    const obs::TraceSpan span("obs_test.disabled");
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0u);
  }
  obs::SetEnabled(true);
  EXPECT_EQ(obs::TraceRing::Global().total(), 0u);
  EXPECT_TRUE(obs::SpanAggregates().empty());
}

// ---------------------------------------------------------------------------
// ServerStats exposition (the serve family names the pipeline test and
// docs/observability.md promise).

TEST(ServerStatsExpositionTest, PublishesServeFamily) {
  ServerStats stats;
  stats.RecordRequest(100);
  stats.RecordBatch(1);
  stats.RecordShed();
  stats.RecordDeadlineExpired();
  stats.RecordBatch(3, /*degraded=*/true);
  std::string out;
  stats.AppendExposition(out);
  EXPECT_NE(out.find("spe_serve_requests_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("spe_serve_batches_total 2\n"), std::string::npos);
  EXPECT_NE(out.find("spe_serve_batch_rows_total 4\n"), std::string::npos);
  EXPECT_NE(out.find("spe_serve_shed_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("spe_serve_deadline_expired_total 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("spe_serve_degraded_batches_total 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("spe_serve_degraded_rows_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE spe_serve_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("spe_serve_latency_us_count 1\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE spe_serve_batch_size histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("spe_serve_batch_size_sum 4\n"), std::string::npos);
}

}  // namespace
}  // namespace spe
