// Cross-sampler property sweeps: invariants every re-sampling method
// must satisfy on arbitrary numeric data, parameterized over
// (sampler, seed). Complements the per-method behavioural tests in
// sampling_test.cc.

#include <algorithm>
#include <limits>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "spe/core/hardness.h"
#include "spe/core/self_paced_sampler.h"
#include "spe/sampling/sampler_factory.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

class SamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  static Dataset MakeData(int seed) {
    return OverlappingBlobs(250, 30, static_cast<std::uint64_t>(seed));
  }
};

// Encodes a row (features + label) for set membership checks.
std::vector<double> RowKey(const Dataset& data, std::size_t i) {
  std::vector<double> key(data.num_features() + 1);
  data.CopyRowTo(i, std::span<double>(key.data(), data.num_features()));
  key[data.num_features()] = static_cast<double>(data.Label(i));
  return key;
}

TEST_P(SamplerPropertyTest, OutputIsNonEmptyWithBothClasses) {
  const auto& [name, seed] = GetParam();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);
  EXPECT_GT(out.CountPositives(), 0u) << name;
  EXPECT_GT(out.CountNegatives(), 0u) << name;
  EXPECT_EQ(out.num_features(), data.num_features());
}

TEST_P(SamplerPropertyTest, MinorityClassIsNeverShrunk) {
  // Every method in this library either keeps or grows the minority.
  const auto& [name, seed] = GetParam();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 2000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);
  EXPECT_GE(out.CountPositives(), data.CountPositives()) << name;
}

TEST_P(SamplerPropertyTest, UnderSamplersOnlySelectExistingRows) {
  const auto& [name, seed] = GetParam();
  // ClusterCentroids is the one prototype-*generating* under-sampler:
  // it replaces the majority with synthetic k-means centroids by design.
  if (name == "ClusterCentroids") GTEST_SKIP();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 3000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);
  if (out.num_rows() > data.num_rows()) return;  // over/hybrid sampler

  std::set<std::vector<double>> originals;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    originals.insert(RowKey(data, i));
  }
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_TRUE(originals.count(RowKey(out, i)))
        << name << " fabricated a row";
  }
}

TEST_P(SamplerPropertyTest, SyntheticRowsAreAlwaysMinority) {
  // Over-samplers may invent rows, but only positive ones.
  // (ClusterCentroids intentionally synthesizes majority prototypes.)
  const auto& [name, seed] = GetParam();
  if (name == "ClusterCentroids") GTEST_SKIP();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 4000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);

  std::set<std::vector<double>> originals;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    originals.insert(RowKey(data, i));
  }
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    if (!originals.count(RowKey(out, i))) {
      EXPECT_EQ(out.Label(i), 1) << name << " fabricated a majority row";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplersAcrossSeeds, SamplerPropertyTest,
    ::testing::Combine(::testing::ValuesIn(KnownSamplerNames()),
                       ::testing::Values(1, 2, 3)));

// ------------------- SelfPacedUnderSample quota properties -------------
//
// The bin quotas of Algorithm 1 lines 7-9 must account for every
// requested sample: exactly target_count distinct indices come back, and
// no bin is asked for more rows than it holds (the deficit of a
// saturated bin is redrawn from the remaining pool instead).

struct QuotaCase {
  std::uint64_t seed;
  std::size_t n;            // majority pool size
  std::size_t num_bins;
  std::size_t target;
  double alpha;
  bool all_trivial;  // hardness identically zero (degenerate bin weights)
};

class SelfPacedQuotaPropertyTest
    : public ::testing::TestWithParam<QuotaCase> {};

TEST_P(SelfPacedQuotaPropertyTest, QuotasSumExactlyAndStayWithinBins) {
  const QuotaCase& c = GetParam();
  std::vector<double> hardness(c.n, 0.0);
  if (!c.all_trivial) {
    Rng gen(c.seed);
    // Skewed mixture so some bins are tiny and saturate.
    for (double& h : hardness) {
      h = gen.Uniform() < 0.9 ? gen.Uniform(0.0, 0.1) : gen.Uniform(0.1, 1.0);
    }
  }

  Rng rng(c.seed + 100);
  const auto pick =
      SelfPacedUnderSample(hardness, c.alpha, c.num_bins, c.target, rng);

  // Exactly min(target, n) distinct, in-range indices.
  EXPECT_EQ(pick.size(), std::min(c.target, c.n));
  std::set<std::size_t> unique(pick.begin(), pick.end());
  EXPECT_EQ(unique.size(), pick.size());
  for (std::size_t i : pick) EXPECT_LT(i, c.n);

  // Per-bin draw never exceeds the bin's population (recomputed through
  // the same binning the sampler uses).
  const HardnessBins bins = ComputeHardnessBins(hardness, c.num_bins);
  std::vector<std::size_t> drawn(c.num_bins, 0);
  for (std::size_t i : pick) ++drawn[bins.bin_of_sample[i]];
  for (std::size_t b = 0; b < c.num_bins; ++b) {
    EXPECT_LE(drawn[b], bins.population[b]) << "bin " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedCases, SelfPacedQuotaPropertyTest,
    ::testing::Values(
        QuotaCase{1, 1000, 20, 137, 0.0, false},
        QuotaCase{2, 1000, 20, 137, 1.3, false},
        QuotaCase{3, 777, 10, 700, 5.0, false},   // near-full draw
        QuotaCase{4, 333, 50, 333, 0.0, false},   // target == pool
        QuotaCase{5, 512, 5, 40, 1e9, false},     // quasi-infinite alpha
        QuotaCase{6, 512, 5, 40,
                  std::numeric_limits<double>::infinity(), false},
        QuotaCase{7, 400, 20, 100, 0.0, true},    // alpha=0, all-zero
        QuotaCase{8, 400, 20, 100, 2.0, true},    // hardness: degenerate
        QuotaCase{9, 64, 20, 200, 0.7, false}));  // target > pool

}  // namespace
}  // namespace spe
