// Cross-sampler property sweeps: invariants every re-sampling method
// must satisfy on arbitrary numeric data, parameterized over
// (sampler, seed). Complements the per-method behavioural tests in
// sampling_test.cc.

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "spe/sampling/sampler_factory.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

class SamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  static Dataset MakeData(int seed) {
    return OverlappingBlobs(250, 30, static_cast<std::uint64_t>(seed));
  }
};

// Encodes a row (features + label) for set membership checks.
std::vector<double> RowKey(const Dataset& data, std::size_t i) {
  std::vector<double> key(data.Row(i).begin(), data.Row(i).end());
  key.push_back(static_cast<double>(data.Label(i)));
  return key;
}

TEST_P(SamplerPropertyTest, OutputIsNonEmptyWithBothClasses) {
  const auto& [name, seed] = GetParam();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);
  EXPECT_GT(out.CountPositives(), 0u) << name;
  EXPECT_GT(out.CountNegatives(), 0u) << name;
  EXPECT_EQ(out.num_features(), data.num_features());
}

TEST_P(SamplerPropertyTest, MinorityClassIsNeverShrunk) {
  // Every method in this library either keeps or grows the minority.
  const auto& [name, seed] = GetParam();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 2000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);
  EXPECT_GE(out.CountPositives(), data.CountPositives()) << name;
}

TEST_P(SamplerPropertyTest, UnderSamplersOnlySelectExistingRows) {
  const auto& [name, seed] = GetParam();
  // ClusterCentroids is the one prototype-*generating* under-sampler:
  // it replaces the majority with synthetic k-means centroids by design.
  if (name == "ClusterCentroids") GTEST_SKIP();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 3000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);
  if (out.num_rows() > data.num_rows()) return;  // over/hybrid sampler

  std::set<std::vector<double>> originals;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    originals.insert(RowKey(data, i));
  }
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_TRUE(originals.count(RowKey(out, i)))
        << name << " fabricated a row";
  }
}

TEST_P(SamplerPropertyTest, SyntheticRowsAreAlwaysMinority) {
  // Over-samplers may invent rows, but only positive ones.
  // (ClusterCentroids intentionally synthesizes majority prototypes.)
  const auto& [name, seed] = GetParam();
  if (name == "ClusterCentroids") GTEST_SKIP();
  const Dataset data = MakeData(seed);
  Rng rng(static_cast<std::uint64_t>(seed) + 4000);
  const Dataset out = MakeSampler(name)->Resample(data, rng);

  std::set<std::vector<double>> originals;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    originals.insert(RowKey(data, i));
  }
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    if (!originals.count(RowKey(out, i))) {
      EXPECT_EQ(out.Label(i), 1) << name << " fabricated a majority row";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplersAcrossSeeds, SamplerPropertyTest,
    ::testing::Combine(::testing::ValuesIn(KnownSamplerNames()),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace spe
