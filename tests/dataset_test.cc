#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spe/data/dataset.h"

namespace spe {
namespace {

Dataset SmallData() {
  Dataset data(2);
  data.AddRow(std::vector<double>{1.0, 2.0}, 0);
  data.AddRow(std::vector<double>{3.0, 4.0}, 1);
  data.AddRow(std::vector<double>{5.0, 6.0}, 0);
  data.AddRow(std::vector<double>{7.0, 8.0}, 0);
  return data;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset data = SmallData();
  EXPECT_EQ(data.num_rows(), 4u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_DOUBLE_EQ(data.At(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(data.At(2, 1), 6.0);
  EXPECT_EQ(data.Label(1), 1);
  std::vector<double> row(2);
  data.CopyRowTo(3, row);
  EXPECT_EQ(row[1], 8.0);
}

TEST(DatasetTest, SetMutates) {
  Dataset data = SmallData();
  data.Set(0, 1, 99.0);
  EXPECT_DOUBLE_EQ(data.At(0, 1), 99.0);
  data.SetLabel(0, 1);
  EXPECT_EQ(data.Label(0), 1);
}

TEST(DatasetTest, PositiveNegativeIndices) {
  const Dataset data = SmallData();
  EXPECT_EQ(data.PositiveIndices(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(data.NegativeIndices(), (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(data.CountPositives(), 1u);
  EXPECT_EQ(data.CountNegatives(), 3u);
}

TEST(DatasetTest, ImbalanceRatio) {
  const Dataset data = SmallData();
  EXPECT_DOUBLE_EQ(data.ImbalanceRatio(), 3.0);
}

TEST(DatasetTest, SubsetPreservesOrderAndAllowsDuplicates) {
  const Dataset data = SmallData();
  const std::vector<std::size_t> idx = {2, 0, 2};
  const Dataset sub = data.Subset(idx);
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(sub.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.At(2, 0), 5.0);
}

TEST(DatasetTest, SubsetPreservesFeatureKinds) {
  Dataset data = SmallData();
  data.set_feature_kind(1, FeatureKind::kCategorical);
  const std::vector<std::size_t> idx = {0};
  const Dataset sub = data.Subset(idx);
  EXPECT_EQ(sub.feature_kind(1), FeatureKind::kCategorical);
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a = SmallData();
  const Dataset b = SmallData();
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 8u);
  EXPECT_DOUBLE_EQ(a.At(4, 0), 1.0);
}

TEST(DatasetTest, HasCategoricalFeatures) {
  Dataset data = SmallData();
  EXPECT_FALSE(data.HasCategoricalFeatures());
  data.set_feature_kind(0, FeatureKind::kCategorical);
  EXPECT_TRUE(data.HasCategoricalFeatures());
}

TEST(DatasetTest, SummaryMentionsRowsAndIr) {
  const Dataset data = SmallData();
  const std::string summary = data.Summary();
  EXPECT_NE(summary.find("4 rows"), std::string::npos);
  EXPECT_NE(summary.find("IR"), std::string::npos);
}

TEST(DatasetDeathTest, AddRowRejectsWrongWidth) {
  Dataset data(2);
  EXPECT_DEATH(data.AddRow(std::vector<double>{1.0}, 0), "CHECK");
}

TEST(DatasetDeathTest, AddRowRejectsNonBinaryLabel) {
  Dataset data(1);
  EXPECT_DEATH(data.AddRow(std::vector<double>{1.0}, 2), "binary");
}

TEST(FeatureScalerTest, StandardizesToZeroMeanUnitVariance) {
  Dataset data(1);
  for (double v : {2.0, 4.0, 6.0, 8.0}) {
    data.AddRow(std::vector<double>{v}, 0);
  }
  FeatureScaler scaler;
  scaler.Fit(data);
  const Dataset out = scaler.Transform(data);
  double mean = 0.0;
  for (std::size_t i = 0; i < out.num_rows(); ++i) mean += out.At(i, 0);
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-12);
  double var = 0.0;
  for (std::size_t i = 0; i < out.num_rows(); ++i) var += out.At(i, 0) * out.At(i, 0);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
}

TEST(FeatureScalerTest, ConstantColumnMapsToZero) {
  Dataset data(1);
  for (int i = 0; i < 5; ++i) data.AddRow(std::vector<double>{3.0}, 0);
  FeatureScaler scaler;
  scaler.Fit(data);
  const Dataset out = scaler.Transform(data);
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(out.At(i, 0), 0.0);
  }
}

TEST(FeatureScalerTest, CategoricalColumnsPassThrough) {
  Dataset data(2);
  data.set_feature_kind(0, FeatureKind::kCategorical);
  data.AddRow(std::vector<double>{2.0, 10.0}, 0);
  data.AddRow(std::vector<double>{4.0, 20.0}, 1);
  FeatureScaler scaler;
  scaler.Fit(data);
  const Dataset out = scaler.Transform(data);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 4.0);
  EXPECT_NE(out.At(0, 1), 10.0);
}

TEST(FeatureScalerTest, TransformRowMatchesTransform) {
  Dataset data(2);
  data.AddRow(std::vector<double>{1.0, -5.0}, 0);
  data.AddRow(std::vector<double>{3.0, 5.0}, 1);
  data.AddRow(std::vector<double>{5.0, 15.0}, 0);
  FeatureScaler scaler;
  scaler.Fit(data);
  const Dataset out = scaler.Transform(data);
  std::vector<double> in(2);
  std::vector<double> row(2);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    data.CopyRowTo(i, in);
    scaler.TransformRow(in, row);
    EXPECT_DOUBLE_EQ(row[0], out.At(i, 0));
    EXPECT_DOUBLE_EQ(row[1], out.At(i, 1));
  }
}

}  // namespace
}  // namespace spe
