#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/common/rng.h"
#include "tests/test_util.h"

namespace spe {
namespace {

// Feature 0 carries all the signal; features 1 and 2 are pure noise.
Dataset OneInformativeFeature(std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(3);
  for (int i = 0; i < 600; ++i) {
    const int label = i % 3 == 0 ? 1 : 0;
    const std::vector<double> row = {
        label == 1 ? rng.Gaussian(3.0, 0.5) : rng.Gaussian(0.0, 0.5),
        rng.Gaussian(), rng.Uniform()};
    data.AddRow(row, label);
  }
  return data;
}

TEST(FeatureImportanceTest, TreeAttributesSignalToTheRightFeature) {
  DecisionTree tree;
  tree.Fit(OneInformativeFeature(1));
  const std::vector<double> importance = tree.FeatureImportances();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.8);
  EXPECT_NEAR(std::accumulate(importance.begin(), importance.end(), 0.0), 1.0,
              1e-9);
}

TEST(FeatureImportanceTest, SingleLeafTreeIsAllZero) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) {
    data.AddRow(std::vector<double>{1.0, 2.0}, 0);
  }
  DecisionTree tree;
  tree.Fit(data);
  for (double v : tree.FeatureImportances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FeatureImportanceTest, GbdtAttributesSignalToTheRightFeature) {
  GbdtConfig config;
  config.boost_rounds = 10;
  Gbdt gbdt(config);
  gbdt.Fit(OneInformativeFeature(2));
  const std::vector<double> importance = gbdt.FeatureImportances();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.8);
  EXPECT_NEAR(std::accumulate(importance.begin(), importance.end(), 0.0), 1.0,
              1e-9);
}

TEST(FeatureImportanceTest, GbdtXorSplitsAcrossBothFeatures) {
  GbdtConfig config;
  config.boost_rounds = 15;
  Gbdt gbdt(config);
  gbdt.Fit(testing::XorClusters(150, 3));
  const std::vector<double> importance = gbdt.FeatureImportances();
  ASSERT_EQ(importance.size(), 2u);
  // XOR needs both coordinates; neither may dominate completely.
  EXPECT_GT(importance[0], 0.2);
  EXPECT_GT(importance[1], 0.2);
}

TEST(FeatureImportanceDeathTest, UnfittedModelsAbort) {
  DecisionTree tree;
  EXPECT_DEATH(tree.FeatureImportances(), "before fit");
  Gbdt gbdt;
  EXPECT_DEATH(gbdt.FeatureImportances(), "before fit");
}

}  // namespace
}  // namespace spe
