#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/metrics/confusion.h"
#include "spe/metrics/metrics.h"

namespace spe {
namespace {

TEST(ConfusionTest, CountsAtThreshold) {
  const std::vector<int> labels = {1, 1, 0, 0, 1, 0};
  const std::vector<double> scores = {0.9, 0.4, 0.6, 0.1, 0.5, 0.5};
  const ConfusionMatrix m = ConfusionAt(labels, scores, 0.5);
  EXPECT_EQ(m.tp, 2u);  // 0.9, 0.5
  EXPECT_EQ(m.fn, 1u);  // 0.4
  EXPECT_EQ(m.fp, 2u);  // 0.6, 0.5
  EXPECT_EQ(m.tn, 1u);  // 0.1
  EXPECT_EQ(m.total(), 6u);
}

TEST(MetricsTest, HandComputedPrecisionRecallF1) {
  const ConfusionMatrix m{.tp = 8, .fn = 2, .fp = 4, .tn = 86};
  EXPECT_DOUBLE_EQ(Recall(m), 0.8);
  EXPECT_DOUBLE_EQ(Precision(m), 8.0 / 12.0);
  EXPECT_NEAR(F1Score(m), 2 * 0.8 * (2.0 / 3.0) / (0.8 + 2.0 / 3.0), 1e-12);
}

TEST(MetricsTest, PaperGMeanIsSqrtRecallPrecision) {
  const ConfusionMatrix m{.tp = 9, .fn = 1, .fp = 9, .tn = 81};
  EXPECT_NEAR(GMean(m), std::sqrt(0.9 * 0.5), 1e-12);
  EXPECT_NEAR(GMeanTprTnr(m), std::sqrt(0.9 * 0.9), 1e-12);
}

TEST(MetricsTest, MccPerfectAndInverted) {
  const ConfusionMatrix perfect{.tp = 10, .fn = 0, .fp = 0, .tn = 90};
  EXPECT_DOUBLE_EQ(Mcc(perfect), 1.0);
  const ConfusionMatrix inverted{.tp = 0, .fn = 10, .fp = 90, .tn = 0};
  EXPECT_DOUBLE_EQ(Mcc(inverted), -1.0);
}

TEST(MetricsTest, DegenerateDenominatorsReturnZero) {
  const ConfusionMatrix no_predictions{.tp = 0, .fn = 5, .fp = 0, .tn = 95};
  EXPECT_DOUBLE_EQ(Precision(no_predictions), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(no_predictions), 0.0);
  EXPECT_DOUBLE_EQ(Mcc(no_predictions), 0.0);
}

TEST(PrCurveTest, PerfectRankingGivesAucOne) {
  const std::vector<int> labels = {0, 0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(AucPrc(labels, scores), 1.0);
}

TEST(PrCurveTest, WorstRankingGivesLowAuc) {
  const std::vector<int> labels = {1, 1, 0, 0, 0, 0, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  EXPECT_LT(AucPrc(labels, scores), 0.3);
}

TEST(PrCurveTest, ConstantScoresGivePrevalence) {
  // All samples tie: the single PR point has precision = prevalence and
  // recall = 1, so average precision equals the positive rate.
  const std::vector<int> labels = {1, 0, 0, 0, 1, 0, 0, 0, 0, 0};
  const std::vector<double> scores(10, 0.5);
  EXPECT_NEAR(AucPrc(labels, scores), 0.2, 1e-12);
}

TEST(PrCurveTest, HandComputedAveragePrecision) {
  // Ranked: 1 (0.9), 0 (0.8), 1 (0.7), 0 (0.6).
  // AP = 0.5 * 1.0 (first positive) + 0.5 * (2/3) (second positive).
  const std::vector<int> labels = {1, 0, 1, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  EXPECT_NEAR(AucPrc(labels, scores), 0.5 + 0.5 * 2.0 / 3.0, 1e-12);
}

TEST(PrCurveTest, CurveRecallIsNonDecreasing) {
  Rng rng(1);
  std::vector<int> labels(200);
  std::vector<double> scores(200);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.Uniform() < 0.2 ? 1 : 0;
    scores[i] = rng.Uniform();
  }
  labels[0] = 1;  // ensure at least one positive
  const auto curve = PrCurve(labels, scores);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_NEAR(curve.back().recall, 1.0, 1e-12);
}

TEST(AucRocTest, PerfectAndRandom) {
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AucRoc(labels, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(AucRoc(labels, {0.9, 0.8, 0.2, 0.1}), 0.0);
  // All-tied scores: AUC is exactly 0.5 via midranks.
  EXPECT_DOUBLE_EQ(AucRoc(labels, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(AucRocTest, HandComputedWithTie) {
  // scores: pos {0.8, 0.5}, neg {0.5, 0.2}.
  // Pairs: (0.8 vs 0.5)=1, (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1.
  // AUC = 3.5 / 4.
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<double> scores = {0.8, 0.5, 0.5, 0.2};
  EXPECT_NEAR(AucRoc(labels, scores), 3.5 / 4.0, 1e-12);
}

TEST(EvaluateTest, BundlesAllFourCriteria) {
  const std::vector<int> labels = {1, 1, 0, 0, 0, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.2, 0.1, 0.05};
  const ScoreSummary s = Evaluate(labels, scores);
  EXPECT_DOUBLE_EQ(s.aucprc, 1.0);
  const ConfusionMatrix m = ConfusionAt(labels, scores, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, F1Score(m));
  EXPECT_DOUBLE_EQ(s.gmean, GMean(m));
  EXPECT_DOUBLE_EQ(s.mcc, Mcc(m));
}

// Property sweep: metric invariants must hold for arbitrary score vectors.
class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, AucsAreInUnitIntervalAndMonotoneInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 50 + rng.Index(150);
  std::vector<int> labels(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.Uniform() < 0.3 ? 1 : 0;
    scores[i] = rng.Uniform();
  }
  labels[0] = 1;
  labels[1] = 0;

  const double aucprc = AucPrc(labels, scores);
  const double aucroc = AucRoc(labels, scores);
  EXPECT_GE(aucprc, 0.0);
  EXPECT_LE(aucprc, 1.0);
  EXPECT_GE(aucroc, 0.0);
  EXPECT_LE(aucroc, 1.0);

  // Ranking metrics are invariant under strictly monotone transforms.
  std::vector<double> transformed(n);
  for (std::size_t i = 0; i < n; ++i) {
    transformed[i] = std::exp(3.0 * scores[i]) + 7.0;
  }
  EXPECT_NEAR(AucPrc(labels, transformed), aucprc, 1e-9);
  EXPECT_NEAR(AucRoc(labels, transformed), aucroc, 1e-9);
}

TEST_P(MetricPropertyTest, AucPrcAtLeastPrevalenceForPerfectAndBounded) {
  // For any scores, swapping labels' sign relationship: just check
  // threshold metrics stay in range across thresholds.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const std::size_t n = 100;
  std::vector<int> labels(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.Uniform() < 0.25 ? 1 : 0;
    scores[i] = rng.Uniform();
  }
  labels[0] = 1;
  for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const ConfusionMatrix m = ConfusionAt(labels, scores, t);
    EXPECT_EQ(m.total(), n);
    for (double v : {Recall(m), Precision(m), F1Score(m), GMean(m)}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    EXPECT_GE(Mcc(m), -1.0);
    EXPECT_LE(Mcc(m), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace spe
