#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/data/libsvm.h"

namespace spe {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(LibsvmTest, ParsesSparseRows) {
  const std::string path = TempPath("spe_libsvm_basic.txt");
  WriteFile(path,
            "1 1:0.5 3:2.0\n"
            "0 2:-1.25\n"
            "1 1:1 2:2 3:3\n");
  const Dataset data = LoadLibsvm(path);
  ASSERT_EQ(data.num_rows(), 3u);
  ASSERT_EQ(data.num_features(), 3u);
  EXPECT_DOUBLE_EQ(data.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(data.At(0, 1), 0.0);  // sparse zero
  EXPECT_DOUBLE_EQ(data.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(data.At(1, 1), -1.25);
  EXPECT_EQ(data.Label(0), 1);
  EXPECT_EQ(data.Label(1), 0);
  std::remove(path.c_str());
}

TEST(LibsvmTest, MapsMinusOneLabels) {
  const std::string path = TempPath("spe_libsvm_pm1.txt");
  WriteFile(path, "-1 1:1\n+1 1:2\n");
  const Dataset data = LoadLibsvm(path);
  EXPECT_EQ(data.Label(0), 0);
  EXPECT_EQ(data.Label(1), 1);
  std::remove(path.c_str());
}

TEST(LibsvmTest, MapsOneTwoLabels) {
  const std::string path = TempPath("spe_libsvm_12.txt");
  WriteFile(path, "1 1:1\n2 1:2\n1 1:3\n");
  const Dataset data = LoadLibsvm(path);
  EXPECT_EQ(data.Label(0), 0);  // 1 is negative when 2 appears
  EXPECT_EQ(data.Label(1), 1);
  EXPECT_EQ(data.Label(2), 0);
  std::remove(path.c_str());
}

TEST(LibsvmTest, ExplicitWidthPadsColumns) {
  const std::string path = TempPath("spe_libsvm_width.txt");
  WriteFile(path, "1 1:1\n");
  const Dataset data = LoadLibsvm(path, /*num_features=*/5);
  EXPECT_EQ(data.num_features(), 5u);
  EXPECT_DOUBLE_EQ(data.At(0, 4), 0.0);
  std::remove(path.c_str());
}

TEST(LibsvmTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("spe_libsvm_comments.txt");
  WriteFile(path, "# header comment\n\n1 1:1 # trailing comment\n0 1:2\n");
  const Dataset data = LoadLibsvm(path);
  EXPECT_EQ(data.num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(LibsvmTest, RoundTrip) {
  Dataset data(4);
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> row(4);
    for (auto& v : row) v = rng.Uniform() < 0.4 ? 0.0 : rng.Gaussian();
    data.AddRow(row, i % 5 == 0);
  }
  const std::string path = TempPath("spe_libsvm_roundtrip.txt");
  SaveLibsvm(data, path);
  const Dataset loaded = LoadLibsvm(path, 4);
  ASSERT_EQ(loaded.num_rows(), data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(loaded.Label(i), data.Label(i));
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(loaded.At(i, j), data.At(i, j), 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(LibsvmDeathTest, ZeroBasedIndexAborts) {
  const std::string path = TempPath("spe_libsvm_zero.txt");
  WriteFile(path, "1 0:1\n");
  EXPECT_DEATH(LoadLibsvm(path), "1-based");
  std::remove(path.c_str());
}

TEST(LibsvmDeathTest, TooSmallWidthAborts) {
  const std::string path = TempPath("spe_libsvm_small.txt");
  WriteFile(path, "1 7:1\n");
  EXPECT_DEATH(LoadLibsvm(path, 3), "largest feature index");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spe
