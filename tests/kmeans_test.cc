#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "spe/cluster/kmeans.h"
#include "spe/sampling/cluster_centroids.h"
#include "spe/sampling/kmeans_smote.h"
#include "tests/test_util.h"

namespace spe {
namespace {

// Four tight, well-separated clusters around known centres.
Dataset FourClusters(std::uint64_t seed, std::size_t per_cluster = 50) {
  Rng rng(seed);
  Dataset data(2);
  const double centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      data.AddRow(std::vector<double>{rng.Gaussian(c[0], 0.3),
                                      rng.Gaussian(c[1], 0.3)},
                  0);
    }
  }
  return data;
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  const Dataset data = FourClusters(1);
  KMeansConfig config;
  config.num_clusters = 4;
  config.seed = 2;
  KMeans kmeans(config);
  kmeans.Fit(data);
  ASSERT_EQ(kmeans.num_clusters(), 4u);

  // Every centroid must sit near one of the true centres, and all four
  // centres must be claimed.
  std::set<std::pair<int, int>> claimed;
  for (const auto& centroid : kmeans.centroids()) {
    const int cx = centroid[0] > 5.0 ? 10 : 0;
    const int cy = centroid[1] > 5.0 ? 10 : 0;
    EXPECT_NEAR(centroid[0], cx, 0.5);
    EXPECT_NEAR(centroid[1], cy, 0.5);
    claimed.insert({cx, cy});
  }
  EXPECT_EQ(claimed.size(), 4u);
}

TEST(KMeansTest, AssignmentsAreConsistentWithAssignRow) {
  const Dataset data = FourClusters(3);
  KMeansConfig config;
  config.num_clusters = 4;
  KMeans kmeans(config);
  kmeans.Fit(data);
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    data.CopyRowTo(i, row);
    EXPECT_EQ(kmeans.AssignRow(row), kmeans.assignments()[i]);
  }
}

TEST(KMeansTest, MoreClustersThanRowsCollapses) {
  Dataset data(1);
  for (int i = 0; i < 3; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, 0);
  }
  KMeansConfig config;
  config.num_clusters = 10;
  KMeans kmeans(config);
  kmeans.Fit(data);
  EXPECT_EQ(kmeans.num_clusters(), 3u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  const Dataset data = FourClusters(4);
  KMeansConfig config;
  config.num_clusters = 4;
  config.seed = 7;
  KMeans a(config);
  KMeans b(config);
  a.Fit(data);
  b.Fit(data);
  EXPECT_EQ(a.assignments(), b.assignments());
}

TEST(KMeansDeathTest, CategoricalFeaturesAbort) {
  Dataset data(1);
  data.set_feature_kind(0, FeatureKind::kCategorical);
  data.AddRow(std::vector<double>{1.0}, 0);
  KMeans kmeans;
  EXPECT_DEATH(kmeans.Fit(data), "numeric feature space");
}

// ------------------------------------------------------ ClusterCentroids --

TEST(ClusterCentroidsTest, BalancesWithExactlyPCentroids) {
  const Dataset data = testing::OverlappingBlobs(400, 40, 5);
  Rng rng(6);
  const Dataset out = ClusterCentroidsSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 40u);
  EXPECT_EQ(out.CountNegatives(), 40u);
}

TEST(ClusterCentroidsTest, CentroidsSummarizeTheMajorityManifold) {
  // Majority = four clusters; with |P| = 4 the centroids must land on
  // the four cluster centres.
  Dataset data = FourClusters(7);
  Rng gen(8);
  for (int i = 0; i < 4; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(5.0, 0.1),
                                    gen.Gaussian(5.0, 0.1)},
                1);
  }
  Rng rng(9);
  const Dataset out = ClusterCentroidsSampler().Resample(data, rng);
  ASSERT_EQ(out.CountNegatives(), 4u);
  std::set<std::pair<int, int>> claimed;
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    if (out.Label(i) != 0) continue;
    claimed.insert({out.At(i, 0) > 5.0 ? 10 : 0, out.At(i, 1) > 5.0 ? 10 : 0});
  }
  EXPECT_EQ(claimed.size(), 4u);
}

// ---------------------------------------------------------- KMeansSMOTE --

TEST(KMeansSmoteTest, BalancesTheClasses) {
  const Dataset data = testing::OverlappingBlobs(300, 40, 10);
  Rng rng(11);
  const Dataset out = KMeansSmoteSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 300u);
  EXPECT_EQ(out.CountNegatives(), 300u);
}

TEST(KMeansSmoteTest, NeverInterpolatesAcrossMinorityClusters) {
  // Minority mass at (0,0) and (10,10); plain SMOTE draws bridges
  // through the middle, cluster-aware SMOTE must not.
  Rng gen(12);
  Dataset data(2);
  for (int i = 0; i < 400; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(5.0, 0.5),
                                    gen.Gaussian(5.0, 0.5)},
                0);
  }
  for (int i = 0; i < 20; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(0.0, 0.2),
                                    gen.Gaussian(0.0, 0.2)},
                1);
  }
  for (int i = 0; i < 20; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(10.0, 0.2),
                                    gen.Gaussian(10.0, 0.2)},
                1);
  }
  Rng rng(13);
  KMeansSmoteSampler sampler(/*clusters=*/2, /*k=*/5);
  const Dataset out = sampler.Resample(data, rng);
  for (std::size_t i = data.num_rows(); i < out.num_rows(); ++i) {
    ASSERT_EQ(out.Label(i), 1);
    const double x = out.At(i, 0);
    // Synthetic points stay inside one blob; nothing lands mid-bridge.
    EXPECT_TRUE(x < 2.0 || x > 8.0) << "bridge point at x=" << x;
  }
}

TEST(KMeansSmoteTest, DegenerateMinorityIsReturnedUnchanged) {
  Dataset data = testing::OverlappingBlobs(50, 1, 14);
  Rng rng(15);
  const Dataset out = KMeansSmoteSampler().Resample(data, rng);
  EXPECT_EQ(out.num_rows(), data.num_rows());
}

}  // namespace
}  // namespace spe
