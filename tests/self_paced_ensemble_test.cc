#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/factory.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/random_under.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;

TEST(AlphaScheduleTest, TanStartsAtZeroEndsAtInfinity) {
  EXPECT_DOUBLE_EQ(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, 1, 10), 0.0);
  EXPECT_TRUE(std::isinf(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, 10, 10)));
  // Strictly increasing in between.
  double prev = -1.0;
  for (std::size_t i = 1; i < 10; ++i) {
    const double a = SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, i, 10);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(AlphaScheduleTest, SingleEstimatorGetsInfinity) {
  EXPECT_TRUE(std::isinf(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kTan, 1, 1)));
}

TEST(AlphaScheduleTest, AblationSchedules) {
  EXPECT_DOUBLE_EQ(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kZero, 5, 10), 0.0);
  EXPECT_TRUE(
      std::isinf(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kInfinity, 1, 10)));
  EXPECT_DOUBLE_EQ(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kLinear, 1, 11), 0.0);
  EXPECT_DOUBLE_EQ(SelfPacedEnsemble::AlphaAt(AlphaSchedule::kLinear, 11, 11),
                   10.0);
}

TEST(SelfPacedEnsembleTest, TrainsConfiguredNumberOfMembers) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 7;
  SelfPacedEnsemble spe(config);
  spe.Fit(OverlappingBlobs(500, 50, 1));
  EXPECT_EQ(spe.NumMembers(), 7u);
  EXPECT_EQ(spe.Name(), "SPE7");
}

TEST(SelfPacedEnsembleTest, IncludeBootstrapAddsOneMember) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  config.include_bootstrap_model = true;
  SelfPacedEnsemble spe(config);
  spe.Fit(OverlappingBlobs(300, 30, 2));
  EXPECT_EQ(spe.NumMembers(), 6u);
}

TEST(SelfPacedEnsembleTest, LearnsImbalancedOverlappingData) {
  const Dataset train = OverlappingBlobs(2000, 60, 3);
  const Dataset test = OverlappingBlobs(1000, 30, 4);
  SelfPacedEnsembleConfig config;
  config.seed = 5;
  SelfPacedEnsemble spe(config);
  spe.Fit(train);
  // Heavy overlap caps even the Bayes-optimal scorer near 0.38 AUCPRC
  // here; demand a clear multiple of the ~0.03 positive prevalence.
  EXPECT_GT(AucPrc(test.labels(), spe.PredictProba(test)), 0.09);
}

TEST(SelfPacedEnsembleTest, BeatsSingleRandUnderModelOnAverage) {
  // The paper's headline claim at miniature scale: SPE10 should beat one
  // tree trained on one random balanced subset. Averaged over seeds to
  // keep the test robust.
  double spe_total = 0.0;
  double rand_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Dataset train = OverlappingBlobs(3000, 50, 100 + seed);
    const Dataset test = OverlappingBlobs(1500, 25, 200 + seed);

    SelfPacedEnsembleConfig config;
    config.seed = seed;
    SelfPacedEnsemble spe(config);
    spe.Fit(train);
    spe_total += AucPrc(test.labels(), spe.PredictProba(test));

    Rng rng(seed);
    const Dataset balanced = RandomUnderSampler().Resample(train, rng);
    DecisionTreeConfig tree_config;
    tree_config.max_depth = 10;
    DecisionTree tree(tree_config);
    tree.Fit(balanced);
    rand_total += AucPrc(test.labels(), tree.PredictProba(test));
  }
  EXPECT_GT(spe_total, rand_total);
}

TEST(SelfPacedEnsembleTest, DeterministicGivenSeed) {
  const Dataset train = OverlappingBlobs(400, 40, 6);
  const Dataset test = OverlappingBlobs(100, 20, 7);
  SelfPacedEnsembleConfig config;
  config.seed = 11;
  SelfPacedEnsemble a(config);
  SelfPacedEnsemble b(config);
  a.Fit(train);
  b.Fit(train);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(SelfPacedEnsembleTest, ReseedChangesResult) {
  const Dataset train = OverlappingBlobs(400, 40, 8);
  const Dataset test = OverlappingBlobs(100, 20, 9);
  SelfPacedEnsemble a;
  SelfPacedEnsemble b;
  b.Reseed(12345);
  a.Fit(train);
  b.Fit(train);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  double diff = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) diff += std::abs(pa[i] - pb[i]);
  EXPECT_GT(diff, 1e-9);
}

TEST(SelfPacedEnsembleTest, CallbackSeesBalancedSubsetsAndGrowingEnsemble) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 6;
  SelfPacedEnsemble spe(config);
  const Dataset train = OverlappingBlobs(800, 40, 10);
  std::size_t calls = 0;
  spe.set_iteration_callback([&](const IterationInfo& info) {
    ++calls;
    EXPECT_EQ(info.iteration, calls);
    EXPECT_EQ(info.ensemble.size(), calls);
    // Each subset is balanced: all 40 minority + 40 self-paced majority.
    EXPECT_EQ(info.training_subset.CountPositives(), 40u);
    EXPECT_EQ(info.training_subset.CountNegatives(), 40u);
  });
  spe.Fit(train);
  EXPECT_EQ(calls, 6u);
}

TEST(SelfPacedEnsembleTest, FitWithValidationKeepsBestPrefix) {
  const Dataset train = OverlappingBlobs(800, 60, 30);
  const Dataset validation = OverlappingBlobs(400, 30, 31);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = 4;
  SelfPacedEnsemble model(config);
  const std::size_t kept = model.FitWithValidation(train, validation);
  EXPECT_GE(kept, 1u);
  EXPECT_LE(kept, 10u);
  EXPECT_EQ(model.NumMembers(), kept);

  // The kept prefix must be at least as good on validation as the full
  // 10-member ensemble trained identically.
  SelfPacedEnsemble full(config);
  full.Fit(train);
  EXPECT_GE(AucPrc(validation.labels(), model.PredictProba(validation)),
            AucPrc(validation.labels(), full.PredictProba(validation)) - 1e-12);
}

TEST(SelfPacedEnsembleTest, FitWithValidationChainsUserCallback) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 4;
  SelfPacedEnsemble model(config);
  std::size_t calls = 0;
  model.set_iteration_callback([&](const IterationInfo&) { ++calls; });
  model.FitWithValidation(OverlappingBlobs(300, 30, 32),
                          OverlappingBlobs(150, 15, 33));
  EXPECT_EQ(calls, 4u);
}

// FitWithValidation must keep exactly the argmax prefix of the full
// ensemble, under both include_bootstrap_model settings. Fit is
// deterministic given the seed, and the incremental validation score
// inside FitWithValidation accumulates member probabilities in the same
// fixed order (and divides the same way) as PredictProbaPrefix, so the
// two curves are bit-identical and the argmax must agree exactly —
// first-best wins ties in both.
class SpeValidationTruncationTest : public ::testing::TestWithParam<bool> {};

TEST_P(SpeValidationTruncationTest, KeepsArgmaxPrefixOfFullEnsemble) {
  const Dataset train = OverlappingBlobs(900, 45, 40);
  const Dataset validation = OverlappingBlobs(450, 25, 41);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 8;
  config.include_bootstrap_model = GetParam();
  config.seed = 9;

  SelfPacedEnsemble full(config);
  full.Fit(train);
  EXPECT_EQ(full.NumMembers(), GetParam() ? 9u : 8u);
  std::size_t expected = 0;
  double best = -1.0;
  for (std::size_t k = 1; k <= full.NumMembers(); ++k) {
    const double auc =
        AucPrc(validation.labels(), full.PredictProbaPrefix(validation, k));
    if (auc > best) {
      best = auc;
      expected = k;
    }
  }

  // The regression this guards: with the bootstrap model included, the
  // old code skipped truncation entirely and returned the full ensemble
  // no matter what the validation curve said.
  SelfPacedEnsemble model(config);
  const std::size_t kept = model.FitWithValidation(train, validation);
  EXPECT_EQ(kept, expected);
  EXPECT_EQ(model.NumMembers(), kept);
  const auto expected_probs = full.PredictProbaPrefix(validation, kept);
  const auto actual_probs = model.PredictProba(validation);
  for (std::size_t i = 0; i < actual_probs.size(); ++i) {
    EXPECT_EQ(actual_probs[i], expected_probs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(BootstrapAblation, SpeValidationTruncationTest,
                         ::testing::Bool());

// Base learner that throws on its Nth Fit across all clones — lets a
// test blow up ensemble training partway through.
class ThrowingBase final : public Classifier {
 public:
  ThrowingBase(std::shared_ptr<std::size_t> fits, std::size_t throw_on)
      : fits_(std::move(fits)), throw_on_(throw_on) {}
  void Fit(const DatasetView& train) override {
    if (++*fits_ == throw_on_) throw std::runtime_error("injected fit failure");
    tree_.Fit(train);
  }
  double PredictRow(std::span<const double> x) const override {
    return tree_.PredictRow(x);
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<ThrowingBase>(fits_, throw_on_);
  }
  std::string Name() const override { return "ThrowingBase"; }

 private:
  std::shared_ptr<std::size_t> fits_;
  std::size_t throw_on_;
  DecisionTree tree_{DecisionTreeConfig{}};
};

TEST(SelfPacedEnsembleTest, FitWithValidationRestoresCallbackAfterThrow) {
  const Dataset train = OverlappingBlobs(400, 40, 42);
  const Dataset validation = OverlappingBlobs(200, 20, 43);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 4;
  // Throw inside the third Fit (bootstrap + f1 succeed): the validation
  // wrapper is installed and has already fired once when Fit unwinds.
  auto fits = std::make_shared<std::size_t>(0);
  SelfPacedEnsemble model(config, std::make_unique<ThrowingBase>(fits, 3));
  std::size_t user_calls = 0;
  model.set_iteration_callback([&](const IterationInfo&) { ++user_calls; });
  EXPECT_THROW(model.FitWithValidation(train, validation), std::runtime_error);

  // The wrapper captured locals of the FitWithValidation frame that just
  // died; if it were still installed, this Fit would invoke a dangling
  // closure (ASan flags it). The scope guard must have put the user
  // callback back.
  const std::size_t calls_before_refit = user_calls;
  model.Fit(train);
  EXPECT_EQ(user_calls, calls_before_refit + 4);
}

// Base learner whose probabilities are NaN: Fit must abort naming the
// offending member instead of letting NaN poison the hardness updates.
class NanBase final : public Classifier {
 public:
  void Fit(const DatasetView&) override {}
  double PredictRow(std::span<const double>) const override {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<NanBase>();
  }
  std::string Name() const override { return "NanBase"; }
};

TEST(SelfPacedEnsembleDeathTest, NanProbabilityNamesTheMember) {
  SelfPacedEnsemble model(SelfPacedEnsembleConfig{},
                          std::make_unique<NanBase>());
  EXPECT_DEATH(model.Fit(OverlappingBlobs(200, 20, 44)),
               "member 0 produced NaN probability");
}

TEST(SelfPacedEnsembleDeathTest, FitWithValidationNeedsPositives) {
  Dataset validation(2);
  validation.AddRow(std::vector<double>{0.0, 0.0}, 0);
  SelfPacedEnsemble model;
  EXPECT_DEATH(model.FitWithValidation(OverlappingBlobs(100, 10, 34), validation),
               "positives");
}

TEST(SelfPacedEnsembleTest, CloneIsIndependentAndUntrained) {
  SelfPacedEnsemble spe;
  spe.Fit(OverlappingBlobs(200, 20, 11));
  auto clone = spe.Clone();
  const std::vector<double> x = {0.0, 0.0};
  EXPECT_DEATH(clone->PredictRow(x), "");
}

// SPE must wrap every canonical classifier (the paper's applicability
// claim): parameterized over the whole factory.
class SpeWithAnyBaseTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SpeWithAnyBaseTest, FitsAndScoresReasonably) {
  const Dataset train = SeparableBlobs(600, 30, 12);
  const Dataset test = SeparableBlobs(300, 15, 13);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  config.seed = 3;
  SelfPacedEnsemble spe(config, MakeClassifier(GetParam(), 1));
  spe.Fit(train);
  const double auc = AucPrc(test.labels(), spe.PredictProba(test));
  EXPECT_GT(auc, 0.9) << "SPE+" << GetParam() << " scored " << auc;
}

INSTANTIATE_TEST_SUITE_P(AllBases, SpeWithAnyBaseTest,
                         ::testing::ValuesIn(KnownClassifierNames()));

// Hardness-function and bin-count robustness (the Fig. 8 claim).
struct SpeHyperParam {
  HardnessKind hardness;
  std::size_t bins;
};

class SpeHyperTest : public ::testing::TestWithParam<SpeHyperParam> {};

TEST_P(SpeHyperTest, RobustAcrossHardnessAndBins) {
  const Dataset train = OverlappingBlobs(1500, 50, 14);
  const Dataset test = OverlappingBlobs(700, 25, 15);
  SelfPacedEnsembleConfig config;
  config.hardness = GetParam().hardness;
  config.num_bins = GetParam().bins;
  config.seed = 2;
  SelfPacedEnsemble spe(config);
  spe.Fit(train);
  // The Bayes-optimal scorer reaches ~0.44 on this overlap level; any
  // hardness function / bin count must stay far above the ~0.034
  // prevalence baseline.
  EXPECT_GT(AucPrc(test.labels(), spe.PredictProba(test)), 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpeHyperTest,
    ::testing::Values(SpeHyperParam{HardnessKind::kAbsoluteError, 5},
                      SpeHyperParam{HardnessKind::kAbsoluteError, 20},
                      SpeHyperParam{HardnessKind::kAbsoluteError, 50},
                      SpeHyperParam{HardnessKind::kSquaredError, 20},
                      SpeHyperParam{HardnessKind::kCrossEntropy, 20}));

// Every alpha-schedule ablation must still train end to end.
class SpeScheduleTest : public ::testing::TestWithParam<AlphaSchedule> {};

TEST_P(SpeScheduleTest, TrainsAndPredicts) {
  SelfPacedEnsembleConfig config;
  config.schedule = GetParam();
  config.n_estimators = 5;
  SelfPacedEnsemble spe(config);
  spe.Fit(OverlappingBlobs(500, 40, 16));
  const Dataset test = OverlappingBlobs(100, 20, 17);
  for (double p : spe.PredictProba(test)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, SpeScheduleTest,
                         ::testing::Values(AlphaSchedule::kTan,
                                           AlphaSchedule::kZero,
                                           AlphaSchedule::kInfinity,
                                           AlphaSchedule::kLinear));

}  // namespace
}  // namespace spe
