#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/io/image.h"
#include "tests/test_util.h"

namespace spe {
namespace {

TEST(GrayscaleImageTest, PgmRoundTrip) {
  GrayscaleImage image(7, 5, 200);
  image.Set(0, 0, 0);
  image.Set(6, 4, 123);
  const std::string path =
      (std::filesystem::temp_directory_path() / "spe_image_test.pgm").string();
  image.SavePgm(path);
  const GrayscaleImage loaded = GrayscaleImage::LoadPgm(path);
  ASSERT_EQ(loaded.width(), 7u);
  ASSERT_EQ(loaded.height(), 5u);
  EXPECT_EQ(loaded.At(0, 0), 0);
  EXPECT_EQ(loaded.At(6, 4), 123);
  EXPECT_EQ(loaded.At(3, 2), 200);
  std::remove(path.c_str());
}

TEST(RenderPredictionSurfaceTest, DarkWhereModelIsPositive) {
  DecisionTree tree;
  tree.Fit(testing::SeparableBlobs(150, 150, 1));  // minority around (4,4)
  const ViewPort view{-1.0, 5.0, -1.0, 5.0};
  const GrayscaleImage image = RenderPredictionSurface(tree, view, 60);
  // Pixel near (4,4): feature x=4 -> px ~ (4-(-1))/6*60 = 50; y=4 -> py ~ 10.
  EXPECT_LT(image.At(50, 10), 30);   // positive region: dark
  // Pixel near (0,0): px ~ 10, py ~ 50.
  EXPECT_GT(image.At(10, 50), 220);  // negative region: light
}

TEST(RenderScatterTest, PaintsClassesWithDistinctShades) {
  Dataset data(2);
  data.AddRow(std::vector<double>{1.0, 1.0}, 0);
  data.AddRow(std::vector<double>{3.0, 3.0}, 1);
  const ViewPort view{0.0, 4.0, 0.0, 4.0};
  const GrayscaleImage image = RenderScatter(data, view, 40);
  // Majority at (1,1): px = 10, py = 30 (y flipped).
  EXPECT_EQ(image.At(10, 30), 160);
  // Minority at (3,3): px = 30, py = 10.
  EXPECT_EQ(image.At(30, 10), 0);
  // Empty corner stays white.
  EXPECT_EQ(image.At(0, 0), 255);
}

TEST(RenderScatterTest, OutOfViewSamplesAreClipped) {
  Dataset data(2);
  data.AddRow(std::vector<double>{100.0, 100.0}, 1);
  const ViewPort view{0.0, 1.0, 0.0, 1.0};
  const GrayscaleImage image = RenderScatter(data, view, 10);
  for (std::size_t y = 0; y < 10; ++y) {
    for (std::size_t x = 0; x < 10; ++x) EXPECT_EQ(image.At(x, y), 255);
  }
}

}  // namespace
}  // namespace spe
