#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/adaboost.h"
#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/knn.h"
#include "spe/classifiers/random_forest.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;
using ::spe::testing::XorClusters;

// ------------------------------------------------------------ AdaBoost --

TEST(AdaBoostTest, BoostingStumpsSolvesXor) {
  // A single depth-1 stump cannot represent XOR; boosted stumps (via
  // reweighting) plus depth-2 interactions can.
  const Dataset train = XorClusters(120, 1);
  const Dataset test = XorClusters(50, 2);
  AdaBoostConfig config;
  config.n_estimators = 20;
  config.base_max_depth = 2;
  AdaBoost boost(config);
  boost.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), boost.PredictProba(test)), 0.97);
}

TEST(AdaBoostTest, MoreStagesHelpOnHardData) {
  const Dataset train = XorClusters(100, 3);
  const Dataset test = XorClusters(50, 4);
  AdaBoostConfig one;
  one.n_estimators = 1;
  one.base_max_depth = 1;
  AdaBoostConfig many = one;
  many.n_estimators = 25;
  AdaBoost weak(one);
  AdaBoost strong(many);
  weak.Fit(train);
  strong.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), strong.PredictProba(test)),
            AucPrc(test.labels(), weak.PredictProba(test)) + 0.05);
}

TEST(AdaBoostTest, NumStagesMatchesConfig) {
  AdaBoostConfig config;
  config.n_estimators = 7;
  AdaBoost boost(config);
  boost.Fit(SeparableBlobs(60, 60, 5));
  EXPECT_EQ(boost.NumStages(), 7u);
}

TEST(AdaBoostTest, BatchMatchesRowPrediction) {
  AdaBoost boost;
  boost.Fit(SeparableBlobs(80, 40, 6));
  const Dataset test = SeparableBlobs(20, 20, 7);
  const auto batch = boost.PredictProba(test);
  std::vector<double> row(test.num_features());
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    test.CopyRowTo(i, row);
    EXPECT_NEAR(batch[i], boost.PredictRow(row), 1e-12);
  }
}

TEST(AdaBoostTest, CustomBasePrototype) {
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 1;
  AdaBoostConfig config;
  config.n_estimators = 15;
  AdaBoost boost(config, std::make_unique<DecisionTree>(tree_config));
  boost.Fit(SeparableBlobs(120, 120, 8));
  const Dataset test = SeparableBlobs(40, 40, 9);
  EXPECT_GT(AucPrc(test.labels(), boost.PredictProba(test)), 0.97);
}

TEST(AdaBoostDeathTest, RejectsWeightlessBase) {
  AdaBoostConfig config;
  EXPECT_DEATH(AdaBoost(config, std::make_unique<Knn>()), "sample weights");
}

// ------------------------------------------------------------- Bagging --

TEST(BaggingTest, LearnsAndAverages) {
  const Dataset train = OverlappingBlobs(300, 300, 10);
  const Dataset test = OverlappingBlobs(100, 100, 11);
  BaggingConfig config;
  config.n_estimators = 10;
  Bagging bagging(config);
  bagging.Fit(train);
  EXPECT_EQ(bagging.NumMembers(), 10u);
  EXPECT_GT(AucPrc(test.labels(), bagging.PredictProba(test)), 0.8);
}

TEST(BaggingTest, MaxSamplesShrinksBags) {
  BaggingConfig config;
  config.n_estimators = 3;
  config.max_samples = 0.1;
  Bagging bagging(config);
  bagging.Fit(SeparableBlobs(200, 200, 12));  // must not crash; members see 40 rows
  const Dataset test = SeparableBlobs(30, 30, 13);
  EXPECT_GT(AucPrc(test.labels(), bagging.PredictProba(test)), 0.9);
}

TEST(BaggingTest, DeterministicGivenSeed) {
  const Dataset train = OverlappingBlobs(100, 100, 14);
  const Dataset test = OverlappingBlobs(30, 30, 15);
  BaggingConfig config;
  config.seed = 5;
  Bagging a(config);
  Bagging b(config);
  a.Fit(train);
  b.Fit(train);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

// ------------------------------------------------------- Random forest --

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  const Dataset train = OverlappingBlobs(400, 400, 16);
  const Dataset test = OverlappingBlobs(150, 150, 17);
  RandomForestConfig config;
  config.n_estimators = 20;
  RandomForest forest(config);
  forest.Fit(train);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 12;
  DecisionTree tree(tree_config);
  tree.Fit(train);
  EXPECT_GE(AucPrc(test.labels(), forest.PredictProba(test)),
            AucPrc(test.labels(), tree.PredictProba(test)));
}

TEST(RandomForestTest, MembersDifferAcrossSeeds) {
  RandomForestConfig a_config;
  a_config.seed = 1;
  RandomForestConfig b_config;
  b_config.seed = 2;
  RandomForest a(a_config);
  RandomForest b(b_config);
  const Dataset train = OverlappingBlobs(150, 150, 18);
  a.Fit(train);
  b.Fit(train);
  const Dataset test = OverlappingBlobs(50, 50, 19);
  const auto pa = a.PredictProba(test);
  const auto pb = b.PredictProba(test);
  double diff = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) diff += std::abs(pa[i] - pb[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(RandomForestTest, NameCarriesSize) {
  RandomForestConfig config;
  config.n_estimators = 42;
  EXPECT_EQ(RandomForest(config).Name(), "RandForest42");
}

}  // namespace
}  // namespace spe
