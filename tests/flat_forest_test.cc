// Bit-identity contract of the flat SoA inference kernel
// (spe/kernels/flat_forest.h): for every tree-backed ensemble the flat
// path must reproduce the reference path byte-for-byte — same NaN
// routing, same accumulation order, any batch shape, any prefix, any
// thread count. Every comparison here is a memcmp over the raw double
// bytes, not an EXPECT_NEAR.
//
// Also covered: capability discovery (non-lowerable members fall back
// to the reference path), cache invalidation on Add/Truncate, the
// runtime kill switch, compile-on-load for bundles, and the serve
// layer's kernel label.

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/logistic_regression.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/parallel.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/io/model_io.h"
#include "spe/kernels/flat_forest.h"
#include "spe/obs/metrics.h"
#include "spe/serve/batch_scorer.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Every test must leave the process-wide knobs where it found them:
// kernel enabled, thread count at the environment default.
class FlatForestTest : public ::testing::Test {
 protected:
  void TearDown() override {
    kernels::SetFlatKernelEnabled(true);
    SetNumThreads(0);
  }
};

// Scoring batch with hostile shapes: a few all-NaN rows, a few rows
// with one NaN feature (missing-value routing must take the same edge
// in both paths), plus ordinary rows.
Dataset ScoringBatch(std::size_t rows, std::uint64_t seed) {
  Dataset data = OverlappingBlobs(rows / 2, rows - rows / 2, seed);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < data.num_rows(); i += 7) {
    data.Set(i, 0, nan);
  }
  for (std::size_t i = 3; i < data.num_rows(); i += 11) {
    data.Set(i, 0, nan);
    data.Set(i, 1, nan);
  }
  return data;
}

// The contract at 1 and 8 threads: the flat kernel's bytes equal the
// reference path's bytes. The reference run is forced with the runtime
// switch, which the fast path consults per batch. Models that support
// prefix scoring (discovered the same way the serving layer does) are
// additionally checked at k in {1, mid, all}.
void ExpectFlatMatchesReference(const Classifier& model, const Dataset& data) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SetNumThreads(threads);
    kernels::SetFlatKernelEnabled(false);
    const std::vector<double> reference = model.PredictProba(data);
    kernels::SetFlatKernelEnabled(true);
    const std::vector<double> flat = model.PredictProba(data);
    EXPECT_TRUE(SameBytes(reference, flat))
        << "PredictProba threads=" << threads;
  }
  if (const auto* prefix_model = dynamic_cast<const PrefixVoter*>(&model)) {
    const std::size_t members = prefix_model->NumPrefixMembers();
    for (std::size_t k : {std::size_t{1}, members / 2, members}) {
      if (k == 0) continue;
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        SetNumThreads(threads);
        kernels::SetFlatKernelEnabled(false);
        const std::vector<double> reference =
            prefix_model->PredictProbaPrefix(data, k);
        kernels::SetFlatKernelEnabled(true);
        const std::vector<double> flat =
            prefix_model->PredictProbaPrefix(data, k);
        EXPECT_TRUE(SameBytes(reference, flat))
            << "prefix k=" << k << " threads=" << threads;
      }
    }
  }
  EXPECT_STREQ("flat", kernels::ActiveKernel(model));
}

// Prefix identity for a bare VotingEnsemble (how Bagging/RandomForest,
// which expose no prefix API of their own, hold their members).
void ExpectPrefixMatchesReference(const VotingEnsemble& members,
                                  const Dataset& data) {
  for (std::size_t k : {std::size_t{1}, members.size() / 2, members.size()}) {
    if (k == 0) continue;
    kernels::SetFlatKernelEnabled(false);
    const std::vector<double> reference = members.PredictProbaPrefix(data, k);
    kernels::SetFlatKernelEnabled(true);
    EXPECT_TRUE(SameBytes(reference, members.PredictProbaPrefix(data, k)))
        << "ensemble prefix k=" << k;
  }
}

TEST_F(FlatForestTest, SelfPacedEnsembleBitIdentical) {
  const Dataset train = OverlappingBlobs(1100, 100, 42);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  DecisionTreeConfig tree;
  tree.max_depth = 10;
  SelfPacedEnsemble model(config, std::make_unique<DecisionTree>(tree));
  model.Fit(train);
  ExpectFlatMatchesReference(model, ScoringBatch(700, 7));
}

TEST_F(FlatForestTest, BaggingBitIdentical) {
  const Dataset train = OverlappingBlobs(600, 200, 43);
  BaggingConfig config;
  config.n_estimators = 8;
  Bagging model(config);
  model.Fit(train);
  const Dataset batch = ScoringBatch(500, 8);
  ExpectFlatMatchesReference(model, batch);
  ExpectPrefixMatchesReference(model.members(), batch);
}

TEST_F(FlatForestTest, RandomForestBitIdentical) {
  const Dataset train = OverlappingBlobs(600, 200, 44);
  RandomForestConfig config;
  config.n_estimators = 12;
  RandomForest model(config);
  model.Fit(train);
  const Dataset batch = ScoringBatch(500, 9);
  ExpectFlatMatchesReference(model, batch);
  ExpectPrefixMatchesReference(model.members(), batch);
}

// GBDT members: the kernel replays base_score + lr * leaf per boosting
// round, then the exact sigmoid — through an SPE vote over them.
TEST_F(FlatForestTest, SpeOverGbdtBitIdentical) {
  const Dataset train = OverlappingBlobs(900, 120, 45);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 4;
  GbdtConfig gbdt;
  gbdt.boost_rounds = 8;
  SelfPacedEnsemble model(config, std::make_unique<Gbdt>(gbdt));
  model.Fit(train);
  ExpectFlatMatchesReference(model, ScoringBatch(400, 10));
}

// A single decision tree scored through the persisted-ensemble wrapper:
// the smallest compilable program (one member, one tree).
TEST_F(FlatForestTest, SingleTreeEnsembleBitIdentical) {
  const Dataset train = OverlappingBlobs(400, 150, 46);
  DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  auto tree = std::make_unique<DecisionTree>(tree_config);
  tree->Fit(train);
  VotingEnsemble members;
  members.Add(std::move(tree));
  VotingEnsembleModel model(std::move(members));
  ExpectFlatMatchesReference(model, ScoringBatch(300, 11));
}

// Batch-shape edge cases: empty and single-row datasets through both
// paths (a 1-row batch exercises the partial last block).
TEST_F(FlatForestTest, TinyBatches) {
  const Dataset train = OverlappingBlobs(400, 150, 47);
  RandomForestConfig config;
  config.n_estimators = 5;
  RandomForest model(config);
  model.Fit(train);

  const Dataset empty(train.num_features());
  EXPECT_TRUE(model.PredictProba(empty).empty());

  Dataset one_row(train.num_features());
  const std::vector<double> row = {0.25,
                                   std::numeric_limits<double>::quiet_NaN()};
  one_row.AddRow(row, 1);
  kernels::SetFlatKernelEnabled(false);
  const std::vector<double> reference = model.PredictProba(one_row);
  kernels::SetFlatKernelEnabled(true);
  const std::vector<double> flat = model.PredictProba(one_row);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_TRUE(SameBytes(reference, flat));
}

// Capability discovery: one member that cannot lower (logistic
// regression is not a tree) keeps the whole ensemble on the reference
// path — no partial compiles, no behavior change.
TEST_F(FlatForestTest, NonLowerableMemberFallsBack) {
  const Dataset train = OverlappingBlobs(400, 150, 48);
  VotingEnsemble members;
  auto tree = std::make_unique<DecisionTree>(DecisionTreeConfig{});
  tree->Fit(train);
  members.Add(std::move(tree));
  auto logit = std::make_unique<LogisticRegression>();
  logit->Fit(train);
  members.Add(std::move(logit));
  EXPECT_EQ(members.flat_kernel(), nullptr);

  VotingEnsembleModel model(std::move(members));
  EXPECT_STREQ("reference", kernels::ActiveKernel(model));
  const Dataset batch = ScoringBatch(200, 12);
  EXPECT_EQ(model.PredictProba(batch).size(), batch.num_rows());
}

// A model that is no FlatScorable at all reports "reference" too.
TEST_F(FlatForestTest, PlainClassifierReportsReference) {
  const Dataset train = OverlappingBlobs(200, 100, 49);
  LogisticRegression model;
  model.Fit(train);
  EXPECT_STREQ("reference", kernels::ActiveKernel(model));
}

// The compiled program is dropped and rebuilt whenever the member list
// changes; stale programs would silently score with the wrong forest.
TEST_F(FlatForestTest, AddAndTruncateInvalidate) {
  const Dataset train = OverlappingBlobs(400, 150, 50);
  const Dataset batch = ScoringBatch(300, 13);
  VotingEnsemble members;
  for (int i = 0; i < 3; ++i) {
    DecisionTreeConfig config;
    config.max_depth = 4 + i;
    auto tree = std::make_unique<DecisionTree>(config);
    tree->Fit(train);
    members.Add(std::move(tree));
  }
  const kernels::FlatForest* flat = members.flat_kernel();
  ASSERT_NE(flat, nullptr);
  EXPECT_EQ(flat->num_members(), 3u);

  auto extra = std::make_unique<DecisionTree>(DecisionTreeConfig{});
  extra->Fit(train);
  members.Add(std::move(extra));
  const kernels::FlatForest* recompiled = members.flat_kernel();
  ASSERT_NE(recompiled, nullptr);
  EXPECT_EQ(recompiled->num_members(), 4u);
  kernels::SetFlatKernelEnabled(false);
  const std::vector<double> reference = members.PredictProba(batch);
  kernels::SetFlatKernelEnabled(true);
  EXPECT_TRUE(SameBytes(reference, members.PredictProba(batch)));

  members.Truncate(2);
  ASSERT_NE(members.flat_kernel(), nullptr);
  EXPECT_EQ(members.flat_kernel()->num_members(), 2u);
  kernels::SetFlatKernelEnabled(false);
  const std::vector<double> truncated_reference = members.PredictProba(batch);
  kernels::SetFlatKernelEnabled(true);
  EXPECT_TRUE(SameBytes(truncated_reference, members.PredictProba(batch)));
}

// The runtime switch routes around the kernel without recompiling.
TEST_F(FlatForestTest, RuntimeSwitch) {
  const Dataset train = OverlappingBlobs(300, 120, 51);
  BaggingConfig config;
  config.n_estimators = 4;
  Bagging model(config);
  model.Fit(train);
  EXPECT_STREQ("flat", kernels::ActiveKernel(model));
  kernels::SetFlatKernelEnabled(false);
  EXPECT_FALSE(kernels::FlatKernelEnabled());
  EXPECT_STREQ("reference", kernels::ActiveKernel(model));
  kernels::SetFlatKernelEnabled(true);
  EXPECT_STREQ("flat", kernels::ActiveKernel(model));
}

// LoadModelBundle warms the kernel before serving starts: loading a
// tree-backed bundle bumps the compile counter without anyone scoring.
TEST_F(FlatForestTest, BundleCompilesOnLoad) {
  const Dataset train = OverlappingBlobs(400, 150, 52);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 3;
  SelfPacedEnsemble model(config,
                          std::make_unique<DecisionTree>(DecisionTreeConfig{}));
  model.Fit(train);
  std::stringstream stream;
  SaveModelBundle(model, train.num_features(), stream);

  obs::SetEnabled(true);
  const std::uint64_t before = obs::MetricsRegistry::Global()
                                   .GetCounter("spe_kernels_compiles_total")
                                   .value();
  const ModelBundle bundle = LoadModelBundle(stream);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("spe_kernels_compiles_total")
                .value(),
            before);
  EXPECT_STREQ("flat", kernels::ActiveKernel(*bundle.model));

  // And the loaded artifact honors the identity contract end to end.
  const Dataset batch = ScoringBatch(300, 14);
  kernels::SetFlatKernelEnabled(false);
  const std::vector<double> reference = bundle.model->PredictProba(batch);
  kernels::SetFlatKernelEnabled(true);
  EXPECT_TRUE(SameBytes(reference, bundle.model->PredictProba(batch)));
}

// The serve layer reports which path its model scores on.
TEST_F(FlatForestTest, BatchScorerReportsKernel) {
  const Dataset train = OverlappingBlobs(300, 120, 53);
  {
    RandomForestConfig config;
    config.n_estimators = 4;
    auto model = std::make_unique<RandomForest>(config);
    model->Fit(train);
    BatchScorer scorer(std::move(model), train.num_features());
    EXPECT_STREQ("flat", scorer.kernel());
    const std::vector<double> row = {0.5, -0.25};
    EXPECT_GE(scorer.Score(row), 0.0);
  }
  {
    auto model = std::make_unique<LogisticRegression>();
    model->Fit(train);
    BatchScorer scorer(std::move(model), train.num_features());
    EXPECT_STREQ("reference", scorer.kernel());
  }
}

}  // namespace
}  // namespace spe
