#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "spe/classifiers/adaboost.h"
#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/knn.h"
#include "spe/classifiers/logistic_regression.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/fault.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/easy_ensemble.h"
#include "spe/io/model_io.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;
using ::spe::testing::XorClusters;

// Saves, reloads, and verifies bit-identical predictions on `test`.
void ExpectRoundTrip(const Classifier& model, const Dataset& test) {
  std::stringstream stream;
  SaveClassifier(model, stream);
  const std::unique_ptr<Classifier> loaded = LoadClassifier(stream);
  const std::vector<double> original = model.PredictProba(test);
  const std::vector<double> restored = loaded->PredictProba(test);
  ASSERT_EQ(original.size(), restored.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(original[i], restored[i]) << "row " << i;
  }
}

TEST(ModelIoTest, DecisionTreeRoundTrip) {
  DecisionTree tree;
  tree.Fit(XorClusters(80, 1));
  ExpectRoundTrip(tree, XorClusters(40, 2));
}

TEST(ModelIoTest, GbdtRoundTrip) {
  GbdtConfig config;
  config.boost_rounds = 8;
  Gbdt gbdt(config);
  gbdt.Fit(OverlappingBlobs(300, 60, 3));
  ExpectRoundTrip(gbdt, OverlappingBlobs(100, 20, 4));
}

TEST(ModelIoTest, LogisticRegressionRoundTrip) {
  LogisticRegression lr;
  lr.Fit(SeparableBlobs(120, 120, 5));
  ExpectRoundTrip(lr, SeparableBlobs(40, 40, 6));
}

TEST(ModelIoTest, AdaBoostRoundTrip) {
  AdaBoostConfig config;
  config.n_estimators = 6;
  config.learning_rate = 0.7;
  AdaBoost boost(config);
  boost.Fit(XorClusters(80, 7));
  ExpectRoundTrip(boost, XorClusters(40, 8));
}

TEST(ModelIoTest, SelfPacedEnsembleRoundTripsAsVotingModel) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  SelfPacedEnsemble spe_model(config);
  spe_model.Fit(OverlappingBlobs(400, 40, 9));

  std::stringstream stream;
  SaveClassifier(spe_model, stream);
  const auto loaded = LoadClassifier(stream);
  EXPECT_EQ(loaded->Name(), "VotingEnsemble");
  const Dataset test = OverlappingBlobs(100, 20, 10);
  const auto a = spe_model.PredictProba(test);
  const auto b = loaded->PredictProba(test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ModelIoTest, EasyEnsembleWithAdaBoostMembersRoundTrips) {
  UnderBaggingConfig config;
  config.n_estimators = 3;
  EasyEnsemble easy(config);
  easy.Fit(OverlappingBlobs(300, 40, 11));
  ExpectRoundTrip(easy, OverlappingBlobs(80, 20, 12));
}

TEST(ModelIoTest, CascadeAndBaggingAndForestRoundTrip) {
  const Dataset train = OverlappingBlobs(300, 40, 13);
  const Dataset test = OverlappingBlobs(80, 20, 14);
  {
    BalanceCascade cascade;
    cascade.Fit(train);
    ExpectRoundTrip(cascade, test);
  }
  {
    Bagging bagging;
    bagging.Fit(train);
    ExpectRoundTrip(bagging, test);
  }
  {
    RandomForest forest;
    forest.Fit(train);
    ExpectRoundTrip(forest, test);
  }
}

TEST(ModelIoTest, GbdtOverSpeRoundTrips) {
  // Ensemble of boosters: nested recursive serialization.
  GbdtConfig gbdt_config;
  gbdt_config.boost_rounds = 4;
  SelfPacedEnsembleConfig config;
  config.n_estimators = 4;
  SelfPacedEnsemble model(config, std::make_unique<Gbdt>(gbdt_config));
  model.Fit(OverlappingBlobs(400, 50, 15));
  ExpectRoundTrip(model, OverlappingBlobs(100, 20, 16));
}

TEST(ModelIoTest, FileRoundTrip) {
  DecisionTree tree;
  tree.Fit(SeparableBlobs(60, 60, 17));
  const std::string path =
      (std::filesystem::temp_directory_path() / "spe_model_test.txt").string();
  SaveClassifierToFile(tree, path);
  const auto loaded = LoadClassifierFromFile(path);
  const Dataset test = SeparableBlobs(20, 20, 18);
  const auto a = tree.PredictProba(test);
  const auto b = loaded->PredictProba(test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(ModelIoDeathTest, UnsupportedModelAborts) {
  Knn knn;
  knn.Fit(SeparableBlobs(20, 20, 19));
  std::stringstream stream;
  EXPECT_DEATH(SaveClassifier(knn, stream), "persistence");
}

TEST(ModelIoDeathTest, UnfittedModelAborts) {
  DecisionTree tree;
  std::stringstream stream;
  EXPECT_DEATH(SaveClassifier(tree, stream), "unfitted");
}

TEST(ModelIoDeathTest, GarbageStreamAborts) {
  std::stringstream stream("not a model at all");
  EXPECT_DEATH(LoadClassifier(stream), "not an spe model");
}

// ---------------------------------------------------- bundles/integrity

DecisionTree TrainedTree(std::uint64_t seed) {
  DecisionTree tree;
  tree.Fit(SeparableBlobs(60, 60, seed));
  return tree;
}

std::string BundleText(const Classifier& model, std::size_t num_features) {
  std::stringstream stream;
  SaveModelBundle(model, num_features, stream);
  return stream.str();
}

TEST(ModelBundleTest, HeaderCarriesSizeAndChecksum) {
  const DecisionTree tree = TrainedTree(21);
  const std::string text = BundleText(tree, 2);
  EXPECT_EQ(text.rfind("spe-bundle 3 num_features 2 payload_bytes ", 0), 0u);
  EXPECT_NE(text.find(" crc32 "), std::string::npos);
  // A plain tree carries no training hardness profile, so the v3
  // histogram line records an empty histogram.
  EXPECT_NE(text.find("\nhardness_histogram 0\n"), std::string::npos);

  std::stringstream stream(text);
  ModelBundle bundle = LoadModelBundle(stream);
  EXPECT_EQ(bundle.num_features, 2u);
  const Dataset test = SeparableBlobs(20, 20, 22);
  const auto a = tree.PredictProba(test);
  const auto b = bundle.model->PredictProba(test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ModelBundleTest, FileRoundTripAndNoTmpLeftBehind) {
  const DecisionTree tree = TrainedTree(23);
  const std::string path =
      (std::filesystem::temp_directory_path() / "spe_bundle_test.txt")
          .string();
  SaveModelBundleToFile(tree, 2, path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "publish must consume the tmp file";
  ModelBundle bundle = LoadModelBundleFromFile(path);
  EXPECT_EQ(bundle.num_features, 2u);
  const Dataset test = SeparableBlobs(20, 20, 24);
  const auto a = tree.PredictProba(test);
  const auto b = bundle.model->PredictProba(test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(ModelBundleTest, LegacyBareModelLoadsWithDefaultSchema) {
  const DecisionTree tree = TrainedTree(25);
  std::stringstream stream;
  SaveClassifier(tree, stream);  // pre-bundle artifact: no header at all
  ModelBundle bundle = LoadModelBundle(stream);
  EXPECT_EQ(bundle.num_features, 0u);  // unknown; caller must supply
  ASSERT_NE(bundle.model, nullptr);
}

TEST(ModelBundleTest, LegacyV1BundleLoadsWithoutChecksum) {
  const DecisionTree tree = TrainedTree(26);
  std::stringstream payload;
  SaveClassifier(tree, payload);
  std::stringstream stream("spe-bundle 1 num_features 2 " + payload.str());
  ModelBundle bundle = LoadModelBundle(stream);
  EXPECT_EQ(bundle.num_features, 2u);
  ASSERT_NE(bundle.model, nullptr);
  // LoadClassifier must also skip a v1 header.
  std::stringstream again("spe-bundle 1 num_features 2 " + payload.str());
  EXPECT_NE(LoadClassifier(again), nullptr);
}

TEST(ModelBundleTest, LoadClassifierSkipsV2Header) {
  const DecisionTree tree = TrainedTree(27);
  std::stringstream stream(BundleText(tree, 2));
  EXPECT_NE(LoadClassifier(stream), nullptr);
}

TEST(ModelBundleDeathTest, TruncatedPayloadIsRejected) {
  const std::string text = BundleText(TrainedTree(28), 2);
  // Drop the tail of the payload: the header's byte count catches it
  // before any parsing happens.
  std::stringstream truncated(text.substr(0, text.size() - 10));
  EXPECT_DEATH(LoadModelBundle(truncated), "model artifact truncated");
}

TEST(ModelBundleDeathTest, BitFlippedPayloadIsRejected) {
  std::string text = BundleText(TrainedTree(29), 2);
  // Flip one bit in the middle of the payload; the length still
  // matches, so only the checksum can catch it.
  text[text.size() - text.size() / 4] ^= 0x01;
  std::stringstream corrupted(text);
  EXPECT_DEATH(LoadModelBundle(corrupted), "model artifact corrupted");
}

TEST(ModelBundleDeathTest, InjectedWriteFaultLeavesArtifactIntact) {
  const DecisionTree tree = TrainedTree(30);
  const std::string path =
      (std::filesystem::temp_directory_path() / "spe_bundle_fault_test.txt")
          .string();
  SaveModelBundleToFile(tree, 2, path);
  const auto published = std::filesystem::last_write_time(path);

  // The fault is configured inside the death statement, so only the
  // forked child fails its save; this process's registry stays clean.
  const DecisionTree replacement = TrainedTree(31);
  EXPECT_DEATH(
      {
        FaultConfig faulty;
        faulty.model_io_fail_rate = 1.0;
        FaultRegistry::Instance().Configure(faulty);
        SaveModelBundleToFile(replacement, 2, path);
      },
      "injected fault: model artifact write failed");

  // Crash-safety contract: the published artifact is byte-for-byte the
  // old one and still loads cleanly.
  EXPECT_EQ(std::filesystem::last_write_time(path), published);
  ModelBundle bundle = LoadModelBundleFromFile(path);
  const Dataset test = SeparableBlobs(20, 20, 32);
  const auto a = tree.PredictProba(test);
  const auto b = bundle.model->PredictProba(test);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(ModelBundleDeathTest, InjectedReadFaultFailsLoad) {
  const DecisionTree tree = TrainedTree(33);
  const std::string path =
      (std::filesystem::temp_directory_path() / "spe_bundle_read_fault.txt")
          .string();
  SaveModelBundleToFile(tree, 2, path);
  EXPECT_DEATH(
      {
        FaultConfig faulty;
        faulty.model_io_fail_rate = 1.0;
        FaultRegistry::Instance().Configure(faulty);
        LoadModelBundleFromFile(path);
      },
      "injected fault: model artifact read failed");
  std::remove(path.c_str());
}

TEST(ModelIoDeathTest, VotingModelRefusesToRetrain) {
  SelfPacedEnsembleConfig config;
  config.n_estimators = 2;
  SelfPacedEnsemble spe_model(config);
  const Dataset train = OverlappingBlobs(100, 20, 20);
  spe_model.Fit(train);
  std::stringstream stream;
  SaveClassifier(spe_model, stream);
  auto loaded = LoadClassifier(stream);
  EXPECT_DEATH(loaded->Fit(train), "inference-only");
}

}  // namespace
}  // namespace spe
