#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/eval/cross_validation.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;

TEST(StratifiedFoldsTest, EveryFoldPreservesClassCounts) {
  const Dataset data = OverlappingBlobs(100, 20, 1);
  Rng rng(2);
  const auto fold_of = StratifiedFolds(data, 5, rng);
  ASSERT_EQ(fold_of.size(), data.num_rows());
  for (std::size_t fold = 0; fold < 5; ++fold) {
    std::size_t positives = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      if (fold_of[i] != fold) continue;
      ++total;
      positives += static_cast<std::size_t>(data.Label(i) == 1);
    }
    EXPECT_EQ(total, 24u);
    EXPECT_EQ(positives, 4u);
  }
}

TEST(StratifiedFoldsTest, FoldIdsAreInRange) {
  const Dataset data = OverlappingBlobs(37, 11, 3);
  Rng rng(4);
  for (std::size_t f : StratifiedFolds(data, 3, rng)) EXPECT_LT(f, 3u);
}

TEST(StratifiedFoldsDeathTest, TooFewPositivesAborts) {
  const Dataset data = OverlappingBlobs(50, 2, 5);
  Rng rng(6);
  EXPECT_DEATH(StratifiedFolds(data, 5, rng), "positive per fold");
}

TEST(CrossValidateTest, ProducesOneSummaryPerFold) {
  const Dataset data = SeparableBlobs(200, 50, 7);
  DecisionTree prototype;
  Rng rng(8);
  const CrossValidationResult result = CrossValidate(prototype, data, 4, rng);
  EXPECT_EQ(result.folds.size(), 4u);
  for (const ScoreSummary& s : result.folds) {
    EXPECT_GT(s.aucprc, 0.9);  // separable data: every fold near-perfect
  }
  const AggregateScores agg = result.aggregate();
  EXPECT_GT(agg.aucprc.mean, 0.9);
  EXPECT_GE(agg.aucprc.std, 0.0);
}

TEST(CrossValidateTest, PrototypeIsNotMutated) {
  const Dataset data = SeparableBlobs(100, 30, 9);
  DecisionTree prototype;
  Rng rng(10);
  CrossValidate(prototype, data, 3, rng);
  // Still unfitted: predicting must abort.
  const std::vector<double> x = {0.0, 0.0};
  EXPECT_DEATH(prototype.PredictRow(x), "predict before fit");
}

TEST(CrossValidateTest, WorksWithSpe) {
  const Dataset data = OverlappingBlobs(600, 60, 11);
  SelfPacedEnsembleConfig config;
  config.n_estimators = 5;
  const SelfPacedEnsemble prototype(config);
  Rng rng(12);
  const CrossValidationResult result = CrossValidate(prototype, data, 3, rng);
  EXPECT_EQ(result.folds.size(), 3u);
  // AUCPRC must clearly beat the ~0.09 prevalence baseline on average.
  EXPECT_GT(result.aggregate().aucprc.mean, 0.15);
}

TEST(CrossValidateTest, DeterministicGivenRngSeed) {
  const Dataset data = OverlappingBlobs(200, 40, 13);
  DecisionTree prototype;
  Rng rng_a(14);
  Rng rng_b(14);
  const auto a = CrossValidate(prototype, data, 3, rng_a);
  const auto b = CrossValidate(prototype, data, 3, rng_b);
  for (std::size_t i = 0; i < a.folds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.folds[i].aucprc, b.folds[i].aucprc);
  }
}

}  // namespace
}  // namespace spe
