#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spe/sampling/adasyn.h"
#include "spe/sampling/all_knn.h"
#include "spe/sampling/borderline_smote.h"
#include "spe/sampling/enn.h"
#include "spe/sampling/near_miss.h"
#include "spe/sampling/ncr.h"
#include "spe/sampling/neighbors.h"
#include "spe/sampling/one_side_selection.h"
#include "spe/sampling/random_over.h"
#include "spe/sampling/random_under.h"
#include "spe/sampling/sampler_factory.h"
#include "spe/sampling/smote.h"
#include "spe/sampling/smote_enn.h"
#include "spe/sampling/smote_tomek.h"
#include "spe/sampling/tomek_links.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;

// ------------------------------------------------------------ Neighbors --

TEST(NeighborIndexTest, FindsExactNeighborsOnALine) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, i % 2);
  }
  const NeighborIndex index(data);
  const auto nn = index.Nearest(5, 2);
  ASSERT_EQ(nn.size(), 2u);
  // 4 and 6 are equidistant; both must be the two nearest.
  EXPECT_TRUE((nn[0] == 4 && nn[1] == 6) || (nn[0] == 6 && nn[1] == 4));
  const auto nn3 = index.Nearest(0, 3);
  EXPECT_EQ(nn3, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(NeighborIndexTest, NearestAmongRestrictsCandidates) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, 0);
  }
  const NeighborIndex index(data);
  const std::vector<std::size_t> candidates = {0, 9};
  const auto nn = index.NearestAmong(2, candidates, 1);
  EXPECT_EQ(nn, (std::vector<std::size_t>{0}));
}

TEST(NeighborIndexTest, AllNearestMatchesPerRowQueries) {
  const Dataset data = OverlappingBlobs(40, 20, 1);
  const NeighborIndex index(data);
  const auto all = index.AllNearest(3);
  ASSERT_EQ(all.size(), data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(all[i], index.Nearest(i, 3));
  }
}

TEST(NeighborIndexDeathTest, RejectsCategoricalFeatures) {
  Dataset data(2);
  data.set_feature_kind(0, FeatureKind::kCategorical);
  data.AddRow(std::vector<double>{1.0, 2.0}, 0);
  EXPECT_DEATH(NeighborIndex{data}, "numeric feature space");
}

// ------------------------------------------------------ Under-sampling --

TEST(RandomUnderTest, BalancesExactly) {
  const Dataset data = SeparableBlobs(500, 50, 2);
  Rng rng(1);
  const Dataset out = RandomUnderSampler().Resample(data, rng);
  EXPECT_EQ(out.num_rows(), 100u);
  EXPECT_EQ(out.CountPositives(), 50u);
}

TEST(RandomUnderTest, KeepsEveryMinority) {
  Dataset data(1);
  for (int i = 0; i < 100; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, i < 10);
  }
  Rng rng(2);
  const Dataset out = RandomUnderSampler().Resample(data, rng);
  std::set<double> minority_values;
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    if (out.Label(i) == 1) minority_values.insert(out.At(i, 0));
  }
  EXPECT_EQ(minority_values.size(), 10u);
}

TEST(RandomUnderTest, RatioControlsMajorityCount) {
  const Dataset data = SeparableBlobs(500, 50, 3);
  Rng rng(3);
  const Dataset out = RandomUnderSampler(3.0).Resample(data, rng);
  EXPECT_EQ(out.CountNegatives(), 150u);
}

TEST(NearMissTest, PicksMajorityClosestToMinority) {
  // Majority at 0..9 on a line, minority at 100 and 101. NearMiss keeps
  // the 2 majority samples with smallest mean distance to the minority:
  // 8 and 9.
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.AddRow(std::vector<double>{static_cast<double>(i)}, 0);
  }
  data.AddRow(std::vector<double>{100.0}, 1);
  data.AddRow(std::vector<double>{101.0}, 1);
  Rng rng(4);
  const Dataset out = NearMissSampler(2).Resample(data, rng);
  EXPECT_EQ(out.num_rows(), 4u);
  std::set<double> majority_values;
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    if (out.Label(i) == 0) majority_values.insert(out.At(i, 0));
  }
  EXPECT_EQ(majority_values, (std::set<double>{8.0, 9.0}));
}

TEST(EnnTest, RemovesMajorityInsideMinorityCluster) {
  // A lone majority point surrounded by minority must be edited out.
  Dataset data(2);
  Rng gen(5);
  for (int i = 0; i < 30; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(0, 0.1), gen.Gaussian(0, 0.1)}, 1);
  }
  data.AddRow(std::vector<double>{0.0, 0.0}, 0);  // intruder
  for (int i = 0; i < 30; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(5, 0.1), gen.Gaussian(5, 0.1)}, 0);
  }
  Rng rng(6);
  const Dataset out = EnnSampler().Resample(data, rng);
  EXPECT_EQ(out.num_rows(), 60u);
  EXPECT_EQ(out.CountPositives(), 30u);  // minority untouched
}

TEST(EnnTest, MajorityOnlyFlagProtectsMinority) {
  // A lone minority point inside the majority cluster: kept when
  // majority_only, dropped when editing both classes.
  Dataset data(2);
  Rng gen(7);
  for (int i = 0; i < 40; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(0, 0.1), gen.Gaussian(0, 0.1)}, 0);
  }
  data.AddRow(std::vector<double>{0.0, 0.0}, 1);
  Rng rng(8);
  EXPECT_EQ(EnnSampler(3, true).Resample(data, rng).CountPositives(), 1u);
  EXPECT_EQ(EnnSampler(3, false).Resample(data, rng).CountPositives(), 0u);
}

TEST(TomekLinksTest, RemovesMajorityMemberOfLink) {
  Dataset data(1);
  data.AddRow(std::vector<double>{0.0}, 0);
  data.AddRow(std::vector<double>{1.0}, 0);
  data.AddRow(std::vector<double>{1.6}, 1);   // link with row 1
  data.AddRow(std::vector<double>{10.0}, 1);
  Rng rng(9);
  const Dataset out = TomekLinksSampler().Resample(data, rng);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.CountPositives(), 2u);  // only the majority member dropped
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_NE(out.At(i, 0), 1.0);
  }
}

TEST(TomekLinksTest, NoLinksNoChanges) {
  const Dataset data = SeparableBlobs(50, 50, 10);  // far-apart blobs
  Rng rng(11);
  const Dataset out = TomekLinksSampler().Resample(data, rng);
  EXPECT_EQ(out.num_rows(), data.num_rows());
}

TEST(AllKnnTest, RemovesAtLeastAsMuchAsEnn) {
  const Dataset data = OverlappingBlobs(300, 100, 12);
  Rng rng(13);
  const Dataset enn = EnnSampler(3).Resample(data, rng);
  const Dataset allknn = AllKnnSampler(3).Resample(data, rng);
  EXPECT_LE(allknn.num_rows(), enn.num_rows());
  EXPECT_EQ(allknn.CountPositives(), data.CountPositives());
}

TEST(OssTest, KeepsAllMinorityAndShrinksMajority) {
  const Dataset data = OverlappingBlobs(400, 50, 14);
  Rng rng(15);
  const Dataset out = OneSideSelectionSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 50u);
  EXPECT_LT(out.CountNegatives(), 400u);
}

TEST(NcrTest, CleansButDoesNotBalance) {
  const Dataset data = OverlappingBlobs(400, 50, 16);
  Rng rng(17);
  const Dataset out = NcrSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 50u);
  EXPECT_LT(out.CountNegatives(), 400u);
  // The signature property the paper calls out: output stays imbalanced.
  EXPECT_GT(out.ImbalanceRatio(), 2.0);
}

// ------------------------------------------------------- Over-sampling --

TEST(RandomOverTest, DuplicatesToBalance) {
  const Dataset data = SeparableBlobs(300, 30, 18);
  Rng rng(19);
  const Dataset out = RandomOverSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 300u);
  EXPECT_EQ(out.CountNegatives(), 300u);
  // Every synthetic positive must be an exact copy of an original.
  std::set<std::pair<double, double>> originals;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.Label(i) == 1) originals.insert({data.At(i, 0), data.At(i, 1)});
  }
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    if (out.Label(i) == 1) {
      EXPECT_TRUE(originals.count({out.At(i, 0), out.At(i, 1)}));
    }
  }
}

TEST(SmoteTest, BalancesWithInterpolatedSamples) {
  const Dataset data = SeparableBlobs(200, 20, 20);
  Rng rng(21);
  const Dataset out = SmoteSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 200u);
  EXPECT_EQ(out.CountNegatives(), 200u);
}

TEST(SmoteTest, SyntheticSamplesLieInMinorityBoundingBox) {
  // Convex interpolation cannot leave the minority bounding box.
  const Dataset data = SeparableBlobs(100, 30, 22);
  double lo0 = 1e9, hi0 = -1e9, lo1 = 1e9, hi1 = -1e9;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    if (data.Label(i) != 1) continue;
    lo0 = std::min(lo0, data.At(i, 0));
    hi0 = std::max(hi0, data.At(i, 0));
    lo1 = std::min(lo1, data.At(i, 1));
    hi1 = std::max(hi1, data.At(i, 1));
  }
  Rng rng(23);
  const Dataset out = SmoteSampler().Resample(data, rng);
  for (std::size_t i = data.num_rows(); i < out.num_rows(); ++i) {
    ASSERT_EQ(out.Label(i), 1);
    EXPECT_GE(out.At(i, 0), lo0 - 1e-9);
    EXPECT_LE(out.At(i, 0), hi0 + 1e-9);
    EXPECT_GE(out.At(i, 1), lo1 - 1e-9);
    EXPECT_LE(out.At(i, 1), hi1 + 1e-9);
  }
}

TEST(SmoteTest, AlreadyBalancedIsUntouched) {
  const Dataset data = SeparableBlobs(50, 50, 24);
  Rng rng(25);
  EXPECT_EQ(SmoteSampler().Resample(data, rng).num_rows(), 100u);
}

TEST(AdasynTest, ConcentratesSynthesisOnBorderline) {
  // Two minority groups: one deep inside the majority cloud (hard), one
  // far away (easy). ADASYN must synthesize more around the hard one.
  Dataset data(1);
  Rng gen(26);
  for (int i = 0; i < 200; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(0.0, 1.0)}, 0);
  }
  for (int i = 0; i < 10; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(0.0, 0.3)}, 1);  // hard
  }
  for (int i = 0; i < 10; ++i) {
    data.AddRow(std::vector<double>{gen.Gaussian(50.0, 0.3)}, 1);  // easy
  }
  Rng rng(27);
  const Dataset out = AdasynSampler().Resample(data, rng);
  std::size_t near_hard = 0;
  std::size_t near_easy = 0;
  for (std::size_t i = data.num_rows(); i < out.num_rows(); ++i) {
    (out.At(i, 0) < 25.0 ? near_hard : near_easy) += 1;
  }
  EXPECT_GT(near_hard, 5 * std::max<std::size_t>(near_easy, 1));
}

TEST(BorderlineSmoteTest, BalancesAndSeedsFromDangerZone) {
  const Dataset data = OverlappingBlobs(300, 30, 28);
  Rng rng(29);
  const Dataset out = BorderlineSmoteSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), out.CountNegatives());
}

// ------------------------------------------------------------- Hybrids --

TEST(SmoteEnnTest, NearBalanceAfterCleaning) {
  const Dataset data = OverlappingBlobs(300, 30, 30);
  Rng rng(31);
  const Dataset out = SmoteEnnSampler().Resample(data, rng);
  // ENN removes from both classes; result is near-balanced, not exact.
  const double ratio = static_cast<double>(out.CountPositives()) /
                       static_cast<double>(out.CountNegatives());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(SmoteTomekTest, RemovesOnlyMajorityAfterSmote) {
  const Dataset data = OverlappingBlobs(300, 30, 32);
  Rng rng(33);
  const Dataset out = SmoteTomekSampler().Resample(data, rng);
  EXPECT_EQ(out.CountPositives(), 300u);
  EXPECT_LE(out.CountNegatives(), 300u);
}

// ------------------------------------------------------------- Factory --

class SamplerFactoryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SamplerFactoryTest, EverySamplerRunsOnNumericData) {
  const Dataset data = OverlappingBlobs(200, 25, 34);
  auto sampler = MakeSampler(GetParam());
  EXPECT_EQ(sampler->Name(), GetParam());
  Rng rng(35);
  const Dataset out = sampler->Resample(data, rng);
  EXPECT_GT(out.num_rows(), 0u);
  EXPECT_GT(out.CountPositives(), 0u);
}

TEST_P(SamplerFactoryTest, DeterministicGivenSeed) {
  const Dataset data = OverlappingBlobs(150, 20, 36);
  auto sampler = MakeSampler(GetParam());
  Rng rng_a(37);
  Rng rng_b(37);
  const Dataset a = sampler->Resample(data, rng_a);
  const Dataset b = sampler->Resample(data, rng_b);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.Label(i), b.Label(i));
    EXPECT_DOUBLE_EQ(a.At(i, 0), b.At(i, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerFactoryTest,
                         ::testing::ValuesIn(KnownSamplerNames()));

TEST(SamplerFactoryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeSampler("Magic"), "unknown sampler");
}

TEST(SamplerTest, DistanceBasedSamplersDeclareRequirement) {
  EXPECT_TRUE(MakeSampler("SMOTE")->RequiresNumericalFeatures());
  EXPECT_TRUE(MakeSampler("Clean")->RequiresNumericalFeatures());
  EXPECT_FALSE(MakeSampler("RandUnder")->RequiresNumericalFeatures());
  EXPECT_FALSE(MakeSampler("RandOver")->RequiresNumericalFeatures());
}

}  // namespace
}  // namespace spe
