#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/eval/learning_curve.h"
#include "spe/metrics/calibration.h"
#include "tests/test_util.h"

namespace spe {
namespace {

TEST(LearningCurveTest, ProducesOnePointPerFraction) {
  const Dataset train = testing::SeparableBlobs(400, 100, 1);
  const Dataset test = testing::SeparableBlobs(100, 30, 2);
  DecisionTree prototype;
  Rng rng(3);
  const auto curve =
      LearningCurve(prototype, train, test, {0.1, 0.5, 1.0}, rng);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_LT(curve[0].train_rows, curve[1].train_rows);
  EXPECT_LT(curve[1].train_rows, curve[2].train_rows);
  EXPECT_EQ(curve[2].train_rows, train.num_rows());
}

TEST(LearningCurveTest, MoreDataHelpsOnNoisyTask) {
  const Dataset train = testing::OverlappingBlobs(3000, 300, 4);
  const Dataset test = testing::OverlappingBlobs(1000, 100, 5);
  DecisionTreeConfig config;
  config.max_depth = 6;
  DecisionTree prototype(config);
  Rng rng(6);
  const auto curve =
      LearningCurve(prototype, train, test, {0.02, 1.0}, rng);
  EXPECT_GT(curve[1].test_scores.aucprc, curve[0].test_scores.aucprc);
}

TEST(LearningCurveTest, SubsetsAreStratified) {
  const Dataset train = testing::OverlappingBlobs(900, 90, 7);
  const Dataset test = testing::OverlappingBlobs(100, 10, 8);
  // With 10% of a 10:1 dataset, the subset keeps ~9 positives — enough
  // for SPE to train at all, which is the point of stratification.
  SelfPacedEnsembleConfig config;
  config.n_estimators = 3;
  const SelfPacedEnsemble prototype(config);
  Rng rng(9);
  const auto curve = LearningCurve(prototype, train, test, {0.1}, rng);
  EXPECT_EQ(curve.size(), 1u);
  EXPECT_NEAR(static_cast<double>(curve[0].train_rows), 99.0, 2.0);
}

TEST(LearningCurveDeathTest, BadFractionAborts) {
  const Dataset train = testing::SeparableBlobs(50, 10, 10);
  DecisionTree prototype;
  Rng rng(11);
  EXPECT_DEATH(LearningCurve(prototype, train, train, {1.5}, rng), "CHECK");
}

// ---------------------------------------------------- Reliability curve --

TEST(ReliabilityCurveTest, PerfectlyCalibratedScoresHugTheDiagonal) {
  Rng rng(12);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.Uniform();
    scores.push_back(p);
    labels.push_back(rng.Uniform() < p);
  }
  for (const ReliabilityBucket& bucket : ReliabilityCurve(labels, scores, 10)) {
    EXPECT_NEAR(bucket.fraction_positive, bucket.mean_score, 0.05);
  }
  EXPECT_LT(ExpectedCalibrationError(labels, scores, 10), 0.03);
}

TEST(ReliabilityCurveTest, OverconfidentScoresShowLargeEce) {
  // Scores always 0.9 but only 30% positives: ECE ~= 0.6.
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 1000; ++i) {
    labels.push_back(i % 10 < 3);
    scores.push_back(0.9);
  }
  EXPECT_NEAR(ExpectedCalibrationError(labels, scores, 10), 0.6, 1e-9);
  const auto curve = ReliabilityCurve(labels, scores, 10);
  ASSERT_EQ(curve.size(), 1u);  // single occupied bucket
  EXPECT_EQ(curve[0].count, 1000u);
}

TEST(ReliabilityCurveDeathTest, NonProbabilityScoresAbort) {
  EXPECT_DEATH(ReliabilityCurve({1}, {1.5}), "probabilities");
}

}  // namespace
}  // namespace spe
