#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/knn.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/easy_ensemble.h"
#include "spe/imbalance/rus_boost.h"
#include "spe/imbalance/smote_bagging.h"
#include "spe/imbalance/smote_boost.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/metrics/metrics.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;
using ::spe::testing::SeparableBlobs;

// --------------------------------------------------------- UnderBagging --

TEST(UnderBaggingTest, TrainsBalancedBags) {
  UnderBaggingConfig config;
  config.n_estimators = 5;
  UnderBagging model(config);
  const Dataset train = OverlappingBlobs(600, 40, 1);
  std::size_t calls = 0;
  model.set_iteration_callback([&](const IterationInfo& info) {
    ++calls;
    EXPECT_EQ(info.training_subset.CountPositives(), 40u);
    EXPECT_EQ(info.training_subset.CountNegatives(), 40u);
  });
  model.Fit(train);
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(model.NumMembers(), 5u);
  EXPECT_EQ(model.Name(), "UnderBagging5");
}

TEST(UnderBaggingTest, LearnsSeparableImbalancedData) {
  const Dataset train = SeparableBlobs(1000, 30, 2);
  const Dataset test = SeparableBlobs(500, 15, 3);
  UnderBagging model;
  model.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), model.PredictProba(test)), 0.9);
}

// --------------------------------------------------------- EasyEnsemble --

TEST(EasyEnsembleTest, DefaultBaseIsAdaBoostAndNameIsEasy) {
  UnderBaggingConfig config;
  config.n_estimators = 3;
  EasyEnsemble easy(config);
  EXPECT_EQ(easy.Name(), "Easy3");
  easy.Fit(OverlappingBlobs(300, 30, 4));
  EXPECT_EQ(easy.NumMembers(), 3u);
}

TEST(EasyEnsembleTest, CloneKeepsType) {
  UnderBaggingConfig config;
  config.n_estimators = 2;
  EasyEnsemble easy(config);
  EXPECT_EQ(easy.Clone()->Name(), "Easy2");
}

// ------------------------------------------------------- BalanceCascade --

TEST(BalanceCascadeTest, PoolShrinksAcrossIterations) {
  BalanceCascadeConfig config;
  config.n_estimators = 5;
  BalanceCascade cascade(config);
  const Dataset train = OverlappingBlobs(1000, 50, 5);
  std::size_t calls = 0;
  cascade.set_iteration_callback([&](const IterationInfo& info) {
    ++calls;
    // Subsets stay balanced even as the pool contracts.
    EXPECT_EQ(info.training_subset.CountPositives(), 50u);
    EXPECT_EQ(info.training_subset.CountNegatives(), 50u);
  });
  cascade.Fit(train);
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(cascade.Name(), "Cascade5");
}

TEST(BalanceCascadeTest, LearnsImbalancedData) {
  const Dataset train = SeparableBlobs(1500, 40, 6);
  const Dataset test = SeparableBlobs(700, 20, 7);
  BalanceCascade cascade;
  cascade.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), cascade.PredictProba(test)), 0.95);
}

TEST(BalanceCascadeTest, SingleEstimatorWorks) {
  BalanceCascadeConfig config;
  config.n_estimators = 1;
  BalanceCascade cascade(config);
  cascade.Fit(OverlappingBlobs(200, 20, 8));
  EXPECT_EQ(cascade.NumMembers(), 1u);
}

// ------------------------------------------------------------- RUSBoost --

TEST(RusBoostTest, LearnsImbalancedData) {
  const Dataset train = SeparableBlobs(1200, 40, 9);
  const Dataset test = SeparableBlobs(600, 20, 10);
  RusBoost model;
  model.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), model.PredictProba(test)), 0.95);
  EXPECT_EQ(model.NumStages(), 10u);
}

TEST(RusBoostTest, StagedPredictionIsPrefixConsistent) {
  const Dataset train = OverlappingBlobs(500, 50, 11);
  const Dataset test = OverlappingBlobs(100, 20, 12);
  RusBoost model;
  model.Fit(train);
  const auto full = model.PredictProba(test);
  const auto staged = model.PredictProbaStaged(test, model.NumStages());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_DOUBLE_EQ(full[i], staged[i]);
  }
  // A one-stage prefix differs from the full model (more stages matter).
  const auto first = model.PredictProbaStaged(test, 1);
  double diff = 0.0;
  for (std::size_t i = 0; i < full.size(); ++i) diff += std::abs(full[i] - first[i]);
  EXPECT_GT(diff, 1e-9);
}

TEST(RusBoostDeathTest, RejectsWeightlessBase) {
  RusBoostConfig config;
  EXPECT_DEATH(RusBoost(config, std::make_unique<Knn>()), "sample weights");
}

// ----------------------------------------------------------- SMOTEBoost --

TEST(SmoteBoostTest, LearnsAndCountsTrainingRows) {
  const Dataset train = OverlappingBlobs(400, 40, 13);
  const Dataset test = OverlappingBlobs(200, 20, 14);
  SmoteBoostConfig config;
  config.n_estimators = 5;
  SmoteBoost model(config);
  model.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), model.PredictProba(test)), 0.5);
  // Each stage trains on train + |P| synthetics.
  EXPECT_EQ(model.TotalTrainingRows(), 5 * (440u + 40u));
}

TEST(SmoteBoostTest, StagedPrefixAvailable) {
  SmoteBoostConfig config;
  config.n_estimators = 4;
  SmoteBoost model(config);
  const Dataset train = OverlappingBlobs(300, 30, 15);
  model.Fit(train);
  EXPECT_EQ(model.NumStages(), 4u);
  const auto staged = model.PredictProbaStaged(train, 2);
  EXPECT_EQ(staged.size(), train.num_rows());
}

// --------------------------------------------------------- SMOTEBagging --

TEST(SmoteBaggingTest, BagsAreBalancedAndLarge) {
  SmoteBaggingConfig config;
  config.n_estimators = 4;
  SmoteBagging model(config);
  const Dataset train = OverlappingBlobs(500, 40, 16);
  std::size_t calls = 0;
  model.set_iteration_callback([&](const IterationInfo& info) {
    ++calls;
    // Every bag has |N| majority and |N| (bootstrap + synthetic) minority.
    EXPECT_EQ(info.training_subset.CountNegatives(), 500u);
    EXPECT_EQ(info.training_subset.CountPositives(), 500u);
  });
  model.Fit(train);
  EXPECT_EQ(calls, 4u);
  // #Sample bookkeeping: 4 bags x 1000 rows.
  EXPECT_EQ(model.TotalTrainingRows(), 4000u);
}

TEST(SmoteBaggingTest, LearnsImbalancedData) {
  const Dataset train = SeparableBlobs(800, 40, 17);
  const Dataset test = SeparableBlobs(400, 20, 18);
  SmoteBagging model;
  model.Fit(train);
  EXPECT_GT(AucPrc(test.labels(), model.PredictProba(test)), 0.95);
}

// ------------------------------------------------- Cross-method sanity --

TEST(ImbalanceMethodsTest, AllMethodsAreDeterministicGivenSeed) {
  const Dataset train = OverlappingBlobs(400, 40, 19);
  const Dataset test = OverlappingBlobs(100, 20, 20);
  const auto run = [&](Classifier& model) {
    model.Reseed(77);
    model.Fit(train);
    return model.PredictProba(test);
  };
  {
    UnderBagging a;
    UnderBagging b;
    EXPECT_EQ(run(a), run(b));
  }
  {
    BalanceCascade a;
    BalanceCascade b;
    EXPECT_EQ(run(a), run(b));
  }
  {
    RusBoost a;
    RusBoost b;
    EXPECT_EQ(run(a), run(b));
  }
  {
    SmoteBoost a;
    SmoteBoost b;
    EXPECT_EQ(run(a), run(b));
  }
  {
    SmoteBagging a;
    SmoteBagging b;
    EXPECT_EQ(run(a), run(b));
  }
}

}  // namespace
}  // namespace spe
