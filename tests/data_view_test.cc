// View semantics for the columnar data layer: zero-copy selection must
// be observationally identical to the Subset() copies it replaced, view
// composition must resolve to parent-absolute rows, and lifetime
// violations (reading through a view after the parent mutated) must die
// loudly instead of reading reallocated memory.

#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "spe/common/rng.h"
#include "spe/data/dataset.h"
#include "tests/test_util.h"

namespace spe {
namespace {

using ::spe::testing::OverlappingBlobs;

Dataset SmallData() {
  Dataset data(2);
  data.AddRow(std::vector<double>{1.0, 2.0}, 0);
  data.AddRow(std::vector<double>{3.0, 4.0}, 1);
  data.AddRow(std::vector<double>{5.0, 6.0}, 0);
  data.AddRow(std::vector<double>{7.0, 8.0}, 0);
  return data;
}

// Bit-exact equality, column by column — the bar the zero-copy paths
// are held to (== would excuse -0.0 vs +0.0 and NaN differences).
void ExpectBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t j = 0; j < a.num_features(); ++j) {
    const std::span<const double> ca = a.Column(j).values;
    const std::span<const double> cb = b.Column(j).values;
    EXPECT_EQ(std::memcmp(ca.data(), cb.data(), ca.size() * sizeof(double)),
              0)
        << "column " << j;
    EXPECT_EQ(a.Column(j).kind, b.Column(j).kind) << "column " << j;
  }
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.Label(i), b.Label(i)) << "row " << i;
  }
}

TEST(DatasetViewTest, IdentityViewReadsThrough) {
  const Dataset data = SmallData();
  const DatasetView view = data;  // implicit identity conversion
  EXPECT_TRUE(view.identity());
  EXPECT_FALSE(view.row_major());
  ASSERT_EQ(view.num_rows(), data.num_rows());
  ASSERT_EQ(view.num_features(), data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(view.Label(i), data.Label(i));
    for (std::size_t j = 0; j < data.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(view.At(i, j), data.At(i, j));
    }
  }
}

TEST(DatasetViewTest, IndexedViewSelectsRowsInOrderWithDuplicates) {
  const Dataset data = SmallData();
  const std::vector<std::size_t> idx = {2, 0, 2};
  const DatasetView view(data, idx);
  EXPECT_FALSE(view.identity());
  ASSERT_EQ(view.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(view.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(view.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(view.At(2, 1), 6.0);
  EXPECT_EQ(view.RowIndex(1), 0u);
  EXPECT_EQ(view.LabelsVector(), (std::vector<int>{0, 0, 0}));
}

TEST(DatasetViewTest, ClassCountsAndIndicesMatchMaterialized) {
  const Dataset data = OverlappingBlobs(60, 15, 11);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < data.num_rows(); i += 3) idx.push_back(i);
  const DatasetView view(data, idx);
  const Dataset copy = data.Subset(idx);
  EXPECT_EQ(view.CountPositives(), copy.CountPositives());
  EXPECT_EQ(view.CountNegatives(), copy.CountNegatives());
  EXPECT_EQ(view.PositiveIndices(), copy.PositiveIndices());
  EXPECT_EQ(view.NegativeIndices(), copy.NegativeIndices());
  EXPECT_DOUBLE_EQ(view.ImbalanceRatio(), copy.ImbalanceRatio());
}

// The determinism contract of the refactor: selecting rows through a
// view and materializing must produce the same bytes as the Subset()
// copy path it replaced, for random index sets with duplicates.
TEST(DatasetViewTest, MaterializeIsByteIdenticalToSubset) {
  const Dataset data = OverlappingBlobs(200, 40, 7);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.Index(data.num_rows());
    std::vector<std::size_t> idx(n);
    for (auto& v : idx) v = rng.Index(data.num_rows());
    const Dataset by_copy = data.Subset(idx);
    const Dataset by_view = DatasetView(data, idx).Materialize();
    ExpectBitIdentical(by_copy, by_view);
  }
}

TEST(DatasetViewTest, WithIndicesComposesToParentAbsoluteRows) {
  const Dataset data = SmallData();
  // Fold view over rows {3, 1, 0}; pick view-relative rows {2, 0}.
  const std::vector<std::size_t> fold = {3, 1, 0};
  const DatasetView fold_view(data, fold);
  std::vector<std::size_t> abs;
  for (std::size_t pick : {std::size_t{2}, std::size_t{0}}) {
    abs.push_back(fold_view.RowIndex(pick));
  }
  const DatasetView nested = fold_view.WithIndices(abs);
  ASSERT_EQ(nested.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(nested.At(0, 0), 1.0);  // parent row 0
  EXPECT_DOUBLE_EQ(nested.At(1, 0), 7.0);  // parent row 3
  EXPECT_EQ(nested.Label(1), 0);
}

TEST(DatasetViewTest, FromRowsReadsExternalBlock) {
  const double block[6] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const int labels[3] = {0, 1, 0};
  const DatasetView view = DatasetView::FromRows(block, 3, 2, labels);
  EXPECT_TRUE(view.row_major());
  EXPECT_EQ(view.parent(), nullptr);
  EXPECT_DOUBLE_EQ(view.At(1, 1), 4.0);
  EXPECT_EQ(view.Label(1), 1);
  EXPECT_EQ(view.feature_kind(0), FeatureKind::kNumerical);
  std::vector<double> row(2);
  view.CopyRowTo(2, row);
  EXPECT_DOUBLE_EQ(row[0], 5.0);
  EXPECT_DOUBLE_EQ(row[1], 6.0);
}

TEST(DatasetViewDeathTest, LabelOnUnlabeledRowViewDies) {
  const double block[2] = {1.0, 2.0};
  const DatasetView view = DatasetView::FromRows(block, 1, 2);
  EXPECT_DEATH((void)view.Label(0), "unlabeled");
}

TEST(DatasetViewDeathTest, StaleViewAfterAddRowIsCaught) {
  Dataset data = SmallData();
  const DatasetView view = data;
  data.AddRow(std::vector<double>{9.0, 9.0}, 1);
  EXPECT_DEATH((void)view.Materialize(), "stale DatasetView");
}

TEST(DatasetViewDeathTest, StaleViewAfterTruncateIsCaught) {
  Dataset data = SmallData();
  const std::vector<std::size_t> idx = {0, 1};
  const DatasetView view(data, idx);
  data.TruncateRows(2);
  EXPECT_DEATH((void)view.Materialize(), "stale DatasetView");
}

TEST(DatasetViewTest, SetDoesNotInvalidateViews) {
  // Value mutation keeps the geometry: views stay valid and see the new
  // value (they are views, not snapshots).
  Dataset data = SmallData();
  const DatasetView view = data;
  data.Set(0, 0, 42.0);
  EXPECT_DOUBLE_EQ(view.At(0, 0), 42.0);
}

TEST(DatasetAppendTest, MatchingKindsConcatenate) {
  Dataset a = SmallData();
  Dataset b = SmallData();
  a.set_feature_kind(1, FeatureKind::kCategorical);
  b.set_feature_kind(1, FeatureKind::kCategorical);
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 8u);
  EXPECT_EQ(a.feature_kind(1), FeatureKind::kCategorical);
}

TEST(DatasetAppendDeathTest, KindMismatchIsAHardError) {
  Dataset a = SmallData();
  Dataset b = SmallData();
  b.set_feature_kind(1, FeatureKind::kCategorical);
  EXPECT_DEATH(a.Append(b), "feature kind mismatch");
}

TEST(FeatureScalerViewTest, TransformInPlaceMatchesTransform) {
  const Dataset data = OverlappingBlobs(50, 10, 3);
  FeatureScaler scaler;
  scaler.Fit(data);
  const Dataset expected = scaler.Transform(data);
  Dataset in_place = data;
  scaler.TransformInPlace(in_place);
  ExpectBitIdentical(expected, in_place);
}

TEST(FeatureScalerViewTest, TransformToRowsMatchesTransformOnIndexedView) {
  const Dataset data = OverlappingBlobs(50, 10, 4);
  FeatureScaler scaler;
  scaler.Fit(data);
  const std::vector<std::size_t> idx = {5, 1, 5, 30};
  const DatasetView view(data, idx);
  const Dataset expected = scaler.Transform(view);
  RowMatrix rows;
  scaler.TransformToRows(view, rows);
  ASSERT_EQ(rows.num_rows(), idx.size());
  std::vector<double> scratch(data.num_features());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    expected.CopyRowTo(i, scratch);
    const std::span<const double> got = rows.Row(i);
    EXPECT_EQ(std::memcmp(got.data(), scratch.data(),
                          scratch.size() * sizeof(double)),
              0)
        << "row " << i;
  }
}

}  // namespace
}  // namespace spe
