// Quickstart: train a Self-paced Ensemble on a highly imbalanced
// synthetic task and compare it against a naive random-under-sampling
// baseline.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API: generate data, split it, fit SPE
// with a decision-tree base, evaluate with imbalance-aware metrics.

#include <cstdio>

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/split.h"
#include "spe/data/synthetic.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/random_under.h"

int main() {
  // 1. An imbalanced dataset: the paper's 4x4 checkerboard with 1,000
  //    minority and 10,000 majority samples (IR = 10:1).
  spe::Rng rng(/*seed=*/42);
  spe::CheckerboardConfig data_config;
  const spe::Dataset data = spe::MakeCheckerboard(data_config, rng);
  std::printf("dataset: %s\n", data.Summary().c_str());

  // 2. Stratified split so both parts keep the imbalance ratio.
  const spe::TrainTest split = spe::StratifiedSplit2(data, /*train=*/0.7, rng);

  // 3. Self-paced Ensemble: 10 depth-10 decision trees, each trained on
  //    a balanced subset selected by self-paced hardness harmonization.
  spe::SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.num_bins = 20;
  config.seed = 7;
  spe::SelfPacedEnsemble ensemble(config);
  ensemble.Fit(split.train);

  const spe::ScoreSummary spe_scores =
      spe::Evaluate(split.test.labels(), ensemble.PredictProba(split.test));

  // 4. Baseline: one tree on one random balanced subset.
  spe::Rng baseline_rng(7);
  const spe::Dataset balanced =
      spe::RandomUnderSampler().Resample(split.train, baseline_rng);
  spe::DecisionTreeConfig tree_config;
  tree_config.max_depth = 10;
  spe::DecisionTree tree(tree_config);
  tree.Fit(balanced);
  const spe::ScoreSummary baseline_scores =
      spe::Evaluate(split.test.labels(), tree.PredictProba(split.test));

  std::printf("\n%-22s %8s %8s %8s %8s\n", "model", "AUCPRC", "F1", "G-mean",
              "MCC");
  std::printf("%-22s %8.3f %8.3f %8.3f %8.3f\n", "SPE10 (tree base)",
              spe_scores.aucprc, spe_scores.f1, spe_scores.gmean,
              spe_scores.mcc);
  std::printf("%-22s %8.3f %8.3f %8.3f %8.3f\n", "RandUnder + tree",
              baseline_scores.aucprc, baseline_scores.f1,
              baseline_scores.gmean, baseline_scores.mcc);
  return 0;
}
