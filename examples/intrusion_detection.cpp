// Network intrusion detection on a simulated KDDCUP-99-style task with
// categorical features and an extreme imbalance ratio (DOS vs R2L).
//
// Demonstrates the applicability argument of §III/§VII: distance-based
// re-samplers cannot run at all on this data (no meaningful metric over
// categorical codes), while SPE — whose hardness needs no distances —
// works with any base model.
//
//   $ ./build/examples/intrusion_detection

#include <cstdio>

#include "spe/classifiers/adaboost.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/sampler_factory.h"

int main() {
  spe::Rng rng(3);
  const spe::Dataset data = spe::MakeKddSim(spe::KddTask::kDosVsR2l, rng);
  std::printf("simulated KDDCUP (DOS vs R2L): %s\n", data.Summary().c_str());
  std::printf("categorical features present: %s\n\n",
              data.HasCategoricalFeatures() ? "yes" : "no");

  // Distance-based methods bail out up front — the paper's "- -" cells.
  for (const char* name : {"SMOTE", "Clean", "NearMiss"}) {
    const auto sampler = spe::MakeSampler(name);
    if (sampler->RequiresNumericalFeatures() && data.HasCategoricalFeatures()) {
      std::printf("%-10s -> inapplicable (needs a numeric distance metric)\n",
                  name);
    }
  }

  const spe::TrainTest split = spe::StratifiedSplit2(data, 0.8, rng);

  // SPE over AdaBoost10, the combination Table IV uses for the KDD tasks.
  spe::AdaBoostConfig boost_config;
  boost_config.n_estimators = 10;
  spe::SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = 4;
  spe::SelfPacedEnsemble model(
      config, std::make_unique<spe::AdaBoost>(boost_config));
  model.Fit(split.train);

  const spe::ScoreSummary scores =
      spe::Evaluate(split.test.labels(), model.PredictProba(split.test));
  std::printf("\nSPE10 + AdaBoost10:\n");
  std::printf("  AUCPRC %.3f  F1 %.3f  G-mean %.3f  MCC %.3f\n", scores.aucprc,
              scores.f1, scores.gmean, scores.mcc);
  return 0;
}
