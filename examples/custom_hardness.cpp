// Extending the framework: plug a custom hardness function and a custom
// base classifier into the Self-paced Ensemble.
//
// §IV defines hardness as *any* decomposable error H(F(x), y); this
// example uses a focal-style hardness that amplifies confident mistakes
// (gamma = 2), and wraps the library's logistic-regression classifier —
// showing that SPE needs nothing from its base model beyond
// Fit / PredictProba / Clone.
//
//   $ ./build/examples/custom_hardness

#include <cmath>
#include <cstdio>
#include <memory>

#include "spe/classifiers/logistic_regression.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/split.h"
#include "spe/data/synthetic.h"
#include "spe/metrics/metrics.h"

int main() {
  spe::Rng rng(10);
  spe::TwoGaussiansConfig data_config;
  data_config.num_minority = 400;
  data_config.imbalance_ratio = 20.0;
  data_config.overlapped = true;
  const spe::Dataset data = spe::MakeTwoGaussians(data_config, rng);
  std::printf("overlapped two-Gaussian data: %s\n\n", data.Summary().c_str());

  const spe::TrainTest split = spe::StratifiedSplit2(data, 0.7, rng);

  // Focal-style hardness: |p - y|^gamma with gamma = 2 — the squared
  // error, but written out the long way to show the extension point.
  const spe::HardnessFn focal = [](double prob, int label) {
    const double error = std::abs(prob - static_cast<double>(label));
    return std::pow(error, 2.0);
  };

  const auto run = [&](const char* name, spe::HardnessFn hardness,
                       bool logistic_base) {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = 10;
    config.seed = 11;
    if (hardness) config.custom_hardness = std::move(hardness);
    auto model =
        logistic_base
            ? spe::SelfPacedEnsemble(
                  config, std::make_unique<spe::LogisticRegression>())
            : spe::SelfPacedEnsemble(config);  // default: depth-10 tree
    model.Fit(split.train);
    const spe::ScoreSummary s =
        spe::Evaluate(split.test.labels(), model.PredictProba(split.test));
    std::printf("%-34s AUCPRC %.3f  F1 %.3f  MCC %.3f\n", name, s.aucprc, s.f1,
                s.mcc);
  };

  // Custom *base model*: the minority here is non-linearly embedded in
  // the majority mixture, so a linear model struggles — exactly the
  // model-capacity dependence Fig. 2 illustrates.
  run("SPE + logistic regression", nullptr, /*logistic_base=*/true);
  // Custom *hardness function* on the default tree base.
  run("SPE + tree, default hardness", nullptr, false);
  run("SPE + tree, focal hardness", focal, false);
  return 0;
}
