// Production pipeline: everything a deployment needs from this library
// in one flow —
//   ingest CSV -> stratified split -> cross-validate the candidate ->
//   train on the full training split -> tune the decision threshold on
//   validation data -> persist the model -> reload and serve.
//
//   $ ./build/examples/model_pipeline [input.csv]
//
// Without an argument the example writes (and then ingests) a CSV of
// simulated credit-fraud data, so it is runnable out of the box.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/csv.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/cross_validation.h"
#include "spe/io/model_io.h"
#include "spe/metrics/metrics.h"

int main(int argc, char** argv) {
  // ---- 1. Ingest ---------------------------------------------------
  std::string csv_path;
  if (argc > 1) {
    csv_path = argv[1];
  } else {
    csv_path = (std::filesystem::temp_directory_path() / "spe_pipeline_demo.csv")
                   .string();
    spe::Rng rng(1);
    spe::SaveCsv(spe::MakeCreditFraudSim(rng, /*scale=*/0.4), csv_path);
    std::printf("wrote demo data to %s\n", csv_path.c_str());
  }
  const spe::Dataset data = spe::LoadCsv(csv_path, /*label_column=*/30);
  std::printf("loaded: %s\n\n", data.Summary().c_str());

  spe::Rng rng(2);
  const spe::TrainValTest parts = spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);

  // ---- 2. Model selection via stratified cross-validation ----------
  spe::GbdtConfig gbdt_config;
  gbdt_config.boost_rounds = 10;
  spe::SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = 3;
  const spe::SelfPacedEnsemble candidate(
      config, std::make_unique<spe::Gbdt>(gbdt_config));

  spe::Rng cv_rng(4);
  const spe::CrossValidationResult cv =
      spe::CrossValidate(candidate, parts.train, /*k=*/3, cv_rng);
  const spe::AggregateScores cv_scores = cv.aggregate();
  std::printf("3-fold CV on the training split: AUCPRC %.3f±%.3f, "
              "F1@0.5 %.3f±%.3f\n",
              cv_scores.aucprc.mean, cv_scores.aucprc.std, cv_scores.f1.mean,
              cv_scores.f1.std);

  // ---- 3. Fit on the full training split ---------------------------
  spe::SelfPacedEnsemble model(config, std::make_unique<spe::Gbdt>(gbdt_config));
  model.Fit(parts.train);

  // ---- 4. Threshold tuning on the validation split -----------------
  const std::vector<double> validation_probs =
      model.PredictProba(parts.validation);
  const spe::ThresholdSearchResult tuned =
      spe::BestF1Threshold(parts.validation.labels(), validation_probs);
  std::printf("tuned threshold %.3f (validation F1 %.3f)\n", tuned.threshold,
              tuned.value);

  // ---- 5. Persist & serve ------------------------------------------
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "spe_pipeline_demo.model")
          .string();
  spe::SaveClassifierToFile(model, model_path);
  const auto served = spe::LoadClassifierFromFile(model_path);
  std::printf("model persisted to %s and reloaded as %s\n", model_path.c_str(),
              served->Name().c_str());

  const std::vector<double> test_probs = served->PredictProba(parts.test);
  const spe::ConfusionMatrix at_tuned =
      spe::ConfusionAt(parts.test.labels(), test_probs, tuned.threshold);
  std::printf("\nheld-out test: AUCPRC %.3f | @tuned-threshold  "
              "precision %.3f recall %.3f F1 %.3f MCC %.3f\n",
              spe::AucPrc(parts.test.labels(), test_probs),
              spe::Precision(at_tuned), spe::Recall(at_tuned),
              spe::F1Score(at_tuned), spe::Mcc(at_tuned));
  return 0;
}
