// Fraud detection: the paper's motivating scenario (§I). Compares SPE
// against the strongest baseline family (ensemble imbalance methods) on
// a simulated credit-card-fraud dataset with a GBDT base model — the
// Table IV protocol at example scale.
//
//   $ ./build/examples/fraud_detection

#include <cstdio>
#include <memory>

#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/stopwatch.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/easy_ensemble.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/metrics/metrics.h"

namespace {

std::unique_ptr<spe::Classifier> Gbdt5() {
  spe::GbdtConfig config;
  config.boost_rounds = 5;
  return std::make_unique<spe::Gbdt>(config);
}

void Report(const char* name, const spe::ScoreSummary& s, double seconds) {
  std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %9.2fs\n", name, s.aucprc, s.f1,
              s.gmean, s.mcc, seconds);
}

}  // namespace

int main() {
  spe::Rng rng(1);
  const spe::Dataset data = spe::MakeCreditFraudSim(rng);
  std::printf("simulated credit fraud: %s\n\n", data.Summary().c_str());

  // Paper protocol: 60/20/20; the validation part is unused here (no
  // early stopping at 5 rounds) but kept to mirror the pipeline.
  const spe::TrainValTest parts = spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);

  std::printf("%-18s %8s %8s %8s %8s %10s\n", "method", "AUCPRC", "F1",
              "G-mean", "MCC", "fit time");

  {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = 10;
    config.seed = 2;
    spe::SelfPacedEnsemble model(config, Gbdt5());
    spe::Stopwatch watch;
    model.Fit(parts.train);
    const double t = watch.Seconds();
    Report("SPE10 + GBDT", spe::Evaluate(parts.test.labels(),
                                         model.PredictProba(parts.test)), t);
  }
  {
    spe::BalanceCascadeConfig config;
    config.n_estimators = 10;
    config.seed = 2;
    spe::BalanceCascade model(config, Gbdt5());
    spe::Stopwatch watch;
    model.Fit(parts.train);
    const double t = watch.Seconds();
    Report("Cascade10 + GBDT", spe::Evaluate(parts.test.labels(),
                                             model.PredictProba(parts.test)), t);
  }
  {
    spe::UnderBaggingConfig config;
    config.n_estimators = 10;
    config.seed = 2;
    spe::UnderBagging model(config, Gbdt5());
    spe::Stopwatch watch;
    model.Fit(parts.train);
    const double t = watch.Seconds();
    Report("UnderBag10 + GBDT", spe::Evaluate(parts.test.labels(),
                                              model.PredictProba(parts.test)), t);
  }
  {
    spe::UnderBaggingConfig config;
    config.n_estimators = 10;
    config.seed = 2;
    spe::EasyEnsemble model(config);  // classic Easy: AdaBoost inside
    spe::Stopwatch watch;
    model.Fit(parts.train);
    const double t = watch.Seconds();
    Report("Easy10 (AdaBoost)", spe::Evaluate(parts.test.labels(),
                                              model.PredictProba(parts.test)), t);
  }
  return 0;
}
