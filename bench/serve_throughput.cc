// serve_throughput — load generator for the spe::serve subsystem.
//
// Trains an SPE ensemble on the paper's checkerboard benchmark, stands
// up a BatchScorer, then replays a held-out test set through it from P
// producer threads at a target rate (default: as fast as possible), and
// prints one JSON report: sustained rows/sec plus the engine's latency
// and batch-size statistics.
//
//   serve_throughput [--rows N] [--producers P] [--rate R rows/s, 0=max]
//                    [--max-batch B] [--max-delay-us U] [--workers W]
//                    [--queue-capacity C] [--n-estimators E]
//
// The acceptance bar for this harness: >= 100k rows/sec on a single
// machine with default settings.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/obs/trace.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/server_stats.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const long total_rows = FlagValue(argc, argv, "--rows", 500'000);
  const long producers = FlagValue(argc, argv, "--producers", 4);
  const long rate = FlagValue(argc, argv, "--rate", 0);
  const long n_estimators = FlagValue(argc, argv, "--n-estimators", 10);

  spe::BatchScorerConfig config;
  config.max_batch_size = static_cast<std::size_t>(
      FlagValue(argc, argv, "--max-batch", 256));
  config.max_batch_delay_us = static_cast<std::size_t>(
      FlagValue(argc, argv, "--max-delay-us", 200));
  config.num_workers =
      static_cast<std::size_t>(FlagValue(argc, argv, "--workers", 0));
  config.queue_capacity = static_cast<std::size_t>(
      FlagValue(argc, argv, "--queue-capacity", 4096));

  // Paper §VI-A setup: 4x4 checkerboard, IR = 10.
  spe::CheckerboardConfig data_config;
  spe::Rng rng(42);
  const spe::Dataset train = spe::MakeCheckerboard(data_config, rng);
  spe::CheckerboardConfig test_config;
  test_config.num_minority = 2000;
  test_config.num_majority = 20000;
  const spe::Dataset test = spe::MakeCheckerboard(test_config, rng);

  spe::SelfPacedEnsembleConfig spe_config;
  spe_config.n_estimators = static_cast<std::size_t>(n_estimators);
  spe_config.seed = 0;
  auto model = std::make_unique<spe::SelfPacedEnsemble>(
      spe_config, std::make_unique<spe::DecisionTree>(spe::DecisionTreeConfig{}));
  std::fprintf(stderr, "training SPE (%ld members) on %s\n", n_estimators,
               train.Summary().c_str());
  model->Fit(train);

  spe::BatchScorer scorer(std::move(model), train.num_features(), config);

  const long rows_per_producer = total_rows / producers;
  const double per_producer_rate =
      rate > 0 ? static_cast<double>(rate) / static_cast<double>(producers)
               : 0.0;
  std::fprintf(stderr,
               "replaying %ld rows from %ld producers (%s), batch<=%zu, "
               "delay<=%zuus\n",
               rows_per_producer * producers, producers,
               rate > 0 ? (std::to_string(rate) + " rows/s target").c_str()
                        : "max rate",
               config.max_batch_size, config.max_batch_delay_us);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<long> failures{0};
  for (long p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Wait in windows of in-flight futures so memory stays bounded
      // without serializing on each request.
      constexpr std::size_t kWindow = 8192;
      std::vector<std::future<spe::ScoreResult>> inflight;
      inflight.reserve(kWindow);
      const auto t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < rows_per_producer; ++i) {
        if (per_producer_rate > 0) {
          const auto due =
              t0 + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(i) / per_producer_rate));
          std::this_thread::sleep_until(due);
        }
        const std::size_t row =
            static_cast<std::size_t>((p * rows_per_producer + i)) %
            test.num_rows();
        const auto features = test.Row(row);
        inflight.push_back(scorer.Submit(
            std::vector<double>(features.begin(), features.end())));
        if (inflight.size() == kWindow) {
          for (auto& f : inflight) {
            try {
              (void)f.get();
            } catch (const std::exception&) {
              ++failures;
            }
          }
          inflight.clear();
        }
      }
      for (auto& f : inflight) {
        try {
          (void)f.get();
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  scorer.Shutdown();

  spe::ServeStatsSnapshot s = scorer.stats().Snapshot();
  const double throughput =
      wall > 0 ? static_cast<double>(rows_per_producer * producers) / wall
               : 0.0;
  // The engine snapshot reports rows/sec since scorer construction; the
  // replay window is the honest number, so patch it in for the report.
  s.rows_per_sec = throughput;
  s.elapsed_s = wall;
  std::string json = spe::ToJson(s);
  json.insert(1, "\"bench\":\"serve_throughput\",\"kernel\":\"" +
                     std::string(scorer.kernel()) + "\",\"failures\":" +
                     std::to_string(failures.load()) + ",\"spans\":" +
                     spe::obs::SpanSummariesJson() + ",");
  std::printf("%s\n", json.c_str());
  return failures.load() == 0 ? 0 : 1;
}
