// serve_throughput — load generator for the spe::serve subsystem.
//
// Trains an SPE ensemble on the paper's checkerboard benchmark and
// measures two layers:
//
//   1. engine: the held-out test set is replayed straight into a
//      BatchScorer from P producer threads (no sockets) — the ceiling
//      the transport cannot beat.
//   2. connections axis: a forked child process serves the same model
//      over TCP through the epoll event loop; this process drives C
//      concurrent client connections (C sweeping --connections, by
//      default up to 10000) through BOTH wire protocols — the newline
//      text protocol and the binary frame protocol — and measures
//      sustained rows/sec end to end. Any connection that errors,
//      loses rows, or times out counts as dropped.
//
//   serve_throughput [--rows N] [--producers P] [--rate R rows/s, 0=max]
//                    [--max-batch B] [--max-delay-us U] [--workers W]
//                    [--queue-capacity C] [--n-estimators E]
//                    [--conn-rows N] [--connections "16,256,2048,10000"]
//
// Prints one JSON report (commit as BENCH_serve.json). Exits nonzero
// if any engine-side request failed, any connection was dropped at any
// axis point, or the binary protocol failed to at least match the text
// protocol's aggregate rows/sec — the bar the wire format exists for.
//
// The two halves run in separate processes so 10000 server sockets and
// 10000 client sockets never share one file-descriptor budget.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/obs/trace.h"
#include "spe/serve/batch_scorer.h"
#include "spe/serve/event_loop.h"
#include "spe/serve/server_stats.h"
#include "spe/serve/wire.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

// ---- forked TCP server ---------------------------------------------

/// Child process body: serves `model` over the event loop until the
/// control pipe reaches EOF (the parent closing it is the drain
/// signal), then exits. Writes the bound port to `port_fd` first.
[[noreturn]] void ServerChild(std::unique_ptr<spe::Classifier> model,
                              std::size_t num_features,
                              const spe::BatchScorerConfig& scorer_config,
                              int port_fd, int ctl_fd) {
  spe::BatchScorer scorer(std::move(model), num_features, scorer_config);
  spe::serve::EventLoopConfig config;
  config.max_connections = 0;  // the bench IS the capacity test
  config.listen_backlog = 4096;
  spe::serve::EventLoop loop(scorer, config, nullptr);
  const std::string error = loop.Listen("127.0.0.1", 0);
  if (!error.empty()) {
    std::fprintf(stderr, "server child: %s\n", error.c_str());
    std::_Exit(1);
  }
  const int port = loop.port();
  if (write(port_fd, &port, sizeof(port)) != sizeof(port)) std::_Exit(1);
  close(port_fd);
  std::thread drain_watch([ctl_fd, &loop] {
    char byte;
    while (read(ctl_fd, &byte, 1) < 0 && errno == EINTR) {
    }
    loop.RequestDrain();
  });
  loop.Run();
  drain_watch.join();
  scorer.Shutdown();
  std::_Exit(0);
}

// ---- epoll load client ---------------------------------------------

struct ClientConn {
  int fd = -1;
  std::string request;        // whole request stream, written once
  std::size_t written = 0;
  long expected = 0;          // responses this connection must see
  long answered = 0;
  bool connected = false;
  bool write_done = false;
  bool done = false;
  bool dropped = false;
  // Binary response framing state: bytes of header collected, then
  // payload bytes left to skip. Responses are counted, not decoded.
  unsigned char header[spe::wire::kHeaderBytes];
  std::size_t header_have = 0;
  std::size_t payload_left = 0;
};

struct AxisPoint {
  long connections = 0;
  long rows = 0;
  double line_rows_per_sec = 0.0;
  double line_wall_s = 0.0;
  double binary_rows_per_sec = 0.0;
  double binary_wall_s = 0.0;
  long dropped = 0;
};

/// Counts complete responses in `buf` for one connection. Text: one
/// line per response. Binary: one frame per response (the payload is
/// skipped by length, so response bytes that happen to contain 0xA6
/// cannot desynchronize the count).
void CountResponses(ClientConn& c, const char* buf, std::size_t n,
                    bool binary) {
  if (!binary) {
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') ++c.answered;
    }
    return;
  }
  std::size_t at = 0;
  while (at < n) {
    if (c.payload_left > 0) {
      const std::size_t take = std::min(c.payload_left, n - at);
      c.payload_left -= take;
      at += take;
      if (c.payload_left == 0) ++c.answered;
      continue;
    }
    const std::size_t need = spe::wire::kHeaderBytes - c.header_have;
    const std::size_t take = std::min(need, n - at);
    std::memcpy(c.header + c.header_have, buf + at, take);
    c.header_have += take;
    at += take;
    if (c.header_have == spe::wire::kHeaderBytes) {
      c.header_have = 0;
      c.payload_left = spe::wire::DecodeHeader(c.header).payload_len;
      if (c.payload_left == 0) ++c.answered;
    }
  }
}

/// Drives `num_conns` concurrent connections, each submitting its
/// share of `total_rows` over one protocol, and returns the wall time
/// from first connect to last response. `dropped` counts connections
/// that failed to deliver every expected response.
double DriveConnections(int port, long num_conns, long total_rows,
                        bool binary, const spe::Dataset& test, long& dropped,
                        long& answered_rows) {
  const long rows_per_conn = std::max<long>(1, total_rows / num_conns);
  std::vector<ClientConn> conns(static_cast<std::size_t>(num_conns));
  // Requests are prebuilt so the measured window contains no feature
  // formatting, only protocol I/O.
  std::size_t next_row = 0;
  for (long i = 0; i < num_conns; ++i) {
    ClientConn& c = conns[static_cast<std::size_t>(i)];
    c.expected = rows_per_conn;
    for (long r = 0; r < rows_per_conn; ++r) {
      std::vector<double> row(test.num_features());
      test.CopyRowTo(next_row++ % test.num_rows(), row);
      if (binary) {
        spe::wire::AppendScoreRequest(c.request,
                                      static_cast<std::uint64_t>(r + 1),
                                      row.data(), row.size());
      } else {
        char line[128];
        const int len = std::snprintf(line, sizeof(line), "%.17g,%.17g\n",
                                      row[0], row[1]);
        c.request.append(line, static_cast<std::size_t>(len));
      }
    }
  }

  const int ep = epoll_create1(0);
  if (ep < 0) {
    std::perror("epoll_create1");
    dropped += num_conns;
    return 0.0;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  const auto start = std::chrono::steady_clock::now();
  const auto give_up = start + std::chrono::seconds(300);
  long open = 0;
  long launched = 0;
  long connecting = 0;
  // Connects are staggered through a window smaller than the server's
  // accept backlog: a single burst of 10000 SYNs overflows any backlog
  // and the overflow retransmits after a full second, which would
  // measure retransmission luck instead of protocol throughput. Every
  // connection is still concurrently open once established.
  const long kConnectWindow = 1024;
  auto launch = [&](long i) {
    ClientConn& c = conns[static_cast<std::size_t>(i)];
    c.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (c.fd >= 0) {
      // RST on close: tens of thousands of loopback connections per run
      // would otherwise pile up in TIME_WAIT and starve the ephemeral
      // port range, throttling whichever axis point runs last.
      const linger no_linger{.l_onoff = 1, .l_linger = 0};
      setsockopt(c.fd, SOL_SOCKET, SO_LINGER, &no_linger, sizeof(no_linger));
    }
    if (c.fd < 0 ||
        (connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
         errno != EINPROGRESS)) {
      if (c.fd >= 0) close(c.fd);
      c.fd = -1;
      c.done = c.dropped = true;
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = static_cast<std::uint64_t>(i);
    epoll_ctl(ep, EPOLL_CTL_ADD, c.fd, &ev);
    ++open;
    ++connecting;
  };

  std::vector<epoll_event> events(1024);
  char buf[64 * 1024];
  while (open > 0 || launched < num_conns) {
    while (launched < num_conns && connecting < kConnectWindow) {
      launch(launched++);
    }
    if (std::chrono::steady_clock::now() > give_up) {
      for (auto& c : conns) {
        if (!c.done) c.done = c.dropped = true;
      }
      break;
    }
    const int n = epoll_wait(ep, events.data(),
                             static_cast<int>(events.size()), 1000);
    if (n < 0 && errno == EINTR) continue;
    for (int e = 0; e < n; ++e) {
      ClientConn& c = conns[events[static_cast<std::size_t>(e)].data.u64];
      if (c.done) continue;
      const std::uint32_t what = events[static_cast<std::size_t>(e)].events;
      bool close_now = false;
      if (!c.connected && (what & (EPOLLOUT | EPOLLERR))) {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        if (so_error != 0) {
          c.dropped = true;
          close_now = true;
        } else {
          c.connected = true;
          --connecting;
        }
      }
      if (!close_now && c.connected && !c.write_done && (what & EPOLLOUT)) {
        while (c.written < c.request.size()) {
          const ssize_t put =
              send(c.fd, c.request.data() + c.written,
                   c.request.size() - c.written, MSG_NOSIGNAL);
          if (put > 0) {
            c.written += static_cast<std::size_t>(put);
            continue;
          }
          if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (put < 0 && errno == EINTR) continue;
          c.dropped = true;
          close_now = true;
          break;
        }
        if (!close_now && c.written == c.request.size()) {
          // No shutdown(SHUT_WR): a client FIN would put this socket in
          // TIME_WAIT, and tens of thousands of those throttle every
          // later axis point. The connection ends with an abortive
          // close (RST, see SO_LINGER above) once every expected
          // response has arrived.
          c.write_done = true;
          c.request.clear();
          c.request.shrink_to_fit();
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.u64 = events[static_cast<std::size_t>(e)].data.u64;
          epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
        }
      }
      if (!close_now && (what & (EPOLLIN | EPOLLHUP | EPOLLERR))) {
        for (;;) {
          const ssize_t got = recv(c.fd, buf, sizeof(buf), 0);
          if (got > 0) {
            CountResponses(c, buf, static_cast<std::size_t>(got), binary);
            if (c.answered >= c.expected) {
              close_now = true;  // all answered: abortive close
              break;
            }
            continue;
          }
          if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (got < 0 && errno == EINTR) continue;
          // EOF or error before every response arrived: the server gave
          // up on this connection.
          c.dropped = true;
          close_now = true;
          break;
        }
      }
      if (close_now) {
        if (!c.connected) --connecting;
        epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
        close(c.fd);
        c.fd = -1;
        c.done = true;
        --open;
      }
    }
  }
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  for (auto& c : conns) {
    if (c.fd >= 0) close(c.fd);
    if (c.dropped) ++dropped;
    answered_rows += c.answered;
  }
  close(ep);
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  const long total_rows = FlagValue(argc, argv, "--rows", 500'000);
  const long producers = FlagValue(argc, argv, "--producers", 4);
  const long rate = FlagValue(argc, argv, "--rate", 0);
  const long n_estimators = FlagValue(argc, argv, "--n-estimators", 10);
  const long conn_rows = FlagValue(argc, argv, "--conn-rows", 40'000);
  const std::string connections_spec =
      FlagString(argc, argv, "--connections", "16,256,2048,10000");

  spe::BatchScorerConfig config;
  config.max_batch_size = static_cast<std::size_t>(
      FlagValue(argc, argv, "--max-batch", 256));
  config.max_batch_delay_us = static_cast<std::size_t>(
      FlagValue(argc, argv, "--max-delay-us", 200));
  config.num_workers =
      static_cast<std::size_t>(FlagValue(argc, argv, "--workers", 0));
  config.queue_capacity = static_cast<std::size_t>(
      FlagValue(argc, argv, "--queue-capacity", 4096));

  std::vector<long> connection_counts;
  for (std::size_t at = 0; at < connections_spec.size();) {
    const std::size_t comma = connections_spec.find(',', at);
    const std::string token = connections_spec.substr(
        at, comma == std::string::npos ? std::string::npos : comma - at);
    if (!token.empty()) connection_counts.push_back(std::atol(token.c_str()));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }

  // Paper §VI-A setup: 4x4 checkerboard, IR = 10.
  spe::CheckerboardConfig data_config;
  spe::Rng rng(42);
  const spe::Dataset train = spe::MakeCheckerboard(data_config, rng);
  spe::CheckerboardConfig test_config;
  test_config.num_minority = 2000;
  test_config.num_majority = 20000;
  const spe::Dataset test = spe::MakeCheckerboard(test_config, rng);

  spe::SelfPacedEnsembleConfig spe_config;
  spe_config.n_estimators = static_cast<std::size_t>(n_estimators);
  spe_config.seed = 0;
  auto model = std::make_unique<spe::SelfPacedEnsemble>(
      spe_config, std::make_unique<spe::DecisionTree>(spe::DecisionTreeConfig{}));
  std::fprintf(stderr, "training SPE (%ld members) on %s\n", n_estimators,
               train.Summary().c_str());
  model->Fit(train);

  // ---- fork the TCP server before this process grows threads --------
  int port_pipe[2], ctl_pipe[2];
  if (pipe(port_pipe) != 0 || pipe(ctl_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  const pid_t server_pid = fork();
  if (server_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (server_pid == 0) {
    close(port_pipe[0]);
    close(ctl_pipe[1]);
    // fork gave this process its own copy of the fitted model, so both
    // sides can consume `model` by move.
    ServerChild(std::move(model), train.num_features(), config, port_pipe[1],
                ctl_pipe[0]);
  }
  close(port_pipe[1]);
  close(ctl_pipe[0]);
  int server_port = 0;
  if (read(port_pipe[0], &server_port, sizeof(server_port)) !=
      sizeof(server_port)) {
    std::fprintf(stderr, "server child never reported a port\n");
    return 1;
  }
  close(port_pipe[0]);

  // ---- layer 1: in-process engine replay ----------------------------
  spe::BatchScorer scorer(std::move(model), train.num_features(), config);

  const long rows_per_producer = total_rows / producers;
  const double per_producer_rate =
      rate > 0 ? static_cast<double>(rate) / static_cast<double>(producers)
               : 0.0;
  std::fprintf(stderr,
               "replaying %ld rows from %ld producers (%s), batch<=%zu, "
               "delay<=%zuus\n",
               rows_per_producer * producers, producers,
               rate > 0 ? (std::to_string(rate) + " rows/s target").c_str()
                        : "max rate",
               config.max_batch_size, config.max_batch_delay_us);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<long> failures{0};
  for (long p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Wait in windows of in-flight futures so memory stays bounded
      // without serializing on each request.
      constexpr std::size_t kWindow = 8192;
      std::vector<std::future<spe::ScoreResult>> inflight;
      inflight.reserve(kWindow);
      const auto t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < rows_per_producer; ++i) {
        if (per_producer_rate > 0) {
          const auto due =
              t0 + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(i) / per_producer_rate));
          std::this_thread::sleep_until(due);
        }
        const std::size_t row =
            static_cast<std::size_t>((p * rows_per_producer + i)) %
            test.num_rows();
        std::vector<double> features(test.num_features());
        test.CopyRowTo(row, features);
        inflight.push_back(scorer.Submit(std::move(features)));
        if (inflight.size() == kWindow) {
          for (auto& f : inflight) {
            try {
              (void)f.get();
            } catch (const std::exception&) {
              ++failures;
            }
          }
          inflight.clear();
        }
      }
      for (auto& f : inflight) {
        try {
          (void)f.get();
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  scorer.Shutdown();

  // ---- layer 2: connections axis over TCP ---------------------------
  std::vector<AxisPoint> axis;
  long dropped_total = 0;
  double line_rows_total = 0, line_wall_total = 0;
  double binary_rows_total = 0, binary_wall_total = 0;
  for (const long c : connection_counts) {
    AxisPoint point;
    point.connections = c;
    point.rows = std::max<long>(1, conn_rows / c) * c;
    long answered = 0;
    std::fprintf(stderr, "axis: %ld connections x %ld rows, text...\n", c,
                 point.rows);
    point.line_wall_s = DriveConnections(server_port, c, conn_rows,
                                         /*binary=*/false, test,
                                         point.dropped, answered);
    point.line_rows_per_sec =
        point.line_wall_s > 0 ? answered / point.line_wall_s : 0.0;
    line_rows_total += static_cast<double>(answered);
    line_wall_total += point.line_wall_s;
    answered = 0;
    std::fprintf(stderr, "axis: %ld connections x %ld rows, binary...\n", c,
                 point.rows);
    point.binary_wall_s = DriveConnections(server_port, c, conn_rows,
                                           /*binary=*/true, test,
                                           point.dropped, answered);
    point.binary_rows_per_sec =
        point.binary_wall_s > 0 ? answered / point.binary_wall_s : 0.0;
    binary_rows_total += static_cast<double>(answered);
    binary_wall_total += point.binary_wall_s;
    dropped_total += point.dropped;
    axis.push_back(point);
  }

  close(ctl_pipe[1]);  // EOF: the server child drains and exits
  int server_status = 0;
  waitpid(server_pid, &server_status, 0);
  const bool server_clean =
      WIFEXITED(server_status) && WEXITSTATUS(server_status) == 0;

  const double line_agg =
      line_wall_total > 0 ? line_rows_total / line_wall_total : 0.0;
  const double binary_agg =
      binary_wall_total > 0 ? binary_rows_total / binary_wall_total : 0.0;

  spe::ServeStatsSnapshot s = scorer.stats().Snapshot();
  const double throughput =
      wall > 0 ? static_cast<double>(rows_per_producer * producers) / wall
               : 0.0;
  // The engine snapshot reports rows/sec since scorer construction; the
  // replay window is the honest number, so patch it in for the report.
  s.rows_per_sec = throughput;
  s.elapsed_s = wall;
  std::string json = spe::ToJson(s);
  std::string axis_json = "[";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    const AxisPoint& p = axis[i];
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"connections\":%ld,\"rows\":%ld,"
                  "\"line_rows_per_sec\":%.0f,\"binary_rows_per_sec\":%.0f,"
                  "\"dropped_connections\":%ld}",
                  i == 0 ? "" : ",", p.connections, p.rows,
                  p.line_rows_per_sec, p.binary_rows_per_sec, p.dropped);
    axis_json += entry;
  }
  axis_json += "]";
  json.insert(1, "\"bench\":\"serve_throughput\",\"kernel\":\"" +
                     std::string(scorer.kernel()) + "\",\"failures\":" +
                     std::to_string(failures.load()) +
                     ",\"connections_axis\":" + axis_json +
                     ",\"line_rows_per_sec\":" +
                     std::to_string(static_cast<long>(line_agg)) +
                     ",\"binary_rows_per_sec\":" +
                     std::to_string(static_cast<long>(binary_agg)) +
                     ",\"dropped_connections\":" +
                     std::to_string(dropped_total) + ",\"spans\":" +
                     spe::obs::SpanSummariesJson() + ",");
  std::printf("%s\n", json.c_str());

  if (failures.load() != 0) return 1;
  if (dropped_total != 0) {
    std::fprintf(stderr, "FAIL: %ld connections dropped\n", dropped_total);
    return 1;
  }
  if (!server_clean) {
    std::fprintf(stderr, "FAIL: server child exited unclean (%d)\n",
                 server_status);
    return 1;
  }
  if (!axis.empty() && binary_agg < line_agg) {
    std::fprintf(stderr,
                 "FAIL: binary protocol slower than text (%.0f < %.0f rows/s)\n",
                 binary_agg, line_agg);
    return 1;
  }
  return 0;
}
