// Reproduces Fig. 7: test AUCPRC as a function of the number of base
// classifiers n for the six ensemble methods, on simulated Credit Fraud
// and Payment (SMOTE-based methods are absent on Payment — categorical
// features — exactly as in the paper).
//
// Tracing strategy: boosting methods (RUSBoost, SMOTEBoost) expose
// staged prediction, bagging-style methods (UnderBagging, SMOTEBagging,
// Cascade) are evaluated through the iteration callback, so each needs
// one fit per run. SPE's alpha schedule depends on its total n, so SPE
// is re-trained per checkpoint (it is also by far the cheapest to fit).

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/factory.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/rus_boost.h"
#include "spe/imbalance/smote_bagging.h"
#include "spe/imbalance/smote_boost.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/metrics/metrics.h"

namespace {

const std::vector<std::size_t> kCheckpoints = {1, 2, 5, 10, 20, 50};
constexpr std::size_t kMaxN = 50;

using Curves = std::map<std::string, std::vector<double>>;

std::unique_ptr<spe::Classifier> Tree(std::uint64_t seed) {
  return spe::MakeClassifier("DT", seed);
}

// Accumulates AUCPRC at each checkpoint into curves[method].
void Accumulate(Curves& curves, const std::string& method,
                const std::vector<double>& values, std::size_t runs) {
  auto& slot = curves[method];
  if (slot.empty()) slot.assign(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    slot[i] += values[i] / static_cast<double>(runs);
  }
}

// Evaluation through the iteration callback (bagging-family methods).
template <typename Model>
std::vector<double> CallbackCurve(Model& model, const spe::Dataset& train,
                                  const spe::Dataset& test) {
  std::vector<double> values;
  std::size_t next = 0;
  model.set_iteration_callback([&](const spe::IterationInfo& info) {
    if (next < kCheckpoints.size() && info.iteration == kCheckpoints[next]) {
      values.push_back(
          spe::AucPrc(test.labels(), info.ensemble.PredictProba(test)));
      ++next;
    }
  });
  model.Fit(train);
  return values;
}

void RunDataset(const char* name, const spe::Dataset& full, bool smote_ok,
                std::size_t runs) {
  Curves curves;
  for (std::size_t r = 0; r < runs; ++r) {
    spe::Rng rng(700 + r);
    const spe::TrainValTest parts = spe::StratifiedSplit(full, 0.6, 0.2, 0.2, rng);
    const spe::Dataset& train = parts.train;
    const spe::Dataset& test = parts.test;

    {  // SPE: retrain per checkpoint (alpha schedule depends on n).
      std::vector<double> values;
      for (std::size_t n : kCheckpoints) {
        spe::SelfPacedEnsembleConfig config;
        config.n_estimators = n;
        config.seed = r;
        spe::SelfPacedEnsemble model(config, Tree(r));
        model.Fit(train);
        values.push_back(spe::AucPrc(test.labels(), model.PredictProba(test)));
      }
      Accumulate(curves, "SPE", values, runs);
    }
    {
      spe::BalanceCascadeConfig config;
      config.n_estimators = kMaxN;
      config.seed = r;
      spe::BalanceCascade model(config, Tree(r));
      Accumulate(curves, "Cascade", CallbackCurve(model, train, test), runs);
    }
    {
      spe::UnderBaggingConfig config;
      config.n_estimators = kMaxN;
      config.seed = r;
      spe::UnderBagging model(config, Tree(r));
      Accumulate(curves, "UnderBagging", CallbackCurve(model, train, test),
                 runs);
    }
    {
      spe::RusBoostConfig config;
      config.n_estimators = kMaxN;
      config.seed = r;
      spe::RusBoost model(config, Tree(r));
      model.Fit(train);
      std::vector<double> values;
      for (std::size_t n : kCheckpoints) {
        values.push_back(
            spe::AucPrc(test.labels(), model.PredictProbaStaged(test, n)));
      }
      Accumulate(curves, "RUSBoost", values, runs);
    }
    if (smote_ok) {
      {
        spe::SmoteBaggingConfig config;
        config.n_estimators = kMaxN;
        config.seed = r;
        spe::SmoteBagging model(config, Tree(r));
        Accumulate(curves, "SMOTEBagging", CallbackCurve(model, train, test),
                   runs);
      }
      {
        spe::SmoteBoostConfig config;
        config.n_estimators = kMaxN;
        config.seed = r;
        spe::SmoteBoost model(config, Tree(r));
        model.Fit(train);
        std::vector<double> values;
        for (std::size_t n : kCheckpoints) {
          values.push_back(
              spe::AucPrc(test.labels(), model.PredictProbaStaged(test, n)));
        }
        Accumulate(curves, "SMOTEBoost", values, runs);
      }
    }
  }

  std::printf("dataset=%s (n checkpoints:", name);
  for (std::size_t n : kCheckpoints) std::printf(" %zu", n);
  std::printf(")\n");
  for (const auto& [method, values] : curves) {
    std::printf("%-14s", method.c_str());
    for (double v : values) std::printf(" %.3f", v);
    std::printf("\n");
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main() {
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  std::printf("Fig. 7 reproduction: AUCPRC vs ensemble size (%zu runs)\n\n",
              runs);
  {
    spe::Rng rng(71);
    const spe::Dataset credit =
        spe::MakeCreditFraudSim(rng, 0.6 * spe::BenchScale());
    RunDataset("CreditFraud-sim", credit, /*smote_ok=*/true, runs);
  }
  {
    spe::Rng rng(72);
    const spe::Dataset payment =
        spe::MakePaymentSim(rng, 0.6 * spe::BenchScale());
    RunDataset("Payment-sim", payment, /*smote_ok=*/false, runs);
  }
  std::printf(
      "expected shape (paper Fig. 7): SPE dominates at every n and "
      "converges\nfastest; RUSBoost / UnderBagging need large n to catch "
      "up; SMOTE-based\nmethods are competitive on Credit Fraud but "
      "inapplicable on Payment.\n");
  return 0;
}
