// Reproduces Table II: generalized AUCPRC of 6 imbalance-learning
// methods x 8 canonical classifiers on the 4x4 checkerboard dataset
// (|P| = 1,000, |N| = 10,000, covariance 0.1 I).
//
// The paper= column carries the values reported in the paper (mean over
// 10 runs on the authors' hardware) for shape comparison: SPE should win
// every row; Easy/Cascade should beat the plain re-samplers.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/cell_runner.h"
#include "spe/data/synthetic.h"
#include "spe/eval/experiment.h"
#include "spe/eval/table.h"

namespace {

using spe::bench::RunMethodOnce;

// Paper Table II AUCPRC (mean) for the paper= reference column.
const std::map<std::string, std::vector<double>> kPaperRows = {
    // RandUnder, Clean, SMOTE, Easy10, Cascade10, SPE10
    {"KNN", {0.281, 0.382, 0.271, 0.411, 0.409, 0.498}},
    {"DT", {0.236, 0.365, 0.299, 0.463, 0.376, 0.566}},
    {"MLP", {0.562, 0.138, 0.615, 0.610, 0.582, 0.656}},
    {"SVM", {0.306, 0.405, 0.324, 0.386, 0.456, 0.518}},
    {"AdaBoost10", {0.226, 0.362, 0.297, 0.487, 0.391, 0.570}},
    {"Bagging10", {0.273, 0.401, 0.316, 0.436, 0.389, 0.568}},
    {"RandForest10", {0.260, 0.229, 0.306, 0.454, 0.402, 0.572}},
    {"GBDT10", {0.553, 0.602, 0.591, 0.645, 0.648, 0.680}},
};

}  // namespace

int main() {
  const std::vector<std::string> methods = {"RandUnder", "Clean",   "SMOTE",
                                            "Easy",      "Cascade", "SPE"};
  const std::vector<std::string> classifiers = {
      "KNN",        "DT",        "MLP",          "SVM",
      "AdaBoost10", "Bagging10", "RandForest10", "GBDT10"};
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);

  std::printf("Table II reproduction: checkerboard AUCPRC, %zu runs\n", runs);
  spe::TextTable table({"Model", "RandUnder", "Clean", "SMOTE", "Easy10",
                        "Cascade10", "SPE10"});

  // One cell per (classifier, method); the whole grid runs in parallel
  // with scheduling-independent per-cell seeds, then prints in order.
  const std::size_t num_cells = classifiers.size() * methods.size();
  const std::vector<spe::AggregateScores> cells =
      spe::bench::RunCells<spe::AggregateScores>(
          num_cells, /*base_seed=*/1,
          [&](std::size_t cell, std::uint64_t cell_seed) {
            const std::string& classifier = classifiers[cell / methods.size()];
            const std::string& method = methods[cell % methods.size()];
            return spe::Repeat(
                [&](std::uint64_t seed) {
                  // Train / test independently sampled from the same
                  // distribution, fresh per run (§VI-A).
                  spe::Rng rng(seed);
                  spe::CheckerboardConfig config;
                  const spe::Dataset train = spe::MakeCheckerboard(config, rng);
                  const spe::Dataset test = spe::MakeCheckerboard(config, rng);
                  return *RunMethodOnce(method, classifier, train, test,
                                        /*n=*/10, seed);
                },
                runs, /*base_seed=*/cell_seed);
          });

  for (std::size_t c = 0; c < classifiers.size(); ++c) {
    std::vector<std::string> row = {classifiers[c]};
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const spe::AggregateScores& agg = cells[c * methods.size() + m];
      row.push_back(spe::FormatMeanStd(agg.aucprc) + " (paper=" +
                    spe::FormatNumber(kPaperRows.at(classifiers[c])[m]) + ")");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
