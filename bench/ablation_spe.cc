// SPE design-choice ablations (DESIGN.md §4) beyond the paper's own
// sensitivity study (Fig. 8): what each ingredient of Algorithm 1
// contributes on the simulated Credit Fraud task.
//
//   A. alpha schedule        tan (paper) vs zero / inf / linear
//   B. bootstrap model f0    excluded (Algorithm 1) vs included (the
//                            authors' released implementation)
//   C. static vs self-paced  SPE10 vs IHT + single model vs RandUnder +
//                            single model — isolates what *iterative*
//                            hardness adaptation adds over one-shot
//                            hardness-aware under-sampling
//   D. base-model capacity   SPE10 over stump / depth-5 / depth-10 trees

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/cell_runner.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/eval/table.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/instance_hardness_threshold.h"
#include "spe/sampling/random_under.h"

namespace {

std::unique_ptr<spe::Classifier> Tree(int depth, std::uint64_t seed) {
  spe::DecisionTreeConfig config;
  config.max_depth = depth;
  config.seed = seed;
  return std::make_unique<spe::DecisionTree>(config);
}

}  // namespace

int main() {
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  const double scale = 0.6 * spe::BenchScale();
  std::printf("SPE ablations on simulated Credit Fraud (%zu runs, AUCPRC)\n\n",
              runs);

  std::vector<spe::Dataset> trains;
  std::vector<spe::Dataset> tests;
  for (std::size_t r = 0; r < runs; ++r) {
    spe::Rng rng(600 + r);
    const spe::Dataset data = spe::MakeCreditFraudSim(rng, scale);
    spe::TrainValTest parts = spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
    trains.push_back(std::move(parts.train));
    tests.push_back(std::move(parts.test));
  }

  // Every SPE variant the sections below quote, evaluated as one
  // parallel grid of cells (the duplicated tan/f0-excluded/depth-10
  // baseline is computed once and reused).
  struct Variant {
    spe::AlphaSchedule schedule;
    bool include_f0;
    int depth;
  };
  const std::vector<Variant> variants = {
      {spe::AlphaSchedule::kTan, false, 10},     // 0: the paper baseline
      {spe::AlphaSchedule::kZero, false, 10},    // 1
      {spe::AlphaSchedule::kInfinity, false, 10},  // 2
      {spe::AlphaSchedule::kLinear, false, 10},  // 3
      {spe::AlphaSchedule::kTan, true, 10},      // 4: f0 included
      {spe::AlphaSchedule::kTan, false, 1},      // 5: stumps
      {spe::AlphaSchedule::kTan, false, 5},      // 6: depth-5
  };
  const std::vector<spe::MeanStd> variant_scores =
      spe::bench::RunCells<spe::MeanStd>(
          variants.size(), /*base_seed=*/600,
          [&](std::size_t cell, std::uint64_t /*cell_seed*/) {
            const Variant& v = variants[cell];
            std::vector<double> values;
            for (std::size_t r = 0; r < runs; ++r) {
              spe::SelfPacedEnsembleConfig config;
              config.n_estimators = 10;
              config.schedule = v.schedule;
              config.include_bootstrap_model = v.include_f0;
              config.seed = r;
              spe::SelfPacedEnsemble model(config, Tree(v.depth, r));
              model.Fit(trains[r]);
              values.push_back(
                  spe::AucPrc(tests[r].labels(), model.PredictProba(tests[r])));
            }
            return spe::Aggregate(values);
          });
  const auto run_spe = [&](spe::AlphaSchedule schedule, bool include_f0,
                           int depth) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      if (variants[v].schedule == schedule &&
          variants[v].include_f0 == include_f0 &&
          variants[v].depth == depth) {
        return variant_scores[v];
      }
    }
    return spe::MeanStd{};
  };

  std::printf("A. alpha schedule (depth-10 base, f0 excluded)\n");
  std::printf("   tan (paper) : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, false, 10)).c_str());
  std::printf("   zero        : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kZero, false, 10)).c_str());
  std::printf("   infinity    : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kInfinity, false, 10)).c_str());
  std::printf("   linear      : %s\n\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kLinear, false, 10)).c_str());

  std::printf("B. bootstrap model f0 in the final vote\n");
  std::printf("   excluded (Algorithm 1)  : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, false, 10)).c_str());
  std::printf("   included (released impl): %s\n\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, true, 10)).c_str());

  std::printf("C. iterative self-paced vs one-shot hardness vs random\n");
  {
    std::vector<double> iht_values;
    std::vector<double> rand_values;
    for (std::size_t r = 0; r < runs; ++r) {
      spe::Rng rng(700 + r);
      const spe::InstanceHardnessThresholdSampler iht;
      const spe::Dataset iht_data = iht.Resample(trains[r], rng);
      auto iht_tree = Tree(10, r);
      iht_tree->Fit(iht_data);
      iht_values.push_back(
          spe::AucPrc(tests[r].labels(), iht_tree->PredictProba(tests[r])));

      const spe::Dataset rand_data =
          spe::RandomUnderSampler().Resample(trains[r], rng);
      auto rand_tree = Tree(10, r);
      rand_tree->Fit(rand_data);
      rand_values.push_back(
          spe::AucPrc(tests[r].labels(), rand_tree->PredictProba(tests[r])));
    }
    std::printf("   SPE10 (iterative)      : %s\n",
                spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, false, 10)).c_str());
    std::printf("   IHT + one tree (static): %s\n",
                spe::FormatMeanStd(spe::Aggregate(iht_values)).c_str());
    std::printf("   RandUnder + one tree   : %s\n\n",
                spe::FormatMeanStd(spe::Aggregate(rand_values)).c_str());
  }

  std::printf("D. base-model capacity (tan schedule)\n");
  std::printf("   depth-1 stumps : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, false, 1)).c_str());
  std::printf("   depth-5 trees  : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, false, 5)).c_str());
  std::printf("   depth-10 trees : %s\n",
              spe::FormatMeanStd(run_spe(spe::AlphaSchedule::kTan, false, 10)).c_str());
  return 0;
}
