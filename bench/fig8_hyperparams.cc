// Reproduces Fig. 8: sensitivity of SPE10 to its two remaining
// hyper-parameters — the number of hardness bins k (1..50) and the
// hardness function (AE / SE / CE) — on simulated Credit Fraud and
// Payment.
//
// Also runs the alpha-schedule ablation from DESIGN.md §4.1 when
// invoked with --ablation (always printed at the end, it is cheap).
//
// Expected shape: flat curves for k >= ~10 under every hardness
// function; degradation only at very small k (the paper: "setting a
// small k may lead to poor performance").

#include <cstdio>
#include <string>
#include <vector>

#include "spe/classifiers/factory.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/metrics/metrics.h"

namespace {

const std::vector<std::size_t> kBinCounts = {1, 2, 5, 10, 20, 50};

double RunOnce(const spe::Dataset& train, const spe::Dataset& test,
               spe::HardnessKind hardness, std::size_t bins,
               spe::AlphaSchedule schedule, std::uint64_t seed) {
  spe::SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.num_bins = bins;
  config.hardness = hardness;
  config.schedule = schedule;
  config.seed = seed;
  spe::SelfPacedEnsemble model(config, spe::MakeClassifier("DT", seed));
  model.Fit(train);
  return spe::AucPrc(test.labels(), model.PredictProba(test));
}

void RunDataset(const char* name, const spe::Dataset& full, std::size_t runs) {
  std::printf("dataset=%s (k:", name);
  for (std::size_t k : kBinCounts) std::printf(" %zu", k);
  std::printf(")\n");

  // Shared splits across settings, fresh per run.
  std::vector<spe::Dataset> trains;
  std::vector<spe::Dataset> tests;
  for (std::size_t r = 0; r < runs; ++r) {
    spe::Rng rng(800 + r);
    spe::TrainValTest parts = spe::StratifiedSplit(full, 0.6, 0.2, 0.2, rng);
    trains.push_back(std::move(parts.train));
    tests.push_back(std::move(parts.test));
  }

  for (const spe::HardnessKind hardness :
       {spe::HardnessKind::kAbsoluteError, spe::HardnessKind::kSquaredError,
        spe::HardnessKind::kCrossEntropy}) {
    std::printf("SPE-%s        ", spe::HardnessName(hardness).c_str());
    for (const std::size_t k : kBinCounts) {
      double mean = 0.0;
      for (std::size_t r = 0; r < runs; ++r) {
        mean += RunOnce(trains[r], tests[r], hardness, k,
                        spe::AlphaSchedule::kTan, r) /
                static_cast<double>(runs);
      }
      std::printf(" %.3f", mean);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  // Alpha-schedule ablation (k = 20, AE): what the self-paced schedule
  // itself buys over its two limits.
  std::printf("ablation (k=20, AE): alpha schedule ->");
  const struct {
    const char* name;
    spe::AlphaSchedule schedule;
  } schedules[] = {{"tan", spe::AlphaSchedule::kTan},
                   {"zero", spe::AlphaSchedule::kZero},
                   {"inf", spe::AlphaSchedule::kInfinity},
                   {"linear", spe::AlphaSchedule::kLinear}};
  for (const auto& s : schedules) {
    double mean = 0.0;
    for (std::size_t r = 0; r < runs; ++r) {
      mean += RunOnce(trains[r], tests[r], spe::HardnessKind::kAbsoluteError,
                      20, s.schedule, r) /
              static_cast<double>(runs);
    }
    std::printf(" %s=%.3f", s.name, mean);
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  std::printf("Fig. 8 reproduction: SPE10 sensitivity to bins k and "
              "hardness function (%zu runs)\n\n",
              runs);
  {
    spe::Rng rng(81);
    RunDataset("CreditFraud-sim",
               spe::MakeCreditFraudSim(rng, 0.5 * spe::BenchScale()), runs);
  }
  {
    spe::Rng rng(82);
    RunDataset("Payment-sim", spe::MakePaymentSim(rng, 0.5 * spe::BenchScale()),
               runs);
  }
  std::printf(
      "expected shape (paper Fig. 8): near-flat in k for k >= 10 and "
      "across\nhardness functions; weaker at k <= 2.\n");
  return 0;
}
