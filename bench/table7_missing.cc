// Reproduces Table VII: AUCPRC of the 6 ensemble methods (n = 10, C4.5
// base) on simulated Credit Fraud when 0 / 25 / 50 / 75 % of all feature
// values — in train and test alike — are replaced by a meaningless 0.
//
// Expected shape: every method degrades with the missing ratio; SPE
// degrades most gracefully because its hardness estimates keep tracking
// whatever signal the surviving features carry, while distance-based
// synthesis (SMOTE family) chases corrupted geometry.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/factory.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/data/synthetic.h"
#include "spe/eval/experiment.h"
#include "spe/eval/table.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/rus_boost.h"
#include "spe/imbalance/smote_bagging.h"
#include "spe/imbalance/smote_boost.h"
#include "spe/imbalance/under_bagging.h"

namespace {

const std::map<std::string, std::vector<double>> kPaperAucprc = {
    // ratios 0%, 25%, 50%, 75%
    {"RUSBoost", {0.424, 0.277, 0.206, 0.084}},
    {"SMOTEBoost", {0.762, 0.652, 0.529, 0.267}},
    {"UnderBagging", {0.355, 0.258, 0.161, 0.046}},
    {"SMOTEBagging", {0.782, 0.684, 0.503, 0.185}},
    {"Cascade", {0.610, 0.513, 0.442, 0.234}},
    {"SPE", {0.783, 0.699, 0.577, 0.374}},
};

std::unique_ptr<spe::Classifier> MakeMethod(const std::string& method,
                                            std::uint64_t seed) {
  const auto c45 = [&] { return spe::MakeClassifier("C4.5", seed); };
  if (method == "RUSBoost") {
    spe::RusBoostConfig config;
    config.seed = seed;
    return std::make_unique<spe::RusBoost>(config, c45());
  }
  if (method == "SMOTEBoost") {
    spe::SmoteBoostConfig config;
    config.seed = seed;
    return std::make_unique<spe::SmoteBoost>(config, c45());
  }
  if (method == "UnderBagging") {
    spe::UnderBaggingConfig config;
    config.seed = seed;
    return std::make_unique<spe::UnderBagging>(config, c45());
  }
  if (method == "SMOTEBagging") {
    spe::SmoteBaggingConfig config;
    config.seed = seed;
    return std::make_unique<spe::SmoteBagging>(config, c45());
  }
  if (method == "Cascade") {
    spe::BalanceCascadeConfig config;
    config.seed = seed;
    return std::make_unique<spe::BalanceCascade>(config, c45());
  }
  spe::SelfPacedEnsembleConfig config;
  config.seed = seed;
  return std::make_unique<spe::SelfPacedEnsemble>(config, c45());
}

}  // namespace

int main() {
  const std::vector<std::string> methods = {"RUSBoost",     "SMOTEBoost",
                                            "UnderBagging", "SMOTEBagging",
                                            "Cascade",      "SPE"};
  const std::vector<double> ratios = {0.0, 0.25, 0.5, 0.75};
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  const double scale = 0.6 * spe::BenchScale();
  std::printf(
      "Table VII reproduction: missing values on simulated Credit Fraud "
      "(n=10, C4.5 base), %zu runs, scale %.2f\n",
      runs, scale);

  spe::TextTable table({"Missing", "RUSBoost10", "SMOTEBoost10",
                        "UnderBagging10", "SMOTEBagging10", "Cascade10",
                        "SPE10"});

  for (std::size_t ratio_index = 0; ratio_index < ratios.size(); ++ratio_index) {
    const double ratio = ratios[ratio_index];
    std::vector<std::string> row = {
        spe::FormatNumber(100.0 * ratio, 0) + "%"};
    for (const std::string& method : methods) {
      const spe::AggregateScores agg = spe::Repeat(
          [&](std::uint64_t seed) {
            spe::Rng rng(900 + seed);
            spe::Dataset data = spe::MakeCreditFraudSim(rng, scale);
            // Paper protocol: corrupt before splitting so train and test
            // share the missing pattern distribution.
            spe::InjectMissingValues(data, ratio, rng);
            const spe::TrainValTest parts =
                spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
            auto model = MakeMethod(method, seed);
            model->Fit(parts.train);
            return spe::Evaluate(parts.test.labels(),
                                 model->PredictProba(parts.test));
          },
          runs, /*base_seed=*/1);
      row.push_back(spe::FormatMeanStd(agg.aucprc) + " (paper=" +
                    spe::FormatNumber(kPaperAucprc.at(method)[ratio_index]) +
                    ")");
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
