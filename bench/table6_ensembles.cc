// Reproduces Table VI: 6 ensemble imbalance methods with n = 10 / 20 /
// 50 base C4.5 (entropy) trees on simulated Credit Fraud — four metrics
// plus the total number of training rows consumed (#Sample), which is
// where the under-sampling family's 1/300 data advantage over the
// SMOTE family shows up.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/cell_runner.h"
#include "spe/classifiers/factory.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/eval/table.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/rus_boost.h"
#include "spe/imbalance/smote_bagging.h"
#include "spe/imbalance/smote_boost.h"
#include "spe/imbalance/under_bagging.h"

namespace {

struct MethodResult {
  spe::AggregateScores scores;
  double samples = 0.0;  // mean #rows used to fit all members
};

// Paper Table VI AUCPRC at n = 10 / 20 / 50 for the reference column.
const std::map<std::string, std::vector<double>> kPaperAucprc = {
    {"RUSBoost", {0.424, 0.550, 0.714}},
    {"SMOTEBoost", {0.762, 0.783, 0.786}},
    {"UnderBagging", {0.355, 0.519, 0.676}},
    {"SMOTEBagging", {0.782, 0.804, 0.818}},
    {"Cascade", {0.610, 0.673, 0.696}},
    {"SPE", {0.783, 0.811, 0.822}},
};

std::unique_ptr<spe::Classifier> C45(std::uint64_t seed) {
  return spe::MakeClassifier("C4.5", seed);
}

MethodResult RunMethod(const std::string& method, std::size_t n,
                       const std::vector<spe::Dataset>& trains,
                       const std::vector<spe::Dataset>& tests) {
  MethodResult result;
  std::vector<double> samples;
  result.scores = spe::Repeat(
      [&](std::uint64_t seed) {
        const std::size_t r = seed - 1;
        const spe::Dataset& train = trains[r];
        const spe::Dataset& test = tests[r];
        const std::size_t balanced_rows = 2 * train.CountPositives();
        std::unique_ptr<spe::Classifier> model;
        if (method == "RUSBoost") {
          spe::RusBoostConfig config;
          config.n_estimators = n;
          config.seed = seed;
          model = std::make_unique<spe::RusBoost>(config, C45(seed));
          samples.push_back(static_cast<double>(n * balanced_rows));
        } else if (method == "SMOTEBoost") {
          spe::SmoteBoostConfig config;
          config.n_estimators = n;
          config.seed = seed;
          auto boost = std::make_unique<spe::SmoteBoost>(config, C45(seed));
          boost->Fit(train);
          samples.push_back(static_cast<double>(boost->TotalTrainingRows()));
          const auto s =
              spe::Evaluate(test.labels(), boost->PredictProba(test));
          return s;
        } else if (method == "UnderBagging") {
          spe::UnderBaggingConfig config;
          config.n_estimators = n;
          config.seed = seed;
          model = std::make_unique<spe::UnderBagging>(config, C45(seed));
          samples.push_back(static_cast<double>(n * balanced_rows));
        } else if (method == "SMOTEBagging") {
          spe::SmoteBaggingConfig config;
          config.n_estimators = n;
          config.seed = seed;
          auto bag = std::make_unique<spe::SmoteBagging>(config, C45(seed));
          bag->Fit(train);
          samples.push_back(static_cast<double>(bag->TotalTrainingRows()));
          const auto s = spe::Evaluate(test.labels(), bag->PredictProba(test));
          return s;
        } else if (method == "Cascade") {
          spe::BalanceCascadeConfig config;
          config.n_estimators = n;
          config.seed = seed;
          model = std::make_unique<spe::BalanceCascade>(config, C45(seed));
          samples.push_back(static_cast<double>(n * balanced_rows));
        } else {  // SPE
          spe::SelfPacedEnsembleConfig config;
          config.n_estimators = n;
          config.seed = seed;
          model = std::make_unique<spe::SelfPacedEnsemble>(config, C45(seed));
          samples.push_back(static_cast<double>(n * balanced_rows));
        }
        model->Fit(train);
        return spe::Evaluate(test.labels(), model->PredictProba(test));
      },
      trains.size(), /*base_seed=*/1);
  result.samples = spe::Mean(samples);
  return result;
}

}  // namespace

int main() {
  const std::vector<std::string> methods = {"RUSBoost",     "SMOTEBoost",
                                            "UnderBagging", "SMOTEBagging",
                                            "Cascade",      "SPE"};
  const std::vector<std::size_t> sizes = {10, 20, 50};
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  const double scale = 0.6 * spe::BenchScale();
  std::printf(
      "Table VI reproduction: ensembles with C4.5 base on simulated "
      "Credit Fraud, %zu runs, scale %.2f\n",
      runs, scale);

  std::vector<spe::Dataset> trains;
  std::vector<spe::Dataset> tests;
  for (std::size_t r = 0; r < runs; ++r) {
    spe::Rng rng(500 + r);
    const spe::Dataset data = spe::MakeCreditFraudSim(rng, scale);
    spe::TrainValTest parts = spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
    trains.push_back(std::move(parts.train));
    tests.push_back(std::move(parts.test));
  }

  spe::TextTable table(
      {"n", "Metric", "RUSBoost", "SMOTEBoost", "UnderBagging", "SMOTEBagging",
       "Cascade", "SPE"});
  // The (n x method) grid is embarrassingly parallel: every cell reads
  // the shared per-run splits and derives its model seeds from the run
  // index, so the cell-runner changes wall clock, not results.
  const std::vector<MethodResult> all_results =
      spe::bench::RunCells<MethodResult>(
          sizes.size() * methods.size(), /*base_seed=*/1,
          [&](std::size_t cell, std::uint64_t /*cell_seed*/) {
            return RunMethod(methods[cell % methods.size()],
                             sizes[cell / methods.size()], trains, tests);
          });

  for (std::size_t size_index = 0; size_index < sizes.size(); ++size_index) {
    const std::size_t n = sizes[size_index];
    const std::vector<MethodResult> results(
        all_results.begin() +
            static_cast<std::ptrdiff_t>(size_index * methods.size()),
        all_results.begin() +
            static_cast<std::ptrdiff_t>((size_index + 1) * methods.size()));
    const auto add_row = [&](const std::string& metric, auto extract) {
      std::vector<std::string> row = {"n=" + std::to_string(n), metric};
      for (const MethodResult& r : results) row.push_back(extract(r));
      table.AddRow(std::move(row));
    };
    add_row("AUCPRC", [&](const MethodResult& r) {
      // Attach the paper reference for the headline metric.
      const std::size_t m = &r - results.data();
      return spe::FormatMeanStd(r.scores.aucprc) + " (paper=" +
             spe::FormatNumber(kPaperAucprc.at(methods[m])[size_index]) + ")";
    });
    add_row("F1", [](const MethodResult& r) { return spe::FormatMeanStd(r.scores.f1); });
    add_row("GM", [](const MethodResult& r) { return spe::FormatMeanStd(r.scores.gmean); });
    add_row("MCC", [](const MethodResult& r) { return spe::FormatMeanStd(r.scores.mcc); });
    add_row("#Sample", [](const MethodResult& r) {
      return spe::FormatNumber(r.samples, 0);
    });
  }
  table.Print(std::cout);
  return 0;
}
