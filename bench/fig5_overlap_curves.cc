// Reproduces Fig. 5: SPE vs BalanceCascade training curves (test AUCPRC
// after each of the 10 iterations) on checkerboards with covariance
// 0.05 / 0.10 / 0.15.
//
// Expected shape: more overlap lowers every curve; Cascade's curve bends
// downward in late iterations as it overfits the remaining outliers,
// while SPE keeps improving or plateaus.

#include <cstdio>
#include <vector>

#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/eval/experiment.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/metrics/metrics.h"

namespace {

constexpr std::size_t kIterations = 10;

// Mean AUCPRC-per-iteration curves over `runs` seeds.
template <typename Model>
std::vector<double> Curve(Model& model, const spe::Dataset& train,
                          const spe::Dataset& test) {
  std::vector<double> curve(kIterations, 0.0);
  model.set_iteration_callback([&](const spe::IterationInfo& info) {
    curve[info.iteration - 1] =
        spe::AucPrc(test.labels(), info.ensemble.PredictProba(test));
  });
  model.Fit(train);
  return curve;
}

}  // namespace

int main() {
  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  std::printf("Fig. 5 reproduction: training curves under class overlap "
              "(%zu runs)\ncov,method,iter1..iter10\n",
              runs);

  for (const double cov : {0.05, 0.10, 0.15}) {
    std::vector<double> spe_curve(kIterations, 0.0);
    std::vector<double> cascade_curve(kIterations, 0.0);
    for (std::size_t r = 0; r < runs; ++r) {
      spe::Rng rng(40 + r);
      spe::CheckerboardConfig config;
      config.covariance = cov;
      const spe::Dataset train = spe::MakeCheckerboard(config, rng);
      const spe::Dataset test = spe::MakeCheckerboard(config, rng);

      spe::SelfPacedEnsembleConfig spe_config;
      spe_config.n_estimators = kIterations;
      spe_config.seed = r;
      spe::SelfPacedEnsemble spe_model(spe_config);
      const std::vector<double> s = Curve(spe_model, train, test);

      spe::BalanceCascadeConfig cascade_config;
      cascade_config.n_estimators = kIterations;
      cascade_config.seed = r;
      spe::BalanceCascade cascade_model(cascade_config);
      const std::vector<double> c = Curve(cascade_model, train, test);

      for (std::size_t i = 0; i < kIterations; ++i) {
        spe_curve[i] += s[i] / static_cast<double>(runs);
        cascade_curve[i] += c[i] / static_cast<double>(runs);
      }
    }
    std::printf("cov=%.2f,SPE", cov);
    for (double v : spe_curve) std::printf(",%.3f", v);
    std::printf("\ncov=%.2f,Cascade", cov);
    for (double v : cascade_curve) std::printf(",%.3f", v);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "expected shape: higher cov -> lower curves; Cascade declines in "
      "late\niterations at high overlap while SPE holds.\n");
  return 0;
}
