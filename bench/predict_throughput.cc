// predict_throughput — flat SoA inference kernel vs the reference
// scoring path (BENCH_predict.json).
//
// Trains the forest workloads the kernel targets — the paper's SPE10
// (10 depth-10 trees), a 100-tree RandomForest, and an SPE ensemble of
// GBDT members — then scores one large checkerboard batch through both
// paths, at 1 thread and at the machine default, and prints one JSON
// report: rows/sec per path, the flat/reference speedup, and an
// `identical` flag from byte-comparing every probability vector against
// the single-threaded reference. The flag is the contract: the fast
// path must be a pure speed change. Exits nonzero on any mismatch.
//
//   predict_throughput [--rows N] [--passes P] [--train-rows R]
//                      [--out FILE]
//
// Writes the JSON report to stdout and to --out (default
// BENCH_predict.json in the working directory). Acceptance bar: >= 2x
// single-thread throughput on spe10 and rf100, "identical": true
// everywhere.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/parallel.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/kernels/flat_forest.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

struct Run {
  double rows_per_sec = 0.0;
  std::vector<double> probs;
};

// Best-of-`passes` wall-clock scoring of the full batch. The probability
// vector of the last pass is kept for the identity comparison (every
// pass must produce the same bytes; the test suite enforces that, here
// we compare across paths).
Run Measure(const spe::Classifier& model, const spe::Dataset& data,
            int passes) {
  Run run;
  for (int p = 0; p < passes; ++p) {
    const auto t0 = std::chrono::steady_clock::now();
    run.probs = model.PredictProba(data);
    const double dt = std::chrono::duration_cast<
                          std::chrono::duration<double>>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const double rate =
        dt > 0 ? static_cast<double>(data.num_rows()) / dt : 0.0;
    if (rate > run.rows_per_sec) run.rows_per_sec = rate;
  }
  return run;
}

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  const long rows = FlagValue(argc, argv, "--rows", 200'000);
  const int passes =
      static_cast<int>(FlagValue(argc, argv, "--passes", 3));
  const long train_rows = FlagValue(argc, argv, "--train-rows", 11'000);
  const std::string out_path =
      StringFlag(argc, argv, "--out", "BENCH_predict.json");

  // Span counts in the report need tracing on regardless of SPE_OBS.
  spe::obs::SetEnabled(true);

  spe::Rng rng(42);
  spe::CheckerboardConfig train_config;
  train_config.num_minority = static_cast<std::size_t>(train_rows) / 11;
  train_config.num_majority =
      static_cast<std::size_t>(train_rows) - train_config.num_minority;
  const spe::Dataset train = spe::MakeCheckerboard(train_config, rng);

  spe::CheckerboardConfig score_config;
  score_config.num_minority = static_cast<std::size_t>(rows) / 11;
  score_config.num_majority =
      static_cast<std::size_t>(rows) - score_config.num_minority;
  const spe::Dataset data = spe::MakeCheckerboard(score_config, rng);

  // The workloads the kernel is built for: the paper's SPE10 forest, a
  // wide bagged forest, and boosted members inside an SPE vote.
  std::vector<std::pair<std::string, std::unique_ptr<spe::Classifier>>>
      workloads;
  {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = 10;
    spe::DecisionTreeConfig tree;
    tree.max_depth = 10;
    workloads.emplace_back(
        "spe10", std::make_unique<spe::SelfPacedEnsemble>(
                     config, std::make_unique<spe::DecisionTree>(tree)));
  }
  {
    spe::RandomForestConfig config;
    config.n_estimators = 100;
    workloads.emplace_back("rf100",
                           std::make_unique<spe::RandomForest>(config));
  }
  {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = 5;
    spe::GbdtConfig gbdt;
    gbdt.boost_rounds = 10;
    workloads.emplace_back(
        "spe5_gbdt10", std::make_unique<spe::SelfPacedEnsemble>(
                           config, std::make_unique<spe::Gbdt>(gbdt)));
  }

  const std::size_t default_threads = spe::NumThreads();
  bool all_identical = true;
  std::string json = "{\"bench\":\"predict_throughput\",\"rows\":" +
                     std::to_string(data.num_rows()) +
                     ",\"passes\":" + std::to_string(passes) +
                     ",\"threads_n\":" + std::to_string(default_threads) +
                     ",\"workloads\":[";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const std::string& name = workloads[w].first;
    spe::Classifier& model = *workloads[w].second;
    std::fprintf(stderr, "training %s on %s\n", name.c_str(),
                 train.Summary().c_str());
    model.Fit(train);

    std::fprintf(stderr, "scoring %zu rows x %d passes (%s)\n",
                 data.num_rows(), passes, name.c_str());
    spe::SetNumThreads(1);
    spe::kernels::SetFlatKernelEnabled(false);
    const Run ref_1t = Measure(model, data, passes);
    spe::kernels::SetFlatKernelEnabled(true);
    const Run flat_1t = Measure(model, data, passes);
    const char* kernel = spe::kernels::ActiveKernel(model);
    spe::SetNumThreads(0);  // SPE_THREADS / hardware default
    spe::kernels::SetFlatKernelEnabled(false);
    const Run ref_nt = Measure(model, data, passes);
    spe::kernels::SetFlatKernelEnabled(true);
    const Run flat_nt = Measure(model, data, passes);

    // Everything must match the single-threaded reference bytes: the
    // kernel and the thread count are both pure speed knobs.
    const bool identical = SameBytes(ref_1t.probs, flat_1t.probs) &&
                           SameBytes(ref_1t.probs, ref_nt.probs) &&
                           SameBytes(ref_1t.probs, flat_nt.probs);
    all_identical = all_identical && identical;
    const double speedup_1t = ref_1t.rows_per_sec > 0
                                  ? flat_1t.rows_per_sec / ref_1t.rows_per_sec
                                  : 0.0;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"kernel\":\"%s\","
        "\"reference_rows_per_sec_1t\":%.0f,\"flat_rows_per_sec_1t\":%.0f,"
        "\"reference_rows_per_sec_nt\":%.0f,\"flat_rows_per_sec_nt\":%.0f,"
        "\"speedup_1t\":%.2f,\"identical\":%s}",
        w == 0 ? "" : ",", name.c_str(), kernel, ref_1t.rows_per_sec,
        flat_1t.rows_per_sec, ref_nt.rows_per_sec, flat_nt.rows_per_sec,
        speedup_1t, identical ? "true" : "false");
    json += buf;
    std::fprintf(stderr,
                 "%s: ref %.0f rows/s, flat %.0f rows/s (%.2fx), %s\n",
                 name.c_str(), ref_1t.rows_per_sec, flat_1t.rows_per_sec,
                 speedup_1t, identical ? "identical" : "MISMATCH");
  }
  json += "],\"identical\":";
  json += all_identical ? "true" : "false";
  json += ",\"spans\":" + spe::obs::SpanSummariesJson() + "}";
  std::printf("%s\n", json.c_str());
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return all_identical ? 0 : 1;
}
