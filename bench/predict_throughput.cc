// predict_throughput — flat SoA inference kernel vs the reference
// scoring path (BENCH_predict.json).
//
// Trains the forest workloads the kernel targets — the paper's SPE10
// (10 depth-10 trees), a 100-tree RandomForest, and an SPE ensemble of
// GBDT members — then scores one large checkerboard batch through both
// paths, at 1 thread and at the machine default, and prints one JSON
// report: rows/sec per path, the flat/reference speedup, and an
// `identical` flag from byte-comparing every probability vector against
// the single-threaded reference. The flag is the contract: the fast
// path must be a pure speed change. Exits nonzero on any mismatch.
//
// Timing methodology: the two paths are measured interleaved with
// alternating pass order (after one untimed warm-up pass each), never
// back to back, so cache warm-up doesn't bias the comparison. The
// unsuffixed rows/sec keys are the MEDIAN pass; the `_best` keys are
// the fastest pass (min wall time). `speedup_1t` is median-based. The
// top-level `simd` key stamps the ISA the kernel's descent was compiled
// for ("avx2"/"neon", or "scalar" when the build or SPE_SIMD=0 keeps
// the portable walk), `kernel_mode` the active scoring mode.
//
//   predict_throughput [--rows N] [--passes P] [--train-rows R]
//                      [--out FILE]
//
// Writes the JSON report to stdout and to --out (default
// BENCH_predict.json in the working directory). Acceptance bar with the
// SIMD descent compiled in: >= 5x single-thread on spe10, >= 2x on
// spe5_gbdt10, "identical": true everywhere.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/parallel.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/kernels/flat_forest.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

struct Run {
  double rows_per_sec_best = 0.0;    // fastest pass (min wall time)
  double rows_per_sec_median = 0.0;  // median pass
  std::vector<double> probs;
};

double TimeOnePass(const spe::Classifier& model, const spe::Dataset& data,
                   std::vector<double>* probs) {
  const auto t0 = std::chrono::steady_clock::now();
  *probs = model.PredictProba(data);
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Run Summarize(std::vector<double> secs, std::size_t rows,
              std::vector<double> probs) {
  Run run;
  run.probs = std::move(probs);
  if (secs.empty()) return run;
  std::sort(secs.begin(), secs.end());
  const double best = secs.front();
  const double median =
      secs.size() % 2 == 1
          ? secs[secs.size() / 2]
          : 0.5 * (secs[secs.size() / 2 - 1] + secs[secs.size() / 2]);
  run.rows_per_sec_best = best > 0 ? static_cast<double>(rows) / best : 0.0;
  run.rows_per_sec_median =
      median > 0 ? static_cast<double>(rows) / median : 0.0;
  return run;
}

// Interleaved timing of the reference and flat paths at the current
// thread count. A naive back-to-back layout (all reference passes, then
// all flat passes) hands the second path warm caches and a trained
// branch predictor, biasing the speedup; instead one untimed warm-up
// pass runs per path and the timed passes alternate which path goes
// first, so both orderings contribute equally. Min and median wall time
// are both reported — min shows peak kernel speed, median absorbs
// scheduler noise. The last probability vector per path is kept for the
// byte-identity comparison (every pass of a path must produce the same
// bytes; the test suite enforces that, here we compare across paths).
struct PathPair {
  Run ref;
  Run flat;
};

PathPair MeasurePaths(const spe::Classifier& model, const spe::Dataset& data,
                      int passes) {
  std::vector<double> ref_secs, flat_secs;
  std::vector<double> ref_probs, flat_probs;
  for (int warm = 0; warm < 2; ++warm) {
    spe::kernels::SetFlatKernelEnabled(warm == 1);
    (void)model.PredictProba(data);
  }
  for (int p = 0; p < passes; ++p) {
    const bool flat_first = (p % 2) != 0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool flat = (leg == 0) == flat_first;
      spe::kernels::SetFlatKernelEnabled(flat);
      auto& secs = flat ? flat_secs : ref_secs;
      auto& probs = flat ? flat_probs : ref_probs;
      secs.push_back(TimeOnePass(model, data, &probs));
    }
  }
  spe::kernels::SetFlatKernelEnabled(true);
  PathPair pair;
  pair.ref = Summarize(std::move(ref_secs), data.num_rows(),
                       std::move(ref_probs));
  pair.flat = Summarize(std::move(flat_secs), data.num_rows(),
                        std::move(flat_probs));
  return pair;
}

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  const long rows = FlagValue(argc, argv, "--rows", 200'000);
  const int passes =
      static_cast<int>(FlagValue(argc, argv, "--passes", 3));
  const long train_rows = FlagValue(argc, argv, "--train-rows", 11'000);
  const std::string out_path =
      StringFlag(argc, argv, "--out", "BENCH_predict.json");

  // Span counts in the report need tracing on regardless of SPE_OBS.
  spe::obs::SetEnabled(true);

  spe::Rng rng(42);
  spe::CheckerboardConfig train_config;
  train_config.num_minority = static_cast<std::size_t>(train_rows) / 11;
  train_config.num_majority =
      static_cast<std::size_t>(train_rows) - train_config.num_minority;
  const spe::Dataset train = spe::MakeCheckerboard(train_config, rng);

  spe::CheckerboardConfig score_config;
  score_config.num_minority = static_cast<std::size_t>(rows) / 11;
  score_config.num_majority =
      static_cast<std::size_t>(rows) - score_config.num_minority;
  const spe::Dataset data = spe::MakeCheckerboard(score_config, rng);

  // The workloads the kernel is built for: the paper's SPE10 forest, a
  // wide bagged forest, and boosted members inside an SPE vote.
  std::vector<std::pair<std::string, std::unique_ptr<spe::Classifier>>>
      workloads;
  {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = 10;
    spe::DecisionTreeConfig tree;
    tree.max_depth = 10;
    workloads.emplace_back(
        "spe10", std::make_unique<spe::SelfPacedEnsemble>(
                     config, std::make_unique<spe::DecisionTree>(tree)));
  }
  {
    spe::RandomForestConfig config;
    config.n_estimators = 100;
    workloads.emplace_back("rf100",
                           std::make_unique<spe::RandomForest>(config));
  }
  {
    spe::SelfPacedEnsembleConfig config;
    config.n_estimators = 5;
    spe::GbdtConfig gbdt;
    gbdt.boost_rounds = 10;
    workloads.emplace_back(
        "spe5_gbdt10", std::make_unique<spe::SelfPacedEnsemble>(
                           config, std::make_unique<spe::Gbdt>(gbdt)));
  }

  const std::size_t default_threads = spe::NumThreads();
  bool all_identical = true;
  // "simd" stamps the ISA the kernel TU was compiled against — the
  // compile-time fact that makes a stored report attributable to
  // hardware. "simd_descent" records whether the runtime gather-walk
  // switch was on for this run (defaults per backend profitability;
  // see SimdEnabled in flat_forest.h).
  const char* simd_isa = spe::kernels::SimdIsa();
  const bool simd_descent = spe::kernels::SimdEnabled();
  std::string json = "{\"bench\":\"predict_throughput\",\"rows\":" +
                     std::to_string(data.num_rows()) +
                     ",\"passes\":" + std::to_string(passes) +
                     ",\"threads_n\":" + std::to_string(default_threads) +
                     ",\"simd\":\"" + simd_isa + "\"" +
                     ",\"simd_descent\":" + (simd_descent ? "true" : "false") +
                     ",\"kernel_mode\":" + "\"" +
                     spe::kernels::ScoreModeName(
                         spe::kernels::ActiveScoreMode()) +
                     "\",\"workloads\":[";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const std::string& name = workloads[w].first;
    spe::Classifier& model = *workloads[w].second;
    std::fprintf(stderr, "training %s on %s\n", name.c_str(),
                 train.Summary().c_str());
    model.Fit(train);

    std::fprintf(stderr, "scoring %zu rows x %d passes (%s)\n",
                 data.num_rows(), passes, name.c_str());
    spe::SetNumThreads(1);
    const PathPair one = MeasurePaths(model, data, passes);
    const char* kernel = spe::kernels::ActiveKernel(model);
    spe::SetNumThreads(0);  // SPE_THREADS / hardware default
    const PathPair many = MeasurePaths(model, data, passes);

    // Everything must match the single-threaded reference bytes: the
    // kernel and the thread count are both pure speed knobs.
    const bool identical = SameBytes(one.ref.probs, one.flat.probs) &&
                           SameBytes(one.ref.probs, many.ref.probs) &&
                           SameBytes(one.ref.probs, many.flat.probs);
    all_identical = all_identical && identical;
    const double speedup_1t =
        one.ref.rows_per_sec_median > 0
            ? one.flat.rows_per_sec_median / one.ref.rows_per_sec_median
            : 0.0;
    const double speedup_1t_best =
        one.ref.rows_per_sec_best > 0
            ? one.flat.rows_per_sec_best / one.ref.rows_per_sec_best
            : 0.0;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"kernel\":\"%s\","
        "\"reference_rows_per_sec_1t\":%.0f,\"flat_rows_per_sec_1t\":%.0f,"
        "\"reference_rows_per_sec_1t_best\":%.0f,"
        "\"flat_rows_per_sec_1t_best\":%.0f,"
        "\"reference_rows_per_sec_nt\":%.0f,\"flat_rows_per_sec_nt\":%.0f,"
        "\"reference_rows_per_sec_nt_best\":%.0f,"
        "\"flat_rows_per_sec_nt_best\":%.0f,"
        "\"speedup_1t\":%.2f,\"speedup_1t_best\":%.2f,\"identical\":%s}",
        w == 0 ? "" : ",", name.c_str(), kernel,
        one.ref.rows_per_sec_median, one.flat.rows_per_sec_median,
        one.ref.rows_per_sec_best, one.flat.rows_per_sec_best,
        many.ref.rows_per_sec_median, many.flat.rows_per_sec_median,
        many.ref.rows_per_sec_best, many.flat.rows_per_sec_best,
        speedup_1t, speedup_1t_best, identical ? "true" : "false");
    json += buf;
    std::fprintf(stderr,
                 "%s: ref %.0f rows/s, flat %.0f rows/s "
                 "(median %.2fx, best %.2fx), %s\n",
                 name.c_str(), one.ref.rows_per_sec_median,
                 one.flat.rows_per_sec_median, speedup_1t, speedup_1t_best,
                 identical ? "identical" : "MISMATCH");
  }
  json += "],\"identical\":";
  json += all_identical ? "true" : "false";
  json += ",\"spans\":" + spe::obs::SpanSummariesJson() + "}";
  std::printf("%s\n", json.c_str());
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return all_identical ? 0 : 1;
}
