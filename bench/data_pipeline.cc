// data_pipeline — copy-traffic and load-path numbers for the columnar
// data layer (docs/performance.md, "Data layout").
//
// Three measurements, one JSON report (BENCH_data.json):
//
//  1. Load path: cold CSV parse (sidecar published) vs warm mmap reuse
//     of the `.spmc` sidecar, with a value-identity check between the
//     two — the cache may only ever change the speed, never a byte.
//  2. Copy meter around one SPE fit: materialize bytes/ops and scratch
//     bytes the fit adds (subsets are index views, so materialize
//     traffic should be near zero).
//  3. Row-copy baseline: the bytes the pre-columnar trainer moved for
//     the same fit — one balanced subset Dataset materialized per
//     ensemble iteration — measured by doing exactly those copies.
//
// The report carries copy_reduction_ratio = baseline / fit. The run
// exits nonzero if the ratio drops below --min-ratio (default 5): that
// is the regression guard CI runs (ctest label "data"), so a change
// that quietly reintroduces per-iteration row copies fails the build.
//
//   data_pipeline [--minority P] [--majority M] [--n-estimators E]
//                 [--min-ratio R] [--out FILE]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/csv.h"
#include "spe/data/dataset.h"
#include "spe/data/matrix.h"
#include "spe/data/mmap_cache.h"
#include "spe/data/synthetic.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool SameValues(const spe::Dataset& a, const spe::Dataset& b) {
  if (a.num_rows() != b.num_rows() || a.num_features() != b.num_features()) {
    return false;
  }
  for (std::size_t j = 0; j < a.num_features(); ++j) {
    const std::span<const double> ca = a.Column(j).values;
    const std::span<const double> cb = b.Column(j).values;
    if (std::memcmp(ca.data(), cb.data(), ca.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    if (a.Label(i) != b.Label(i)) return false;
  }
  return true;
}

spe::DataCopyStats Delta(const spe::DataCopyStats& before) {
  const spe::DataCopyStats now = spe::GetDataCopyStats();
  return {now.materialize_bytes - before.materialize_bytes,
          now.materialize_ops - before.materialize_ops,
          now.scratch_bytes - before.scratch_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  const long minority = FlagValue(argc, argv, "--minority", 1'000);
  const long majority = FlagValue(argc, argv, "--majority", 20'000);
  const long n_estimators = FlagValue(argc, argv, "--n-estimators", 10);
  const double min_ratio =
      static_cast<double>(FlagValue(argc, argv, "--min-ratio", 5));
  const std::string out_path =
      StringFlag(argc, argv, "--out", "BENCH_data.json");

  spe::CheckerboardConfig config;
  config.num_minority = static_cast<std::size_t>(minority);
  config.num_majority = static_cast<std::size_t>(majority);
  spe::Rng rng(42);
  const spe::Dataset source = spe::MakeCheckerboard(config, rng);

  // --- 1. Load path: cold parse (publishes sidecar) vs warm mmap. ---
  const auto dir =
      std::filesystem::temp_directory_path() / "spe_bench_data_pipeline";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string csv_path = (dir / "train.csv").string();
  spe::SaveCsv(source, csv_path);
  const std::size_t label_column = source.num_features();

  const auto cold_start = std::chrono::steady_clock::now();
  const spe::Dataset cold = spe::LoadCsvCached(csv_path, label_column);
  const double load_cold_s = Seconds(cold_start);
  const spe::SidecarInfo sidecar = spe::InspectSidecar(csv_path, label_column);

  const auto warm_start = std::chrono::steady_clock::now();
  const spe::Dataset warm = spe::LoadCsvCached(csv_path, label_column);
  const double load_warm_s = Seconds(warm_start);

  const bool loads_identical = SameValues(cold, warm);

  // --- 2. Copy meter around one SPE fit over views. ---
  const auto make_spe = [&] {
    spe::SelfPacedEnsembleConfig spe_config;
    spe_config.n_estimators = static_cast<std::size_t>(n_estimators);
    spe_config.seed = 7;
    return std::make_unique<spe::SelfPacedEnsemble>(
        spe_config,
        std::make_unique<spe::DecisionTree>(spe::DecisionTreeConfig{}));
  };
  const spe::DataCopyStats before_fit = spe::GetDataCopyStats();
  auto model = make_spe();
  const auto fit_start = std::chrono::steady_clock::now();
  model->Fit(warm);
  const double fit_s = Seconds(fit_start);
  const spe::DataCopyStats fit = Delta(before_fit);

  // --- 3. Row-copy baseline: the subset Datasets the pre-columnar
  // trainer materialized — one balanced subset per iteration. ---
  const std::vector<std::size_t> pos = warm.PositiveIndices();
  const std::vector<std::size_t> neg = warm.NegativeIndices();
  std::vector<std::size_t> balanced = pos;
  for (std::size_t i = 0; i < pos.size() && i < neg.size(); ++i) {
    balanced.push_back(neg[i]);
  }
  const spe::DataCopyStats before_baseline = spe::GetDataCopyStats();
  for (long k = 0; k < n_estimators; ++k) {
    const spe::Dataset subset = warm.Subset(balanced);
    // Touch the copy so the loop cannot be optimized away.
    if (subset.num_rows() == 0) return 2;
  }
  const spe::DataCopyStats baseline = Delta(before_baseline);

  const double ratio =
      static_cast<double>(baseline.materialize_bytes) /
      static_cast<double>(fit.materialize_bytes > 0 ? fit.materialize_bytes
                                                    : 1);
  const bool pass = loads_identical && ratio >= min_ratio;

  std::ostringstream json;
  json.precision(6);
  json << "{\"bench\":\"data_pipeline\""
       << ",\"rows\":" << warm.num_rows()
       << ",\"features\":" << warm.num_features()
       << ",\"n_estimators\":" << n_estimators
       << ",\"load\":{\"cold_parse_s\":" << load_cold_s
       << ",\"warm_mmap_s\":" << load_warm_s << ",\"sidecar\":\""
       << spe::SidecarStatusName(sidecar.status) << "\""
       << ",\"identical\":" << (loads_identical ? "true" : "false") << "}"
       << ",\"spe_fit\":{\"seconds\":" << fit_s
       << ",\"materialize_bytes\":" << fit.materialize_bytes
       << ",\"materialize_ops\":" << fit.materialize_ops
       << ",\"scratch_bytes\":" << fit.scratch_bytes << "}"
       << ",\"rowmajor_baseline\":{\"materialize_bytes\":"
       << baseline.materialize_bytes
       << ",\"materialize_ops\":" << baseline.materialize_ops << "}"
       << ",\"copy_reduction_ratio\":" << ratio
       << ",\"min_ratio\":" << min_ratio
       << ",\"pass\":" << (pass ? "true" : "false") << "}";

  const std::string report = json.str();
  std::printf("%s\n", report.c_str());
  std::fprintf(stderr,
               "load cold %.3fs warm %.3fs (%s)  fit materialize %llu B / "
               "%llu ops, scratch %llu B  baseline %llu B  ratio %.1fx "
               "(min %.0fx)  %s\n",
               load_cold_s, load_warm_s,
               spe::SidecarStatusName(sidecar.status),
               static_cast<unsigned long long>(fit.materialize_bytes),
               static_cast<unsigned long long>(fit.materialize_ops),
               static_cast<unsigned long long>(fit.scratch_bytes),
               static_cast<unsigned long long>(baseline.materialize_bytes),
               ratio, min_ratio, pass ? "PASS" : "FAIL");
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", report.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  std::filesystem::remove_all(dir);
  return pass ? 0 : 1;
}
