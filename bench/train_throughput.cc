// train_throughput — training / batch-scoring throughput at 1 vs N
// threads, plus an inline check of the determinism contract.
//
// Trains SPE / Bagging / RandomForest on an enlarged checkerboard
// (paper §VI-A geometry), once with the thread pool pinned to a single
// thread and once at --threads (default 8), and reports fit and batch-
// scoring rows/sec for both. Before reporting, it byte-compares the
// predictions and the serialized artifacts across the two runs: the
// speedup is only admissible if the results are bit-identical, so a
// mismatch exits nonzero and poisons the report with "identical":false.
//
//   train_throughput [--threads N] [--minority P] [--majority M]
//                    [--score-rows S] [--n-estimators E] [--out FILE]
//                    [--no-obs]
//
// --no-obs disables the obs instrumentation (spans + fit gauges) for
// the run, which is how docs/performance.md measures its overhead:
// run once with and once without and compare fit throughput.
//
// Writes the JSON report to stdout and to --out (default
// BENCH_train.json in the working directory).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/parallel.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/kernels/flat_forest.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"
#include "spe/data/synthetic.h"
#include "spe/io/model_io.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double fit_s = 0.0;
  double score_s = 0.0;
  std::vector<double> probs;  // batch predictions on the score set
  std::string artifact;       // SaveClassifier text
  const char* kernel = "reference";  // inference path PredictProba used
};

// Fits a fresh model, times fit + one batch PredictProba over `score`,
// and captures the evidence needed for the bit-identity comparison.
template <typename MakeModel>
RunResult RunOnce(MakeModel&& make_model, const spe::Dataset& train,
                  const spe::Dataset& score) {
  RunResult result;
  auto model = make_model();
  const auto fit_start = std::chrono::steady_clock::now();
  model->Fit(train);
  result.fit_s = Seconds(fit_start);
  const auto score_start = std::chrono::steady_clock::now();
  result.probs = model->PredictProba(score);
  result.score_s = Seconds(score_start);
  result.kernel = spe::kernels::ActiveKernel(*model);
  std::ostringstream os;
  spe::SaveClassifier(*model, os);
  result.artifact = os.str();
  return result;
}

bool BitIdentical(const RunResult& a, const RunResult& b) {
  if (a.artifact != b.artifact) return false;
  if (a.probs.size() != b.probs.size()) return false;
  return a.probs.empty() ||
         std::memcmp(a.probs.data(), b.probs.data(),
                     a.probs.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const long threads = FlagValue(argc, argv, "--threads", 8);
  const long minority = FlagValue(argc, argv, "--minority", 2'000);
  const long majority = FlagValue(argc, argv, "--majority", 40'000);
  const long score_rows = FlagValue(argc, argv, "--score-rows", 200'000);
  const long n_estimators = FlagValue(argc, argv, "--n-estimators", 10);
  const std::string out_path =
      StringFlag(argc, argv, "--out", "BENCH_train.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-obs") == 0) spe::obs::SetEnabled(false);
  }

  // Paper §VI-A checkerboard geometry, enlarged so fit takes long
  // enough to time; a separate large batch exercises scoring.
  spe::CheckerboardConfig train_config;
  train_config.num_minority = static_cast<std::size_t>(minority);
  train_config.num_majority = static_cast<std::size_t>(majority);
  spe::Rng rng(42);
  const spe::Dataset train = spe::MakeCheckerboard(train_config, rng);
  spe::CheckerboardConfig score_config;
  score_config.num_minority = static_cast<std::size_t>(score_rows / 11);
  score_config.num_majority =
      static_cast<std::size_t>(score_rows) - score_config.num_minority;
  const spe::Dataset score = spe::MakeCheckerboard(score_config, rng);
  std::fprintf(stderr, "train=%s score=%s threads=1 vs %ld\n",
               train.Summary().c_str(), score.Summary().c_str(), threads);

  struct Workload {
    const char* name;
    std::unique_ptr<spe::Classifier> (*make)(std::size_t);
  };
  const Workload workloads[] = {
      {"spe",
       [](std::size_t n) -> std::unique_ptr<spe::Classifier> {
         spe::SelfPacedEnsembleConfig config;
         config.n_estimators = n;
         config.seed = 7;
         return std::make_unique<spe::SelfPacedEnsemble>(
             config, std::make_unique<spe::DecisionTree>(
                         spe::DecisionTreeConfig{}));
       }},
      {"bagging",
       [](std::size_t n) -> std::unique_ptr<spe::Classifier> {
         spe::BaggingConfig config;
         config.n_estimators = n;
         config.seed = 7;
         return std::make_unique<spe::Bagging>(config);
       }},
      {"random_forest",
       [](std::size_t n) -> std::unique_ptr<spe::Classifier> {
         spe::RandomForestConfig config;
         config.n_estimators = n;
         config.seed = 7;
         return std::make_unique<spe::RandomForest>(config);
       }},
  };

  bool all_identical = true;
  std::ostringstream json;
  json << "{\"bench\":\"train_throughput\",\"threads\":" << threads
       << ",\"train_rows\":" << train.num_rows()
       << ",\"score_rows\":" << score.num_rows()
       << ",\"n_estimators\":" << n_estimators << ",\"workloads\":[";
  const double train_rows = static_cast<double>(train.num_rows());
  const double batch_rows = static_cast<double>(score.num_rows());
  bool first = true;
  for (const Workload& w : workloads) {
    const auto make = [&] {
      return w.make(static_cast<std::size_t>(n_estimators));
    };
    spe::SetNumThreads(1);
    const RunResult serial = RunOnce(make, train, score);
    spe::SetNumThreads(static_cast<std::size_t>(threads));
    const RunResult parallel = RunOnce(make, train, score);
    spe::SetNumThreads(0);  // back to SPE_THREADS / hardware default

    const bool identical = BitIdentical(serial, parallel);
    all_identical = all_identical && identical;
    std::fprintf(stderr,
                 "%-14s fit %.3fs -> %.3fs (%.2fx)  score %.3fs -> %.3fs "
                 "(%.2fx)  identical=%s\n",
                 w.name, serial.fit_s, parallel.fit_s,
                 parallel.fit_s > 0 ? serial.fit_s / parallel.fit_s : 0.0,
                 serial.score_s, parallel.score_s,
                 parallel.score_s > 0 ? serial.score_s / parallel.score_s : 0.0,
                 identical ? "yes" : "NO");
    json << (first ? "" : ",") << "{\"name\":\"" << w.name << "\""
         << ",\"kernel\":\"" << parallel.kernel << "\""
         << ",\"fit_rows_per_sec_1t\":"
         << (serial.fit_s > 0 ? train_rows / serial.fit_s : 0.0)
         << ",\"fit_rows_per_sec_nt\":"
         << (parallel.fit_s > 0 ? train_rows / parallel.fit_s : 0.0)
         << ",\"fit_speedup\":"
         << (parallel.fit_s > 0 ? serial.fit_s / parallel.fit_s : 0.0)
         << ",\"score_rows_per_sec_1t\":"
         << (serial.score_s > 0 ? batch_rows / serial.score_s : 0.0)
         << ",\"score_rows_per_sec_nt\":"
         << (parallel.score_s > 0 ? batch_rows / parallel.score_s : 0.0)
         << ",\"score_speedup\":"
         << (parallel.score_s > 0 ? serial.score_s / parallel.score_s : 0.0)
         << ",\"identical\":" << (identical ? "true" : "false") << "}";
    first = false;
  }
  // Checkpoint overhead: the same SPE fit with a checkpoint published
  // after every iteration vs none at all. docs/robustness.md promises
  // the per-iteration snapshot costs <= 5% of fit time, and the resumed
  // artifact bytes must not drift, so both are measured here.
  double ckpt_overhead_pct = 0.0;
  bool ckpt_identical = true;
  {
    const auto make_spe = [&]() {
      return workloads[0].make(static_cast<std::size_t>(n_estimators));
    };
    spe::SetNumThreads(static_cast<std::size_t>(threads));
    const auto ckpt_dir = std::filesystem::temp_directory_path() /
                          "spe_bench_train_checkpoint";
    std::filesystem::remove_all(ckpt_dir);
    std::filesystem::create_directories(ckpt_dir);
    spe::FitCheckpointOptions ckpt;
    ckpt.directory = ckpt_dir.string();
    ckpt.every = 1;
    const auto make_ckpt = [&]() {
      auto model = make_spe();
      static_cast<spe::SelfPacedEnsemble&>(*model).set_checkpoint_options(
          ckpt);
      return model;
    };
    // Best-of-7 per variant, interleaved: both fits are under 100ms at
    // the default scale, so a single sample is mostly scheduler noise;
    // the min is the standard noise-resistant estimator for a
    // deterministic workload, and on a shared single-core box it takes
    // several samples for each variant to land one quiet run.
    RunResult plain = RunOnce(make_spe, train, score);
    RunResult checkpointed = RunOnce(make_ckpt, train, score);
    for (int rep = 1; rep < 7; ++rep) {
      plain.fit_s = std::min(plain.fit_s, RunOnce(make_spe, train, score).fit_s);
      checkpointed.fit_s =
          std::min(checkpointed.fit_s, RunOnce(make_ckpt, train, score).fit_s);
    }
    spe::SetNumThreads(0);
    std::filesystem::remove_all(ckpt_dir);
    ckpt_identical = BitIdentical(plain, checkpointed);
    all_identical = all_identical && ckpt_identical;
    ckpt_overhead_pct =
        plain.fit_s > 0
            ? (checkpointed.fit_s - plain.fit_s) / plain.fit_s * 100.0
            : 0.0;
    std::fprintf(stderr,
                 "checkpoint     fit %.3fs -> %.3fs (every=1, %.2f%% "
                 "overhead)  identical=%s\n",
                 plain.fit_s, checkpointed.fit_s, ckpt_overhead_pct,
                 ckpt_identical ? "yes" : "NO");
    json << "],\"checkpoint\":{\"every\":1,\"fit_s_plain\":" << plain.fit_s
         << ",\"fit_s_checkpointed\":" << checkpointed.fit_s
         << ",\"overhead_pct\":" << ckpt_overhead_pct
         << ",\"identical\":" << (ckpt_identical ? "true" : "false") << "}";
  }
  json << ",\"identical\":" << (all_identical ? "true" : "false")
       << ",\"obs_enabled\":" << (spe::obs::Enabled() ? "true" : "false")
       << ",\"spans\":" << spe::obs::SpanSummariesJson() << "}";

  const std::string report = json.str();
  std::printf("%s\n", report.c_str());
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", report.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  return all_identical ? 0 : 1;
}
