// Reproduces Fig. 2: how the distribution of classification hardness
// reacts to the imbalance ratio on a non-overlapped vs an overlapped
// dataset, measured w.r.t. two models of very different capacity (KNN
// and AdaBoost).
//
// Output: one CSV-style series per (dataset, model, IR) giving the
// population of each hardness decile, plus the fraction of "hard"
// samples (hardness > 0.5). Expected shape (paper §IV): on the
// non-overlapped data the hard fraction stays flat as IR grows; on the
// overlapped data it rises sharply — and the two models disagree on
// *which* samples are hard.

#include <cstdio>
#include <memory>
#include <vector>

#include "spe/classifiers/adaboost.h"
#include "spe/classifiers/knn.h"
#include "spe/core/hardness.h"
#include "spe/data/synthetic.h"
#include "spe/metrics/metrics.h"

namespace {

void Analyze(const char* dataset_name, bool overlapped, double ir,
             const char* model_name, spe::Classifier& model) {
  spe::TwoGaussiansConfig config;
  config.num_minority = 300;
  config.imbalance_ratio = ir;
  config.overlapped = overlapped;
  spe::Rng rng(static_cast<std::uint64_t>(ir) * 31 + overlapped);
  const spe::Dataset data = spe::MakeTwoGaussians(config, rng);

  model.Fit(data);
  const std::vector<double> probs = model.PredictProba(data);
  const std::vector<double> hardness = spe::ComputeHardness(
      spe::MakeHardness(spe::HardnessKind::kAbsoluteError), probs,
      data.labels());
  const spe::HardnessBins bins = spe::ComputeHardnessBins(hardness, 10);

  // The paper's claim is about the *quantity* of hard samples growing
  // with IR under overlap, so report the absolute count.
  std::size_t hard = 0;
  for (std::size_t i = 0; i < hardness.size(); ++i) hard += hardness[i] > 0.5;
  std::printf("%s,%s,IR=%.0f,hard_count=%zu,bins=", dataset_name, model_name,
              ir, hard);
  for (std::size_t b = 0; b < bins.population.size(); ++b) {
    std::printf("%zu%s", bins.population[b],
                b + 1 < bins.population.size() ? "|" : "\n");
  }
}

}  // namespace

int main() {
  std::printf(
      "Fig. 2 reproduction: hardness distribution vs IR, overlap, model\n"
      "dataset,model,IR,hard sample count,per-decile population\n");
  for (const bool overlapped : {false, true}) {
    const char* dataset = overlapped ? "overlapped" : "non-overlapped";
    for (const double ir : {10.0, 50.0, 100.0}) {
      {
        spe::Knn knn;
        Analyze(dataset, overlapped, ir, "KNN", knn);
      }
      {
        spe::AdaBoostConfig config;
        config.n_estimators = 10;
        spe::AdaBoost boost(config);
        Analyze(dataset, overlapped, ir, "AdaBoost", boost);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: hard_count roughly flat with IR on non-overlapped "
      "data,\nrising sharply with IR on overlapped data; KNN and AdaBoost "
      "place hardness\non different samples (different decile profiles).\n");
  return 0;
}
