// Reproduces Table IV: 6 imbalance-learning methods x designated
// classifiers on the five (simulated) real-world datasets, scored with
// AUCPRC / F1 / G-mean / MCC on a held-out test set (60/20/20 split).
//
// The real datasets are proprietary / impractically large; the
// generators in spe/data/simulated.h preserve the relevant regimes (see
// DESIGN.md §3). Distance-based methods print "- -" on datasets with
// categorical features, exactly as the paper does.

#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/eval/table.h"

namespace {

using spe::bench::RunMethodOnce;

struct Task {
  std::string dataset;
  std::string classifier;
  std::function<spe::Dataset(spe::Rng&, double)> make;
  // Paper's AUCPRC row (RandUnder, Clean, SMOTE, Easy10, Cascade10,
  // SPE10); -1 marks the paper's "- -" cells.
  std::vector<double> paper_aucprc;
};

const char* Cell(const std::optional<spe::MeanStd>& value, double paper) {
  static thread_local std::string buffer;
  if (!value.has_value()) {
    buffer = "- -";
  } else {
    buffer = spe::FormatMeanStd(*value);
  }
  if (paper >= 0.0) {
    buffer += " (paper=" + spe::FormatNumber(paper) + ")";
  }
  return buffer.c_str();
}

}  // namespace

int main() {
  const std::vector<std::string> methods = {"RandUnder", "Clean",   "SMOTE",
                                            "Easy",      "Cascade", "SPE"};
  const std::vector<Task> tasks = {
      {"CreditFraud", "KNN", [](spe::Rng& r, double s) { return spe::MakeCreditFraudSim(r, s); },
       {0.052, 0.677, 0.352, 0.162, 0.676, 0.752}},
      {"CreditFraud", "DT", [](spe::Rng& r, double s) { return spe::MakeCreditFraudSim(r, s); },
       {0.014, 0.598, 0.088, 0.339, 0.592, 0.783}},
      {"CreditFraud", "MLP", [](spe::Rng& r, double s) { return spe::MakeCreditFraudSim(r, s); },
       {0.225, 0.001, 0.527, 0.605, 0.738, 0.747}},
      {"KDD-PRB", "AdaBoost10",
       [](spe::Rng& r, double s) { return spe::MakeKddSim(spe::KddTask::kDosVsPrb, r, s); },
       {0.930, -1.0, -1.0, 0.995, 1.000, 1.000}},
      {"KDD-R2L", "AdaBoost10",
       [](spe::Rng& r, double s) { return spe::MakeKddSim(spe::KddTask::kDosVsR2l, r, s); },
       {0.034, -1.0, -1.0, 0.108, 0.945, 0.999}},
      {"RecordLinkage", "GBDT10",
       [](spe::Rng& r, double s) { return spe::MakeRecordLinkageSim(r, s); },
       {0.988, -1.0, -1.0, 0.999, 1.000, 1.000}},
      {"Payment", "GBDT10",
       [](spe::Rng& r, double s) { return spe::MakePaymentSim(r, s); },
       {0.278, -1.0, -1.0, 0.676, 0.776, 0.944}},
  };
  // Record Linkage is numeric in the original too, but the paper only
  // reports RandUnder / Easy / Cascade / SPE there; we still run the
  // distance-based methods when the simulated features allow it.

  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  const double scale = 0.6 * spe::BenchScale();
  std::printf(
      "Table IV reproduction: simulated real-world datasets, %zu runs, "
      "scale %.2f\n",
      runs, scale);

  spe::TextTable table({"Dataset", "Model", "Metric", "RandUnder", "Clean",
                        "SMOTE", "Easy10", "Cascade10", "SPE10"});

  for (const Task& task : tasks) {
    // One aggregate per (method, metric).
    std::vector<std::optional<spe::AggregateScores>> per_method(methods.size());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      bool applicable = true;
      const spe::AggregateScores agg = spe::Repeat(
          [&](std::uint64_t seed) {
            spe::Rng rng(seed * 7919 + 17);
            const spe::Dataset data = task.make(rng, scale);
            const spe::TrainValTest parts =
                spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
            const auto result = RunMethodOnce(methods[m], task.classifier,
                                              parts.train, parts.test,
                                              /*n=*/10, seed);
            if (!result.has_value()) {
              applicable = false;
              return spe::ScoreSummary{};
            }
            return *result;
          },
          runs, /*base_seed=*/1);
      if (applicable) per_method[m] = agg;
    }

    const auto add_metric_row = [&](const std::string& metric,
                                    auto extract, bool with_paper) {
      std::vector<std::string> row = {task.dataset, task.classifier, metric};
      for (std::size_t m = 0; m < methods.size(); ++m) {
        std::optional<spe::MeanStd> cell;
        if (per_method[m].has_value()) cell = extract(*per_method[m]);
        row.push_back(
            Cell(cell, with_paper ? task.paper_aucprc[m] : -1.0));
      }
      table.AddRow(std::move(row));
    };
    add_metric_row("AUCPRC", [](const spe::AggregateScores& a) { return a.aucprc; },
                   true);
    add_metric_row("F1", [](const spe::AggregateScores& a) { return a.f1; },
                   false);
    add_metric_row("GM", [](const spe::AggregateScores& a) { return a.gmean; },
                   false);
    add_metric_row("MCC", [](const spe::AggregateScores& a) { return a.mcc; },
                   false);
    std::fflush(stdout);
  }
  table.Print(std::cout);
  return 0;
}
