// reload_latency — hot-reload cost and zero-disruption check for the
// lifecycle layer (BENCH_reload.json).
//
// Trains two SPE bundles, saves them as v3 artifacts, then hammers a
// BatchScorer from client threads while the main thread hot-swaps the
// active version back and forth through the ModelRegistry. Reports the
// off-thread reload cost (probe + load + kernel compile) and the
// activation swap cost separately, plus the two numbers that define the
// contract: dropped_requests (scoring errors during churn) and
// blended_responses (a response matching neither version's standalone
// output — a mid-batch swap would produce one). Both must be 0; the
// process exits nonzero otherwise.
//
//   reload_latency [--reloads N] [--clients C] [--out FILE]
//
// Writes the JSON report to stdout and to --out (default
// BENCH_reload.json in the working directory).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/io/model_io.h"
#include "spe/lifecycle/model_registry.h"
#include "spe/serve/batch_scorer.h"

namespace {

long FlagValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

double ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[idx];
}

std::string TrainAndSave(std::uint64_t seed, const spe::Dataset& train,
                         const char* name) {
  spe::SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  config.seed = seed;
  spe::SelfPacedEnsemble model(config);
  model.Fit(train);
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  spe::SaveModelBundleToFile(model, train.num_features(), path);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const long reloads = FlagValue(argc, argv, "--reloads", 40);
  const long clients = FlagValue(argc, argv, "--clients", 2);
  const std::string out_path =
      StringFlag(argc, argv, "--out", "BENCH_reload.json");

  spe::Rng rng(42);
  spe::CheckerboardConfig train_config;
  train_config.num_minority = 500;
  train_config.num_majority = 5000;
  const spe::Dataset train = spe::MakeCheckerboard(train_config, rng);

  std::fprintf(stderr, "training two SPE10 bundles on %s\n",
               train.Summary().c_str());
  const std::string path_a =
      TrainAndSave(1, train, "spe_bench_reload_a.model");
  const std::string path_b =
      TrainAndSave(2, train, "spe_bench_reload_b.model");

  auto registry = std::make_shared<spe::lifecycle::ModelRegistry>();
  auto first = registry->LoadFromFile(path_a);
  if (!first.ok()) {
    std::fprintf(stderr, "load failed: %s\n", first.error.c_str());
    return 1;
  }
  registry->Activate(first.version);

  // One probe row; the two versions' standalone outputs on it are the
  // only legal responses during the churn.
  const std::vector<double> row = {0.31, -0.62};
  spe::Dataset one(train.num_features());
  one.AddRow(row, 0);
  const double proba_a = first.version->model().PredictProba(one)[0];
  auto second = registry->LoadFromFile(path_b);
  if (!second.ok()) {
    std::fprintf(stderr, "load failed: %s\n", second.error.c_str());
    return 1;
  }
  const double proba_b = second.version->model().PredictProba(one)[0];

  spe::BatchScorerConfig config;
  config.num_workers = 2;
  config.max_batch_delay_us = 0;
  spe::BatchScorer scorer(registry, config);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> blended{0};
  std::vector<std::thread> pool;
  for (long c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const double p = scorer.Score(row);
          if (p != proba_a && p != proba_b) {
            blended.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          dropped.fetch_add(1, std::memory_order_relaxed);
        }
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<double> load_ms;
  std::vector<double> activate_us;
  load_ms.reserve(static_cast<std::size_t>(reloads));
  activate_us.reserve(static_cast<std::size_t>(reloads));
  const auto bench_t0 = std::chrono::steady_clock::now();
  for (long r = 0; r < reloads; ++r) {
    const std::string& path = (r % 2 == 0) ? path_b : path_a;
    const auto t0 = std::chrono::steady_clock::now();
    auto loaded = registry->LoadFromFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "reload %ld failed: %s\n", r,
                   loaded.error.c_str());
      return 1;
    }
    load_ms.push_back(ElapsedMs(t0));
    const auto t1 = std::chrono::steady_clock::now();
    const std::string error = registry->Activate(loaded.version);
    activate_us.push_back(ElapsedMs(t1) * 1000.0);
    if (!error.empty()) {
      std::fprintf(stderr, "activate %ld refused: %s\n", r, error.c_str());
      return 1;
    }
  }
  const double churn_s = ElapsedMs(bench_t0) / 1000.0;
  stop.store(true);
  for (std::thread& t : pool) t.join();
  scorer.Shutdown();

  const double rate =
      churn_s > 0 ? static_cast<double>(requests.load()) / churn_s : 0.0;
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"reload_latency\",\"reloads\":%ld,\"clients\":%ld,"
      "\"kernel\":\"%s\","
      "\"load_ms_p50\":%.2f,\"load_ms_p95\":%.2f,\"load_ms_max\":%.2f,"
      "\"activate_us_p50\":%.1f,\"activate_us_max\":%.1f,"
      "\"requests_total\":%llu,\"requests_per_sec\":%.0f,"
      "\"dropped_requests\":%llu,\"blended_responses\":%llu}",
      reloads, clients, registry->active()->kernel(),
      Percentile(load_ms, 0.5), Percentile(load_ms, 0.95),
      Percentile(load_ms, 1.0), Percentile(activate_us, 0.5),
      Percentile(activate_us, 1.0),
      static_cast<unsigned long long>(requests.load()), rate,
      static_cast<unsigned long long>(dropped.load()),
      static_cast<unsigned long long>(blended.load()));
  std::printf("%s\n", buf);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", buf);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    return 1;
  }
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
  return (dropped.load() == 0 && blended.load() == 0) ? 0 : 1;
}
