// Throughput micro-benchmarks (google-benchmark) for the library's hot
// paths: tree / GBDT fitting, SPE fitting, re-sampling, metric
// computation. These back the efficiency claims quantitatively at
// component level; the end-to-end timing shape lives in table5.

#include <benchmark/benchmark.h>

#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/knn.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/core/self_paced_sampler.h"
#include "spe/data/synthetic.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/ncr.h"
#include "spe/sampling/random_under.h"
#include "spe/sampling/smote.h"

namespace {

spe::Dataset ImbalancedBlobs(std::size_t majority, std::size_t minority,
                             std::uint64_t seed) {
  spe::TwoGaussiansConfig config;
  config.num_minority = minority;
  config.imbalance_ratio =
      static_cast<double>(majority) / static_cast<double>(minority);
  config.overlapped = true;
  spe::Rng rng(seed);
  return spe::MakeTwoGaussians(config, rng);
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset data = ImbalancedBlobs(n, n / 10, 1);
  for (auto _ : state) {
    spe::DecisionTree tree;
    tree.Fit(data);
    benchmark::DoNotOptimize(tree.NumNodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.num_rows()));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(2000)->Arg(8000);

void BM_GbdtFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset data = ImbalancedBlobs(n, n / 10, 2);
  spe::GbdtConfig config;
  config.boost_rounds = 10;
  for (auto _ : state) {
    spe::Gbdt gbdt(config);
    gbdt.Fit(data);
    benchmark::DoNotOptimize(gbdt.NumTrees());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.num_rows()));
}
BENCHMARK(BM_GbdtFit)->Arg(2000)->Arg(8000);

void BM_SpeFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset data = ImbalancedBlobs(n, n / 20, 3);
  spe::SelfPacedEnsembleConfig config;
  config.n_estimators = 10;
  for (auto _ : state) {
    spe::SelfPacedEnsemble spe_model(config);
    spe_model.Fit(data);
    benchmark::DoNotOptimize(spe_model.NumMembers());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.num_rows()));
}
BENCHMARK(BM_SpeFit)->Arg(2000)->Arg(8000);

void BM_SelfPacedUnderSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  spe::Rng rng(4);
  std::vector<double> hardness(n);
  for (double& h : hardness) h = rng.Uniform();
  for (auto _ : state) {
    const auto pick = spe::SelfPacedUnderSample(hardness, 0.3, 20, n / 50, rng);
    benchmark::DoNotOptimize(pick.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SelfPacedUnderSample)->Arg(10000)->Arg(100000);

// The O(n) vs O(n^2) re-sampling contrast behind Table V's time column.
void BM_RandomUnderResample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset data = ImbalancedBlobs(n, n / 50, 5);
  spe::RandomUnderSampler sampler;
  spe::Rng rng(6);
  for (auto _ : state) {
    const spe::Dataset out = sampler.Resample(data, rng);
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_RandomUnderResample)->Arg(2000)->Arg(8000);

void BM_NcrResample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset data = ImbalancedBlobs(n, n / 50, 7);
  spe::NcrSampler sampler;
  spe::Rng rng(8);
  for (auto _ : state) {
    const spe::Dataset out = sampler.Resample(data, rng);
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_NcrResample)->Arg(2000)->Arg(8000);

void BM_SmoteResample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset data = ImbalancedBlobs(n, n / 50, 9);
  spe::SmoteSampler sampler;
  spe::Rng rng(10);
  for (auto _ : state) {
    const spe::Dataset out = sampler.Resample(data, rng);
    benchmark::DoNotOptimize(out.num_rows());
  }
}
BENCHMARK(BM_SmoteResample)->Arg(2000)->Arg(8000);

void BM_KnnPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const spe::Dataset train = ImbalancedBlobs(n, n / 10, 11);
  const spe::Dataset test = ImbalancedBlobs(500, 50, 12);
  spe::Knn knn;
  knn.Fit(train);
  for (auto _ : state) {
    const auto probs = knn.PredictProba(test);
    benchmark::DoNotOptimize(probs.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(test.num_rows()));
}
BENCHMARK(BM_KnnPredict)->Arg(2000)->Arg(8000);

void BM_AucPrc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  spe::Rng rng(13);
  std::vector<int> labels(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = rng.Uniform() < 0.05 ? 1 : 0;
    scores[i] = rng.Uniform();
  }
  labels[0] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spe::AucPrc(labels, scores));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AucPrc)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
