// Reproduces Table V: AUCPRC of 12 re-sampling methods (plus ORG and
// SPE) x 5 classifiers on the simulated Credit Fraud dataset, together
// with the number of training samples each method leaves behind and its
// wall-clock re-sampling time.
//
// The timing column is the point of this table: distance-based cleaning
// (Clean / ENN / TomekLink / AllKNN / OSS) is O(n^2) while RandUnder /
// RandOver / SMOTE are (near-)linear, and SPE needs only n_estimators
// balanced subsets. Absolute seconds differ from the paper's i7-7700K;
// the orders of magnitude between rows are what must match.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "spe/classifiers/factory.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/eval/stopwatch.h"
#include "spe/eval/table.h"

namespace {

// Paper Table V (GBDT10 column + #sample + time) for shape reference.
struct PaperRow {
  double gbdt = -1.0;
  double samples = -1.0;
  double seconds = -1.0;
};
const std::map<std::string, PaperRow> kPaper = {
    {"ORG", {0.803, 170885, 0.0}},
    {"RandUnder", {0.511, 632, 0.07}},
    {"NearMiss", {0.050, 632, 2.06}},
    {"Clean", {0.810, 170680, 428.88}},
    {"ENN", {0.799, 170779, 423.86}},
    {"TomekLink", {0.814, 170865, 270.09}},
    {"AllKNN", {0.808, 170765, 1066.48}},
    {"OSS", {0.825, 163863, 240.95}},
    {"RandOver", {0.706, 341138, 0.14}},
    {"SMOTE", {0.672, 341138, 1.23}},
    {"ADASYN", {0.496, 341141, 1.87}},
    {"BorderSMOTE", {0.242, 341138, 1.89}},
    {"SMOTEENN", {0.665, 340831, 478.36}},
    {"SMOTETomek", {0.682, 341138, 293.75}},
    {"SPE", {0.849, 6320, 1.16}},
};

}  // namespace

int main() {
  const std::vector<std::string> classifiers = {"LR", "KNN", "DT",
                                                "AdaBoost10", "GBDT10"};
  std::vector<std::string> rows = {"ORG"};
  for (const std::string& s : spe::KnownSamplerNames()) rows.push_back(s);
  rows.push_back("SPE");

  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  const double scale = 0.5 * spe::BenchScale();
  std::printf(
      "Table V reproduction: re-sampling methods on simulated Credit "
      "Fraud, %zu runs, scale %.2f\n",
      runs, scale);

  // Pre-generate per-run train/test splits so every method sees the
  // same data in the same run.
  std::vector<spe::Dataset> trains;
  std::vector<spe::Dataset> tests;
  for (std::size_t r = 0; r < runs; ++r) {
    spe::Rng rng(100 + r);
    const spe::Dataset data = spe::MakeCreditFraudSim(rng, scale);
    spe::TrainValTest parts = spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
    trains.push_back(std::move(parts.train));
    tests.push_back(std::move(parts.test));
  }

  spe::TextTable table({"Method", "LR", "KNN", "DT", "AdaBoost10", "GBDT10",
                        "#Sample", "Time(s)"});

  for (const std::string& method : rows) {
    // Re-sample once per run, reuse across the five classifiers (the
    // paper's protocol: the time column is classifier-independent).
    std::map<std::string, std::vector<double>> auc;
    std::vector<double> sample_counts;
    std::vector<double> seconds;
    for (std::size_t r = 0; r < runs; ++r) {
      spe::Dataset resampled(trains[r].num_features());
      if (method == "ORG") {
        resampled = trains[r];
        sample_counts.push_back(static_cast<double>(resampled.num_rows()));
        seconds.push_back(0.0);
      } else if (method == "SPE") {
        // SPE is not a re-sampler; its "#Sample" is n subsets of 2|P|
        // and its time is the subset-selection cost inside Fit. Handled
        // below per classifier; record bookkeeping using the DT base.
        sample_counts.push_back(
            static_cast<double>(10 * 2 * trains[r].CountPositives()));
      } else {
        const auto sampler = spe::MakeSampler(method);
        spe::Rng rng(200 + r);
        spe::Stopwatch watch;
        resampled = sampler->Resample(trains[r], rng);
        seconds.push_back(watch.Seconds());
        sample_counts.push_back(static_cast<double>(resampled.num_rows()));
      }

      for (const std::string& classifier : classifiers) {
        spe::ScoreSummary s;
        if (method == "SPE") {
          spe::SelfPacedEnsembleConfig config;
          config.n_estimators = 10;
          config.seed = 300 + r;
          spe::SelfPacedEnsemble model(config,
                                       spe::MakeClassifier(classifier, r));
          spe::Stopwatch watch;
          model.Fit(trains[r]);
          if (classifier == "DT") seconds.push_back(watch.Seconds());
          s = spe::Evaluate(tests[r].labels(), model.PredictProba(tests[r]));
        } else {
          auto model = spe::MakeClassifier(classifier, 300 + r);
          model->Fit(resampled);
          s = spe::Evaluate(tests[r].labels(), model->PredictProba(tests[r]));
        }
        auc[classifier].push_back(s.aucprc);
      }
    }

    std::vector<std::string> row = {method};
    for (const std::string& classifier : classifiers) {
      row.push_back(spe::FormatMeanStd(spe::Aggregate(auc[classifier])));
    }
    // CNN / IHT are extension rows with no paper counterpart.
    const auto paper_it = kPaper.find(method);
    if (paper_it != kPaper.end()) {
      row.push_back(spe::FormatNumber(spe::Mean(sample_counts), 0) +
                    " (paper=" + spe::FormatNumber(paper_it->second.samples, 0) +
                    ")");
      row.push_back(spe::FormatNumber(spe::Mean(seconds), 3) + " (paper=" +
                    spe::FormatNumber(paper_it->second.seconds, 2) + ")");
    } else {
      row.push_back(spe::FormatNumber(spe::Mean(sample_counts), 0));
      row.push_back(spe::FormatNumber(spe::Mean(seconds), 3));
    }
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  std::printf("(paper= references are the paper's GBDT-era #Sample / i7-7700K"
              " seconds; compare orders of magnitude, not absolutes)\n");
  table.Print(std::cout);
  return 0;
}
