#ifndef SPE_BENCH_BENCH_UTIL_H_
#define SPE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/factory.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/dataset.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/sampler_factory.h"

namespace spe {
namespace bench {

/// Builds one of the paper's "imbalance learning method x base
/// classifier" pipelines as a ready-to-fit classifier:
///  - "ORG"                      : the base classifier on the raw data
///  - sampler names ("RandUnder", "Clean", "SMOTE", ...): handled by
///    RunMethodOnce below (re-sample, then fit the base classifier)
///  - "Easy" / "UnderBagging"    : UnderBagging over the base (the two
///    coincide for a non-AdaBoost base, §VI-C.2)
///  - "Cascade"                  : BalanceCascade over the base
///  - "SPE"                      : Self-paced Ensemble over the base
/// `n` is the ensemble size (ignored for plain samplers).
inline std::unique_ptr<Classifier> MakeEnsembleMethod(
    const std::string& method, const std::string& classifier, std::size_t n,
    std::uint64_t seed) {
  if (method == "Easy" || method == "UnderBagging") {
    UnderBaggingConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<UnderBagging>(config,
                                          MakeClassifier(classifier, seed));
  }
  if (method == "Cascade") {
    BalanceCascadeConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<BalanceCascade>(config,
                                            MakeClassifier(classifier, seed));
  }
  if (method == "SPE") {
    SelfPacedEnsembleConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<SelfPacedEnsemble>(config,
                                               MakeClassifier(classifier, seed));
  }
  return nullptr;
}

/// Runs one (method, classifier) combination once: re-sample + fit for
/// data-level methods, direct fit for ensemble methods, plain fit for
/// "ORG". Returns nullopt when the method is inapplicable to the data
/// (distance-based method on categorical features) — the "- -" cells of
/// Table IV.
inline std::optional<ScoreSummary> RunMethodOnce(const std::string& method,
                                                 const std::string& classifier,
                                                 const Dataset& train,
                                                 const Dataset& test,
                                                 std::size_t n,
                                                 std::uint64_t seed) {
  if (auto model = MakeEnsembleMethod(method, classifier, n, seed)) {
    model->Fit(train);
    return Evaluate(test.labels(), model->PredictProba(test));
  }
  auto base = MakeClassifier(classifier, seed);
  if (method == "ORG") {
    base->Fit(train);
    return Evaluate(test.labels(), base->PredictProba(test));
  }
  const auto sampler = MakeSampler(method);
  if (sampler->RequiresNumericalFeatures() && train.HasCategoricalFeatures()) {
    return std::nullopt;
  }
  Rng rng(seed);
  std::vector<std::size_t> keep;
  if (sampler->SelectIndices(train, rng, &keep)) {
    // Pure under-sampler: fit through an indexed view — the resampled
    // "copy" is just this keep-list, no feature bytes move.
    base->Fit(DatasetView(train, keep));
  } else {
    const Dataset resampled = sampler->Resample(train, rng);
    base->Fit(resampled);
  }
  return Evaluate(test.labels(), base->PredictProba(test));
}

}  // namespace bench
}  // namespace spe

#endif  // SPE_BENCH_BENCH_UTIL_H_
