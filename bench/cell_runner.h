#ifndef SPE_BENCH_CELL_RUNNER_H_
#define SPE_BENCH_CELL_RUNNER_H_

// Shared parallel cell-runner for the table / figure harnesses. A paper
// table is a grid of independent (method x dataset x seed) cells — CLIMB
// -style benchmark grids run to hundreds of them — so the harnesses
// evaluate cells concurrently with ParallelForTasks and collect results
// into a vector indexed like the grid; printing happens afterwards in
// the usual fixed order no matter how cells interleaved.
//
// Determinism: each cell derives its base seed with CellSeed, a
// SplitMix64 hash of (base_seed, cell index). The seed depends only on
// the grid layout, never on scheduling, so a table is reproducible for
// any SPE_THREADS — and cells are decorrelated instead of all replaying
// seeds 1..runs.

#include <cstdint>
#include <cstddef>
#include <vector>

#include "spe/common/parallel.h"

namespace spe {
namespace bench {

/// Deterministic, scheduling-independent per-cell seed.
inline std::uint64_t CellSeed(std::uint64_t base_seed, std::size_t cell) {
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (cell + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Evaluates fn(cell, CellSeed(base_seed, cell)) for every cell in
/// [0, num_cells), cells in parallel, and returns results in cell order.
/// fn must not touch shared mutable state (datasets may be shared
/// read-only); timing-sensitive harnesses should keep their stopwatch
/// cells serial instead of using this.
template <typename R, typename Fn>
std::vector<R> RunCells(std::size_t num_cells, std::uint64_t base_seed,
                        Fn&& fn) {
  std::vector<R> results(num_cells);
  ParallelForTasks(0, num_cells, [&](std::size_t cell) {
    results[cell] = fn(cell, CellSeed(base_seed, cell));
  });
  return results;
}

}  // namespace bench
}  // namespace spe

#endif  // SPE_BENCH_CELL_RUNNER_H_
