// Reproduces Fig. 6: what each imbalance-learning method actually trains
// on, and what its final model predicts, on the checkerboard dataset.
//
// For Clean and SMOTE we render the (single) re-sampled training set;
// for the ensembles (Easy, Cascade, SPE) the training subsets of their
// 5th and 10th members. Below each training set we render the fitted
// model's predicted positive probability over the plane.
//
// Rendering: coarse ASCII grids on stdout, plus real grayscale PGM
// images written to $SPE_FIG_DIR (default: <tmp>/spe_fig6) for direct
// visual comparison against the paper's panels.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "spe/io/image.h"

#include "spe/classifiers/decision_tree.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/data/synthetic.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/under_bagging.h"
#include "spe/metrics/metrics.h"
#include "spe/sampling/ncr.h"
#include "spe/sampling/smote.h"

namespace {

constexpr int kGrid = 30;
constexpr double kLo = -1.0;
constexpr double kHi = 4.0;

// Directory the PGM panels go to; created on first use.
const std::string& FigureDir() {
  static const std::string dir = [] {
    std::string d;
    if (const char* env = std::getenv("SPE_FIG_DIR")) {
      d = env;
    } else {
      d = (std::filesystem::temp_directory_path() / "spe_fig6").string();
    }
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

std::string Slugify(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  return slug;
}

// ASCII density map of a training set: majority '#', minority '+',
// both 'o'.
void RenderTrainingSet(const std::string& title, const spe::DatasetView& data) {
  std::vector<int> majority(kGrid * kGrid, 0);
  std::vector<int> minority(kGrid * kGrid, 0);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const int gx = static_cast<int>((data.At(i, 0) - kLo) / (kHi - kLo) * kGrid);
    const int gy = static_cast<int>((data.At(i, 1) - kLo) / (kHi - kLo) * kGrid);
    if (gx < 0 || gx >= kGrid || gy < 0 || gy >= kGrid) continue;
    (data.Label(i) == 1 ? minority : majority)[gy * kGrid + gx] += 1;
  }
  const std::string pgm =
      FigureDir() + "/train_" + Slugify(title) + ".pgm";
  spe::RenderScatter(data, spe::ViewPort{kLo, kHi, kLo, kHi}, 240).SavePgm(pgm);
  std::printf("--- training set: %s (%zu rows, %zu minority) [%s]\n",
              title.c_str(), data.num_rows(), data.CountPositives(),
              pgm.c_str());
  for (int y = kGrid - 1; y >= 0; --y) {
    for (int x = 0; x < kGrid; ++x) {
      const bool has_majority = majority[y * kGrid + x] > 0;
      const bool has_minority = minority[y * kGrid + x] > 0;
      std::putchar(has_majority && has_minority ? 'o'
                   : has_minority              ? '+'
                   : has_majority              ? '#'
                                               : ' ');
    }
    std::putchar('\n');
  }
}

void RenderPrediction(const std::string& title, const spe::Classifier& model) {
  static const char kShades[] = " .:-=+*#%@";
  const std::string pgm =
      FigureDir() + "/surface_" + Slugify(title) + ".pgm";
  spe::RenderPredictionSurface(model, spe::ViewPort{kLo, kHi, kLo, kHi}, 240)
      .SavePgm(pgm);
  std::printf("--- prediction surface: %s (darker = more positive) [%s]\n",
              title.c_str(), pgm.c_str());
  for (int y = kGrid - 1; y >= 0; --y) {
    for (int x = 0; x < kGrid; ++x) {
      const double fx = kLo + (x + 0.5) / kGrid * (kHi - kLo);
      const double fy = kLo + (y + 0.5) / kGrid * (kHi - kLo);
      const double p = model.PredictRow(std::vector<double>{fx, fy});
      std::putchar(kShades[static_cast<int>(p * 9.999)]);
    }
    std::putchar('\n');
  }
}

std::unique_ptr<spe::Classifier> Tree() {
  spe::DecisionTreeConfig config;
  config.max_depth = 10;
  return std::make_unique<spe::DecisionTree>(config);
}

}  // namespace

int main() {
  std::printf("Fig. 6 reproduction: training sets and prediction surfaces on "
              "the checkerboard\n\n");
  spe::Rng rng(6);
  spe::CheckerboardConfig config;
  const spe::Dataset train = spe::MakeCheckerboard(config, rng);
  const spe::Dataset test = spe::MakeCheckerboard(config, rng);

  // ---- Clean (NCR): one cleaned-but-imbalanced training set.
  {
    spe::Rng sampler_rng(1);
    const spe::Dataset cleaned = spe::NcrSampler().Resample(train, sampler_rng);
    RenderTrainingSet("Clean (NCR)", cleaned);
    auto tree = Tree();
    tree->Fit(cleaned);
    RenderPrediction("Clean + DT", *tree);
    std::printf("AUCPRC on fresh test: %.3f\n\n",
                spe::AucPrc(test.labels(), tree->PredictProba(test)));
  }

  // ---- SMOTE: over-generalized minority under overlap.
  {
    spe::Rng sampler_rng(2);
    const spe::Dataset oversampled =
        spe::SmoteSampler().Resample(train, sampler_rng);
    RenderTrainingSet("SMOTE", oversampled);
    auto tree = Tree();
    tree->Fit(oversampled);
    RenderPrediction("SMOTE + DT", *tree);
    std::printf("AUCPRC on fresh test: %.3f\n\n",
                spe::AucPrc(test.labels(), tree->PredictProba(test)));
  }

  // ---- Ensembles: show the 5th and 10th member's training subset.
  const auto run_ensemble = [&](const std::string& name, auto& model) {
    model.set_iteration_callback([&](const spe::IterationInfo& info) {
      if (info.iteration == 5 || info.iteration == 10) {
        RenderTrainingSet(name + ", member " + std::to_string(info.iteration),
                          info.training_subset);
      }
    });
    model.Fit(train);
    RenderPrediction(name + " (final ensemble)", model);
    std::printf("AUCPRC on fresh test: %.3f\n\n",
                spe::AucPrc(test.labels(), model.PredictProba(test)));
  };

  {
    spe::UnderBaggingConfig easy_config;
    easy_config.n_estimators = 10;
    easy_config.seed = 3;
    spe::UnderBagging easy(easy_config, Tree());
    run_ensemble("Easy (RandUnder bags)", easy);
  }
  {
    spe::BalanceCascadeConfig cascade_config;
    cascade_config.n_estimators = 10;
    cascade_config.seed = 4;
    spe::BalanceCascade cascade(cascade_config, Tree());
    run_ensemble("Cascade", cascade);
  }
  {
    spe::SelfPacedEnsembleConfig spe_config;
    spe_config.n_estimators = 10;
    spe_config.seed = 5;
    spe::SelfPacedEnsemble spe_model(spe_config, Tree());
    run_ensemble("SPE", spe_model);
  }

  std::printf(
      "expected shape (paper Fig. 6): Clean keeps all trivial majority; "
      "SMOTE\nsmears the minority clusters; Cascade's member-10 subset is "
      "dominated by\noutliers; SPE's member-10 subset keeps borderline "
      "points plus a skeleton of\neasy majority, and its prediction surface "
      "recovers the checkerboard best.\n");
  return 0;
}
