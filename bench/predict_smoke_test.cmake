# Smoke check of the predict benchmark, run by ctest: a tiny
# configuration must finish quickly, exit 0, and report
# "identical": true — i.e. the flat kernel reproduced the reference
# probabilities byte-for-byte on every workload, at 1 thread and at the
# machine default. Driven with `cmake -P` so it needs no shell.

foreach(var PREDICT_BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be passed with -D${var}=...")
  endif()
endforeach()

set(dir ${WORK_DIR}/predict_smoke_test)
file(MAKE_DIRECTORY ${dir})

execute_process(
  COMMAND ${PREDICT_BENCH} --rows 2000 --train-rows 1100 --passes 1
          --out ${dir}/BENCH_predict.json
  WORKING_DIRECTORY ${dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "predict_throughput failed (${rc}): ${out} ${err}")
endif()

file(READ ${dir}/BENCH_predict.json report)
if(NOT report MATCHES "\"identical\":true")
  message(FATAL_ERROR "flat kernel diverged from reference: ${report}")
endif()
# Every workload here is tree-backed, so all of them must actually have
# compiled — a silent fallback would make the identity check vacuous.
if(report MATCHES "\"kernel\":\"reference\"")
  message(FATAL_ERROR "a workload fell back to the reference path: ${report}")
endif()
message(STATUS "predict smoke OK: flat kernel bit-identical")
