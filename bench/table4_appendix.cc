// Extended Table IV (the paper's footnote 4 points to additional results
// "on more datasets and classifiers"): the full cross product of the six
// imbalance methods with five classifier families on the numeric
// simulated datasets, AUCPRC only.
//
// Expected shape: SPE's column dominates or ties every row; ensemble
// methods beat plain re-sampling regardless of base model; SMOTE/Clean
// interact badly with specific classifiers (the model-capacity blindness
// of model-agnostic re-sampling, §VI-A.2).

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"
#include "spe/eval/table.h"

int main() {
  const std::vector<std::string> methods = {"RandUnder", "Clean",   "SMOTE",
                                            "Easy",      "Cascade", "SPE"};
  const std::vector<std::string> classifiers = {"LR", "GNB", "DT", "AdaBoost10",
                                                "GBDT10"};
  const std::vector<std::pair<
      std::string, std::function<spe::Dataset(spe::Rng&, double)>>>
      datasets = {
          {"CreditFraud",
           [](spe::Rng& r, double s) { return spe::MakeCreditFraudSim(r, s); }},
          {"RecordLinkage",
           [](spe::Rng& r, double s) { return spe::MakeRecordLinkageSim(r, s); }},
      };

  const std::size_t runs = std::min<std::size_t>(spe::BenchRuns(), 3);
  const double scale = 0.4 * spe::BenchScale();
  std::printf(
      "Extended Table IV: full method x classifier cross product "
      "(AUCPRC, %zu runs, scale %.2f)\n",
      runs, scale);

  spe::TextTable table({"Dataset", "Model", "RandUnder", "Clean", "SMOTE",
                        "Easy10", "Cascade10", "SPE10"});
  for (const auto& [dataset_name, make] : datasets) {
    for (const std::string& classifier : classifiers) {
      std::vector<std::string> row = {dataset_name, classifier};
      for (const std::string& method : methods) {
        const spe::AggregateScores agg = spe::Repeat(
            [&, make = make](std::uint64_t seed) {
              spe::Rng rng(seed * 104729 + 11);
              const spe::Dataset data = make(rng, scale);
              const spe::TrainValTest parts =
                  spe::StratifiedSplit(data, 0.6, 0.2, 0.2, rng);
              return *spe::bench::RunMethodOnce(method, classifier,
                                                parts.train, parts.test,
                                                /*n=*/10, seed);
            },
            runs, /*base_seed=*/1);
        row.push_back(spe::FormatMeanStd(agg.aucprc));
      }
      table.AddRow(std::move(row));
      std::fflush(stdout);
    }
  }
  table.Print(std::cout);
  return 0;
}
