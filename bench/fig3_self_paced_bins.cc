// Reproduces Fig. 3: how the self-paced factor alpha reshapes the
// under-sampled majority subset, on the (simulated) Payment dataset.
//
// For each subfigure we print, per hardness bin (k = 20): the population
// and the total hardness contribution — for (a) the original majority
// set and (b)-(d) subsets selected with alpha = 0, alpha = 0.1 and
// alpha -> inf. Counts span orders of magnitude (the paper's log-scale
// y-axis), so read ratios, not differences.

#include <cstdio>
#include <limits>
#include <vector>

#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/core/hardness.h"
#include "spe/core/self_paced_sampler.h"
#include "spe/data/simulated.h"
#include "spe/data/split.h"
#include "spe/eval/experiment.h"

namespace {

constexpr std::size_t kBins = 20;

void PrintBins(const char* title, std::span<const double> hardness) {
  const spe::HardnessBins bins = spe::ComputeHardnessBins(hardness, kBins);
  std::printf("%s\n  population  :", title);
  for (std::size_t b = 0; b < kBins; ++b) std::printf(" %6zu", bins.population[b]);
  std::printf("\n  contribution:");
  for (std::size_t b = 0; b < kBins; ++b) {
    std::printf(" %6.1f", bins.contribution[b]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 3 reproduction: self-paced under-sampling bins "
              "(simulated Payment, GBDT ensemble, k=20)\n\n");
  spe::Rng rng(7);
  const spe::Dataset data = spe::MakePaymentSim(rng, 0.5 * spe::BenchScale());
  const spe::TrainTest split = spe::StratifiedSplit2(data, 0.8, rng);

  // A partially trained ensemble supplies the hardness estimates, like
  // the mid-training snapshots in the paper.
  spe::GbdtConfig config;
  config.boost_rounds = 10;
  spe::Gbdt model(config);
  spe::Rng subset_rng(8);
  {
    // Train on a balanced subset as SPE's bootstrap iteration does.
    const auto pos = split.train.PositiveIndices();
    const auto neg = split.train.NegativeIndices();
    std::vector<std::size_t> rows = pos;
    for (std::size_t i :
         subset_rng.SampleWithoutReplacement(neg.size(), pos.size())) {
      rows.push_back(neg[i]);
    }
    model.Fit(split.train.Subset(rows));
  }

  const auto neg = split.train.NegativeIndices();
  const spe::Dataset majority = split.train.Subset(neg);
  const std::vector<double> probs = model.PredictProba(majority);
  const spe::HardnessFn fn = spe::MakeHardness(spe::HardnessKind::kAbsoluteError);
  std::vector<double> hardness(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) hardness[i] = fn(probs[i], 0);

  PrintBins("(a) original majority set N", hardness);

  const std::size_t target = split.train.CountPositives();
  const struct {
    const char* title;
    double alpha;
  } settings[] = {
      {"(b) alpha = 0 (pure hardness harmonize)", 0.0},
      {"(c) alpha = 0.1", 0.1},
      {"(d) alpha -> inf (uniform over bins)",
       std::numeric_limits<double>::infinity()},
  };
  for (const auto& s : settings) {
    spe::Rng pick_rng(9);
    const std::vector<std::size_t> pick =
        spe::SelfPacedUnderSample(hardness, s.alpha, kBins, target, pick_rng);
    std::vector<double> subset_hardness;
    subset_hardness.reserve(pick.size());
    for (std::size_t i : pick) subset_hardness.push_back(hardness[i]);
    PrintBins(s.title, subset_hardness);
  }

  std::printf(
      "\nexpected shape (paper Fig. 3): (a) population collapses toward "
      "the trivial\nbins while contribution is spread; (b) contribution "
      "roughly equal per bin;\n(c) trivial-bin population shrinks; (d) "
      "population near-uniform across\nnon-empty bins with a surviving "
      "skeleton of trivial samples.\n");
  return 0;
}
