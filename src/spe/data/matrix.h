#ifndef SPE_DATA_MATRIX_H_
#define SPE_DATA_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "spe/common/check.h"

namespace spe {

/// How a feature column should be interpreted by distance computations
/// and split finding. Categorical features are stored as small integer
/// codes; the library never assumes an ordering carries meaning for them
/// (distance-based re-samplers refuse categorical data, mirroring the
/// paper's point that k-NN methods are inapplicable there).
enum class FeatureKind { kNumerical, kCategorical };

/// Copy-traffic accounting for the data layer (docs/performance.md,
/// "Data layout"). Two deliberately separate meters:
///
///  - materialize: dataset-scale copies — rows landing in owned storage
///    (AddRow/Append, Subset/Materialize, whole-matrix copies, scaled
///    materializations). This is the number the columnar refactor
///    drives down and bench/data_pipeline guards.
///  - scratch: transient gathers into reused fixed-size buffers
///    (CopyRowTo, kernel block staging). Bounded by O(block), reused
///    across calls, and therefore not "copy blow-up" — but still worth
///    seeing, so it is metered apart instead of hidden.
///
/// Counters are process-global relaxed atomics: cheap enough to stay on
/// in release builds, precise enough for before/after bench deltas.
struct DataCopyStats {
  std::uint64_t materialize_bytes = 0;
  std::uint64_t materialize_ops = 0;
  std::uint64_t scratch_bytes = 0;
};
DataCopyStats GetDataCopyStats();
void AddMaterializeBytes(std::size_t bytes);
void AddScratchBytes(std::size_t bytes);

namespace internal {
/// Owner of an mmap'ed sidecar region; columns of a mapped DataMatrix
/// are spans into this block, which stays alive (shared_ptr) as long as
/// any matrix references it.
class MappedBlock {
 public:
  MappedBlock(void* addr, std::size_t length) : addr_(addr), length_(length) {}
  MappedBlock(const MappedBlock&) = delete;
  MappedBlock& operator=(const MappedBlock&) = delete;
  ~MappedBlock();
  const void* data() const { return addr_; }
  std::size_t length() const { return length_; }

 private:
  void* addr_;
  std::size_t length_;
};
}  // namespace internal

/// Column-major (structure-of-arrays) storage for a labelled feature
/// matrix: one contiguous buffer per feature, plus labels and feature
/// kinds. This is the owning backbone of spe::Dataset and the parent
/// type every zero-copy view refers to.
///
/// Why columns: every whole-dataset pass in this library is per-feature
/// (binner quantiles, scaler moments, split finding sorts one feature at
/// a time), so a feature slice should be one contiguous read — and the
/// resamplers, per the paper's own premise that SPE needs only
/// index-based undersampling, need row *indices*, not row copies.
///
/// Storage is either owned (growable per-column vectors) or mapped
/// (read-only spans into an mmap'ed sidecar; see data/mmap_cache.h).
/// Mutating a mapped matrix first detaches it into owned storage — a
/// counted materialization — so value semantics are preserved either
/// way. Labels are always owned: they are 4 bytes/row against 8·d for
/// features, and keeping labels() a plain vector spares every metric
/// signature from churn.
///
/// Structural mutations (AddRow/Append/TruncateRows) bump a version
/// counter; views snapshot it at construction and refuse to be read
/// after the parent moved on (see IndexedView::CheckAlive).
class DataMatrix {
 public:
  DataMatrix() = default;
  explicit DataMatrix(std::size_t num_features)
      : num_features_(num_features),
        cols_(num_features),
        kinds_(num_features, FeatureKind::kNumerical) {}

  DataMatrix(const DataMatrix& other);
  DataMatrix& operator=(const DataMatrix& other);
  DataMatrix(DataMatrix&&) = default;
  DataMatrix& operator=(DataMatrix&&) = default;

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const { return num_features_; }
  bool mapped() const { return mapping_ != nullptr; }
  std::uint64_t version() const { return version_; }

  double At(std::size_t row, std::size_t col) const {
    return ColumnData(col)[row];
  }
  void Set(std::size_t row, std::size_t col, double value);

  /// Contiguous per-feature slice — the zero-copy currency feeding the
  /// binner, the scaler and split finding.
  std::span<const double> Column(std::size_t col) const {
    return {ColumnData(col), num_rows_};
  }

  int Label(std::size_t row) const { return labels_[row]; }
  void SetLabel(std::size_t row, int label) { labels_[row] = label; }
  const std::vector<int>& labels() const { return labels_; }

  FeatureKind feature_kind(std::size_t col) const { return kinds_[col]; }
  void set_feature_kind(std::size_t col, FeatureKind kind) { kinds_[col] = kind; }
  const std::vector<FeatureKind>& kinds() const { return kinds_; }

  void Reserve(std::size_t rows);
  void AddRow(std::span<const double> features, int label);
  void Append(const DataMatrix& other);
  void TruncateRows(std::size_t rows);

  /// Gathers row `row` into `out` (size num_features). Scratch traffic.
  void CopyRowTo(std::size_t row, std::span<double> out) const;

  /// Adopts an mmap'ed region: column c is `columns[c]`, all of equal
  /// length, kept alive by `block`. Labels are copied (owned).
  void AdoptMapped(std::shared_ptr<const internal::MappedBlock> block,
                   std::vector<std::span<const double>> columns,
                   std::vector<int> labels, std::vector<FeatureKind> kinds);

 private:
  const double* ColumnData(std::size_t col) const {
    return mapping_ != nullptr ? mapped_cols_[col].data() : cols_[col].data();
  }
  /// Copies mapped storage into owned vectors so mutation can proceed.
  void DetachFromMapping();

  std::size_t num_features_ = 0;
  std::size_t num_rows_ = 0;
  std::vector<std::vector<double>> cols_;  // owned mode
  std::vector<int> labels_;
  std::vector<FeatureKind> kinds_;
  std::uint64_t version_ = 0;

  // Mapped mode: spans into `mapping_` replace cols_.
  std::shared_ptr<const internal::MappedBlock> mapping_;
  std::vector<std::span<const double>> mapped_cols_;
};

}  // namespace spe

#endif  // SPE_DATA_MATRIX_H_
