#include "spe/data/simulated.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spe/common/check.h"

namespace spe {
namespace {

std::size_t Scaled(std::size_t base, double scale) {
  const auto n = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return std::max<std::size_t>(n, 1);
}

// Log-normal draw, handy for transaction amounts.
double LogNormal(Rng& rng, double mu, double sigma) {
  return std::exp(rng.Gaussian(mu, sigma));
}

// Draws an index from an explicit discrete distribution.
std::size_t Categorical(Rng& rng, const std::vector<double>& probs) {
  double u = rng.Uniform();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0.0) return i;
  }
  return probs.size() - 1;
}

}  // namespace

Dataset MakeCreditFraudSim(Rng& rng, double scale) {
  // 30 numerical features like the original PCA-transformed dataset:
  //  - 10 informative dimensions where fraud is shifted,
  //  -  5 redundant dimensions (linear combinations + noise),
  //  - 15 pure-noise dimensions.
  // 15% of frauds are drawn indistinguishably from the legit cloud so the
  // minority class has a noisy fringe (the overlap that breaks SMOTE and
  // that BalanceCascade overfits, per §VI).
  constexpr std::size_t kFeatures = 30;
  constexpr std::size_t kInformative = 10;
  constexpr std::size_t kRedundant = 5;
  const std::size_t num_majority = Scaled(24000, scale);
  const std::size_t num_minority = Scaled(160, scale);

  Dataset data(kFeatures);
  data.Reserve(num_majority + num_minority);
  std::vector<double> row(kFeatures);

  auto fill_redundant_and_noise = [&](std::vector<double>& r) {
    for (std::size_t j = 0; j < kRedundant; ++j) {
      r[kInformative + j] =
          0.6 * r[j] - 0.4 * r[j + 1] + rng.Gaussian(0.0, 0.3);
    }
    for (std::size_t j = kInformative + kRedundant; j < kFeatures; ++j) {
      r[j] = rng.Gaussian();
    }
  };

  // Legit transactions: two sub-populations (e.g. small daytime payments
  // vs larger transfers) so the majority manifold is not a single blob,
  // plus a 0.6% sliver of fraud-patterned-but-legitimate rows (disputed
  // charges, merchant anomalies). Real transaction logs always carry such
  // majority-side outliers; they are what BalanceCascade's
  // keep-the-hardest pool fills up with in late iterations.
  for (std::size_t i = 0; i < num_majority; ++i) {
    const bool outlier = rng.Uniform() < 0.0015;
    const bool bulk = rng.Uniform() < 0.7;
    for (std::size_t j = 0; j < kInformative; ++j) {
      if (outlier) {
        const double shift = (j % 2 == 0) ? 1.3 : -1.1;
        row[j] = rng.Gaussian(shift, 1.0);
      } else {
        row[j] = bulk ? rng.Gaussian(0.0, 1.0) : rng.Gaussian(0.8, 1.2);
      }
    }
    fill_redundant_and_noise(row);
    data.AddRow(row, 0);
  }

  // Frauds: 75% shifted along the informative subspace (a real but
  // heavily overlapping ~1-sigma separation), 25% noise frauds that look
  // exactly like legit traffic. The noisy fringe is what separates
  // hardness-aware under-sampling from BalanceCascade's keep-the-hardest
  // rule (§VI-A.3): late Cascade iterations chase these unlearnable
  // points.
  for (std::size_t i = 0; i < num_minority; ++i) {
    const bool noise_fraud = rng.Uniform() < 0.2;
    for (std::size_t j = 0; j < kInformative; ++j) {
      if (noise_fraud) {
        row[j] = rng.Gaussian(0.0, 1.0);
      } else {
        const double shift = (j % 2 == 0) ? 1.3 : -1.1;
        row[j] = rng.Gaussian(shift, 1.0);
      }
    }
    fill_redundant_and_noise(row);
    data.AddRow(row, 1);
  }
  return data;
}

Dataset MakePaymentSim(Rng& rng, double scale) {
  // 11 features modelled after the PaySim schema:
  //  0 type (categorical 0..4)      6 error_balance_orig
  //  1 amount (log-normal)          7 error_balance_dest
  //  2 old_balance_orig             8 hour of day (integer 0..23)
  //  3 new_balance_orig             9 dest_type (categorical 0..2)
  //  4 old_balance_dest            10 txn_count_24h (integer)
  //  5 new_balance_dest
  // Fraud exists only for types 1 (TRANSFER-like) and 3 (CASH_OUT-like)
  // and tends to drain the origin account (new_balance_orig == 0), which
  // gives GBDT a learnable but noisy signal.
  constexpr std::size_t kFeatures = 11;
  const std::size_t num_majority = Scaled(45000, scale);
  const std::size_t num_minority = Scaled(150, scale);

  Dataset data(kFeatures);
  data.set_feature_kind(0, FeatureKind::kCategorical);
  data.set_feature_kind(9, FeatureKind::kCategorical);
  data.Reserve(num_majority + num_minority);
  std::vector<double> row(kFeatures);

  auto make_row = [&](bool fraud) {
    const std::size_t type =
        fraud ? (rng.Uniform() < 0.55 ? 1 : 3)
              : Categorical(rng, {0.35, 0.08, 0.22, 0.2, 0.15});
    const double amount = fraud ? LogNormal(rng, 6.2, 1.1) : LogNormal(rng, 4.5, 1.4);
    const double old_orig = fraud ? amount * rng.Uniform(0.9, 1.3)
                                  : LogNormal(rng, 5.0, 1.6);
    // Frauds usually empty the account; 25% leave residue (noise overlap).
    double new_orig = std::max(0.0, old_orig - amount);
    if (fraud && rng.Uniform() < 0.75) new_orig = 0.0;
    const double old_dest = LogNormal(rng, 5.5, 1.8);
    const double new_dest = fraud && rng.Uniform() < 0.5
                                ? old_dest  // mule accounts often report no change
                                : old_dest + amount * rng.Uniform(0.8, 1.0);
    row[0] = static_cast<double>(type);
    row[1] = amount;
    row[2] = old_orig;
    row[3] = new_orig;
    row[4] = old_dest;
    row[5] = new_dest;
    row[6] = old_orig - amount - new_orig + rng.Gaussian(0.0, 5.0);
    row[7] = old_dest + amount - new_dest + rng.Gaussian(0.0, 5.0);
    row[8] = fraud ? static_cast<double>(rng.Index(6))  // night hours
                   : static_cast<double>(rng.Index(24));
    row[9] = fraud ? (rng.Uniform() < 0.8 ? 2.0 : static_cast<double>(rng.Index(3)))
                   : static_cast<double>(Categorical(rng, {0.5, 0.35, 0.15}));
    row[10] = fraud ? static_cast<double>(1 + rng.Index(4))
                    : static_cast<double>(1 + rng.Index(20));
  };

  for (std::size_t i = 0; i < num_majority; ++i) {
    // 0.5% of legitimate traffic follows the fraud pattern (reversed
    // disputes, self-transfers at night): majority-side outliers that
    // stress keep-the-hardest heuristics exactly as real payment logs do.
    make_row(/*fraud=*/rng.Uniform() < 0.0012);
    data.AddRow(row, 0);
  }
  for (std::size_t i = 0; i < num_minority; ++i) {
    make_row(true);
    data.AddRow(row, 1);
  }
  return data;
}

Dataset MakeRecordLinkageSim(Rng& rng, double scale) {
  // 12 per-field similarity scores in [0, 1] (name, birthday, address...).
  // Matches score near 1 on most fields with occasional missing
  // comparisons (score 0); non-matches are low with a chance coincidence
  // per field. Nearly separable by design: the paper reports ~1.0 AUCPRC
  // for every strong ensemble here, differing only on MCC.
  constexpr std::size_t kFeatures = 12;
  const std::size_t num_majority = Scaled(40000, scale);
  const std::size_t num_minority = Scaled(148, scale);

  Dataset data(kFeatures);
  data.Reserve(num_majority + num_minority);
  std::vector<double> row(kFeatures);

  for (std::size_t i = 0; i < num_majority; ++i) {
    for (auto& v : row) {
      // Mostly dissimilar, occasionally coincidentally similar fields.
      v = rng.Uniform() < 0.06 ? rng.Uniform(0.7, 1.0) : rng.Uniform(0.0, 0.5);
    }
    data.AddRow(row, 0);
  }
  for (std::size_t i = 0; i < num_minority; ++i) {
    for (auto& v : row) {
      if (rng.Uniform() < 0.08) {
        v = 0.0;  // missing comparison
      } else {
        v = std::min(1.0, std::max(0.0, rng.Gaussian(0.93, 0.06)));
      }
    }
    data.AddRow(row, 1);
  }
  return data;
}

Dataset MakeKddSim(KddTask task, Rng& rng, double scale) {
  // 20 connection features: duration / byte counts (log-normal ints),
  // protocol + service + flag (categorical), error rates and same-host
  // rates in [0, 1], plus count features.
  constexpr std::size_t kFeatures = 20;
  const std::size_t num_majority = Scaled(40000, scale);
  const std::size_t num_minority =
      task == KddTask::kDosVsPrb ? Scaled(420, scale) : Scaled(80, scale);

  Dataset data(kFeatures);
  data.set_feature_kind(1, FeatureKind::kCategorical);  // protocol
  data.set_feature_kind(2, FeatureKind::kCategorical);  // service
  data.set_feature_kind(3, FeatureKind::kCategorical);  // flag
  data.Reserve(num_majority + num_minority);
  std::vector<double> row(kFeatures);

  // DOS traffic (majority): floods — short duration, huge counts, high
  // same-service rates.
  auto make_dos = [&] {
    row[0] = std::floor(LogNormal(rng, 0.3, 0.8));                // duration
    row[1] = static_cast<double>(Categorical(rng, {0.7, 0.2, 0.1}));
    row[2] = static_cast<double>(rng.Index(10));
    row[3] = static_cast<double>(Categorical(rng, {0.6, 0.3, 0.1}));
    row[4] = std::floor(LogNormal(rng, 5.0, 1.0));                // src_bytes
    row[5] = std::floor(LogNormal(rng, 1.0, 1.0));                // dst_bytes
    row[6] = std::floor(rng.Uniform(100.0, 511.0));               // count
    row[7] = std::floor(rng.Uniform(100.0, 511.0));               // srv_count
    row[8] = rng.Uniform(0.8, 1.0);                               // serror_rate
    row[9] = rng.Uniform(0.8, 1.0);                               // srv_serror
    for (std::size_t j = 10; j < kFeatures; ++j) row[j] = rng.Uniform();
  };

  // A slice of DOS rows carries R2L-like fingerprints (slow floods riding
  // an authenticated session) except for a low logged_in-style signal:
  // majority-side near-outliers, as in the raw KDDCUP-99 labels. They sit
  // right at the decision boundary, which is what keep-the-hardest
  // heuristics lock onto.
  auto make_r2l_like = [&] {
    make_dos();
    row[0] = std::floor(LogNormal(rng, 1.5, 1.0));
    row[6] = std::floor(rng.Uniform(50.0, 300.0));
    row[8] = rng.Uniform(0.3, 0.9);
    row[10] = rng.Uniform(0.3, 1.0);
  };
  for (std::size_t i = 0; i < num_majority; ++i) {
    const double dice = task == KddTask::kDosVsR2l ? rng.Uniform() : 1.0;
    if (dice < 0.003) {
      make_r2l_like();
      row[10] = rng.Uniform(0.0, 0.35);  // separable, but barely
    } else if (dice < 0.004) {
      make_r2l_like();  // unlearnable: exactly the R2L fingerprint
    } else {
      make_dos();
    }
    data.AddRow(row, 0);
  }

  if (task == KddTask::kDosVsPrb) {
    // Probing (minority): scans — many distinct services, low counts.
    // Clearly separated from floods => the "everything reaches ~1.0" row
    // of Table IV.
    for (std::size_t i = 0; i < num_minority; ++i) {
      row[0] = std::floor(LogNormal(rng, 1.5, 1.0));
      row[1] = static_cast<double>(Categorical(rng, {0.3, 0.2, 0.5}));
      row[2] = static_cast<double>(rng.Index(10));
      row[3] = static_cast<double>(Categorical(rng, {0.2, 0.3, 0.5}));
      row[4] = std::floor(LogNormal(rng, 2.0, 1.2));
      row[5] = std::floor(LogNormal(rng, 0.5, 1.0));
      row[6] = std::floor(rng.Uniform(1.0, 30.0));
      row[7] = std::floor(rng.Uniform(1.0, 10.0));
      row[8] = rng.Uniform(0.0, 0.2);
      row[9] = rng.Uniform(0.0, 0.2);
      for (std::size_t j = 10; j < kFeatures; ++j) row[j] = rng.Uniform();
      data.AddRow(row, 1);
    }
  } else {
    // R2L (minority): looks like a *normal-ish* remote login mixed into
    // DOS-dominated traffic — 30% of R2L rows are sampled from the DOS
    // generator itself (indistinguishable noise), the rest differ only
    // subtly in a few columns whose ranges overlap the DOS ranges.
    // Extreme IR + heavy overlap: RandUnder and Easy collapse, Cascade
    // partially recovers, SPE wins (Table IV).
    for (std::size_t i = 0; i < num_minority; ++i) {
      if (rng.Uniform() < 0.3) {
        make_dos();  // indistinguishable noise R2L
      } else {
        make_r2l_like();
      }
      data.AddRow(row, 1);
    }
  }
  return data;
}

}  // namespace spe
