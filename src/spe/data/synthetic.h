#ifndef SPE_DATA_SYNTHETIC_H_
#define SPE_DATA_SYNTHETIC_H_

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {

/// Parameters for the paper's 4x4 checkerboard benchmark (§VI-A, Fig. 4):
/// 16 Gaussian components on a grid, alternating minority / majority,
/// all sharing covariance `covariance * I2`.
struct CheckerboardConfig {
  std::size_t num_minority = 1000;   // |P|
  std::size_t num_majority = 10000;  // |N|
  double covariance = 0.1;           // 0.05 / 0.10 / 0.15 in Fig. 5
  int grid_size = 4;                 // 4x4 grid
  double spacing = 1.0;              // distance between adjacent centers
};

/// Samples a checkerboard dataset. Minority components sit on cells where
/// (cell_x + cell_y) is odd, majority on even cells; samples are spread
/// evenly across a class's components (remainders on the first ones).
Dataset MakeCheckerboard(const CheckerboardConfig& config, Rng& rng);

/// Parameters for the two-regime illustration of Fig. 2: a dataset whose
/// classes either occupy disjoint Gaussian blobs (easy at any imbalance
/// ratio) or heavily overlapping mixtures (hardness explodes with IR).
struct TwoGaussiansConfig {
  std::size_t num_minority = 500;
  double imbalance_ratio = 10.0;  // |N| = IR * |P|
  bool overlapped = false;
  double covariance = 0.25;
};

Dataset MakeTwoGaussians(const TwoGaussiansConfig& config, Rng& rng);

/// Replaces a uniformly random `missing_fraction` of all feature values
/// with 0, reproducing the paper's Table VII protocol ("randomly select
/// values from all features ... replace them with meaningless 0").
/// Applied to train and test alike in that experiment.
void InjectMissingValues(Dataset& data, double missing_fraction, Rng& rng);

/// Flips the label of a uniformly random `noise_fraction` of rows.
/// Not used by any paper table directly, but exercised by robustness
/// tests: hardness-aware under-sampling should degrade gracefully here.
void InjectLabelNoise(Dataset& data, double noise_fraction, Rng& rng);

}  // namespace spe

#endif  // SPE_DATA_SYNTHETIC_H_
