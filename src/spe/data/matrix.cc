#include "spe/data/matrix.h"

#include <sys/mman.h>

#include <atomic>
#include <cstring>

namespace spe {

namespace {
std::atomic<std::uint64_t> g_materialize_bytes{0};
std::atomic<std::uint64_t> g_materialize_ops{0};
std::atomic<std::uint64_t> g_scratch_bytes{0};
}  // namespace

DataCopyStats GetDataCopyStats() {
  DataCopyStats s;
  s.materialize_bytes = g_materialize_bytes.load(std::memory_order_relaxed);
  s.materialize_ops = g_materialize_ops.load(std::memory_order_relaxed);
  s.scratch_bytes = g_scratch_bytes.load(std::memory_order_relaxed);
  return s;
}

void AddMaterializeBytes(std::size_t bytes) {
  g_materialize_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_materialize_ops.fetch_add(1, std::memory_order_relaxed);
}

void AddScratchBytes(std::size_t bytes) {
  g_scratch_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

namespace internal {
MappedBlock::~MappedBlock() {
  if (addr_ != nullptr) ::munmap(addr_, length_);
}
}  // namespace internal

DataMatrix::DataMatrix(const DataMatrix& other)
    : num_features_(other.num_features_),
      num_rows_(other.num_rows_),
      cols_(other.cols_),
      labels_(other.labels_),
      kinds_(other.kinds_),
      mapping_(other.mapping_),
      mapped_cols_(other.mapped_cols_) {
  // Copying a mapped matrix shares the mapping (cheap); copying an owned
  // one duplicates every column — dataset-scale traffic.
  if (mapping_ == nullptr && num_rows_ > 0) {
    AddMaterializeBytes(num_rows_ * (num_features_ * sizeof(double) + sizeof(int)));
  }
}

DataMatrix& DataMatrix::operator=(const DataMatrix& other) {
  if (this == &other) return *this;
  DataMatrix copy(other);
  *this = std::move(copy);
  return *this;
}

void DataMatrix::Set(std::size_t row, std::size_t col, double value) {
  if (mapping_ != nullptr) DetachFromMapping();
  cols_[col][row] = value;
}

void DataMatrix::Reserve(std::size_t rows) {
  if (mapping_ != nullptr) return;  // mapped storage is fixed-size
  for (auto& c : cols_) c.reserve(rows);
  labels_.reserve(rows);
}

void DataMatrix::AddRow(std::span<const double> features, int label) {
  SPE_CHECK_EQ(features.size(), num_features_);
  SPE_CHECK(label == 0 || label == 1) << "labels must be binary, got " << label;
  if (mapping_ != nullptr) DetachFromMapping();
  for (std::size_t j = 0; j < num_features_; ++j) cols_[j].push_back(features[j]);
  labels_.push_back(label);
  ++num_rows_;
  ++version_;
  AddMaterializeBytes(num_features_ * sizeof(double) + sizeof(int));
}

void DataMatrix::Append(const DataMatrix& other) {
  SPE_CHECK_EQ(other.num_features(), num_features_);
  for (std::size_t j = 0; j < num_features_; ++j) {
    SPE_CHECK(other.kinds_[j] == kinds_[j])
        << "feature kind mismatch at column " << j
        << ": cannot append a "
        << (other.kinds_[j] == FeatureKind::kCategorical ? "categorical"
                                                         : "numerical")
        << " column onto a "
        << (kinds_[j] == FeatureKind::kCategorical ? "categorical" : "numerical")
        << " one";
  }
  if (mapping_ != nullptr) DetachFromMapping();
  for (std::size_t j = 0; j < num_features_; ++j) {
    auto src = other.Column(j);
    cols_[j].insert(cols_[j].end(), src.begin(), src.end());
  }
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  num_rows_ += other.num_rows();
  ++version_;
  AddMaterializeBytes(other.num_rows() *
                      (num_features_ * sizeof(double) + sizeof(int)));
}

void DataMatrix::TruncateRows(std::size_t rows) {
  if (rows >= num_rows_) return;
  if (mapping_ != nullptr) DetachFromMapping();
  for (auto& c : cols_) c.resize(rows);
  labels_.resize(rows);
  num_rows_ = rows;
  ++version_;
}

void DataMatrix::CopyRowTo(std::size_t row, std::span<double> out) const {
  SPE_CHECK_EQ(out.size(), num_features_);
  for (std::size_t j = 0; j < num_features_; ++j) out[j] = ColumnData(j)[row];
  AddScratchBytes(num_features_ * sizeof(double));
}

void DataMatrix::AdoptMapped(std::shared_ptr<const internal::MappedBlock> block,
                             std::vector<std::span<const double>> columns,
                             std::vector<int> labels,
                             std::vector<FeatureKind> kinds) {
  SPE_CHECK_EQ(columns.size(), kinds.size());
  num_features_ = columns.size();
  num_rows_ = labels.size();
  for (const auto& c : columns) SPE_CHECK_EQ(c.size(), num_rows_);
  cols_.clear();
  labels_ = std::move(labels);
  kinds_ = std::move(kinds);
  mapping_ = std::move(block);
  mapped_cols_ = std::move(columns);
  ++version_;
}

void DataMatrix::DetachFromMapping() {
  cols_.assign(num_features_, {});
  for (std::size_t j = 0; j < num_features_; ++j) {
    auto src = mapped_cols_[j];
    cols_[j].assign(src.begin(), src.end());
  }
  mapped_cols_.clear();
  mapping_.reset();
  AddMaterializeBytes(num_rows_ * num_features_ * sizeof(double));
}

}  // namespace spe
