#include "spe/data/mmap_cache.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "spe/common/check.h"
#include "spe/common/crc32.h"
#include "spe/common/fault.h"
#include "spe/common/retry.h"
#include "spe/data/csv.h"

namespace spe {
namespace {

constexpr char kMagic[4] = {'S', 'P', 'M', 'C'};
constexpr std::uint32_t kFormatVersion = 1;
// magic + version + rows + features + label_column + has_header +
// source size + source mtime.
constexpr std::size_t kFixedHeaderBytes = 4 + 4 + 8 + 8 + 8 + 1 + 8 + 8;

std::size_t AlignUp8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

struct SourceStamp {
  std::uint64_t size = 0;
  std::uint64_t mtime_ns = 0;
};

bool StatSource(const std::string& path, SourceStamp* out) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;
  out->size = static_cast<std::uint64_t>(st.st_size);
  out->mtime_ns = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
                  static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  return true;
}

template <typename T>
void PutLe(std::string& out, T value) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(reinterpret_cast<const char*>(bytes), sizeof(T));
}

template <typename T>
T ReadLe(const unsigned char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

/// Parsed header of a mapped sidecar plus the mapping itself.
struct MappedSidecar {
  std::shared_ptr<const internal::MappedBlock> block;
  std::uint64_t num_rows = 0;
  std::uint64_t num_features = 0;
  std::uint64_t label_column = 0;
  bool has_header = false;
  SourceStamp source;
  const unsigned char* kinds = nullptr;    // num_features bytes
  const double* columns = nullptr;         // column-contiguous f64
  const std::int32_t* labels = nullptr;    // num_rows i32
};

/// Maps and validates a sidecar. On any structural problem returns
/// false with a reason in `detail`; the mapping is released.
bool MapSidecar(const std::string& sidecar_path, MappedSidecar* out,
                std::string* detail) {
  const int fd = ::open(sidecar_path.c_str(), O_RDONLY);
  if (fd < 0) {
    *detail = "cannot open sidecar";
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    *detail = "cannot stat sidecar";
    return false;
  }
  const std::size_t length = static_cast<std::size_t>(st.st_size);
  if (length < kFixedHeaderBytes + sizeof(std::uint32_t)) {
    ::close(fd);
    *detail = "sidecar shorter than its header";
    return false;
  }
  void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    *detail = "mmap failed";
    return false;
  }
  auto block = std::make_shared<const internal::MappedBlock>(addr, length);
  const unsigned char* base = static_cast<const unsigned char*>(block->data());

  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    *detail = "bad magic";
    return false;
  }
  const std::uint32_t version = ReadLe<std::uint32_t>(base + 4);
  if (version != kFormatVersion) {
    *detail = "unsupported sidecar format version";
    return false;
  }
  MappedSidecar m;
  m.block = block;
  m.num_rows = ReadLe<std::uint64_t>(base + 8);
  m.num_features = ReadLe<std::uint64_t>(base + 16);
  m.label_column = ReadLe<std::uint64_t>(base + 24);
  m.has_header = base[32] != 0;
  m.source.size = ReadLe<std::uint64_t>(base + 33);
  m.source.mtime_ns = ReadLe<std::uint64_t>(base + 41);

  const std::size_t cols_off = AlignUp8(kFixedHeaderBytes + m.num_features);
  const std::size_t labels_off =
      cols_off + m.num_features * m.num_rows * sizeof(double);
  const std::size_t crc_off = labels_off + m.num_rows * sizeof(std::int32_t);
  if (crc_off + sizeof(std::uint32_t) != length) {
    *detail = "sidecar length does not match its header";
    return false;
  }
  const std::uint32_t stored_crc = ReadLe<std::uint32_t>(base + crc_off);
  const std::uint32_t actual_crc = Crc32(
      std::string_view(reinterpret_cast<const char*>(base), crc_off));
  if (stored_crc != actual_crc) {
    *detail = "CRC mismatch";
    return false;
  }
  m.kinds = base + kFixedHeaderBytes;
  m.columns = reinterpret_cast<const double*>(base + cols_off);
  m.labels = reinterpret_cast<const std::int32_t*>(base + labels_off);
  *out = std::move(m);
  return true;
}

}  // namespace

const char* SidecarStatusName(SidecarStatus status) {
  switch (status) {
    case SidecarStatus::kAbsent: return "absent";
    case SidecarStatus::kStale: return "stale";
    case SidecarStatus::kCorrupt: return "corrupt";
    case SidecarStatus::kValid: return "valid";
  }
  return "unknown";
}

std::string SidecarPathFor(const std::string& csv_path) {
  return csv_path + ".spmc";
}

SidecarInfo InspectSidecar(const std::string& csv_path,
                           std::size_t label_column, bool has_header) {
  SidecarInfo info;
  info.sidecar_path = SidecarPathFor(csv_path);
  struct stat st{};
  if (::stat(info.sidecar_path.c_str(), &st) != 0) {
    info.status = SidecarStatus::kAbsent;
    info.detail = "no sidecar at " + info.sidecar_path;
    return info;
  }
  MappedSidecar m;
  std::string reason;
  if (!MapSidecar(info.sidecar_path, &m, &reason)) {
    info.status = SidecarStatus::kCorrupt;
    info.detail = reason;
    return info;
  }
  SourceStamp src;
  if (!StatSource(csv_path, &src)) {
    info.status = SidecarStatus::kStale;
    info.detail = "source CSV missing";
    return info;
  }
  if (src.size != m.source.size || src.mtime_ns != m.source.mtime_ns) {
    info.status = SidecarStatus::kStale;
    info.detail = "source CSV changed since the sidecar was written";
    return info;
  }
  if (m.label_column != label_column || m.has_header != has_header) {
    info.status = SidecarStatus::kStale;
    info.detail = "sidecar was built with different parse options";
    return info;
  }
  info.status = SidecarStatus::kValid;
  info.detail = "mmap-ready";
  info.num_rows = static_cast<std::size_t>(m.num_rows);
  info.num_features = static_cast<std::size_t>(m.num_features);
  return info;
}

bool WriteSidecar(const Dataset& data, const std::string& csv_path,
                  std::size_t label_column, bool has_header) {
  SourceStamp src;
  if (!StatSource(csv_path, &src)) return false;

  std::string buf;
  const std::size_t rows = data.num_rows();
  const std::size_t d = data.num_features();
  buf.reserve(AlignUp8(kFixedHeaderBytes + d) + d * rows * sizeof(double) +
              rows * sizeof(std::int32_t) + sizeof(std::uint32_t));
  buf.append(kMagic, sizeof(kMagic));
  PutLe<std::uint32_t>(buf, kFormatVersion);
  PutLe<std::uint64_t>(buf, rows);
  PutLe<std::uint64_t>(buf, d);
  PutLe<std::uint64_t>(buf, label_column);
  buf.push_back(has_header ? '\x01' : '\x00');
  PutLe<std::uint64_t>(buf, src.size);
  PutLe<std::uint64_t>(buf, src.mtime_ns);
  for (std::size_t j = 0; j < d; ++j) {
    buf.push_back(data.feature_kind(j) == FeatureKind::kCategorical ? '\x01'
                                                                    : '\x00');
  }
  buf.append(AlignUp8(buf.size()) - buf.size(), '\x00');
  for (std::size_t j = 0; j < d; ++j) {
    auto col = data.Column(j).values;
    buf.append(reinterpret_cast<const char*>(col.data()),
               col.size() * sizeof(double));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    PutLe<std::int32_t>(buf, static_cast<std::int32_t>(data.Label(i)));
  }
  PutLe<std::uint32_t>(buf, Crc32(buf));

  // Atomic publish: write the whole image to a temp file, then rename
  // over the final path so readers only ever see absent or complete.
  const std::string final_path = SidecarPathFor(csv_path);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out.good()) {
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

Dataset LoadCsvCached(const std::string& path, std::size_t label_column,
                      bool has_header) {
  // Same transient fault point as LoadCsv: a data read is a data read
  // whether the bytes come from the parser or the sidecar mapping, and
  // the chaos suite must be able to fail it regardless of cache state.
  if (Faults().ShouldFailDataIo()) {
    throw TransientIoError(
        "injected fault: transient data read failed for " + path,
        /*injected=*/true);
  }
  const SidecarInfo info = InspectSidecar(path, label_column, has_header);
  if (info.status == SidecarStatus::kValid) {
    MappedSidecar m;
    std::string reason;
    // A race (sidecar replaced between inspect and map) degrades to the
    // parser below; never an error.
    if (MapSidecar(info.sidecar_path, &m, &reason)) {
      const std::size_t rows = static_cast<std::size_t>(m.num_rows);
      const std::size_t d = static_cast<std::size_t>(m.num_features);
      std::vector<std::span<const double>> columns(d);
      for (std::size_t j = 0; j < d; ++j) {
        columns[j] = {m.columns + j * rows, rows};
      }
      std::vector<int> labels(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        labels[i] = static_cast<int>(m.labels[i]);
      }
      std::vector<FeatureKind> kinds(d);
      for (std::size_t j = 0; j < d; ++j) {
        kinds[j] = m.kinds[j] != 0 ? FeatureKind::kCategorical
                                   : FeatureKind::kNumerical;
      }
      Dataset data;
      data.mutable_matrix().AdoptMapped(std::move(m.block), std::move(columns),
                                        std::move(labels), std::move(kinds));
      return data;
    }
  }
  Dataset data = LoadCsv(path, label_column, has_header);
  WriteSidecar(data, path, label_column, has_header);  // best effort
  return data;
}

}  // namespace spe
