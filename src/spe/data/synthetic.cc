#include "spe/data/synthetic.h"

#include <array>
#include <cmath>
#include <vector>

#include "spe/common/check.h"

namespace spe {
namespace {

struct Component {
  double cx;
  double cy;
};

// Appends `count` draws from N((cx, cy), cov * I2) with the given label.
void SampleComponent(Dataset& data, const Component& c, double covariance,
                     std::size_t count, int label, Rng& rng) {
  const double stddev = std::sqrt(covariance);
  for (std::size_t i = 0; i < count; ++i) {
    const std::array<double, 2> xy = {rng.Gaussian(c.cx, stddev),
                                      rng.Gaussian(c.cy, stddev)};
    data.AddRow(xy, label);
  }
}

// Splits `total` into `parts` near-equal chunks (first chunks get the
// remainder), so every Gaussian component receives its share.
std::vector<std::size_t> EvenSplit(std::size_t total, std::size_t parts) {
  std::vector<std::size_t> out(parts, total / parts);
  for (std::size_t i = 0; i < total % parts; ++i) ++out[i];
  return out;
}

}  // namespace

Dataset MakeCheckerboard(const CheckerboardConfig& config, Rng& rng) {
  SPE_CHECK_GT(config.grid_size, 0);
  SPE_CHECK_GT(config.covariance, 0.0);

  std::vector<Component> minority_cells;
  std::vector<Component> majority_cells;
  for (int gx = 0; gx < config.grid_size; ++gx) {
    for (int gy = 0; gy < config.grid_size; ++gy) {
      const Component c{gx * config.spacing, gy * config.spacing};
      if ((gx + gy) % 2 == 1) {
        minority_cells.push_back(c);
      } else {
        majority_cells.push_back(c);
      }
    }
  }

  Dataset data(2);
  data.Reserve(config.num_minority + config.num_majority);
  const auto min_counts = EvenSplit(config.num_minority, minority_cells.size());
  const auto maj_counts = EvenSplit(config.num_majority, majority_cells.size());
  for (std::size_t i = 0; i < minority_cells.size(); ++i) {
    SampleComponent(data, minority_cells[i], config.covariance, min_counts[i],
                    /*label=*/1, rng);
  }
  for (std::size_t i = 0; i < majority_cells.size(); ++i) {
    SampleComponent(data, majority_cells[i], config.covariance, maj_counts[i],
                    /*label=*/0, rng);
  }
  return data;
}

Dataset MakeTwoGaussians(const TwoGaussiansConfig& config, Rng& rng) {
  SPE_CHECK_GT(config.num_minority, 0u);
  SPE_CHECK_GE(config.imbalance_ratio, 1.0);

  const auto num_majority = static_cast<std::size_t>(
      config.imbalance_ratio * static_cast<double>(config.num_minority));
  Dataset data(2);
  data.Reserve(config.num_minority + num_majority);

  if (!config.overlapped) {
    // Two well-separated blobs: hardness stays flat as IR grows (Fig 2a-c).
    SampleComponent(data, {0.0, 0.0}, config.covariance, num_majority, 0, rng);
    SampleComponent(data, {4.0, 4.0}, config.covariance, config.num_minority, 1,
                    rng);
    return data;
  }

  // Overlapped regime (Fig 2d-f): the minority mass sits on the fringe
  // of the majority mixture — recoverable at low IR, but progressively
  // drowned as the majority tail thickens, so the hard-sample count
  // grows with IR (the paper's Fig. 2e/2f).
  const std::vector<Component> majority_centers = {
      {0.0, 0.0}, {1.2, 0.4}, {0.4, 1.2}, {1.4, 1.4}};
  const std::vector<Component> minority_centers = {{2.1, 2.1}, {2.4, 1.3}};
  const auto maj_counts = EvenSplit(num_majority, majority_centers.size());
  const auto min_counts = EvenSplit(config.num_minority, minority_centers.size());
  for (std::size_t i = 0; i < majority_centers.size(); ++i) {
    SampleComponent(data, majority_centers[i], config.covariance, maj_counts[i],
                    0, rng);
  }
  for (std::size_t i = 0; i < minority_centers.size(); ++i) {
    SampleComponent(data, minority_centers[i], config.covariance, min_counts[i],
                    1, rng);
  }
  return data;
}

void InjectMissingValues(Dataset& data, double missing_fraction, Rng& rng) {
  SPE_CHECK_GE(missing_fraction, 0.0);
  SPE_CHECK_LE(missing_fraction, 1.0);
  const std::size_t total = data.num_rows() * data.num_features();
  const auto count =
      static_cast<std::size_t>(missing_fraction * static_cast<double>(total));
  for (std::size_t flat : rng.SampleWithoutReplacement(total, count)) {
    data.Set(flat / data.num_features(), flat % data.num_features(), 0.0);
  }
}

void InjectLabelNoise(Dataset& data, double noise_fraction, Rng& rng) {
  SPE_CHECK_GE(noise_fraction, 0.0);
  SPE_CHECK_LE(noise_fraction, 1.0);
  const auto count = static_cast<std::size_t>(
      noise_fraction * static_cast<double>(data.num_rows()));
  for (std::size_t row : rng.SampleWithoutReplacement(data.num_rows(), count)) {
    data.SetLabel(row, 1 - data.Label(row));
  }
}

}  // namespace spe
