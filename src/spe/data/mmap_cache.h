#ifndef SPE_DATA_MMAP_CACHE_H_
#define SPE_DATA_MMAP_CACHE_H_

#include <cstddef>
#include <string>

#include "spe/data/dataset.h"

namespace spe {

/// Parse-once mmap-reuse cache for CSV datasets.
///
/// The first LoadCsvCached for a CSV parses it in memory and writes a
/// column-major binary sidecar next to it (`<path>.spmc`, atomic
/// tmp+rename publish). Subsequent loads mmap the sidecar read-only and
/// adopt its columns zero-copy into the Dataset's DataMatrix — no parse,
/// no materialization; the OS pages features in on demand. Labels are
/// always copied out eagerly (4 bytes/row) so `labels()` stays a plain
/// vector.
///
/// Sidecar layout (little-endian, version 1):
///
///   offset  size             field
///   0       4                magic "SPMC"
///   4       4                format version (u32, = 1)
///   8       8                num_rows (u64)
///   16      8                num_features (u64)
///   24      8                label_column (u64)
///   32      1                has_header flag (u8)
///   33      8                source file size in bytes (u64)
///   41      8                source file mtime, ns since epoch (u64)
///   49      d                feature kinds, one byte each (0=num, 1=cat)
///   ..      pad              zero padding to the next 8-byte boundary
///   ..      d * rows * 8     feature columns, column-contiguous f64
///   ..      rows * 4         labels, i32
///   end-4   4                CRC-32 (u32) of every preceding byte
///
/// Staleness is a fingerprint check: source size + mtime + label_column
/// + has_header must all match, else the sidecar is rewritten from a
/// fresh parse. CRC mismatch, short file, or bad magic are reported as
/// corrupt and likewise fall back to the parser — a damaged cache can
/// slow a load down but never wrong it.
enum class SidecarStatus { kAbsent, kStale, kCorrupt, kValid };

/// Human-readable spelling: "absent" / "stale" / "corrupt" / "valid".
const char* SidecarStatusName(SidecarStatus status);

struct SidecarInfo {
  SidecarStatus status = SidecarStatus::kAbsent;
  std::string sidecar_path;
  std::string detail;       // one-line reason for the status
  std::size_t num_rows = 0;      // valid sidecars only
  std::size_t num_features = 0;  // valid sidecars only
};

/// `<csv_path>.spmc`.
std::string SidecarPathFor(const std::string& csv_path);

/// Classifies the sidecar for `csv_path` without loading the dataset
/// (CRC is verified, so kValid means the bytes are trustworthy). Used by
/// `spe_cli inspect` to make cache staleness debuggable offline.
SidecarInfo InspectSidecar(const std::string& csv_path,
                           std::size_t label_column, bool has_header = true);

/// LoadCsv with the sidecar cache in front: mmap-adopts a valid sidecar,
/// otherwise parses the CSV and (best effort) publishes a fresh sidecar
/// for next time. Identical resulting values either way.
Dataset LoadCsvCached(const std::string& path, std::size_t label_column,
                      bool has_header = true);

/// Writes the sidecar for `data` as parsed from `csv_path` (fingerprint
/// taken from the file's current size/mtime). Returns false on IO error
/// — callers treat the cache as optional.
bool WriteSidecar(const Dataset& data, const std::string& csv_path,
                  std::size_t label_column, bool has_header = true);

}  // namespace spe

#endif  // SPE_DATA_MMAP_CACHE_H_
