#ifndef SPE_DATA_DATASET_H_
#define SPE_DATA_DATASET_H_

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace spe {

/// How a feature column should be interpreted by distance computations
/// and split finding. Categorical features are stored as small integer
/// codes; the library never assumes an ordering carries meaning for them
/// (distance-based re-samplers refuse categorical data, mirroring the
/// paper's point that k-NN methods are inapplicable there).
enum class FeatureKind { kNumerical, kCategorical };

/// Binary-classification dataset: a dense row-major feature matrix plus
/// 0/1 labels. Follows the paper's convention that the minority class is
/// the positive class (label 1) and the majority class is negative
/// (label 0).
///
/// The container is intentionally simple — value-semantic, contiguous
/// storage — because the algorithms in this library are defined in terms
/// of whole-dataset passes (hardness evaluation, re-sampling) rather
/// than point updates.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with `num_features` columns, all numerical.
  explicit Dataset(std::size_t num_features);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  std::size_t num_rows() const { return labels_.size(); }
  std::size_t num_features() const { return num_features_; }
  bool empty() const { return labels_.empty(); }

  /// Feature value of row `row`, column `col`.
  double At(std::size_t row, std::size_t col) const {
    return x_[row * num_features_ + col];
  }
  void Set(std::size_t row, std::size_t col, double value) {
    x_[row * num_features_ + col] = value;
  }

  /// Contiguous view over the features of one row.
  std::span<const double> Row(std::size_t row) const {
    return {x_.data() + row * num_features_, num_features_};
  }
  std::span<double> MutableRow(std::size_t row) {
    return {x_.data() + row * num_features_, num_features_};
  }

  int Label(std::size_t row) const { return labels_[row]; }
  void SetLabel(std::size_t row, int label) { labels_[row] = label; }
  const std::vector<int>& labels() const { return labels_; }

  FeatureKind feature_kind(std::size_t col) const { return kinds_[col]; }
  void set_feature_kind(std::size_t col, FeatureKind kind) { kinds_[col] = kind; }
  /// True if any column is categorical; distance-based samplers use this
  /// to reject datasets they are not defined on.
  bool HasCategoricalFeatures() const;

  void Reserve(std::size_t rows);

  /// Appends one example. `features.size()` must equal num_features(),
  /// and `label` must be 0 or 1.
  void AddRow(std::span<const double> features, int label);

  /// Appends every row of `other` (same schema required).
  void Append(const Dataset& other);

  /// Drops every row past the first `rows` (no-op when rows >= num_rows).
  /// Capacity is kept, which is what makes a reusable subset buffer
  /// possible: ensemble trainers truncate back to a fixed prefix and
  /// re-append fresh picks instead of deep-copying the prefix each
  /// iteration.
  void TruncateRows(std::size_t rows);

  /// New dataset holding rows at `indices`, in order (duplicates allowed,
  /// which is how bootstrap sampling is expressed).
  Dataset Subset(std::span<const std::size_t> indices) const;

  /// Indices of positive- (minority-) and negative- (majority-) class rows.
  std::vector<std::size_t> PositiveIndices() const;
  std::vector<std::size_t> NegativeIndices() const;

  std::size_t CountPositives() const;
  std::size_t CountNegatives() const { return num_rows() - CountPositives(); }

  /// |N| / |P| as defined in §II of the paper. Requires at least one
  /// positive example.
  double ImbalanceRatio() const;

  /// Human-readable one-line summary (rows, features, IR) for logging.
  std::string Summary() const;

 private:
  std::size_t num_features_ = 0;
  std::vector<double> x_;  // row-major, num_rows x num_features
  std::vector<int> labels_;
  std::vector<FeatureKind> kinds_;
};

/// Per-feature standardization (zero mean, unit variance) fitted on one
/// dataset and applied to others. Used by distance-based samplers and by
/// gradient-trained models (LR, SVM, MLP) whose optimization is scale
/// sensitive. Categorical columns are passed through untouched.
class FeatureScaler {
 public:
  /// Computes per-column mean and standard deviation from `data`.
  void Fit(const Dataset& data);

  /// Returns a standardized copy. The scaler must be fitted first and the
  /// schema must match the fitting dataset.
  Dataset Transform(const Dataset& data) const;

  /// Standardizes a single feature row into `out` (same length as the
  /// fitted schema). Categorical columns are copied through unchanged.
  void TransformRow(std::span<const double> in, std::span<double> out) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

  /// Text serialization (used by the model persistence layer).
  void Save(std::ostream& os) const;
  static FeatureScaler Load(std::istream& is);

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<FeatureKind> kinds_;
};

}  // namespace spe

#endif  // SPE_DATA_DATASET_H_
