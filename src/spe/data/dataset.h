#ifndef SPE_DATA_DATASET_H_
#define SPE_DATA_DATASET_H_

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "spe/common/check.h"
#include "spe/data/matrix.h"

namespace spe {

/// One feature column of a dataset: a contiguous slice over every row's
/// value plus the column's kind. This is the zero-copy currency of
/// per-feature passes (binner quantiles, scaler moments, split finding).
struct ColumnView {
  std::span<const double> values;
  FeatureKind kind = FeatureKind::kNumerical;
};

/// Binary-classification dataset: a column-major (SoA) feature matrix
/// plus 0/1 labels. Follows the paper's convention that the minority
/// class is the positive class (label 1) and the majority class is
/// negative (label 0).
///
/// The container is value-semantic, but since the columnar refactor the
/// *copying* interfaces (Subset, Append, whole-dataset copies) are the
/// slow path: algorithms that only need to select rows pass a
/// DatasetView (row-index indirection, zero bytes moved) instead. Every
/// copy that does happen is metered — see DataCopyStats in matrix.h.
///
/// Row-major access (the old Row()/MutableRow() spans) is gone by
/// design: a row is no longer contiguous. Callers that genuinely need a
/// dense row (single-row predict, serialization) gather one with
/// CopyRowTo into caller-owned scratch.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with `num_features` columns, all numerical.
  explicit Dataset(std::size_t num_features) : m_(num_features) {}

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  std::size_t num_rows() const { return m_.num_rows(); }
  std::size_t num_features() const { return m_.num_features(); }
  bool empty() const { return m_.num_rows() == 0; }

  /// Feature value of row `row`, column `col`.
  double At(std::size_t row, std::size_t col) const { return m_.At(row, col); }
  void Set(std::size_t row, std::size_t col, double value) {
    m_.Set(row, col, value);
  }

  /// Zero-copy contiguous view over one feature column.
  ColumnView Column(std::size_t col) const {
    return {m_.Column(col), m_.feature_kind(col)};
  }

  /// Gathers the features of row `row` into `out` (scratch traffic;
  /// out.size() must equal num_features()).
  void CopyRowTo(std::size_t row, std::span<double> out) const {
    m_.CopyRowTo(row, out);
  }

  int Label(std::size_t row) const { return m_.Label(row); }
  void SetLabel(std::size_t row, int label) { m_.SetLabel(row, label); }
  const std::vector<int>& labels() const { return m_.labels(); }

  FeatureKind feature_kind(std::size_t col) const { return m_.feature_kind(col); }
  void set_feature_kind(std::size_t col, FeatureKind kind) {
    m_.set_feature_kind(col, kind);
  }
  /// True if any column is categorical; distance-based samplers use this
  /// to reject datasets they are not defined on.
  bool HasCategoricalFeatures() const;

  void Reserve(std::size_t rows) { m_.Reserve(rows); }

  /// Appends one example. `features.size()` must equal num_features(),
  /// and `label` must be 0 or 1. Invalidates outstanding views.
  void AddRow(std::span<const double> features, int label) {
    m_.AddRow(features, label);
  }

  /// Appends every row of `other`. The schema must match: same column
  /// count AND same per-column feature kinds — silently merging a
  /// categorical column into a numerical one corrupts downstream
  /// distance/binning logic, so a kind mismatch is a hard error.
  /// Invalidates outstanding views.
  void Append(const Dataset& other) { m_.Append(other.m_); }

  /// Drops every row past the first `rows` (no-op when rows >= num_rows).
  /// Capacity is kept, which is what makes a reusable subset buffer
  /// possible: ensemble trainers truncate back to a fixed prefix and
  /// re-append fresh picks instead of deep-copying the prefix each
  /// iteration. Invalidates outstanding views.
  void TruncateRows(std::size_t rows) { m_.TruncateRows(rows); }

  /// New dataset holding copies of rows at `indices`, in order
  /// (duplicates allowed, which is how bootstrap sampling is expressed).
  /// This materializes — prefer DatasetView(data, indices) when the
  /// consumer only reads.
  Dataset Subset(std::span<const std::size_t> indices) const;

  /// Indices of positive- (minority-) and negative- (majority-) class rows.
  std::vector<std::size_t> PositiveIndices() const;
  std::vector<std::size_t> NegativeIndices() const;

  std::size_t CountPositives() const;
  std::size_t CountNegatives() const { return num_rows() - CountPositives(); }

  /// |N| / |P| as defined in §II of the paper. Requires at least one
  /// positive example.
  double ImbalanceRatio() const;

  /// Human-readable one-line summary (rows, features, IR) for logging.
  std::string Summary() const;

  /// The underlying columnar storage (mmap adoption, fingerprinting).
  const DataMatrix& matrix() const { return m_; }
  DataMatrix& mutable_matrix() { return m_; }

 private:
  DataMatrix m_;
};

/// Non-owning read view over rows of a Dataset — the currency of
/// Subset/Split/bootstrap draws and of every Fit/PredictProba call.
/// Three modes:
///
///  - identity: the whole dataset, in storage order. Implicit from
///    `const Dataset&`, so existing `clf.Fit(data)` call sites compile
///    unchanged at zero cost.
///  - indexed: rows at caller-owned `indices`, in order, duplicates
///    allowed. This is what replaces Subset() copies in SPE, bagging,
///    cascades, splits and cross-validation.
///  - rows: an external dense row-major block (the serve batch path,
///    where requests land memcpy-straight in scoring layout). May be
///    unlabeled; Label() on an unlabeled view is a hard error.
///
/// Ownership rules (see DESIGN.md): a view owns nothing. The parent
/// Dataset and the index array must outlive it; structural mutation of
/// the parent (AddRow/Append/TruncateRows) invalidates the view, which
/// is caught — views snapshot the matrix version and CheckAlive()
/// fails loudly on mismatch. Debug/sanitizer builds check on every
/// access; release builds check at use-site entry points (Fit,
/// PredictProba, Materialize).
class DatasetView {
 public:
  DatasetView() = default;

  /// Identity view over all of `data` (intentionally implicit).
  DatasetView(const Dataset& data)  // NOLINT(google-explicit-constructor)
      : matrix_(&data.matrix()),
        num_rows_(data.num_rows()),
        version_(data.matrix().version()) {}

  /// Rows of `data` at `indices`, in order. `indices` is borrowed, not
  /// copied: the caller keeps it alive for the view's lifetime.
  DatasetView(const Dataset& data, std::span<const std::size_t> indices)
      : matrix_(&data.matrix()),
        indices_(indices),
        num_rows_(indices.size()),
        version_(data.matrix().version()) {}

  /// View over an external row-major block of `rows x num_features`
  /// doubles (stride = num_features). `labels` may be null (unlabeled
  /// scoring batch); `kinds` may be empty (all numerical).
  static DatasetView FromRows(const double* rows, std::size_t num_rows,
                              std::size_t num_features,
                              const int* labels = nullptr,
                              std::span<const FeatureKind> kinds = {});

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_features() const {
    return matrix_ != nullptr ? matrix_->num_features() : row_features_;
  }
  bool empty() const { return num_rows_ == 0; }

  double At(std::size_t row, std::size_t col) const {
#ifndef NDEBUG
    CheckAlive();
#endif
    if (rows_ != nullptr) return rows_[row * row_features_ + col];
    return matrix_->At(RowIndex(row), col);
  }

  int Label(std::size_t row) const {
#ifndef NDEBUG
    CheckAlive();
#endif
    if (rows_ != nullptr) {
      SPE_CHECK(row_labels_ != nullptr) << "Label() on an unlabeled row view";
      return row_labels_[row];
    }
    return matrix_->Label(RowIndex(row));
  }

  FeatureKind feature_kind(std::size_t col) const {
    if (matrix_ != nullptr) return matrix_->feature_kind(col);
    return row_kinds_.empty() ? FeatureKind::kNumerical : row_kinds_[col];
  }
  bool HasCategoricalFeatures() const;

  /// Gathers the features of row `row` into `out` (scratch traffic).
  void CopyRowTo(std::size_t row, std::span<double> out) const;

  std::size_t CountPositives() const;
  std::size_t CountNegatives() const { return num_rows_ - CountPositives(); }
  std::vector<std::size_t> PositiveIndices() const;
  std::vector<std::size_t> NegativeIndices() const;

  /// Labels of every view row, materialized in view order. For identity
  /// views prefer the parent's labels() (no copy).
  std::vector<int> LabelsVector() const;

  /// |N| / |P| over the viewed rows. Requires at least one positive.
  double ImbalanceRatio() const;

  /// Deep-copies the viewed rows into an owned Dataset (counted
  /// materialization) — the escape hatch for consumers that mutate.
  Dataset Materialize() const;

  /// True when the view is one dense row-major block (mode `rows`):
  /// Row-major consumers (the flat kernel's block feeders) read it
  /// in place instead of gathering.
  bool row_major() const { return rows_ != nullptr; }
  /// Base pointer of the row-major block; only valid when row_major().
  const double* rows_data() const { return rows_; }

  /// True when this is an identity view (all parent rows, storage order).
  bool identity() const { return matrix_ != nullptr && indices_.data() == nullptr; }
  /// The viewed parent matrix (null in rows mode).
  const DataMatrix* parent() const { return matrix_; }
  /// Parent-matrix row index of view row `row` (columnar modes only).
  std::size_t RowIndex(std::size_t row) const {
    return indices_.data() == nullptr ? row : indices_[row];
  }

  /// Indexed view over the same parent selecting parent-absolute row
  /// indices `abs` (borrowed — the caller keeps `abs` alive). Columnar
  /// modes only; callers compose view-relative picks through RowIndex
  /// first. This is how nested resamples (a bootstrap bag drawn from a
  /// fold view) stack without ever copying rows.
  DatasetView WithIndices(std::span<const std::size_t> abs) const;

  /// Fails loudly if the parent was structurally mutated after this view
  /// was taken. Call at entry of any pass over the view.
  void CheckAlive() const {
    if (matrix_ != nullptr) {
      SPE_CHECK(matrix_->version() == version_)
          << "stale DatasetView: parent Dataset was mutated "
             "(AddRow/Append/TruncateRows) after the view was taken";
    }
  }

 private:
  // Columnar modes: parent matrix (+ optional index indirection).
  const DataMatrix* matrix_ = nullptr;
  std::span<const std::size_t> indices_;
  // Rows mode: external dense row-major block.
  const double* rows_ = nullptr;
  const int* row_labels_ = nullptr;
  std::span<const FeatureKind> row_kinds_;
  std::size_t row_features_ = 0;

  std::size_t num_rows_ = 0;
  std::uint64_t version_ = 0;
};

/// Dense row-major scratch matrix: reusable staging for algorithms whose
/// inner loop genuinely wants contiguous rows (SGD epochs in LR/SVM/MLP,
/// distance kernels in k-NN). Reset() keeps capacity, so a reused
/// RowMatrix costs one allocation for the life of the consumer.
class RowMatrix {
 public:
  RowMatrix() = default;

  void Reset(std::size_t rows, std::size_t features);

  std::size_t num_rows() const { return rows_; }
  std::size_t num_features() const { return features_; }

  std::span<double> Row(std::size_t row) {
    return {x_.data() + row * features_, features_};
  }
  std::span<const double> Row(std::size_t row) const {
    return {x_.data() + row * features_, features_};
  }
  const double* data() const { return x_.data(); }
  double* data() { return x_.data(); }

  /// Gathers every row of `view` into this matrix (scratch traffic).
  void GatherFrom(const DatasetView& view);

 private:
  std::vector<double> x_;
  std::size_t rows_ = 0;
  std::size_t features_ = 0;
};

/// Per-feature standardization (zero mean, unit variance) fitted on one
/// dataset and applied to others. Used by distance-based samplers and by
/// gradient-trained models (LR, SVM, MLP) whose optimization is scale
/// sensitive. Categorical columns are passed through untouched.
class FeatureScaler {
 public:
  /// Computes per-column mean and standard deviation from `data`.
  void Fit(const DatasetView& data);

  /// Returns a standardized owned copy (counted materialization). The
  /// scaler must be fitted first and the schema must match. Prefer
  /// TransformInPlace / TransformToRows on hot paths.
  Dataset Transform(const DatasetView& data) const;

  /// Standardizes `data`'s numerical columns in place — no copy. The
  /// schema must match the fitting dataset.
  void TransformInPlace(Dataset& data) const;

  /// Standardizes the viewed rows into row-major scratch `out`
  /// (scratch traffic, reusing `out`'s capacity). This is what keeps
  /// scale-sensitive fits (LR, SVM, MLP) from paying a full-dataset
  /// materialization per fit.
  void TransformToRows(const DatasetView& data, RowMatrix& out) const;

  /// Standardizes a single feature row into `out` (same length as the
  /// fitted schema). Categorical columns are copied through unchanged.
  void TransformRow(std::span<const double> in, std::span<double> out) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

  /// Text serialization (used by the model persistence layer).
  void Save(std::ostream& os) const;
  static FeatureScaler Load(std::istream& is);

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<FeatureKind> kinds_;
};

}  // namespace spe

#endif  // SPE_DATA_DATASET_H_
