#include "spe/data/dataset.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "spe/common/check.h"

namespace spe {

Dataset::Dataset(std::size_t num_features)
    : num_features_(num_features), kinds_(num_features, FeatureKind::kNumerical) {}

bool Dataset::HasCategoricalFeatures() const {
  for (FeatureKind k : kinds_) {
    if (k == FeatureKind::kCategorical) return true;
  }
  return false;
}

void Dataset::Reserve(std::size_t rows) {
  x_.reserve(rows * num_features_);
  labels_.reserve(rows);
}

void Dataset::AddRow(std::span<const double> features, int label) {
  SPE_CHECK_EQ(features.size(), num_features_);
  SPE_CHECK(label == 0 || label == 1) << "labels must be binary, got " << label;
  x_.insert(x_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::Append(const Dataset& other) {
  SPE_CHECK_EQ(other.num_features(), num_features_);
  x_.insert(x_.end(), other.x_.begin(), other.x_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

void Dataset::TruncateRows(std::size_t rows) {
  if (rows >= num_rows()) return;
  x_.resize(rows * num_features_);
  labels_.resize(rows);
}

Dataset Dataset::Subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_);
  out.kinds_ = kinds_;
  out.Reserve(indices.size());
  for (std::size_t idx : indices) {
    SPE_CHECK_LT(idx, num_rows());
    out.AddRow(Row(idx), Label(idx));
  }
  return out;
}

std::vector<std::size_t> Dataset::PositiveIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (labels_[i] == 1) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::NegativeIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (labels_[i] == 0) out.push_back(i);
  }
  return out;
}

std::size_t Dataset::CountPositives() const {
  std::size_t count = 0;
  for (int y : labels_) count += static_cast<std::size_t>(y);
  return count;
}

double Dataset::ImbalanceRatio() const {
  const std::size_t pos = CountPositives();
  SPE_CHECK_GT(pos, 0u) << "imbalance ratio undefined without positives";
  return static_cast<double>(num_rows() - pos) / static_cast<double>(pos);
}

std::string Dataset::Summary() const {
  std::ostringstream os;
  os << num_rows() << " rows x " << num_features_ << " features, "
     << CountPositives() << " positives";
  if (CountPositives() > 0 && CountPositives() < num_rows()) {
    os << " (IR " << ImbalanceRatio() << ":1)";
  }
  return os.str();
}

void FeatureScaler::Fit(const Dataset& data) {
  SPE_CHECK_GT(data.num_rows(), 0u);
  const std::size_t d = data.num_features();
  means_.assign(d, 0.0);
  stds_.assign(d, 0.0);
  kinds_.resize(d);
  for (std::size_t j = 0; j < d; ++j) kinds_[j] = data.feature_kind(j);

  const double n = static_cast<double>(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    auto row = data.Row(i);
    for (std::size_t j = 0; j < d; ++j) means_[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) means_[j] /= n;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    auto row = data.Row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - means_[j];
      stds_[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    stds_[j] = std::sqrt(stds_[j] / n);
    // Constant columns carry no information; map them to 0 rather than
    // dividing by zero.
    if (stds_[j] < 1e-12) stds_[j] = 1.0;
  }
}

void FeatureScaler::TransformRow(std::span<const double> in,
                                 std::span<double> out) const {
  SPE_CHECK_EQ(in.size(), means_.size());
  SPE_CHECK_EQ(out.size(), means_.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    out[j] = kinds_[j] == FeatureKind::kCategorical
                 ? in[j]
                 : (in[j] - means_[j]) / stds_[j];
  }
}

void FeatureScaler::Save(std::ostream& os) const {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "scaler " << means_.size() << "\n";
  for (std::size_t j = 0; j < means_.size(); ++j) {
    os << means_[j] << " " << stds_[j] << " "
       << (kinds_[j] == FeatureKind::kCategorical ? 1 : 0) << "\n";
  }
}

FeatureScaler FeatureScaler::Load(std::istream& is) {
  std::string keyword;
  std::size_t dim = 0;
  is >> keyword >> dim;
  SPE_CHECK(is.good() && keyword == "scaler") << "malformed scaler";
  FeatureScaler scaler;
  scaler.means_.resize(dim);
  scaler.stds_.resize(dim);
  scaler.kinds_.resize(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    int categorical = 0;
    is >> scaler.means_[j] >> scaler.stds_[j] >> categorical;
    scaler.kinds_[j] =
        categorical != 0 ? FeatureKind::kCategorical : FeatureKind::kNumerical;
  }
  SPE_CHECK(!is.fail()) << "truncated scaler";
  return scaler;
}

Dataset FeatureScaler::Transform(const Dataset& data) const {
  SPE_CHECK_EQ(data.num_features(), means_.size());
  Dataset out = data;
  for (std::size_t i = 0; i < out.num_rows(); ++i) {
    auto row = out.MutableRow(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (kinds_[j] == FeatureKind::kCategorical) continue;
      row[j] = (row[j] - means_[j]) / stds_[j];
    }
  }
  return out;
}

}  // namespace spe
