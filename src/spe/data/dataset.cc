#include "spe/data/dataset.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "spe/common/check.h"

namespace spe {

bool Dataset::HasCategoricalFeatures() const {
  for (FeatureKind k : m_.kinds()) {
    if (k == FeatureKind::kCategorical) return true;
  }
  return false;
}

Dataset Dataset::Subset(std::span<const std::size_t> indices) const {
  return DatasetView(*this, indices).Materialize();
}

std::vector<std::size_t> Dataset::PositiveIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (Label(i) == 1) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::NegativeIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (Label(i) == 0) out.push_back(i);
  }
  return out;
}

std::size_t Dataset::CountPositives() const {
  std::size_t count = 0;
  for (int y : labels()) count += static_cast<std::size_t>(y);
  return count;
}

double Dataset::ImbalanceRatio() const {
  const std::size_t pos = CountPositives();
  SPE_CHECK_GT(pos, 0u) << "imbalance ratio undefined without positives";
  return static_cast<double>(num_rows() - pos) / static_cast<double>(pos);
}

std::string Dataset::Summary() const {
  std::ostringstream os;
  os << num_rows() << " rows x " << num_features() << " features, "
     << CountPositives() << " positives";
  if (CountPositives() > 0 && CountPositives() < num_rows()) {
    os << " (IR " << ImbalanceRatio() << ":1)";
  }
  return os.str();
}

DatasetView DatasetView::FromRows(const double* rows, std::size_t num_rows,
                                  std::size_t num_features, const int* labels,
                                  std::span<const FeatureKind> kinds) {
  SPE_CHECK(rows != nullptr || num_rows == 0);
  DatasetView v;
  v.rows_ = rows;
  v.row_labels_ = labels;
  v.row_kinds_ = kinds;
  v.row_features_ = num_features;
  v.num_rows_ = num_rows;
  return v;
}

DatasetView DatasetView::WithIndices(std::span<const std::size_t> abs) const {
  SPE_CHECK(matrix_ != nullptr)
      << "WithIndices needs a columnar parent; materialize row-major "
         "views before re-indexing them";
  DatasetView v;
  v.matrix_ = matrix_;
  v.indices_ = abs;
  v.num_rows_ = abs.size();
  v.version_ = version_;
  return v;
}

bool DatasetView::HasCategoricalFeatures() const {
  for (std::size_t j = 0; j < num_features(); ++j) {
    if (feature_kind(j) == FeatureKind::kCategorical) return true;
  }
  return false;
}

void DatasetView::CopyRowTo(std::size_t row, std::span<double> out) const {
  CheckAlive();
  SPE_CHECK_EQ(out.size(), num_features());
  if (rows_ != nullptr) {
    const double* src = rows_ + row * row_features_;
    for (std::size_t j = 0; j < row_features_; ++j) out[j] = src[j];
    AddScratchBytes(row_features_ * sizeof(double));
    return;
  }
  matrix_->CopyRowTo(RowIndex(row), out);
}

std::size_t DatasetView::CountPositives() const {
  CheckAlive();
  std::size_t count = 0;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    count += static_cast<std::size_t>(Label(i));
  }
  return count;
}

std::vector<std::size_t> DatasetView::PositiveIndices() const {
  CheckAlive();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (Label(i) == 1) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> DatasetView::NegativeIndices() const {
  CheckAlive();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_rows_; ++i) {
    if (Label(i) == 0) out.push_back(i);
  }
  return out;
}

std::vector<int> DatasetView::LabelsVector() const {
  CheckAlive();
  std::vector<int> out(num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) out[i] = Label(i);
  return out;
}

double DatasetView::ImbalanceRatio() const {
  const std::size_t pos = CountPositives();
  SPE_CHECK_GT(pos, 0u) << "imbalance ratio undefined without positives";
  return static_cast<double>(num_rows_ - pos) / static_cast<double>(pos);
}

Dataset DatasetView::Materialize() const {
  CheckAlive();
  const std::size_t d = num_features();
  Dataset out(d);
  for (std::size_t j = 0; j < d; ++j) out.set_feature_kind(j, feature_kind(j));
  out.Reserve(num_rows_);
  if (rows_ != nullptr) {
    for (std::size_t i = 0; i < num_rows_; ++i) {
      out.AddRow({rows_ + i * row_features_, row_features_}, Label(i));
    }
    return out;
  }
  // Columnar gather: column-by-column, so the copy itself streams.
  std::vector<double> scratch(d);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const std::size_t src = RowIndex(i);
    SPE_CHECK_LT(src, matrix_->num_rows());
    for (std::size_t j = 0; j < d; ++j) scratch[j] = matrix_->At(src, j);
    out.AddRow(scratch, matrix_->Label(src));
  }
  return out;
}

void RowMatrix::Reset(std::size_t rows, std::size_t features) {
  rows_ = rows;
  features_ = features;
  x_.resize(rows * features);
}

void RowMatrix::GatherFrom(const DatasetView& view) {
  Reset(view.num_rows(), view.num_features());
  for (std::size_t i = 0; i < rows_; ++i) view.CopyRowTo(i, Row(i));
}

void FeatureScaler::Fit(const DatasetView& data) {
  data.CheckAlive();
  SPE_CHECK_GT(data.num_rows(), 0u);
  const std::size_t d = data.num_features();
  means_.assign(d, 0.0);
  stds_.assign(d, 0.0);
  kinds_.resize(d);
  for (std::size_t j = 0; j < d; ++j) kinds_[j] = data.feature_kind(j);

  // Per-feature accumulators, rows in view order: the same additions in
  // the same order as the historical row-outer loop, so fitted moments
  // are bit-identical regardless of storage layout.
  const double n = static_cast<double>(data.num_rows());
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < data.num_rows(); ++i) sum += data.At(i, j);
    means_[j] = sum / n;
  }
  for (std::size_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      const double delta = data.At(i, j) - means_[j];
      acc += delta * delta;
    }
    stds_[j] = std::sqrt(acc / n);
    // Constant columns carry no information; map them to 0 rather than
    // dividing by zero.
    if (stds_[j] < 1e-12) stds_[j] = 1.0;
  }
}

void FeatureScaler::TransformRow(std::span<const double> in,
                                 std::span<double> out) const {
  SPE_CHECK_EQ(in.size(), means_.size());
  SPE_CHECK_EQ(out.size(), means_.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    out[j] = kinds_[j] == FeatureKind::kCategorical
                 ? in[j]
                 : (in[j] - means_[j]) / stds_[j];
  }
}

void FeatureScaler::Save(std::ostream& os) const {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "scaler " << means_.size() << "\n";
  for (std::size_t j = 0; j < means_.size(); ++j) {
    os << means_[j] << " " << stds_[j] << " "
       << (kinds_[j] == FeatureKind::kCategorical ? 1 : 0) << "\n";
  }
}

FeatureScaler FeatureScaler::Load(std::istream& is) {
  std::string keyword;
  std::size_t dim = 0;
  is >> keyword >> dim;
  SPE_CHECK(is.good() && keyword == "scaler") << "malformed scaler";
  FeatureScaler scaler;
  scaler.means_.resize(dim);
  scaler.stds_.resize(dim);
  scaler.kinds_.resize(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    int categorical = 0;
    is >> scaler.means_[j] >> scaler.stds_[j] >> categorical;
    scaler.kinds_[j] =
        categorical != 0 ? FeatureKind::kCategorical : FeatureKind::kNumerical;
  }
  SPE_CHECK(!is.fail()) << "truncated scaler";
  return scaler;
}

Dataset FeatureScaler::Transform(const DatasetView& data) const {
  SPE_CHECK_EQ(data.num_features(), means_.size());
  Dataset out = data.Materialize();
  TransformInPlace(out);
  return out;
}

void FeatureScaler::TransformInPlace(Dataset& data) const {
  SPE_CHECK_EQ(data.num_features(), means_.size());
  for (std::size_t j = 0; j < data.num_features(); ++j) {
    if (kinds_[j] == FeatureKind::kCategorical) continue;
    const double mean = means_[j];
    const double std = stds_[j];
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      data.Set(i, j, (data.At(i, j) - mean) / std);
    }
  }
}

void FeatureScaler::TransformToRows(const DatasetView& data,
                                    RowMatrix& out) const {
  SPE_CHECK_EQ(data.num_features(), means_.size());
  out.Reset(data.num_rows(), data.num_features());
  std::vector<double> scratch(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    data.CopyRowTo(i, scratch);
    TransformRow(scratch, out.Row(i));
  }
}

}  // namespace spe
