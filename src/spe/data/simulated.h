#ifndef SPE_DATA_SIMULATED_H_
#define SPE_DATA_SIMULATED_H_

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {

/// Simulated analogues of the paper's five real-world datasets.
///
/// The originals (Credit Fraud, Payment Simulation, Record Linkage,
/// KDDCUP-99) are proprietary or impractically large for a single-machine
/// reproduction; each generator below is a synthetic equivalent that
/// preserves the property the paper exercises: feature count and kinds,
/// an extreme imbalance ratio, and the dataset's difficulty regime
/// (class overlap / noise / near-separability). See DESIGN.md §3 for the
/// per-dataset substitution rationale. Sizes default to laptop scale and
/// scale linearly with `scale` (the benches read SPE_BENCH_SCALE).

/// Credit Fraud analogue: 30 numerical features (the original is PCA
/// output), moderate class overlap, a noisy minority fringe, IR ≈ 150:1.
Dataset MakeCreditFraudSim(Rng& rng, double scale = 1.0);

/// Payment Simulation analogue: 11 mixed features (transaction type and
/// destination type categorical), fraud confined to two transaction
/// types, long-tailed amounts, IR ≈ 300:1. Distance-based re-samplers
/// reject it (categorical columns), mirroring the paper's "- -" cells.
Dataset MakePaymentSim(Rng& rng, double scale = 1.0);

/// Record Linkage analogue: 12 similarity scores in [0, 1], nearly
/// separable (every strong ensemble reaches ≈ 1.0 AUCPRC; methods only
/// differ on threshold metrics such as MCC), IR ≈ 270:1.
Dataset MakeRecordLinkageSim(Rng& rng, double scale = 1.0);

/// Which KDDCUP-99 two-class task to emulate.
enum class KddTask {
  kDosVsPrb,  // moderate IR (≈ 95:1), quite separable: everything ≈ 1.0
  kDosVsR2l,  // extreme IR (≈ 500:1 scaled), heavy overlap: Easy fails
};

/// KDDCUP-99 analogue: 20 integer / categorical connection features.
Dataset MakeKddSim(KddTask task, Rng& rng, double scale = 1.0);

}  // namespace spe

#endif  // SPE_DATA_SIMULATED_H_
