#ifndef SPE_DATA_ENCODING_H_
#define SPE_DATA_ENCODING_H_

#include <vector>

#include "spe/data/dataset.h"

namespace spe {

/// One-hot encoder for categorical columns.
///
/// Distance-based methods and linear / neural models are undefined over
/// integer category codes (the inapplicability the paper leans on for
/// its "- -" cells). One-hot expansion is the standard escape hatch:
/// after Fit + Transform every column is numerical, so KNN / LR / SVM /
/// MLP — and the SMOTE family — run on datasets like Payment Simulation.
/// Tree models don't need it (they split codes ordinally).
///
/// Categories are the distinct codes seen during Fit, one output column
/// each, in ascending code order; codes unseen at Fit map to all-zeros.
/// Numerical columns pass through unchanged, in their original order
/// followed by the expanded categorical blocks.
class OneHotEncoder {
 public:
  /// Learns the category vocabulary of every categorical column.
  void Fit(const Dataset& data);

  bool fitted() const { return !layout_.empty(); }

  /// Width of the encoded feature space.
  std::size_t num_output_features() const { return num_output_features_; }

  /// Returns the encoded dataset (labels preserved, schema all-numeric).
  Dataset Transform(const Dataset& data) const;

 private:
  struct Column {
    bool categorical = false;
    std::size_t output_offset = 0;          // first output column
    std::vector<double> categories;         // ascending codes (categorical)
  };

  std::vector<Column> layout_;
  std::size_t num_output_features_ = 0;
};

}  // namespace spe

#endif  // SPE_DATA_ENCODING_H_
