#ifndef SPE_DATA_LIBSVM_H_
#define SPE_DATA_LIBSVM_H_

#include <string>

#include "spe/data/dataset.h"

namespace spe {

/// Loads a dataset in LIBSVM/SVMlight sparse text format:
///
///   <label> <index>:<value> <index>:<value> ...
///
/// Indices are 1-based and may be sparse; unlisted features are 0 (the
/// format's convention). Labels may be {0, 1}, {-1, +1} (mapped to
/// {0, 1}) or {1, 2} (mapped to {0, 1}, another common encoding).
/// `num_features` forces the width; 0 infers it from the largest index
/// seen. Aborts on malformed rows.
Dataset LoadLibsvm(const std::string& path, std::size_t num_features = 0);

/// Writes `data` in LIBSVM format (zero values are omitted, per the
/// format's sparse convention).
void SaveLibsvm(const Dataset& data, const std::string& path);

}  // namespace spe

#endif  // SPE_DATA_LIBSVM_H_
