#ifndef SPE_DATA_CSV_H_
#define SPE_DATA_CSV_H_

#include <string>

#include "spe/data/dataset.h"

namespace spe {

/// Loads a binary-classification dataset from a CSV file.
///
/// Every column except `label_column` becomes a numerical feature; the
/// label column must contain 0/1 values. `has_header` skips the first
/// line. Aborts (CHECK) on malformed rows — a silently truncated dataset
/// would invalidate every downstream experiment.
Dataset LoadCsv(const std::string& path, std::size_t label_column,
                bool has_header = true);

/// Writes `data` as CSV with columns f0..f{d-1},label. Used by the figure
/// benches to dump series/grids that plotting scripts can pick up.
void SaveCsv(const Dataset& data, const std::string& path);

}  // namespace spe

#endif  // SPE_DATA_CSV_H_
