#include "spe/data/split.h"

#include <vector>

#include "spe/common/check.h"

namespace spe {
namespace {

// Splits `indices` (already shuffled) into three consecutive slices with
// the given fractions and appends each slice to the matching output.
void SliceInto(const std::vector<std::size_t>& indices, double f_train,
               double f_val, double f_test, std::vector<std::size_t>& train,
               std::vector<std::size_t>& val, std::vector<std::size_t>& test) {
  const std::size_t n = indices.size();
  const auto n_train = static_cast<std::size_t>(f_train * static_cast<double>(n));
  const auto n_val = static_cast<std::size_t>(f_val * static_cast<double>(n));
  auto n_test = static_cast<std::size_t>(f_test * static_cast<double>(n));
  if (n_train + n_val + n_test > n) n_test = n - n_train - n_val;
  for (std::size_t i = 0; i < n_train; ++i) train.push_back(indices[i]);
  for (std::size_t i = n_train; i < n_train + n_val; ++i) val.push_back(indices[i]);
  for (std::size_t i = n_train + n_val; i < n_train + n_val + n_test; ++i) {
    test.push_back(indices[i]);
  }
}

}  // namespace

TrainValTest StratifiedSplit(const Dataset& data, double train_fraction,
                             double validation_fraction, double test_fraction,
                             Rng& rng) {
  SPE_CHECK_GT(train_fraction, 0.0);
  SPE_CHECK_GE(validation_fraction, 0.0);
  SPE_CHECK_GE(test_fraction, 0.0);
  SPE_CHECK_LE(train_fraction + validation_fraction + test_fraction, 1.0 + 1e-9);

  std::vector<std::size_t> pos = data.PositiveIndices();
  std::vector<std::size_t> neg = data.NegativeIndices();
  rng.Shuffle(pos);
  rng.Shuffle(neg);

  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> val_idx;
  std::vector<std::size_t> test_idx;
  SliceInto(pos, train_fraction, validation_fraction, test_fraction, train_idx,
            val_idx, test_idx);
  SliceInto(neg, train_fraction, validation_fraction, test_fraction, train_idx,
            val_idx, test_idx);
  rng.Shuffle(train_idx);
  rng.Shuffle(val_idx);
  rng.Shuffle(test_idx);

  return TrainValTest{data.Subset(train_idx), data.Subset(val_idx),
                      data.Subset(test_idx)};
}

TrainTest StratifiedSplit2(const Dataset& data, double train_fraction, Rng& rng) {
  TrainValTest parts =
      StratifiedSplit(data, train_fraction, 0.0, 1.0 - train_fraction, rng);
  return TrainTest{std::move(parts.train), std::move(parts.test)};
}

}  // namespace spe
