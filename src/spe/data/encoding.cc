#include "spe/data/encoding.h"

#include <algorithm>

#include "spe/common/check.h"

namespace spe {

void OneHotEncoder::Fit(const Dataset& data) {
  SPE_CHECK_GT(data.num_rows(), 0u);
  layout_.assign(data.num_features(), Column{});

  std::size_t offset = 0;
  for (std::size_t j = 0; j < data.num_features(); ++j) {
    Column& column = layout_[j];
    column.output_offset = offset;
    if (data.feature_kind(j) != FeatureKind::kCategorical) {
      offset += 1;
      continue;
    }
    column.categorical = true;
    std::vector<double> codes;
    codes.reserve(data.num_rows());
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      codes.push_back(data.At(i, j));
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    column.categories = std::move(codes);
    offset += column.categories.size();
  }
  num_output_features_ = offset;
}

Dataset OneHotEncoder::Transform(const Dataset& data) const {
  SPE_CHECK(fitted()) << "transform before fit";
  SPE_CHECK_EQ(data.num_features(), layout_.size());

  Dataset out(num_output_features_);
  out.Reserve(data.num_rows());
  std::vector<double> row(num_output_features_);
  std::vector<double> in(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    std::fill(row.begin(), row.end(), 0.0);
    data.CopyRowTo(i, in);
    for (std::size_t j = 0; j < layout_.size(); ++j) {
      const Column& column = layout_[j];
      if (!column.categorical) {
        row[column.output_offset] = in[j];
        continue;
      }
      const auto it = std::lower_bound(column.categories.begin(),
                                       column.categories.end(), in[j]);
      // Codes unseen during Fit stay all-zero (the "other" bucket).
      if (it != column.categories.end() && *it == in[j]) {
        row[column.output_offset +
            static_cast<std::size_t>(it - column.categories.begin())] = 1.0;
      }
    }
    out.AddRow(row, data.Label(i));
  }
  return out;
}

}  // namespace spe
