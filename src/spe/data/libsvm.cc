#include "spe/data/libsvm.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "spe/common/check.h"
#include "spe/common/fault.h"
#include "spe/common/retry.h"

namespace spe {
namespace {

struct SparseRow {
  int raw_label = 0;
  std::vector<std::pair<std::size_t, double>> entries;  // 0-based index
};

SparseRow ParseLine(const std::string& line, const std::string& path,
                    std::size_t line_number) {
  SparseRow row;
  std::istringstream is(line);
  SPE_CHECK(static_cast<bool>(is >> row.raw_label))
      << path << ":" << line_number << ": missing label";
  std::string token;
  while (is >> token) {
    if (!token.empty() && token[0] == '#') break;  // trailing comment
    const std::size_t colon = token.find(':');
    SPE_CHECK_NE(colon, std::string::npos)
        << path << ":" << line_number << ": bad feature token '" << token << "'";
    const long index = std::stol(token.substr(0, colon));
    SPE_CHECK_GE(index, 1) << path << ":" << line_number
                           << ": LIBSVM indices are 1-based";
    const double value = std::stod(token.substr(colon + 1));
    row.entries.emplace_back(static_cast<std::size_t>(index - 1), value);
  }
  return row;
}

int MapLabel(int raw, const std::string& path) {
  switch (raw) {
    case 0:
    case -1:
      return 0;
    case 1:
      return 1;
    case 2:
      return 1;  // the {1, 2} convention: 2 is the positive class
    default:
      SPE_CHECK(false) << path << ": unsupported label " << raw;
      return 0;  // unreachable
  }
}

}  // namespace

Dataset LoadLibsvm(const std::string& path, std::size_t num_features) {
  // Transient fault point, mirroring LoadCsv.
  if (Faults().ShouldFailDataIo()) {
    throw TransientIoError(
        "injected fault: transient data read failed for " + path,
        /*injected=*/true);
  }
  std::ifstream in(path);
  SPE_CHECK(in.good()) << "cannot open " << path;

  std::vector<SparseRow> rows;
  std::size_t max_index = 0;
  bool saw_label_one = false;
  bool saw_label_two = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(ParseLine(line, path, line_number));
    for (const auto& [index, value] : rows.back().entries) {
      max_index = std::max(max_index, index + 1);
    }
    saw_label_one |= rows.back().raw_label == 1;
    saw_label_two |= rows.back().raw_label == 2;
  }
  SPE_CHECK(!rows.empty()) << path << ": no data rows";

  const std::size_t width = num_features > 0 ? num_features : max_index;
  SPE_CHECK_GE(width, max_index)
      << path << ": num_features smaller than the largest feature index";

  Dataset data(width);
  data.Reserve(rows.size());
  std::vector<double> dense(width);
  for (const SparseRow& row : rows) {
    std::fill(dense.begin(), dense.end(), 0.0);
    for (const auto& [index, value] : row.entries) dense[index] = value;
    // {1, 2}-encoded files use 1 as the negative class; plain {0/-1, 1}
    // files use 1 as positive. Disambiguate by whether a 2 ever appears.
    const int label = (saw_label_two && row.raw_label == 1)
                          ? 0
                          : MapLabel(row.raw_label, path);
    data.AddRow(dense, label);
  }
  return data;
}

void SaveLibsvm(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  SPE_CHECK(out.good()) << "cannot write " << path;
  out.precision(std::numeric_limits<double>::max_digits10);
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    out << data.Label(i);
    data.CopyRowTo(i, row);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0.0) out << " " << (j + 1) << ":" << row[j];
    }
    out << "\n";
  }
}

}  // namespace spe
