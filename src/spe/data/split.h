#ifndef SPE_DATA_SPLIT_H_
#define SPE_DATA_SPLIT_H_

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {

/// Train / validation / test partition. The paper's real-world protocol
/// (§VI-B.1) uses 60 / 20 / 20 with the validation set kept at the
/// original imbalanced distribution (no re-sampling); GBDT consumes it
/// for early stopping.
struct TrainValTest {
  Dataset train;
  Dataset validation;
  Dataset test;
};

/// Stratified split: positives and negatives are partitioned separately
/// so each part preserves the imbalance ratio. Fractions must be positive
/// and sum to at most 1 (any remainder is dropped).
TrainValTest StratifiedSplit(const Dataset& data, double train_fraction,
                             double validation_fraction, double test_fraction,
                             Rng& rng);

/// Two-way stratified split (train_fraction / 1 - train_fraction).
struct TrainTest {
  Dataset train;
  Dataset test;
};
TrainTest StratifiedSplit2(const Dataset& data, double train_fraction, Rng& rng);

}  // namespace spe

#endif  // SPE_DATA_SPLIT_H_
