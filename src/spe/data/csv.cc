#include "spe/data/csv.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "spe/common/check.h"
#include "spe/common/fault.h"
#include "spe/common/retry.h"

namespace spe {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  // A trailing comma means a final empty field.
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

Dataset LoadCsv(const std::string& path, std::size_t label_column, bool has_header) {
  // Transient fault point: a recoverable read failure before any bytes
  // are consumed; callers (spe_cli's LoadData) retry with backoff.
  if (Faults().ShouldFailDataIo()) {
    throw TransientIoError(
        "injected fault: transient data read failed for " + path,
        /*injected=*/true);
  }
  std::ifstream in(path);
  SPE_CHECK(in.good()) << "cannot open " << path;

  std::string line;
  if (has_header) std::getline(in, line);

  Dataset data;
  bool first_row = true;
  std::size_t line_number = has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line);
    SPE_CHECK_GT(fields.size(), label_column)
        << path << ":" << line_number << ": missing label column";
    if (first_row) {
      data = Dataset(fields.size() - 1);
      first_row = false;
    }
    SPE_CHECK_EQ(fields.size(), data.num_features() + 1)
        << path << ":" << line_number << ": inconsistent column count";

    std::vector<double> features;
    features.reserve(data.num_features());
    int label = -1;
    for (std::size_t j = 0; j < fields.size(); ++j) {
      if (j == label_column) {
        label = std::stoi(fields[j]);
      } else {
        features.push_back(std::stod(fields[j]));
      }
    }
    data.AddRow(features, label);
  }
  return data;
}

void SaveCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  SPE_CHECK(out.good()) << "cannot write " << path;
  // max_digits10 guarantees doubles survive a save/load round trip.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t j = 0; j < data.num_features(); ++j) out << "f" << j << ",";
  out << "label\n";
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    data.CopyRowTo(i, row);
    for (double v : row) out << v << ",";
    out << data.Label(i) << "\n";
  }
}

}  // namespace spe
