#include "spe/metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "spe/common/check.h"

namespace spe {
namespace {

double SafeDiv(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

// Indices of `scores` sorted by score descending (stable so equal scores
// keep input order; ties are then merged explicitly by the curve code).
std::vector<std::size_t> DescendingOrder(const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

double Recall(const ConfusionMatrix& m) {
  return SafeDiv(static_cast<double>(m.tp), static_cast<double>(m.tp + m.fn));
}

double Precision(const ConfusionMatrix& m) {
  return SafeDiv(static_cast<double>(m.tp), static_cast<double>(m.tp + m.fp));
}

double F1Score(const ConfusionMatrix& m) {
  const double r = Recall(m);
  const double p = Precision(m);
  return SafeDiv(2.0 * r * p, r + p);
}

double GMean(const ConfusionMatrix& m) {
  return std::sqrt(Recall(m) * Precision(m));
}

double GMeanTprTnr(const ConfusionMatrix& m) {
  const double tpr = Recall(m);
  const double tnr =
      SafeDiv(static_cast<double>(m.tn), static_cast<double>(m.tn + m.fp));
  return std::sqrt(tpr * tnr);
}

double Mcc(const ConfusionMatrix& m) {
  const double tp = static_cast<double>(m.tp);
  const double tn = static_cast<double>(m.tn);
  const double fp = static_cast<double>(m.fp);
  const double fn = static_cast<double>(m.fn);
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  return SafeDiv(tp * tn - fp * fn, denom);
}

std::vector<PrPoint> PrCurve(const std::vector<int>& labels,
                             const std::vector<double>& scores) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  const auto total_positives = static_cast<double>(
      std::count(labels.begin(), labels.end(), 1));
  SPE_CHECK_GT(total_positives, 0.0) << "PR curve undefined without positives";

  const std::vector<std::size_t> order = DescendingOrder(scores);
  std::vector<PrPoint> curve;
  curve.reserve(labels.size() + 1);

  double tp = 0.0;
  double fp = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    // Consume the whole tie group at this score before emitting a point:
    // examples sharing a score are indistinguishable to any threshold.
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]] == 1) {
        tp += 1.0;
      } else {
        fp += 1.0;
      }
      ++i;
    }
    curve.push_back(PrPoint{tp / total_positives, tp / (tp + fp), score});
  }
  return curve;
}

double AucPrc(const std::vector<int>& labels, const std::vector<double>& scores) {
  const std::vector<PrPoint> curve = PrCurve(labels, scores);
  double auc = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& p : curve) {
    auc += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return auc;
}

double AucRoc(const std::vector<int>& labels, const std::vector<double>& scores) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  const auto positives = static_cast<double>(
      std::count(labels.begin(), labels.end(), 1));
  const auto negatives = static_cast<double>(labels.size()) - positives;
  SPE_CHECK_GT(positives, 0.0);
  SPE_CHECK_GT(negatives, 0.0);

  // Rank-based (Mann-Whitney) formulation with midranks for ties.
  const std::vector<std::size_t> order = DescendingOrder(scores);
  double rank_sum_positive = 0.0;  // ranks 1..n, 1 = highest score
  std::size_t i = 0;
  while (i < order.size()) {
    const double score = scores[order[i]];
    std::size_t j = i;
    std::size_t ties_positive = 0;
    while (j < order.size() && scores[order[j]] == score) {
      ties_positive += static_cast<std::size_t>(labels[order[j]] == 1);
      ++j;
    }
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    rank_sum_positive += midrank * static_cast<double>(ties_positive);
    i = j;
  }
  // rank 1 is the *best* score; convert to the standard ascending-rank sum.
  const double n = static_cast<double>(labels.size());
  const double ascending_rank_sum = positives * (n + 1.0) - rank_sum_positive;
  const double u = ascending_rank_sum - positives * (positives + 1.0) / 2.0;
  return u / (positives * negatives);
}

std::vector<RocPoint> RocCurve(const std::vector<int>& labels,
                               const std::vector<double>& scores) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  const auto positives = static_cast<double>(
      std::count(labels.begin(), labels.end(), 1));
  const auto negatives = static_cast<double>(labels.size()) - positives;
  SPE_CHECK_GT(positives, 0.0);
  SPE_CHECK_GT(negatives, 0.0);

  const std::vector<std::size_t> order = DescendingOrder(scores);
  std::vector<RocPoint> curve;
  curve.push_back(RocPoint{0.0, 0.0, std::numeric_limits<double>::infinity()});
  double tp = 0.0;
  double fp = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]] == 1) {
        tp += 1.0;
      } else {
        fp += 1.0;
      }
      ++i;
    }
    curve.push_back(RocPoint{fp / negatives, tp / positives, score});
  }
  return curve;
}

double BrierScore(const std::vector<int>& labels,
                  const std::vector<double>& scores) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  SPE_CHECK(!labels.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double d = scores[i] - static_cast<double>(labels[i]);
    sum += d * d;
  }
  return sum / static_cast<double>(labels.size());
}

ThresholdSearchResult BestThreshold(
    const std::vector<int>& labels, const std::vector<double>& scores,
    const std::function<double(const ConfusionMatrix&)>& metric) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  SPE_CHECK(!labels.empty());

  // Sweep thresholds at the distinct scores, maintaining the confusion
  // matrix incrementally: one O(n log n) sort instead of O(n) full
  // evaluations.
  const std::vector<std::size_t> order = DescendingOrder(scores);
  ConfusionMatrix m;
  for (int y : labels) {
    if (y == 1) {
      ++m.fn;
    } else {
      ++m.tn;
    }
  }

  ThresholdSearchResult best;
  best.threshold = std::numeric_limits<double>::infinity();
  best.value = metric(m);  // predict-nothing baseline
  std::size_t i = 0;
  while (i < order.size()) {
    const double score = scores[order[i]];
    // Move every sample at this score to the predicted-positive side.
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]] == 1) {
        ++m.tp;
        --m.fn;
      } else {
        ++m.fp;
        --m.tn;
      }
      ++i;
    }
    const double value = metric(m);
    if (value > best.value) {
      best.value = value;
      best.threshold = score;
    }
  }
  return best;
}

ThresholdSearchResult BestF1Threshold(const std::vector<int>& labels,
                                      const std::vector<double>& scores) {
  return BestThreshold(labels, scores,
                       [](const ConfusionMatrix& m) { return F1Score(m); });
}

ScoreSummary Evaluate(const std::vector<int>& labels,
                      const std::vector<double>& scores, double threshold) {
  const ConfusionMatrix m = ConfusionAt(labels, scores, threshold);
  return ScoreSummary{AucPrc(labels, scores), F1Score(m), GMean(m), Mcc(m)};
}

}  // namespace spe
