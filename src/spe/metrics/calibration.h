#ifndef SPE_METRICS_CALIBRATION_H_
#define SPE_METRICS_CALIBRATION_H_

#include <cstddef>
#include <vector>

namespace spe {

/// Probability calibration for imbalanced ensembles.
///
/// Ensembles trained on *balanced* subsets (SPE, UnderBagging, ...)
/// systematically over-estimate the positive probability on data with
/// the original skew: their scores rank well (AUCPRC) but are not
/// calibrated posteriors. Fitting one of these calibrators on a
/// *held-out, naturally distributed* validation set (the paper's Ddev)
/// maps scores back to usable probabilities. Both calibrators are
/// monotone, so ranking metrics are unchanged.

/// Platt scaling: p = sigmoid(a * score + b), fitted by gradient descent
/// on the log loss.
class PlattCalibrator {
 public:
  /// Fits a and b on (score, label) pairs. Requires both classes.
  void Fit(const std::vector<int>& labels, const std::vector<double>& scores);

  /// Calibrated probability for one raw score. Requires Fit.
  double Transform(double score) const;
  std::vector<double> Transform(const std::vector<double>& scores) const;

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  bool fitted_ = false;
  double a_ = 1.0;
  double b_ = 0.0;
};

/// Isotonic regression via the pool-adjacent-violators algorithm: the
/// best monotone non-decreasing fit of label on score. Nonparametric —
/// stronger than Platt when the miscalibration is not sigmoidal, but
/// needs more validation data. Transform interpolates linearly between
/// the fitted block centers and clamps outside the observed range.
class IsotonicCalibrator {
 public:
  void Fit(const std::vector<int>& labels, const std::vector<double>& scores);

  double Transform(double score) const;
  std::vector<double> Transform(const std::vector<double>& scores) const;

  /// Fitted step-function knots (ascending score): exposed for tests.
  const std::vector<double>& knot_scores() const { return knot_scores_; }
  const std::vector<double>& knot_values() const { return knot_values_; }

 private:
  std::vector<double> knot_scores_;
  std::vector<double> knot_values_;
};

/// One bucket of a reliability diagram.
struct ReliabilityBucket {
  double mean_score = 0.0;     ///< average predicted probability
  double fraction_positive = 0.0;  ///< observed positive rate
  std::size_t count = 0;       ///< samples in the bucket
};

/// Reliability-diagram data: scores bucketed into `num_buckets` equal
/// [0, 1] slices; empty buckets are omitted. A calibrated model tracks
/// the diagonal (mean_score ~= fraction_positive); balanced-subset
/// ensembles on skewed data sit far above it.
std::vector<ReliabilityBucket> ReliabilityCurve(
    const std::vector<int>& labels, const std::vector<double>& scores,
    std::size_t num_buckets = 10);

/// Expected calibration error: the bucket-count-weighted mean absolute
/// gap between predicted and observed positive rates.
double ExpectedCalibrationError(const std::vector<int>& labels,
                                const std::vector<double>& scores,
                                std::size_t num_buckets = 10);

}  // namespace spe

#endif  // SPE_METRICS_CALIBRATION_H_
