#ifndef SPE_METRICS_METRICS_H_
#define SPE_METRICS_METRICS_H_

#include <functional>
#include <vector>

#include "spe/metrics/confusion.h"

namespace spe {

/// Threshold metrics, defined as in §II of the paper. Degenerate cases
/// (zero denominators) return 0, matching common toolkit behaviour.
double Recall(const ConfusionMatrix& m);
double Precision(const ConfusionMatrix& m);
double F1Score(const ConfusionMatrix& m);

/// The paper's G-mean: sqrt(recall * precision) (§II). Note this differs
/// from the classic imbalanced-learning G-mean sqrt(TPR * TNR), provided
/// below as GMeanTprTnr; the benches report the paper's definition.
double GMean(const ConfusionMatrix& m);
double GMeanTprTnr(const ConfusionMatrix& m);

/// Matthews correlation coefficient.
double Mcc(const ConfusionMatrix& m);

/// One point of a precision-recall curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 1.0;
  double threshold = 1.0;
};

/// Full precision-recall curve, one point per distinct score, recall
/// non-decreasing. Requires at least one positive label.
std::vector<PrPoint> PrCurve(const std::vector<int>& labels,
                             const std::vector<double>& scores);

/// Area under the precision-recall curve computed as average precision
/// (sum over thresholds of (R_i - R_{i-1}) * P_i), the estimator used by
/// scikit-learn and therefore by the paper's reported AUCPRC numbers.
double AucPrc(const std::vector<int>& labels, const std::vector<double>& scores);

/// Area under the ROC curve (trapezoidal; ties handled exactly).
/// Not reported in the paper's tables but widely used alongside AUCPRC.
double AucRoc(const std::vector<int>& labels, const std::vector<double>& scores);

/// One point of a ROC curve.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 1.0;
};

/// Full ROC curve, one point per distinct score plus the (0,0) origin,
/// FPR/TPR non-decreasing. Requires both classes present.
std::vector<RocPoint> RocCurve(const std::vector<int>& labels,
                               const std::vector<double>& scores);

/// Brier score: mean squared error of the predicted probabilities —
/// the calibration-sensitive companion to the ranking metrics.
double BrierScore(const std::vector<int>& labels,
                  const std::vector<double>& scores);

/// The threshold (among distinct scores) maximizing `metric` over the
/// induced confusion matrices, with the metric value achieved. Useful
/// for deployment: ensembles trained on balanced subsets have a natural
/// 0.5 cut, but a validation-tuned threshold often dominates it.
struct ThresholdSearchResult {
  double threshold = 0.5;
  double value = 0.0;
};
ThresholdSearchResult BestThreshold(
    const std::vector<int>& labels, const std::vector<double>& scores,
    const std::function<double(const ConfusionMatrix&)>& metric);

/// BestThreshold specialization for F1 (the common deployment choice).
ThresholdSearchResult BestF1Threshold(const std::vector<int>& labels,
                                      const std::vector<double>& scores);

/// Bundle of the four criteria every paper table reports. Threshold
/// metrics use the fixed 0.5 cut (ensemble votes are averaged
/// probabilities, so 0.5 is the natural decision boundary).
struct ScoreSummary {
  double aucprc = 0.0;
  double f1 = 0.0;
  double gmean = 0.0;
  double mcc = 0.0;
};

ScoreSummary Evaluate(const std::vector<int>& labels,
                      const std::vector<double>& scores,
                      double threshold = 0.5);

}  // namespace spe

#endif  // SPE_METRICS_METRICS_H_
