#ifndef SPE_METRICS_CONFUSION_H_
#define SPE_METRICS_CONFUSION_H_

#include <cstddef>
#include <vector>

namespace spe {

/// Binary confusion matrix (Table I of the paper).
struct ConfusionMatrix {
  std::size_t tp = 0;  ///< positives predicted positive
  std::size_t fn = 0;  ///< positives predicted negative
  std::size_t fp = 0;  ///< negatives predicted positive
  std::size_t tn = 0;  ///< negatives predicted negative

  std::size_t total() const { return tp + fn + fp + tn; }
};

/// Builds a confusion matrix by thresholding predicted probabilities:
/// a row counts as predicted-positive when score >= threshold.
/// `labels` and `scores` must have the same length.
ConfusionMatrix ConfusionAt(const std::vector<int>& labels,
                            const std::vector<double>& scores,
                            double threshold = 0.5);

}  // namespace spe

#endif  // SPE_METRICS_CONFUSION_H_
