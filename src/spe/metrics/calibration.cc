#include "spe/metrics/calibration.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "spe/common/check.h"
#include "spe/common/math.h"

namespace spe {

void PlattCalibrator::Fit(const std::vector<int>& labels,
                          const std::vector<double>& scores) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  const auto positives = std::count(labels.begin(), labels.end(), 1);
  SPE_CHECK_GT(positives, 0) << "Platt scaling needs both classes";
  SPE_CHECK_LT(static_cast<std::size_t>(positives), labels.size())
      << "Platt scaling needs both classes";

  const double n = static_cast<double>(labels.size());
  a_ = 1.0;
  b_ = 0.0;
  // Plain gradient descent on the log loss; the 2-parameter problem is
  // convex, a few hundred steps converge comfortably.
  for (int iter = 0; iter < 500; ++iter) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const double err =
          Sigmoid(a_ * scores[i] + b_) - static_cast<double>(labels[i]);
      grad_a += err * scores[i];
      grad_b += err;
    }
    a_ -= 2.0 * grad_a / n;
    b_ -= 2.0 * grad_b / n;
  }
  fitted_ = true;
}

double PlattCalibrator::Transform(double score) const {
  SPE_CHECK(fitted_) << "transform before fit";
  return Sigmoid(a_ * score + b_);
}

std::vector<double> PlattCalibrator::Transform(
    const std::vector<double>& scores) const {
  std::vector<double> out(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) out[i] = Transform(scores[i]);
  return out;
}

void IsotonicCalibrator::Fit(const std::vector<int>& labels,
                             const std::vector<double>& scores) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  SPE_CHECK(!labels.empty());

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return scores[x] < scores[y];
  });

  // Pool adjacent violators over the score-sorted labels.
  struct Block {
    double sum;     // sum of labels
    double weight;  // number of samples
    double score_sum;
    double value() const { return sum / weight; }
  };
  std::vector<Block> blocks;
  blocks.reserve(order.size());
  for (std::size_t idx : order) {
    blocks.push_back(Block{static_cast<double>(labels[idx]), 1.0, scores[idx]});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].value() >= blocks.back().value()) {
      // Merge the violating pair.
      Block top = blocks.back();
      blocks.pop_back();
      blocks.back().sum += top.sum;
      blocks.back().weight += top.weight;
      blocks.back().score_sum += top.score_sum;
    }
  }

  knot_scores_.clear();
  knot_values_.clear();
  for (const Block& b : blocks) {
    knot_scores_.push_back(b.score_sum / b.weight);  // block score centroid
    knot_values_.push_back(b.value());
  }
}

double IsotonicCalibrator::Transform(double score) const {
  SPE_CHECK(!knot_scores_.empty()) << "transform before fit";
  if (score <= knot_scores_.front()) return knot_values_.front();
  if (score >= knot_scores_.back()) return knot_values_.back();
  const auto upper =
      std::upper_bound(knot_scores_.begin(), knot_scores_.end(), score);
  const auto hi = static_cast<std::size_t>(upper - knot_scores_.begin());
  const std::size_t lo = hi - 1;
  const double span = knot_scores_[hi] - knot_scores_[lo];
  if (span <= 0.0) return knot_values_[lo];
  const double t = (score - knot_scores_[lo]) / span;
  return knot_values_[lo] + t * (knot_values_[hi] - knot_values_[lo]);
}

std::vector<double> IsotonicCalibrator::Transform(
    const std::vector<double>& scores) const {
  std::vector<double> out(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) out[i] = Transform(scores[i]);
  return out;
}

std::vector<ReliabilityBucket> ReliabilityCurve(
    const std::vector<int>& labels, const std::vector<double>& scores,
    std::size_t num_buckets) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  SPE_CHECK_GT(num_buckets, 0u);
  std::vector<ReliabilityBucket> buckets(num_buckets);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    SPE_CHECK_GE(scores[i], 0.0) << "reliability needs probabilities";
    SPE_CHECK_LE(scores[i], 1.0) << "reliability needs probabilities";
    auto b = static_cast<std::size_t>(scores[i] *
                                      static_cast<double>(num_buckets));
    if (b >= num_buckets) b = num_buckets - 1;  // score == 1
    buckets[b].mean_score += scores[i];
    buckets[b].fraction_positive += static_cast<double>(labels[i]);
    ++buckets[b].count;
  }
  std::vector<ReliabilityBucket> out;
  for (ReliabilityBucket& bucket : buckets) {
    if (bucket.count == 0) continue;
    bucket.mean_score /= static_cast<double>(bucket.count);
    bucket.fraction_positive /= static_cast<double>(bucket.count);
    out.push_back(bucket);
  }
  return out;
}

double ExpectedCalibrationError(const std::vector<int>& labels,
                                const std::vector<double>& scores,
                                std::size_t num_buckets) {
  const auto curve = ReliabilityCurve(labels, scores, num_buckets);
  double error = 0.0;
  for (const ReliabilityBucket& bucket : curve) {
    error += static_cast<double>(bucket.count) *
             std::abs(bucket.mean_score - bucket.fraction_positive);
  }
  return error / static_cast<double>(labels.size());
}

}  // namespace spe
