#include "spe/metrics/confusion.h"

#include "spe/common/check.h"

namespace spe {

ConfusionMatrix ConfusionAt(const std::vector<int>& labels,
                            const std::vector<double>& scores, double threshold) {
  SPE_CHECK_EQ(labels.size(), scores.size());
  ConfusionMatrix m;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const bool predicted_positive = scores[i] >= threshold;
    if (labels[i] == 1) {
      predicted_positive ? ++m.tp : ++m.fn;
    } else {
      predicted_positive ? ++m.fp : ++m.tn;
    }
  }
  return m;
}

}  // namespace spe
