#ifndef SPE_CLASSIFIERS_LINEAR_SVM_H_
#define SPE_CLASSIFIERS_LINEAR_SVM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/rff.h"
#include "spe/data/dataset.h"

namespace spe {

struct SvmConfig {
  /// kLinear trains directly on (standardized) inputs; kRbfApprox first
  /// maps them through random Fourier features, approximating the
  /// RBF-kernel SVC the paper uses in Table II (see DESIGN.md §3).
  enum class Kernel { kLinear, kRbfApprox };

  Kernel kernel = Kernel::kLinear;
  /// Soft-margin C as in sklearn's SVC; Pegasos' lambda is 1/(C*n).
  double c = 1.0;
  std::size_t epochs = 30;
  std::size_t rff_dim = 256;   // Fourier features for kRbfApprox
  double gamma = 0.0;          // 0 = 1/d heuristic
  std::uint64_t seed = 0;
};

/// Support vector machine trained with the Pegasos stochastic sub-gradient
/// solver on hinge loss. Probabilities come from Platt scaling: a 1-D
/// logistic model sigmoid(A * margin + B) fitted on the training margins.
/// Sample weights scale each example's hinge sub-gradient.
class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(const SvmConfig& config = {});

  void Fit(const DatasetView& train) override;
  void FitWeighted(const DatasetView& train,
                   const std::vector<double>& weights) override;
  bool SupportsSampleWeights() const override { return true; }
  double PredictRow(std::span<const double> x) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override { return "SVM"; }

  /// Raw decision value w.x + b in the (possibly Fourier) feature space.
  double Margin(std::span<const double> x) const;

 private:
  std::vector<double> MapRow(std::span<const double> x) const;

  SvmConfig config_;
  FeatureScaler scaler_;
  RandomFourierFeatures rff_;
  std::vector<double> w_;
  double bias_ = 0.0;
  double platt_a_ = -1.0;
  double platt_b_ = 0.0;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_LINEAR_SVM_H_
