#ifndef SPE_CLASSIFIERS_TRAINING_OBSERVER_H_
#define SPE_CLASSIFIERS_TRAINING_OBSERVER_H_

#include <cstddef>
#include <functional>

#include "spe/classifiers/classifier.h"
#include "spe/data/dataset.h"

namespace spe {

/// Snapshot passed to an iteration observer after an ensemble trainer
/// finishes one base model. Used by the figure benches to record
/// training curves (Fig. 5, Fig. 7) and per-iteration training subsets
/// (Fig. 6) without re-training per point.
struct IterationInfo {
  /// 1-based index of the member just trained.
  std::size_t iteration = 0;
  /// The members that would participate in the final prediction so far.
  const VotingEnsemble& ensemble;
  /// The re-sampled subset the newest member was fitted on. A view
  /// (by value — views are two pointers) valid only for the duration of
  /// the callback: the trainer reuses its subset buffers afterwards.
  DatasetView training_subset;
};

using IterationCallback = std::function<void(const IterationInfo&)>;

}  // namespace spe

#endif  // SPE_CLASSIFIERS_TRAINING_OBSERVER_H_
