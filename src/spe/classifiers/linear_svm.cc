#include "spe/classifiers/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "spe/common/check.h"
#include "spe/common/rng.h"

namespace spe {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LinearSvm::LinearSvm(const SvmConfig& config) : config_(config) {
  SPE_CHECK_GT(config.c, 0.0);
}

void LinearSvm::Fit(const DatasetView& train) { FitWeighted(train, {}); }

std::vector<double> LinearSvm::MapRow(std::span<const double> x) const {
  std::vector<double> scaled(x.size());
  scaler_.TransformRow(x, scaled);
  if (config_.kernel == SvmConfig::Kernel::kRbfApprox) {
    return rff_.TransformRow(scaled);
  }
  return scaled;
}

void LinearSvm::FitWeighted(const DatasetView& train,
                            const std::vector<double>& weights) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  std::vector<double> sample_weight = weights;
  if (sample_weight.empty()) {
    sample_weight.assign(train.num_rows(), 1.0);
  } else {
    SPE_CHECK_EQ(sample_weight.size(), train.num_rows());
  }

  scaler_.Fit(train);
  // Standardize (and optionally Fourier-map) into row-major scratch;
  // the fit no longer materializes intermediate datasets.
  RowMatrix x;
  scaler_.TransformToRows(train, x);
  if (config_.kernel == SvmConfig::Kernel::kRbfApprox) {
    rff_.Init(train.num_features(), config_.rff_dim, config_.gamma,
              config_.seed + 0x9e3779b9ULL);
    RowMatrix mapped;
    rff_.TransformToRows(x, mapped);
    x = std::move(mapped);
  }

  const std::size_t n = x.num_rows();
  const std::size_t d = x.num_features();
  w_.assign(d, 0.0);
  bias_ = 0.0;

  // Pegasos: lambda = 1 / (C * n); learning rate 1 / (lambda * t).
  const double lambda = 1.0 / (config_.c * static_cast<double>(n));
  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (std::size_t row : order) {
      ++t;
      const double lr = 1.0 / (lambda * static_cast<double>(t));
      auto features = x.Row(row);
      const double y = train.Label(row) == 1 ? 1.0 : -1.0;
      double margin = bias_;
      for (std::size_t j = 0; j < d; ++j) margin += w_[j] * features[j];

      // Regularization shrink applies every step; the hinge term only
      // when the example is inside the margin.
      const double shrink = 1.0 - lr * lambda;
      for (std::size_t j = 0; j < d; ++j) w_[j] *= shrink;
      if (y * margin < 1.0) {
        const double step = lr * y * sample_weight[row];
        for (std::size_t j = 0; j < d; ++j) w_[j] += step * features[j];
        bias_ += step;
      }
    }
  }

  // Platt scaling: logistic fit of labels on margins (gradient descent on
  // the two scalars; a handful of passes converges at these scales).
  std::vector<double> margins(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto features = x.Row(i);
    double m = bias_;
    for (std::size_t j = 0; j < d; ++j) m += w_[j] * features[j];
    margins[i] = m;
  }
  platt_a_ = 1.0;
  platt_b_ = 0.0;
  const double total_weight =
      std::accumulate(sample_weight.begin(), sample_weight.end(), 0.0);
  for (int iter = 0; iter < 200; ++iter) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(platt_a_ * margins[i] + platt_b_);
      const double err =
          (p - static_cast<double>(train.Label(i))) * sample_weight[i];
      grad_a += err * margins[i];
      grad_b += err;
    }
    platt_a_ -= 0.5 * grad_a / total_weight;
    platt_b_ -= 0.5 * grad_b / total_weight;
  }
}

double LinearSvm::Margin(std::span<const double> x) const {
  SPE_CHECK(!w_.empty()) << "predict before fit";
  const std::vector<double> mapped = MapRow(x);
  double m = bias_;
  for (std::size_t j = 0; j < w_.size(); ++j) m += w_[j] * mapped[j];
  return m;
}

double LinearSvm::PredictRow(std::span<const double> x) const {
  return Sigmoid(platt_a_ * Margin(x) + platt_b_);
}

std::unique_ptr<Classifier> LinearSvm::Clone() const {
  return std::make_unique<LinearSvm>(config_);
}

}  // namespace spe
