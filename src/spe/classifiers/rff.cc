#include "spe/classifiers/rff.h"

#include <cmath>
#include <numbers>

#include "spe/common/check.h"
#include "spe/common/rng.h"

namespace spe {

void RandomFourierFeatures::Init(std::size_t input_dim, std::size_t output_dim,
                                 double gamma, std::uint64_t seed) {
  SPE_CHECK_GT(input_dim, 0u);
  SPE_CHECK_GT(output_dim, 0u);
  if (gamma <= 0.0) gamma = 1.0 / static_cast<double>(input_dim);

  input_dim_ = input_dim;
  projection_.resize(output_dim * input_dim);
  biases_.resize(output_dim);

  Rng rng(seed);
  const double stddev = std::sqrt(2.0 * gamma);
  for (double& v : projection_) v = rng.Gaussian(0.0, stddev);
  for (double& b : biases_) b = rng.Uniform(0.0, 2.0 * std::numbers::pi);
}

std::vector<double> RandomFourierFeatures::TransformRow(
    std::span<const double> x) const {
  SPE_CHECK_EQ(x.size(), input_dim_);
  const std::size_t d_out = biases_.size();
  std::vector<double> z(d_out);
  const double scale = std::sqrt(2.0 / static_cast<double>(d_out));
  for (std::size_t r = 0; r < d_out; ++r) {
    const double* w = projection_.data() + r * input_dim_;
    double dot = biases_[r];
    for (std::size_t j = 0; j < input_dim_; ++j) dot += w[j] * x[j];
    z[r] = scale * std::cos(dot);
  }
  return z;
}

Dataset RandomFourierFeatures::Transform(const DatasetView& data) const {
  Dataset out(output_dim());
  out.Reserve(data.num_rows());
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    data.CopyRowTo(i, row);
    out.AddRow(TransformRow(row), data.Label(i));
  }
  return out;
}

void RandomFourierFeatures::TransformToRows(const RowMatrix& in,
                                            RowMatrix& out) const {
  out.Reset(in.num_rows(), output_dim());
  for (std::size_t i = 0; i < in.num_rows(); ++i) {
    const std::vector<double> z = TransformRow(in.Row(i));
    auto dst = out.Row(i);
    for (std::size_t j = 0; j < z.size(); ++j) dst[j] = z[j];
  }
}

}  // namespace spe
