#include "spe/classifiers/logistic_regression.h"

#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "spe/common/check.h"
#include "spe/common/rng.h"

namespace spe {
namespace {

double Sigmoid(double z) {
  // Split by sign to avoid overflow in exp.
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(const LogisticRegressionConfig& config)
    : config_(config) {}

void LogisticRegression::Fit(const DatasetView& train) { FitWeighted(train, {}); }

void LogisticRegression::FitWeighted(const DatasetView& train,
                                     const std::vector<double>& weights) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  std::vector<double> sample_weight = weights;
  if (sample_weight.empty()) {
    sample_weight.assign(train.num_rows(), 1.0);
  } else {
    SPE_CHECK_EQ(sample_weight.size(), train.num_rows());
  }

  scaler_.Fit(train);
  // Standardize into row-major scratch: SGD reads contiguous rows, and
  // the fit no longer materializes a second full dataset.
  RowMatrix x;
  scaler_.TransformToRows(train, x);
  const std::size_t n = x.num_rows();
  const std::size_t d = x.num_features();
  w_.assign(d, 0.0);
  bias_ = 0.0;

  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    // 1/sqrt decay keeps early epochs fast and late epochs stable.
    const double lr =
        config_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t stop = std::min(start + config_.batch_size, n);
      std::vector<double> grad(d, 0.0);
      double grad_bias = 0.0;
      double batch_weight = 0.0;
      for (std::size_t b = start; b < stop; ++b) {
        const std::size_t row = order[b];
        auto features = x.Row(row);
        double z = bias_;
        for (std::size_t j = 0; j < d; ++j) z += w_[j] * features[j];
        const double err =
            (Sigmoid(z) - static_cast<double>(train.Label(row))) *
            sample_weight[row];
        for (std::size_t j = 0; j < d; ++j) grad[j] += err * features[j];
        grad_bias += err;
        batch_weight += sample_weight[row];
      }
      if (batch_weight <= 0.0) continue;
      const double inv = 1.0 / batch_weight;
      for (std::size_t j = 0; j < d; ++j) {
        w_[j] -= lr * (grad[j] * inv + config_.l2 * w_[j]);
      }
      bias_ -= lr * grad_bias * inv;
    }
  }
}

double LogisticRegression::PredictRow(std::span<const double> x) const {
  SPE_CHECK_EQ(x.size(), w_.size());
  std::vector<double> scaled(x.size());
  scaler_.TransformRow(x, scaled);
  double z = bias_;
  for (std::size_t j = 0; j < w_.size(); ++j) z += w_[j] * scaled[j];
  return Sigmoid(z);
}

std::unique_ptr<Classifier> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(config_);
}

void LogisticRegression::SaveModel(std::ostream& os) const {
  SPE_CHECK(!w_.empty()) << "cannot save an unfitted model";
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "dim " << w_.size() << "\n";
  for (double w : w_) os << w << " ";
  os << "\n" << "bias " << bias_ << "\n";
  scaler_.Save(os);
}

LogisticRegression LogisticRegression::LoadModel(std::istream& is) {
  std::string keyword;
  std::size_t dim = 0;
  is >> keyword >> dim;
  SPE_CHECK(is.good() && keyword == "dim") << "malformed LR model";
  LogisticRegression model;
  model.w_.resize(dim);
  for (double& w : model.w_) is >> w;
  is >> keyword >> model.bias_;
  SPE_CHECK(is.good() && keyword == "bias") << "malformed LR model";
  model.scaler_ = FeatureScaler::Load(is);
  return model;
}

}  // namespace spe
