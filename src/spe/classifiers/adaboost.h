#ifndef SPE_CLASSIFIERS_ADABOOST_H_
#define SPE_CLASSIFIERS_ADABOOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"

namespace spe {

struct AdaBoostConfig {
  std::size_t n_estimators = 10;  // the paper's AdaBoost10
  double learning_rate = 1.0;
  /// Depth of the default decision-tree base (ignored when a custom base
  /// prototype is supplied).
  int base_max_depth = 3;
  std::uint64_t seed = 0;
};

/// Real AdaBoost (binary SAMME.R): each stage fits a weight-supporting
/// base learner on re-weighted data and contributes the half-log-odds of
/// its probability estimate. PredictRow returns
/// sigmoid(2 * learning_rate * sum_m h_m(x)), the additive-logistic
/// probability, so AdaBoost composes cleanly with AUCPRC-style metrics
/// and with SPE's hardness functions.
class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(const AdaBoostConfig& config = {});
  /// Boosts clones of `base_prototype` (must support sample weights).
  AdaBoost(const AdaBoostConfig& config, std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  void FitWeighted(const DatasetView& train,
                   const std::vector<double>& weights) override;
  bool SupportsSampleWeights() const override { return true; }
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  std::size_t NumStages() const { return stages_.size(); }
  const Classifier& stage(std::size_t i) const { return *stages_[i]; }
  double learning_rate() const { return config_.learning_rate; }

  /// Reassembles a trained booster from previously trained stages
  /// (model persistence; the stages must all be fitted).
  static std::unique_ptr<AdaBoost> FromTrainedStages(
      const AdaBoostConfig& config,
      std::vector<std::unique_ptr<Classifier>> stages);

 private:
  AdaBoostConfig config_;
  std::unique_ptr<Classifier> base_prototype_;  // null => default tree
  std::vector<std::unique_ptr<Classifier>> stages_;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_ADABOOST_H_
