#include "spe/classifiers/lda.h"

#include <cmath>
#include <vector>

#include "spe/common/check.h"
#include "spe/common/math.h"

namespace spe {
namespace {

// Solves A x = b in place by Gaussian elimination with partial pivoting.
// A is row-major d x d. Aborts on a (numerically) singular system —
// the ridge added by the caller makes that unreachable in practice.
std::vector<double> SolveLinearSystem(std::vector<double> a,
                                      std::vector<double> b, std::size_t d) {
  for (std::size_t col = 0; col < d; ++col) {
    // Pivot: largest |a| in this column at or below the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r * d + col]) > std::abs(a[pivot * d + col])) pivot = r;
    }
    SPE_CHECK_GT(std::abs(a[pivot * d + col]), 1e-12) << "singular system";
    if (pivot != col) {
      for (std::size_t j = 0; j < d; ++j) std::swap(a[col * d + j], a[pivot * d + j]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * d + col];
    for (std::size_t r = col + 1; r < d; ++r) {
      const double factor = a[r * d + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < d; ++j) a[r * d + j] -= factor * a[col * d + j];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(d);
  for (std::size_t row = d; row-- > 0;) {
    double sum = b[row];
    for (std::size_t j = row + 1; j < d; ++j) sum -= a[row * d + j] * x[j];
    x[row] = sum / a[row * d + row];
  }
  return x;
}

}  // namespace

LinearDiscriminant::LinearDiscriminant(const LdaConfig& config)
    : config_(config) {
  SPE_CHECK_GE(config.shrinkage, 0.0);
}

void LinearDiscriminant::Fit(const DatasetView& train) {
  train.CheckAlive();
  const std::size_t n = train.num_rows();
  const std::size_t d = train.num_features();
  SPE_CHECK_GT(n, 1u);
  const std::size_t n_pos = train.CountPositives();
  const std::size_t n_neg = n - n_pos;
  SPE_CHECK_GT(n_pos, 0u) << "LDA needs both classes";
  SPE_CHECK_GT(n_neg, 0u) << "LDA needs both classes";

  // Class means.
  std::vector<double> mean[2] = {std::vector<double>(d, 0.0),
                                 std::vector<double>(d, 0.0)};
  std::vector<double> row(d);
  for (std::size_t i = 0; i < n; ++i) {
    train.CopyRowTo(i, row);
    auto& m = mean[train.Label(i)];
    for (std::size_t j = 0; j < d; ++j) m[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) {
    mean[0][j] /= static_cast<double>(n_neg);
    mean[1][j] /= static_cast<double>(n_pos);
  }

  // Pooled within-class covariance.
  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (std::size_t i = 0; i < n; ++i) {
    train.CopyRowTo(i, row);
    const auto& m = mean[train.Label(i)];
    for (std::size_t j = 0; j < d; ++j) centered[j] = row[j] - m[j];
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t k = j; k < d; ++k) {
        cov[j * d + k] += centered[j] * centered[k];
      }
    }
  }
  double trace = 0.0;
  for (std::size_t j = 0; j < d; ++j) trace += cov[j * d + j];
  const double ridge =
      std::max(config_.shrinkage * trace / static_cast<double>(d), 1e-9);
  const double inv_dof = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = j; k < d; ++k) {
      cov[j * d + k] *= inv_dof;
      cov[k * d + j] = cov[j * d + k];
    }
    cov[j * d + j] += ridge;
  }

  // w = Sigma^-1 (mu1 - mu0); b from the midpoint plus the log prior.
  std::vector<double> delta(d);
  for (std::size_t j = 0; j < d; ++j) delta[j] = mean[1][j] - mean[0][j];
  w_ = SolveLinearSystem(std::move(cov), std::move(delta), d);

  double midpoint_term = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    midpoint_term += w_[j] * (mean[1][j] + mean[0][j]) / 2.0;
  }
  bias_ = -midpoint_term + std::log(static_cast<double>(n_pos) /
                                    static_cast<double>(n_neg));
}

double LinearDiscriminant::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!w_.empty()) << "predict before fit";
  SPE_CHECK_EQ(x.size(), w_.size());
  double z = bias_;
  for (std::size_t j = 0; j < x.size(); ++j) z += w_[j] * x[j];
  return Sigmoid(z);
}

std::unique_ptr<Classifier> LinearDiscriminant::Clone() const {
  return std::make_unique<LinearDiscriminant>(config_);
}

}  // namespace spe
