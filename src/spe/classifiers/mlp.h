#ifndef SPE_CLASSIFIERS_MLP_H_
#define SPE_CLASSIFIERS_MLP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/data/dataset.h"

namespace spe {

struct MlpConfig {
  std::size_t hidden_units = 128;  // paper's Table II setting
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;  // Adam step size
  double l2 = 1e-5;
  std::uint64_t seed = 0;
};

/// Single-hidden-layer perceptron: ReLU hidden layer, sigmoid output,
/// binary cross-entropy loss, Adam optimizer, He initialization, inputs
/// standardized internally. This is the batch-trained neural model whose
/// failure mode on skewed batches (§III, "the model still soon stuck into
/// local minima") the experiments exercise.
class Mlp final : public Classifier {
 public:
  explicit Mlp(const MlpConfig& config = {});

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override { return "MLP"; }

 private:
  double Forward(std::span<const double> scaled, std::vector<double>& hidden) const;

  MlpConfig config_;
  FeatureScaler scaler_;
  std::size_t input_dim_ = 0;
  // Layer 1: hidden_units x input_dim weights + hidden_units biases.
  std::vector<double> w1_;
  std::vector<double> b1_;
  // Layer 2: hidden_units weights + 1 bias.
  std::vector<double> w2_;
  double b2_ = 0.0;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_MLP_H_
