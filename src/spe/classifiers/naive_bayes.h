#ifndef SPE_CLASSIFIERS_NAIVE_BAYES_H_
#define SPE_CLASSIFIERS_NAIVE_BAYES_H_

#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"

namespace spe {

struct NaiveBayesConfig {
  /// Variance floor added to every per-class feature variance, relative
  /// to the largest feature variance (sklearn's var_smoothing).
  double var_smoothing = 1e-9;
};

/// Gaussian Naive Bayes: per-class, per-feature normal likelihoods with
/// a shared prior. The cheapest canonical probabilistic classifier —
/// a single pass to fit — which makes it an attractive SPE base when
/// training cost dominates. Supports sample weights (weighted moments),
/// so it can also serve as a boosting base.
class GaussianNaiveBayes final : public Classifier {
 public:
  explicit GaussianNaiveBayes(const NaiveBayesConfig& config = {});

  void Fit(const DatasetView& train) override;
  void FitWeighted(const DatasetView& train,
                   const std::vector<double>& weights) override;
  bool SupportsSampleWeights() const override { return true; }
  double PredictRow(std::span<const double> x) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "GNB"; }

 private:
  NaiveBayesConfig config_;
  double log_prior_positive_ = 0.0;
  double log_prior_negative_ = 0.0;
  // Per-feature Gaussian parameters for each class.
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_NAIVE_BAYES_H_
