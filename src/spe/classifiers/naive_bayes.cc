#include "spe/classifiers/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "spe/common/check.h"
#include "spe/common/math.h"

namespace spe {

GaussianNaiveBayes::GaussianNaiveBayes(const NaiveBayesConfig& config)
    : config_(config) {
  SPE_CHECK_GE(config.var_smoothing, 0.0);
}

void GaussianNaiveBayes::Fit(const DatasetView& train) { FitWeighted(train, {}); }

void GaussianNaiveBayes::FitWeighted(const DatasetView& train,
                                     const std::vector<double>& weights) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  std::vector<double> w = weights;
  if (w.empty()) {
    w.assign(train.num_rows(), 1.0);
  } else {
    SPE_CHECK_EQ(w.size(), train.num_rows());
  }

  const std::size_t d = train.num_features();
  double class_weight[2] = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
  }

  std::vector<double> row(d);
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    const int c = train.Label(i);
    class_weight[c] += w[i];
    train.CopyRowTo(i, row);
    for (std::size_t j = 0; j < d; ++j) mean_[c][j] += w[i] * row[j];
  }
  SPE_CHECK_GT(class_weight[0] + class_weight[1], 0.0);
  // A single-class training set still yields a valid (degenerate) model:
  // the missing class gets a -inf log-prior via the epsilon below.
  for (int c = 0; c < 2; ++c) {
    if (class_weight[c] <= 0.0) continue;
    for (std::size_t j = 0; j < d; ++j) mean_[c][j] /= class_weight[c];
  }
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    const int c = train.Label(i);
    train.CopyRowTo(i, row);
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[c][j];
      var_[c][j] += w[i] * delta * delta;
    }
  }
  double max_var = 0.0;
  for (int c = 0; c < 2; ++c) {
    if (class_weight[c] <= 0.0) continue;
    for (std::size_t j = 0; j < d; ++j) {
      var_[c][j] /= class_weight[c];
      max_var = std::max(max_var, var_[c][j]);
    }
  }
  const double floor = std::max(config_.var_smoothing * max_var, 1e-12);
  for (int c = 0; c < 2; ++c) {
    for (std::size_t j = 0; j < d; ++j) var_[c][j] += floor;
  }

  const double total = class_weight[0] + class_weight[1];
  constexpr double kEps = 1e-12;
  log_prior_negative_ = std::log(std::max(class_weight[0] / total, kEps));
  log_prior_positive_ = std::log(std::max(class_weight[1] / total, kEps));
}

double GaussianNaiveBayes::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!mean_[0].empty()) << "predict before fit";
  SPE_CHECK_EQ(x.size(), mean_[0].size());
  double log_like[2] = {log_prior_negative_, log_prior_positive_};
  for (int c = 0; c < 2; ++c) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double delta = x[j] - mean_[c][j];
      log_like[c] -= 0.5 * (std::log(2.0 * std::numbers::pi * var_[c][j]) +
                            delta * delta / var_[c][j]);
    }
  }
  // P(y=1|x) via the log-odds, numerically stable.
  return Sigmoid(log_like[1] - log_like[0]);
}

std::unique_ptr<Classifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(config_);
}

}  // namespace spe
