#ifndef SPE_CLASSIFIERS_DECISION_TREE_H_
#define SPE_CLASSIFIERS_DECISION_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/rng.h"
#include "spe/kernels/program.h"

namespace spe {

/// Configuration for a CART-style binary decision tree.
struct DecisionTreeConfig {
  /// Split quality criterion. kEntropy (information gain) is the
  /// C4.5-style mode the paper's Table VI base model corresponds to;
  /// kGini matches scikit-learn's default DT.
  enum class Criterion { kGini, kEntropy };

  Criterion criterion = Criterion::kGini;
  int max_depth = 10;               // paper's Table II uses max_depth=10
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per node; 0 means all. Random forest
  /// sets this to sqrt(d).
  std::size_t max_features = 0;
  std::uint64_t seed = 0;  // used only when max_features subsamples
};

/// Axis-aligned binary decision tree with weighted-impurity split
/// finding. Leaves store the weighted positive-class fraction, so
/// PredictRow returns a genuine probability estimate.
///
/// Categorical features are stored as integer codes and split with the
/// same `<= threshold` rule as numerical ones (ordinal treatment) — the
/// standard single-machine simplification, also what LightGBM does when
/// categorical support is off.
class DecisionTree final : public Classifier, public kernels::FlatCompilable {
 public:
  explicit DecisionTree(const DecisionTreeConfig& config = {});

  void Fit(const DatasetView& train) override;
  void FitWeighted(const DatasetView& train,
                   const std::vector<double>& weights) override;
  bool SupportsSampleWeights() const override { return true; }
  double PredictRow(std::span<const double> x) const override;
  /// Columnar-aware descent: reads only the features the walk touches
  /// (no row gather). Same comparisons as PredictRow, so bit-identical.
  double PredictViewRow(const DatasetView& data, std::size_t row) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override { return "DT"; }

  /// Number of nodes in the fitted tree (diagnostics / tests).
  std::size_t NumNodes() const { return nodes_.size(); }
  /// Depth of the fitted tree (root = depth 0).
  int Depth() const;

  /// Text serialization of the fitted tree (see spe/io/model_io.h for
  /// the polymorphic entry points). Save requires a fitted model.
  void SaveModel(std::ostream& os) const;
  static DecisionTree LoadModel(std::istream& is);

  /// Per-feature importance: total weighted impurity decrease collected
  /// by this feature's splits, normalized to sum to 1 (all-zero when the
  /// tree is a single leaf). Requires a fitted model.
  std::vector<double> FeatureImportances() const;

  /// Lowers the fitted tree into a flat-inference program (false when
  /// unfitted). The node layout maps 1:1, so the kernel's walk is the
  /// same comparison sequence as PredictRow.
  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;

 private:
  struct Node {
    // Internal node when feature >= 0, leaf otherwise.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  // positive-class probability at a leaf
  };

  // Per-Fit reusable split-finding buffers (defined in the .cc); Build
  // used to allocate these per node, which dominated deep-tree fits.
  struct BuildScratch;

  std::int32_t Build(const DatasetView& train,
                     const std::vector<double>& weights,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, int depth, BuildScratch& scratch,
                     Rng& rng);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  // Unnormalized impurity decrease per feature, filled during Fit
  // (empty for models restored via LoadModel).
  std::vector<double> importances_;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_DECISION_TREE_H_
