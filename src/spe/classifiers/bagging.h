#ifndef SPE_CLASSIFIERS_BAGGING_H_
#define SPE_CLASSIFIERS_BAGGING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/kernels/program.h"

namespace spe {

struct BaggingConfig {
  std::size_t n_estimators = 10;
  /// Bootstrap sample size as a fraction of the training set.
  double max_samples = 1.0;
  std::uint64_t seed = 0;
};

/// Bootstrap aggregating (Breiman, 1996): each member trains on a
/// bootstrap resample and predictions are averaged probabilities.
class Bagging final : public Classifier,
                      public kernels::FlatCompilable,
                      public kernels::FlatScorable {
 public:
  explicit Bagging(const BaggingConfig& config = {});
  /// Bags clones of `base_prototype` (default: depth-10 decision tree).
  Bagging(const BaggingConfig& config, std::unique_ptr<Classifier> base_prototype);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  std::size_t NumMembers() const { return ensemble_.size(); }

  /// The trained members (model persistence / inspection).
  const VotingEnsemble& members() const { return ensemble_; }

 private:
  BaggingConfig config_;
  std::unique_ptr<Classifier> base_prototype_;  // null => default tree
  VotingEnsemble ensemble_;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_BAGGING_H_
