#include "spe/classifiers/bagging.h"

#include <algorithm>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/common/rng.h"
#include "spe/kernels/flat_forest.h"

namespace spe {

Bagging::Bagging(const BaggingConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
}

Bagging::Bagging(const BaggingConfig& config,
                 std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
}

void Bagging::Fit(const DatasetView& train) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  ensemble_ = VotingEnsemble();
  Rng rng(config_.seed);
  const auto bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.max_samples *
                                  static_cast<double>(train.num_rows())));
  // All bags come from the one config RNG, drawn serially up front so
  // the stream is identical to the serial trainer's; after that each
  // member's randomness derives only from its own Reseed value, so the
  // members are independent and train concurrently with bit-identical
  // results for any thread count.
  std::vector<std::vector<std::size_t>> bags(config_.n_estimators);
  for (auto& bag : bags) {
    bag = rng.SampleWithReplacement(train.num_rows(), bag_size);
  }
  // Members fit through indexed views: each bag is rewritten to
  // parent-absolute rows and stacked on the incoming view, so a
  // bootstrap moves zero feature bytes. A row-major (external block)
  // view has no parent to index into — materialize once, bag over that.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  } else {
    for (auto& bag : bags) {
      for (auto& r : bag) r = train.RowIndex(r);
    }
  }
  std::vector<std::unique_ptr<Classifier>> members(config_.n_estimators);
  ParallelForTasks(0, config_.n_estimators, [&](std::size_t m) {
    std::unique_ptr<Classifier> member;
    if (base_prototype_ != nullptr) {
      member = base_prototype_->Clone();
    } else {
      DecisionTreeConfig tree_config;
      tree_config.max_depth = 10;
      member = std::make_unique<DecisionTree>(tree_config);
    }
    member->Reseed(config_.seed + 1000003 * (m + 1));
    member->Fit(base.WithIndices(bags[m]));
    members[m] = std::move(member);
  });
  for (auto& member : members) ensemble_.Add(std::move(member));
}

double Bagging::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> Bagging::PredictProba(const DatasetView& data) const {
  return ensemble_.PredictProba(data);
}

void Bagging::AccumulateProbaInto(const DatasetView& data,
                                  std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool Bagging::LowerToFlat(kernels::FlatProgram& program,
                          kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* Bagging::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> Bagging::Clone() const {
  return base_prototype_ != nullptr
             ? std::make_unique<Bagging>(config_, base_prototype_->Clone())
             : std::make_unique<Bagging>(config_);
}

std::string Bagging::Name() const {
  std::ostringstream os;
  os << "Bagging" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
