#ifndef SPE_CLASSIFIERS_LDA_H_
#define SPE_CLASSIFIERS_LDA_H_

#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"

namespace spe {

struct LdaConfig {
  /// Ridge added to the pooled covariance diagonal (relative to its
  /// trace mean) so the solve stays stable on collinear features.
  double shrinkage = 1e-4;
};

/// Fisher's linear discriminant analysis for binary classification:
/// class-conditional Gaussians with a pooled covariance estimate give a
/// linear log-odds w.x + b, solved by Gaussian elimination on
/// (Sigma + ridge) w = mu1 - mu0. A strong classical baseline whose
/// closed-form fit is deterministic — no SGD, no seeds.
class LinearDiscriminant final : public Classifier {
 public:
  explicit LinearDiscriminant(const LdaConfig& config = {});

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "LDA"; }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return bias_; }

 private:
  LdaConfig config_;
  std::vector<double> w_;
  double bias_ = 0.0;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_LDA_H_
