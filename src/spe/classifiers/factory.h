#ifndef SPE_CLASSIFIERS_FACTORY_H_
#define SPE_CLASSIFIERS_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"

namespace spe {

/// Builds a canonical classifier by name, with the hyper-parameters the
/// paper lists in Table II:
///
///   "KNN"          k = 5 nearest neighbours
///   "DT"           decision tree, max_depth = 10
///   "MLP"          1 hidden layer of 128 units
///   "SVM"          RBF-approximate SVM, C = 1000
///   "LR"           logistic regression (Table V)
///   "AdaBoostN"    AdaBoost with N stages (e.g. "AdaBoost10")
///   "BaggingN"     Bagging with N members
///   "RandForestN"  random forest with N trees
///   "GBDTN"        gradient boosting with N rounds
///   "C4.5"         entropy decision tree (Table VI base model)
///   "GNB"          Gaussian naive Bayes (extension)
///   "LDA"          linear discriminant analysis (extension)
///
/// `seed` drives all internal randomness; experiments vary it per run.
/// Aborts on an unknown name.
std::unique_ptr<Classifier> MakeClassifier(const std::string& name,
                                           std::uint64_t seed = 0);

/// Names accepted by MakeClassifier (with N = 10 for ensembles) — the
/// eight base models of Table II plus LR and C4.5.
std::vector<std::string> KnownClassifierNames();

}  // namespace spe

#endif  // SPE_CLASSIFIERS_FACTORY_H_
