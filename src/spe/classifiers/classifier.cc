#include "spe/classifiers/classifier.h"

#include "spe/common/check.h"
#include "spe/common/parallel.h"

namespace spe {
namespace {

// Rows per worker below which batch scoring stays serial: per-row
// prediction is cheap for most models, and serving-sized batches
// (hundreds of rows) must not pay fan-out latency on the hot path.
constexpr std::size_t kScoreGrain = 256;

}  // namespace

Classifier::~Classifier() = default;

void Classifier::FitWeighted(const Dataset& /*train*/,
                             const std::vector<double>& /*weights*/) {
  SPE_CHECK(false) << Name() << " does not support sample weights";
}

std::vector<double> Classifier::PredictProba(const Dataset& data) const {
  std::vector<double> out(data.num_rows());
  // Each row writes only its own slot, so chunking cannot change the
  // result: PredictProba is bit-identical for any SPE_THREADS.
  ParallelForGrain(0, data.num_rows(), kScoreGrain,
                   [&](std::size_t i) { out[i] = PredictRow(data.Row(i)); });
  return out;
}

void VotingEnsemble::Add(std::unique_ptr<Classifier> member) {
  SPE_CHECK(member != nullptr);
  members_.push_back(std::move(member));
}

void VotingEnsemble::Truncate(std::size_t size) {
  if (size < members_.size()) members_.resize(size);
}

std::vector<double> VotingEnsemble::PredictProba(const Dataset& data) const {
  return PredictProbaPrefix(data, members_.size());
}

std::vector<double> VotingEnsemble::PredictProbaPrefix(const Dataset& data,
                                                       std::size_t k) const {
  SPE_CHECK(!members_.empty());
  SPE_CHECK_GT(k, 0u);
  const std::size_t n = k < members_.size() ? k : members_.size();
  std::vector<double> sum(data.num_rows(), 0.0);
  // Determinism contract: the reduction visits members in index order,
  // so each element accumulates contributions in one fixed sequence and
  // the float result is bit-identical for any thread count. Parallelism
  // lives inside each member's row-chunked PredictProba.
  for (std::size_t m = 0; m < n; ++m) {
    const std::vector<double> p = members_[m]->PredictProba(data);
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += p[i];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (double& v : sum) v *= inv;
  return sum;
}

double VotingEnsemble::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!members_.empty());
  double sum = 0.0;
  for (const auto& m : members_) sum += m->PredictRow(x);
  return sum / static_cast<double>(members_.size());
}

}  // namespace spe
