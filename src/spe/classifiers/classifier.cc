#include "spe/classifiers/classifier.h"

#include <mutex>

#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/kernels/flat_forest.h"

namespace spe {
namespace {

// Rows per worker below which batch scoring stays serial: per-row
// prediction is cheap for most models, and serving-sized batches
// (hundreds of rows) must not pay fan-out latency on the hot path.
constexpr std::size_t kScoreGrain = 256;

}  // namespace

namespace internal {

// Lazily-compiled flat-inference program for a VotingEnsemble. Held
// behind a unique_ptr so VotingEnsemble stays movable (the mutex is
// not); a moved-from ensemble simply has no cache until the next Add.
struct FlatKernelCache {
  std::mutex mu;
  bool attempted = false;  // guarded by mu; avoids re-failing compiles
  std::unique_ptr<const kernels::FlatForest> forest;  // guarded by mu
};

}  // namespace internal

Classifier::~Classifier() = default;

void Classifier::FitWeighted(const DatasetView& /*train*/,
                             const std::vector<double>& /*weights*/) {
  SPE_CHECK(false) << Name() << " does not support sample weights";
}

double Classifier::PredictViewRow(const DatasetView& data,
                                  std::size_t row) const {
  // Row-major views (the serve batch path) already hold a contiguous
  // row — feed it straight through.
  if (data.row_major()) {
    return PredictRow(
        {data.rows_data() + row * data.num_features(), data.num_features()});
  }
  // Columnar views: gather into per-thread scratch. Same values in the
  // same order as the historical contiguous-row call, so bit-identical.
  thread_local std::vector<double> scratch;
  const std::size_t d = data.num_features();
  scratch.resize(d);
  for (std::size_t j = 0; j < d; ++j) scratch[j] = data.At(row, j);
  return PredictRow(scratch);
}

std::vector<double> Classifier::PredictProba(const DatasetView& data) const {
  data.CheckAlive();
  std::vector<double> out(data.num_rows());
  // Each row writes only its own slot, so chunking cannot change the
  // result: PredictProba is bit-identical for any SPE_THREADS.
  ParallelForGrain(0, data.num_rows(), kScoreGrain,
                   [&](std::size_t i) { out[i] = PredictViewRow(data, i); });
  return out;
}

void Classifier::AccumulateProbaInto(const DatasetView& data,
                                     std::span<double> acc) const {
  data.CheckAlive();
  SPE_CHECK_EQ(acc.size(), data.num_rows());
  // Fused form of PredictProba-then-add: each element receives exactly
  // one addition of the same PredictViewRow value the reference computed
  // into a temporary, so the accumulated bits are identical and the
  // per-member vector is gone.
  ParallelForGrain(0, data.num_rows(), kScoreGrain,
                   [&](std::size_t i) { acc[i] += PredictViewRow(data, i); });
}

void Classifier::AccumulateViaPredictProba(const DatasetView& data,
                                           std::span<double> acc) const {
  SPE_CHECK_EQ(acc.size(), data.num_rows());
  const std::vector<double> p = PredictProba(data);
  for (std::size_t i = 0; i < p.size(); ++i) acc[i] += p[i];
}

VotingEnsemble::VotingEnsemble()
    : flat_cache_(std::make_unique<internal::FlatKernelCache>()) {}

VotingEnsemble::~VotingEnsemble() = default;
VotingEnsemble::VotingEnsemble(VotingEnsemble&& other) noexcept = default;
VotingEnsemble& VotingEnsemble::operator=(VotingEnsemble&& other) noexcept =
    default;

void VotingEnsemble::Add(std::unique_ptr<Classifier> member) {
  SPE_CHECK(member != nullptr);
  members_.push_back(std::move(member));
  InvalidateFlatKernel();
}

void VotingEnsemble::Truncate(std::size_t size) {
  if (size < members_.size()) {
    members_.resize(size);
    InvalidateFlatKernel();
  }
}

void VotingEnsemble::InvalidateFlatKernel() {
  if (flat_cache_ == nullptr) {  // moved-from ensemble being reused
    flat_cache_ = std::make_unique<internal::FlatKernelCache>();
    return;
  }
  const std::lock_guard<std::mutex> lock(flat_cache_->mu);
  flat_cache_->attempted = false;
  flat_cache_->forest.reset();
}

const kernels::FlatForest* VotingEnsemble::flat_kernel() const {
  if (!kernels::FlatKernelEnabled() || flat_cache_ == nullptr ||
      members_.empty()) {
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(flat_cache_->mu);
  if (!flat_cache_->attempted) {
    flat_cache_->attempted = true;
    flat_cache_->forest = kernels::FlatForest::Compile(*this);
  }
  return flat_cache_->forest.get();
}

std::vector<double> VotingEnsemble::PredictProba(const DatasetView& data) const {
  return PredictProbaPrefix(data, members_.size());
}

std::vector<double> VotingEnsemble::PredictProbaPrefix(const DatasetView& data,
                                                       std::size_t k) const {
  SPE_CHECK(!members_.empty());
  SPE_CHECK_GT(k, 0u);
  data.CheckAlive();
  const std::size_t n = k < members_.size() ? k : members_.size();
  std::vector<double> sum(data.num_rows(), 0.0);
  // Fast path: every member lowered into the flat kernel, which
  // replays the reduction below — members in index order, one final
  // multiply by 1/n — with blocked SoA tree walks instead of per-row
  // pointer chasing. Bits are identical either way.
  if (const kernels::FlatForest* flat = flat_kernel()) {
    flat->PredictPrefixInto(data, n, sum);
    return sum;
  }
  // Determinism contract: the reduction visits members in index order,
  // so each element accumulates contributions in one fixed sequence and
  // the float result is bit-identical for any thread count. Parallelism
  // lives inside each member's row-chunked accumulation. Members add
  // directly into `sum` — one allocation per batch, not per member.
  for (std::size_t m = 0; m < n; ++m) {
    members_[m]->AccumulateProbaInto(data, sum);
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (double& v : sum) v *= inv;
  return sum;
}

double VotingEnsemble::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!members_.empty());
  double sum = 0.0;
  for (const auto& m : members_) sum += m->PredictRow(x);
  return sum / static_cast<double>(members_.size());
}

}  // namespace spe
