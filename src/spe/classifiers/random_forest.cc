#include "spe/classifiers/random_forest.h"

#include <cmath>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/common/rng.h"
#include "spe/kernels/flat_forest.h"

namespace spe {

RandomForest::RandomForest(const RandomForestConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
}

void RandomForest::Fit(const DatasetView& train) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  ensemble_ = VotingEnsemble();
  Rng rng(config_.seed);

  DecisionTreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.max_features =
      config_.max_features > 0
          ? config_.max_features
          : static_cast<std::size_t>(
                std::floor(std::sqrt(static_cast<double>(train.num_features()))));

  // Bootstrap bags are drawn serially from the shared RNG (same stream
  // as the serial trainer), then the trees — whose only randomness is
  // their per-member seed — grow concurrently. Fixed-order Add keeps the
  // forest identical for any thread count.
  std::vector<std::vector<std::size_t>> bags(config_.n_estimators);
  for (auto& bag : bags) {
    bag = rng.SampleWithReplacement(train.num_rows(), train.num_rows());
  }
  // Trees fit through indexed views (bags rewritten to parent-absolute
  // rows), so a bootstrap moves zero feature bytes; row-major views are
  // materialized once first since they have no parent to index into.
  Dataset owned;
  DatasetView base = train;
  if (train.row_major()) {
    owned = train.Materialize();
    base = DatasetView(owned);
  } else {
    for (auto& bag : bags) {
      for (auto& r : bag) r = train.RowIndex(r);
    }
  }
  std::vector<std::unique_ptr<Classifier>> trees(config_.n_estimators);
  ParallelForTasks(0, config_.n_estimators, [&](std::size_t m) {
    DecisionTreeConfig member_config = tree_config;
    member_config.seed = config_.seed + 7919 * (m + 1);
    auto tree = std::make_unique<DecisionTree>(member_config);
    tree->Fit(base.WithIndices(bags[m]));
    trees[m] = std::move(tree);
  });
  for (auto& tree : trees) ensemble_.Add(std::move(tree));
}

double RandomForest::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> RandomForest::PredictProba(const DatasetView& data) const {
  return ensemble_.PredictProba(data);
}

void RandomForest::AccumulateProbaInto(const DatasetView& data,
                                       std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool RandomForest::LowerToFlat(kernels::FlatProgram& program,
                               kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(ensemble_, program, op);
}

const kernels::FlatForest* RandomForest::flat_kernel() const {
  return ensemble_.flat_kernel();
}

std::unique_ptr<Classifier> RandomForest::Clone() const {
  return std::make_unique<RandomForest>(config_);
}

std::string RandomForest::Name() const {
  std::ostringstream os;
  os << "RandForest" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
