#include "spe/classifiers/random_forest.h"

#include <cmath>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"
#include "spe/common/rng.h"

namespace spe {

RandomForest::RandomForest(const RandomForestConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
}

void RandomForest::Fit(const Dataset& train) {
  SPE_CHECK_GT(train.num_rows(), 0u);
  ensemble_ = VotingEnsemble();
  Rng rng(config_.seed);

  DecisionTreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.max_features =
      config_.max_features > 0
          ? config_.max_features
          : static_cast<std::size_t>(
                std::floor(std::sqrt(static_cast<double>(train.num_features()))));

  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    const std::vector<std::size_t> bag =
        rng.SampleWithReplacement(train.num_rows(), train.num_rows());
    tree_config.seed = config_.seed + 7919 * (m + 1);
    auto tree = std::make_unique<DecisionTree>(tree_config);
    tree->Fit(train.Subset(bag));
    ensemble_.Add(std::move(tree));
  }
}

double RandomForest::PredictRow(std::span<const double> x) const {
  return ensemble_.PredictRow(x);
}

std::vector<double> RandomForest::PredictProba(const Dataset& data) const {
  return ensemble_.PredictProba(data);
}

std::unique_ptr<Classifier> RandomForest::Clone() const {
  return std::make_unique<RandomForest>(config_);
}

std::string RandomForest::Name() const {
  std::ostringstream os;
  os << "RandForest" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
