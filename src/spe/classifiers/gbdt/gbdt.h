#ifndef SPE_CLASSIFIERS_GBDT_GBDT_H_
#define SPE_CLASSIFIERS_GBDT_GBDT_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/classifiers/gbdt/binning.h"
#include "spe/classifiers/gbdt/tree.h"
#include "spe/kernels/program.h"

namespace spe {

struct GbdtConfig {
  std::size_t boost_rounds = 10;  // the paper's GBDT10
  double learning_rate = 0.1;
  int max_bins = 64;
  gbdt::TreeParams tree;
  /// Row fraction each tree trains on (stochastic gradient boosting,
  /// Friedman 2002 — the paper's GBDT reference). 1 disables subsampling.
  double subsample = 1.0;
  std::uint64_t seed = 0;  // drives row subsampling only
  /// Stop when validation logloss has not improved for this many rounds
  /// (only applies to FitWithValidation; 0 disables early stopping).
  std::size_t early_stopping_rounds = 5;
};

/// Histogram-based gradient-boosted decision trees with logistic loss —
/// the from-scratch stand-in for the paper's LightGBM baseline.
/// Second-order (Newton) boosting: g = p - y, h = p (1 - p).
/// Supports per-example weights (weighted gradients), so it can serve as
/// a base learner anywhere a tree can.
class Gbdt final : public Classifier, public kernels::FlatCompilable {
 public:
  explicit Gbdt(const GbdtConfig& config = {});

  void Fit(const DatasetView& train) override;
  void FitWeighted(const DatasetView& train, const std::vector<double>& weights) override;
  bool SupportsSampleWeights() const override { return true; }

  /// Fits with early stopping monitored on `validation` (kept at its
  /// natural distribution, per the paper's protocol §VI-B.1). The model
  /// keeps only the best round count.
  void FitWithValidation(const DatasetView& train, const DatasetView& validation);

  double PredictRow(std::span<const double> x) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  std::size_t NumTrees() const { return trees_.size(); }
  double base_score() const { return base_score_; }

  /// Text serialization of the fitted booster. The feature binner is not
  /// saved — fitted trees carry raw-value thresholds, so a loaded model
  /// predicts but cannot resume training.
  void SaveModel(std::ostream& os) const;
  static Gbdt LoadModel(std::istream& is);

  /// Per-feature importance: total split gain across all trees,
  /// normalized to sum to 1 (all-zero when no tree found any split).
  /// Requires a model trained in-process (not restored via LoadModel).
  std::vector<double> FeatureImportances() const;

  /// Lowers the fitted booster into a kBoostLogit member op (false
  /// when unfitted): the kernel replays base_score + lr·leaf per tree
  /// in order, then the same sigmoid, matching PredictRow bit-for-bit.
  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;

 private:
  void FitImpl(const DatasetView& train, const std::vector<double>& weights,
               const DatasetView* validation);

  GbdtConfig config_;
  gbdt::FeatureBinner binner_;
  std::vector<gbdt::RegressionTree> trees_;
  double base_score_ = 0.0;  // prior log-odds
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_GBDT_GBDT_H_
