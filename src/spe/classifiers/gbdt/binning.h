#ifndef SPE_CLASSIFIERS_GBDT_BINNING_H_
#define SPE_CLASSIFIERS_GBDT_BINNING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "spe/data/dataset.h"

namespace spe {
namespace gbdt {

/// Dense row-major matrix of per-feature bin indices; the working
/// representation for histogram-based tree learning (the LightGBM-style
/// trick the paper's GBDT baseline relies on for speed).
struct BinnedMatrix {
  std::size_t num_rows = 0;
  std::size_t num_features = 0;
  std::vector<std::uint8_t> bins;  // num_rows x num_features

  std::uint8_t At(std::size_t row, std::size_t feature) const {
    return bins[row * num_features + feature];
  }
};

/// Quantile feature binner: learns up to `max_bins` cut points per
/// feature from (a subsample of) the training distribution, then maps
/// raw values to bin indices. Split thresholds recorded by the tree
/// learner refer back to the cut values so fitted trees can score raw,
/// unbinned rows.
class FeatureBinner {
 public:
  /// Learns bin boundaries. max_bins must be in [2, 256].
  void Fit(const DatasetView& data, int max_bins = 64);

  /// Binner over externally chosen cut points — one sorted list per
  /// feature, at most 255 cuts each (so bin indices fit uint8). This is
  /// how the inference kernel's quantized lowering reuses the binning
  /// machinery: the cut lists are the distinct split thresholds of a
  /// compiled forest rather than training quantiles (see
  /// spe/kernels/program.h).
  static FeatureBinner FromBoundaries(
      std::vector<std::vector<double>> boundaries);

  /// The sorted cut points of `feature` (empty for a single-bin feature).
  std::span<const double> Boundaries(std::size_t feature) const;

  bool fitted() const { return !boundaries_.empty(); }
  std::size_t num_features() const { return boundaries_.size(); }

  /// Number of bins actually used by `feature` (<= max_bins; fewer when
  /// the feature has few distinct values).
  int NumBins(std::size_t feature) const;

  /// Bin index of a raw value: the count of boundaries strictly below it.
  std::uint8_t BinOf(std::size_t feature, double value) const;

  /// Upper raw-value edge of `bin` — rows with value <= edge fall in bins
  /// [0, bin]. Used to translate a bin split back to a raw threshold.
  double UpperEdge(std::size_t feature, int bin) const;

  BinnedMatrix Transform(const DatasetView& data) const;

 private:
  // boundaries_[f] is a sorted list of cut values; bin b holds values in
  // (boundaries[b-1], boundaries[b]]; the last bin is unbounded above.
  std::vector<std::vector<double>> boundaries_;
};

}  // namespace gbdt
}  // namespace spe

#endif  // SPE_CLASSIFIERS_GBDT_BINNING_H_
