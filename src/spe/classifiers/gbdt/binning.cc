#include "spe/classifiers/gbdt/binning.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "spe/common/check.h"

namespace spe {
namespace gbdt {

void FeatureBinner::Fit(const DatasetView& data, int max_bins) {
  data.CheckAlive();
  SPE_CHECK_GE(max_bins, 2);
  SPE_CHECK_LE(max_bins, 256);
  SPE_CHECK_GT(data.num_rows(), 0u);

  const std::size_t d = data.num_features();
  boundaries_.assign(d, {});
  std::vector<double> values(data.num_rows());
  // Identity views expose each feature as one contiguous columnar
  // slice, so seeding the sort buffer is a straight memcpy; indexed and
  // row-major views gather per element. Either way the multiset of
  // values — and therefore the sorted order and the learned cuts — is
  // identical.
  const DataMatrix* parent = data.identity() ? data.parent() : nullptr;

  for (std::size_t f = 0; f < d; ++f) {
    if (parent != nullptr) {
      std::span<const double> col = parent->Column(f);
      std::copy(col.begin(), col.end(), values.begin());
    } else {
      for (std::size_t i = 0; i < data.num_rows(); ++i) {
        values[i] = data.At(i, f);
      }
    }
    std::sort(values.begin(), values.end());
    std::vector<double>& cuts = boundaries_[f];
    const std::size_t n = values.size();

    // Low-cardinality features (categorical codes, counts): one bin per
    // distinct value, cut at the midpoints. Plain quantile cuts would
    // miss value boundaries that do not land on a quantile index.
    std::vector<double> distinct;
    for (std::size_t i = 0; i < n; ++i) {
      if (distinct.empty() || values[i] != distinct.back()) {
        distinct.push_back(values[i]);
        if (distinct.size() > static_cast<std::size_t>(max_bins)) break;
      }
    }
    if (distinct.size() <= static_cast<std::size_t>(max_bins)) {
      for (std::size_t i = 0; i + 1 < distinct.size(); ++i) {
        cuts.push_back((distinct[i] + distinct[i + 1]) / 2.0);
      }
      continue;
    }

    // Continuous features: cut points between distinct adjacent quantiles.
    for (int b = 1; b < max_bins; ++b) {
      const std::size_t idx =
          static_cast<std::size_t>(static_cast<double>(n) *
                                   static_cast<double>(b) /
                                   static_cast<double>(max_bins));
      if (idx == 0 || idx >= n) continue;
      if (values[idx - 1] == values[idx]) continue;  // same quantile value
      const double cut = (values[idx - 1] + values[idx]) / 2.0;
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    // A constant feature ends up with zero cuts => a single bin, which
    // the split finder naturally ignores.
  }
}

FeatureBinner FeatureBinner::FromBoundaries(
    std::vector<std::vector<double>> boundaries) {
  for (const std::vector<double>& cuts : boundaries) {
    SPE_CHECK_LE(cuts.size(), 255u) << "bin indices must fit uint8";
    SPE_CHECK(std::is_sorted(cuts.begin(), cuts.end()));
  }
  FeatureBinner binner;
  binner.boundaries_ = std::move(boundaries);
  return binner;
}

std::span<const double> FeatureBinner::Boundaries(std::size_t feature) const {
  return boundaries_[feature];
}

int FeatureBinner::NumBins(std::size_t feature) const {
  return static_cast<int>(boundaries_[feature].size()) + 1;
}

std::uint8_t FeatureBinner::BinOf(std::size_t feature, double value) const {
  const std::vector<double>& cuts = boundaries_[feature];
  const auto it = std::lower_bound(cuts.begin(), cuts.end(), value);
  return static_cast<std::uint8_t>(it - cuts.begin());
}

double FeatureBinner::UpperEdge(std::size_t feature, int bin) const {
  const std::vector<double>& cuts = boundaries_[feature];
  SPE_CHECK_GE(bin, 0);
  if (static_cast<std::size_t>(bin) < cuts.size()) {
    return cuts[static_cast<std::size_t>(bin)];
  }
  return std::numeric_limits<double>::infinity();
}

BinnedMatrix FeatureBinner::Transform(const DatasetView& data) const {
  data.CheckAlive();
  SPE_CHECK(fitted());
  SPE_CHECK_EQ(data.num_features(), boundaries_.size());
  BinnedMatrix out;
  out.num_rows = data.num_rows();
  out.num_features = data.num_features();
  out.bins.resize(out.num_rows * out.num_features);
  for (std::size_t i = 0; i < out.num_rows; ++i) {
    for (std::size_t f = 0; f < out.num_features; ++f) {
      out.bins[i * out.num_features + f] = BinOf(f, data.At(i, f));
    }
  }
  return out;
}

}  // namespace gbdt
}  // namespace spe
