#ifndef SPE_CLASSIFIERS_GBDT_TREE_H_
#define SPE_CLASSIFIERS_GBDT_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "spe/classifiers/gbdt/binning.h"

namespace spe {

namespace kernels {
struct FlatProgram;
}

namespace gbdt {

/// Regularization / growth limits for one boosted tree.
struct TreeParams {
  int max_leaves = 31;
  int max_depth = 6;
  std::size_t min_data_in_leaf = 5;
  double min_child_hess = 1e-3;
  double lambda = 1.0;     // L2 on leaf values
  double min_gain = 1e-6;  // required split gain
};

/// One regression tree grown leaf-wise (best-gain-first, LightGBM style)
/// on second-order gradient statistics. Fitting works on the binned
/// matrix; scoring works on raw feature rows via the thresholds recorded
/// from the binner, so a fitted tree is self-contained.
class RegressionTree {
 public:
  /// Grows the tree over `rows` and writes each training row's leaf
  /// output into `out_train_scores[row]` (additive update convenience
  /// for the booster). grads/hess are indexed by absolute row id.
  void Fit(const BinnedMatrix& binned, const FeatureBinner& binner,
           std::span<const double> grads, std::span<const double> hess,
           std::vector<std::size_t>& rows, const TreeParams& params,
           std::vector<double>& out_train_scores);

  /// Leaf output for a raw (unbinned) feature row.
  double Predict(std::span<const double> x) const;

  std::size_t NumLeaves() const;
  std::size_t NumNodes() const { return nodes_.size(); }

  /// Text serialization (used by Gbdt::SaveModel).
  void Save(std::ostream& os) const;
  static RegressionTree Load(std::istream& is);

  /// Total split gain collected per feature during Fit (empty for
  /// loaded trees). Feeds Gbdt::FeatureImportances.
  const std::vector<double>& split_gains() const { return split_gains_; }

  /// Appends the fitted tree to a flat-inference program (see
  /// spe/kernels/program.h) and returns its tree index. The node layout
  /// maps 1:1, so the kernel walk is the same comparison sequence as
  /// Predict. Requires a fitted tree.
  std::int32_t LowerToFlat(kernels::FlatProgram& program) const;

 private:
  struct Node {
    int feature = -1;          // -1 => leaf
    double threshold = 0.0;    // raw-value split: x <= threshold -> left
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;        // leaf output
  };

  std::vector<Node> nodes_;
  std::vector<double> split_gains_;
};

}  // namespace gbdt
}  // namespace spe

#endif  // SPE_CLASSIFIERS_GBDT_TREE_H_
