#include "spe/classifiers/gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <string>

#include "spe/common/check.h"
#include "spe/common/rng.h"

namespace spe {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double LogLoss(const std::vector<int>& labels, const std::vector<double>& probs) {
  constexpr double kEps = 1e-12;
  double loss = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double p = std::clamp(probs[i], kEps, 1.0 - kEps);
    loss -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return loss / static_cast<double>(labels.size());
}

}  // namespace

Gbdt::Gbdt(const GbdtConfig& config) : config_(config) {
  SPE_CHECK_GT(config.boost_rounds, 0u);
}

void Gbdt::Fit(const DatasetView& train) { FitImpl(train, {}, nullptr); }

void Gbdt::FitWeighted(const DatasetView& train,
                       const std::vector<double>& weights) {
  FitImpl(train, weights, nullptr);
}

void Gbdt::FitWithValidation(const DatasetView& train,
                             const DatasetView& validation) {
  FitImpl(train, {}, &validation);
}

void Gbdt::FitImpl(const DatasetView& train, const std::vector<double>& weights,
                   const DatasetView* validation) {
  train.CheckAlive();
  if (validation != nullptr) validation->CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  const std::size_t n = train.num_rows();
  std::vector<double> w = weights;
  if (w.empty()) {
    w.assign(n, 1.0);
  } else {
    SPE_CHECK_EQ(w.size(), n);
  }

  binner_.Fit(train, config_.max_bins);
  const gbdt::BinnedMatrix binned = binner_.Transform(train);

  // Prior: weighted log-odds of the positive rate, clamped away from the
  // degenerate single-class case.
  double pos_weight = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total_weight += w[i];
    if (train.Label(i) == 1) pos_weight += w[i];
  }
  SPE_CHECK_GT(total_weight, 0.0);
  const double prior = std::clamp(pos_weight / total_weight, 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(prior / (1.0 - prior));

  trees_.clear();
  std::vector<double> scores(n, base_score_);
  std::vector<double> grads(n);
  std::vector<double> hess(n);
  std::vector<double> tree_outputs(n, 0.0);
  std::vector<std::size_t> rows(n);

  // Validation-side running scores for early stopping.
  std::vector<double> val_scores;
  std::vector<double> val_probs;
  std::vector<int> val_labels;
  if (validation != nullptr) {
    val_scores.assign(validation->num_rows(), base_score_);
    val_probs.resize(validation->num_rows());
    val_labels = validation->LabelsVector();
  }
  std::vector<double> row_scratch(train.num_features());
  double best_val_loss = std::numeric_limits<double>::infinity();
  std::size_t best_round = 0;
  std::size_t rounds_since_best = 0;

  Rng subsample_rng(config_.seed);
  const bool subsampled = config_.subsample < 1.0;
  SPE_CHECK_GT(config_.subsample, 0.0);

  for (std::size_t round = 0; round < config_.boost_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(scores[i]);
      grads[i] = w[i] * (p - static_cast<double>(train.Label(i)));
      hess[i] = w[i] * std::max(p * (1.0 - p), 1e-12);
    }
    gbdt::RegressionTree tree;
    if (subsampled) {
      // Stochastic gradient boosting: each tree sees a row subsample;
      // scores of skipped rows update through the fitted tree.
      const auto take = std::max<std::size_t>(
          1, static_cast<std::size_t>(config_.subsample *
                                      static_cast<double>(n)));
      rows = subsample_rng.SampleWithoutReplacement(n, take);
      tree.Fit(binned, binner_, grads, hess, rows, config_.tree, tree_outputs);
      for (std::size_t i = 0; i < n; ++i) {
        train.CopyRowTo(i, row_scratch);
        scores[i] += config_.learning_rate * tree.Predict(row_scratch);
      }
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
      tree.Fit(binned, binner_, grads, hess, rows, config_.tree, tree_outputs);
      for (std::size_t i = 0; i < n; ++i) {
        scores[i] += config_.learning_rate * tree_outputs[i];
      }
    }
    trees_.push_back(std::move(tree));

    if (validation != nullptr && config_.early_stopping_rounds > 0) {
      for (std::size_t i = 0; i < validation->num_rows(); ++i) {
        validation->CopyRowTo(i, row_scratch);
        val_scores[i] += config_.learning_rate *
                         trees_.back().Predict(row_scratch);
        val_probs[i] = Sigmoid(val_scores[i]);
      }
      const double loss = LogLoss(val_labels, val_probs);
      if (loss < best_val_loss - 1e-9) {
        best_val_loss = loss;
        best_round = trees_.size();
        rounds_since_best = 0;
      } else if (++rounds_since_best >= config_.early_stopping_rounds) {
        break;
      }
    }
  }

  if (validation != nullptr && config_.early_stopping_rounds > 0 &&
      best_round > 0) {
    trees_.resize(best_round);
  }
}

double Gbdt::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!trees_.empty()) << "predict before fit";
  double score = base_score_;
  for (const auto& tree : trees_) score += config_.learning_rate * tree.Predict(x);
  return Sigmoid(score);
}

std::unique_ptr<Classifier> Gbdt::Clone() const {
  return std::make_unique<Gbdt>(config_);
}

bool Gbdt::LowerToFlat(kernels::FlatProgram& program,
                       kernels::MemberOp& op) const {
  if (trees_.empty()) return false;
  op.kind = kernels::MemberOp::Kind::kBoostLogit;
  op.tree_begin = static_cast<std::int32_t>(program.trees.size());
  for (const auto& tree : trees_) tree.LowerToFlat(program);
  op.tree_end = static_cast<std::int32_t>(program.trees.size());
  op.base_score = base_score_;
  op.learning_rate = config_.learning_rate;
  return true;
}

std::vector<double> Gbdt::FeatureImportances() const {
  SPE_CHECK(!trees_.empty()) << "importances before fit";
  SPE_CHECK(!trees_.front().split_gains().empty())
      << "importances unavailable on a model restored from disk";
  std::vector<double> gains(trees_.front().split_gains().size(), 0.0);
  for (const auto& tree : trees_) {
    for (std::size_t f = 0; f < gains.size(); ++f) {
      gains[f] += tree.split_gains()[f];
    }
  }
  double sum = 0.0;
  for (double g : gains) sum += g;
  if (sum > 0.0) {
    for (double& g : gains) g /= sum;
  }
  return gains;
}

void Gbdt::SaveModel(std::ostream& os) const {
  SPE_CHECK(!trees_.empty()) << "cannot save an unfitted booster";
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "base_score " << base_score_ << "\n";
  os << "learning_rate " << config_.learning_rate << "\n";
  os << "trees " << trees_.size() << "\n";
  for (const auto& tree : trees_) tree.Save(os);
}

Gbdt Gbdt::LoadModel(std::istream& is) {
  std::string keyword;
  GbdtConfig config;
  Gbdt model(config);
  std::size_t count = 0;
  is >> keyword >> model.base_score_;
  SPE_CHECK(is.good() && keyword == "base_score") << "malformed gbdt model";
  is >> keyword >> model.config_.learning_rate;
  SPE_CHECK(is.good() && keyword == "learning_rate") << "malformed gbdt model";
  is >> keyword >> count;
  SPE_CHECK(is.good() && keyword == "trees") << "malformed gbdt model";
  model.trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    model.trees_.push_back(gbdt::RegressionTree::Load(is));
  }
  // Keep Name() consistent with the restored tree count.
  model.config_.boost_rounds = count;
  return model;
}

std::string Gbdt::Name() const {
  std::ostringstream os;
  os << "GBDT" << config_.boost_rounds;
  return os.str();
}

}  // namespace spe
