#ifndef SPE_CLASSIFIERS_GBDT_HISTOGRAM_H_
#define SPE_CLASSIFIERS_GBDT_HISTOGRAM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "spe/classifiers/gbdt/binning.h"

namespace spe {
namespace gbdt {

/// Accumulated gradient statistics of one (feature, bin) cell.
struct BinStats {
  double grad = 0.0;
  double hess = 0.0;
  std::size_t count = 0;
};

/// Gradient/hessian histograms for every feature over a set of rows.
/// All features share one contiguous buffer indexed by a per-feature
/// offset (features can use different bin counts).
class Histograms {
 public:
  /// Allocates space for the given per-feature bin counts.
  explicit Histograms(const std::vector<int>& bins_per_feature);

  /// Accumulates statistics for `rows` in a single pass over the binned
  /// matrix. Clears previous contents.
  void Build(const BinnedMatrix& binned, std::span<const std::size_t> rows,
             std::span<const double> grads, std::span<const double> hess);

  /// Stats of (feature, bin).
  const BinStats& At(std::size_t feature, int bin) const {
    return cells_[offsets_[feature] + static_cast<std::size_t>(bin)];
  }

  int NumBins(std::size_t feature) const { return bins_per_feature_[feature]; }
  std::size_t num_features() const { return bins_per_feature_.size(); }

 private:
  std::vector<int> bins_per_feature_;
  std::vector<std::size_t> offsets_;
  std::vector<BinStats> cells_;
};

}  // namespace gbdt
}  // namespace spe

#endif  // SPE_CLASSIFIERS_GBDT_HISTOGRAM_H_
