#include "spe/classifiers/gbdt/histogram.h"

#include <algorithm>

#include "spe/common/check.h"

namespace spe {
namespace gbdt {

Histograms::Histograms(const std::vector<int>& bins_per_feature)
    : bins_per_feature_(bins_per_feature) {
  offsets_.resize(bins_per_feature_.size());
  std::size_t total = 0;
  for (std::size_t f = 0; f < bins_per_feature_.size(); ++f) {
    offsets_[f] = total;
    total += static_cast<std::size_t>(bins_per_feature_[f]);
  }
  cells_.resize(total);
}

void Histograms::Build(const BinnedMatrix& binned,
                       std::span<const std::size_t> rows,
                       std::span<const double> grads,
                       std::span<const double> hess) {
  SPE_CHECK_EQ(binned.num_features, bins_per_feature_.size());
  std::fill(cells_.begin(), cells_.end(), BinStats{});
  const std::size_t d = binned.num_features;
  for (std::size_t row : rows) {
    const std::uint8_t* row_bins = binned.bins.data() + row * d;
    const double g = grads[row];
    const double h = hess[row];
    for (std::size_t f = 0; f < d; ++f) {
      BinStats& cell = cells_[offsets_[f] + row_bins[f]];
      cell.grad += g;
      cell.hess += h;
      ++cell.count;
    }
  }
}

}  // namespace gbdt
}  // namespace spe
