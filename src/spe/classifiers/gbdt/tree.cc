#include "spe/classifiers/gbdt/tree.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>
#include <string>

#include "spe/classifiers/gbdt/histogram.h"
#include "spe/common/check.h"
#include "spe/kernels/program.h"

namespace spe {
namespace gbdt {
namespace {

struct SplitInfo {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;  // left child takes bins <= bin
  double left_grad = 0.0;
  double left_hess = 0.0;
  std::size_t left_count = 0;
};

// A grown-but-not-yet-split leaf: a contiguous slice of the row buffer
// plus its aggregate statistics and the best split found for it.
struct LeafCandidate {
  std::int32_t node = -1;
  std::size_t begin = 0;
  std::size_t end = 0;
  int depth = 0;
  double grad = 0.0;
  double hess = 0.0;
  SplitInfo split;
};

struct GainLess {
  bool operator()(const LeafCandidate& a, const LeafCandidate& b) const {
    return a.split.gain < b.split.gain;
  }
};

double LeafObjective(double grad, double hess, double lambda) {
  return grad * grad / (hess + lambda);
}

// Best split over all features for the rows in [c.begin, c.end).
SplitInfo FindBestSplit(const BinnedMatrix& binned,
                        const std::vector<int>& bins_per_feature,
                        std::span<const std::size_t> rows,
                        std::span<const double> grads,
                        std::span<const double> hess, double total_grad,
                        double total_hess, const TreeParams& params) {
  Histograms histograms(bins_per_feature);
  histograms.Build(binned, rows, grads, hess);

  SplitInfo best;
  const double parent_objective =
      LeafObjective(total_grad, total_hess, params.lambda);
  for (std::size_t f = 0; f < bins_per_feature.size(); ++f) {
    const int nb = bins_per_feature[f];
    double left_grad = 0.0;
    double left_hess = 0.0;
    std::size_t left_count = 0;
    for (int b = 0; b + 1 < nb; ++b) {
      const BinStats& cell = histograms.At(f, b);
      left_grad += cell.grad;
      left_hess += cell.hess;
      left_count += cell.count;
      const std::size_t right_count = rows.size() - left_count;
      if (left_count < params.min_data_in_leaf ||
          right_count < params.min_data_in_leaf) {
        continue;
      }
      const double right_grad = total_grad - left_grad;
      const double right_hess = total_hess - left_hess;
      if (left_hess < params.min_child_hess || right_hess < params.min_child_hess) {
        continue;
      }
      const double gain = LeafObjective(left_grad, left_hess, params.lambda) +
                          LeafObjective(right_grad, right_hess, params.lambda) -
                          parent_objective;
      if (gain > best.gain) {
        best = SplitInfo{gain, static_cast<int>(f), b, left_grad, left_hess,
                         left_count};
      }
    }
  }
  return best;
}

}  // namespace

void RegressionTree::Fit(const BinnedMatrix& binned, const FeatureBinner& binner,
                         std::span<const double> grads,
                         std::span<const double> hess,
                         std::vector<std::size_t>& rows, const TreeParams& params,
                         std::vector<double>& out_train_scores) {
  SPE_CHECK(!rows.empty());
  nodes_.clear();
  split_gains_.assign(binned.num_features, 0.0);
  nodes_.emplace_back();  // root, starts as a leaf

  std::vector<int> bins_per_feature(binned.num_features);
  for (std::size_t f = 0; f < binned.num_features; ++f) {
    bins_per_feature[f] = binner.NumBins(f);
  }

  double root_grad = 0.0;
  double root_hess = 0.0;
  for (std::size_t row : rows) {
    root_grad += grads[row];
    root_hess += hess[row];
  }

  auto evaluate = [&](LeafCandidate& c) {
    if (c.depth >= params.max_depth ||
        c.end - c.begin < 2 * params.min_data_in_leaf) {
      c.split = SplitInfo{};  // cannot split further
      return;
    }
    c.split = FindBestSplit(
        binned, bins_per_feature,
        std::span<const std::size_t>(rows.data() + c.begin, c.end - c.begin),
        grads, hess, c.grad, c.hess, params);
  };

  LeafCandidate root{0, 0, rows.size(), 0, root_grad, root_hess, {}};
  evaluate(root);

  std::priority_queue<LeafCandidate, std::vector<LeafCandidate>, GainLess> queue;
  queue.push(root);
  std::vector<LeafCandidate> final_leaves;
  int num_leaves = 1;

  while (!queue.empty() && num_leaves < params.max_leaves) {
    LeafCandidate c = queue.top();
    queue.pop();
    if (c.split.feature < 0 || c.split.gain <= params.min_gain) {
      final_leaves.push_back(c);
      continue;
    }

    // Materialize the split: partition this leaf's slice of the row
    // buffer by bin, then push both children.
    const auto feature = static_cast<std::size_t>(c.split.feature);
    const auto split_bin = static_cast<std::uint8_t>(c.split.bin);
    auto middle = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(c.begin),
        rows.begin() + static_cast<std::ptrdiff_t>(c.end),
        [&](std::size_t row) { return binned.At(row, feature) <= split_bin; });
    const auto mid = static_cast<std::size_t>(middle - rows.begin());
    SPE_CHECK_EQ(mid - c.begin, c.split.left_count);
    split_gains_[feature] += c.split.gain;

    // emplace_back may reallocate nodes_, so write through the index and
    // only after both children exist.
    nodes_.emplace_back();
    nodes_.emplace_back();
    const auto parent_idx = static_cast<std::size_t>(c.node);
    nodes_[parent_idx].feature = c.split.feature;
    nodes_[parent_idx].threshold = binner.UpperEdge(feature, c.split.bin);
    nodes_[parent_idx].left = static_cast<std::int32_t>(nodes_.size() - 2);
    nodes_[parent_idx].right = static_cast<std::int32_t>(nodes_.size() - 1);

    LeafCandidate left{nodes_[parent_idx].left,
                       c.begin,
                       mid,
                       c.depth + 1,
                       c.split.left_grad,
                       c.split.left_hess,
                       {}};
    LeafCandidate right{nodes_[parent_idx].right,
                        mid,
                        c.end,
                        c.depth + 1,
                        c.grad - c.split.left_grad,
                        c.hess - c.split.left_hess,
                        {}};
    evaluate(left);
    evaluate(right);
    queue.push(left);
    queue.push(right);
    ++num_leaves;
  }
  while (!queue.empty()) {
    final_leaves.push_back(queue.top());
    queue.pop();
  }

  // Newton leaf values; also emit per-row outputs for the booster.
  for (const LeafCandidate& leaf : final_leaves) {
    const double value = -leaf.grad / (leaf.hess + params.lambda);
    nodes_[static_cast<std::size_t>(leaf.node)].value = value;
    for (std::size_t i = leaf.begin; i < leaf.end; ++i) {
      out_train_scores[rows[i]] = value;
    }
  }
}

double RegressionTree::Predict(std::span<const double> x) const {
  SPE_CHECK(!nodes_.empty());
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

std::int32_t RegressionTree::LowerToFlat(kernels::FlatProgram& program) const {
  SPE_CHECK(!nodes_.empty()) << "cannot lower an unfitted tree";
  kernels::FlatTreeBuilder builder(program);
  for (const Node& n : nodes_) {
    builder.AddNode(n.feature, n.threshold, n.left, n.right, n.value);
  }
  return builder.Finish();
}

std::size_t RegressionTree::NumLeaves() const {
  std::size_t leaves = 0;
  for (const Node& n : nodes_) leaves += static_cast<std::size_t>(n.feature < 0);
  return leaves;
}

void RegressionTree::Save(std::ostream& os) const {
  SPE_CHECK(!nodes_.empty()) << "cannot save an unfitted tree";
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "nodes " << nodes_.size() << "\n";
  for (const Node& n : nodes_) {
    os << n.feature << " " << n.threshold << " " << n.left << " " << n.right
       << " " << n.value << "\n";
  }
}

RegressionTree RegressionTree::Load(std::istream& is) {
  std::string keyword;
  std::size_t count = 0;
  is >> keyword >> count;
  SPE_CHECK(is.good() && keyword == "nodes") << "malformed regression tree";
  RegressionTree tree;
  tree.nodes_.resize(count);
  for (Node& n : tree.nodes_) {
    is >> n.feature >> n.threshold >> n.left >> n.right >> n.value;
  }
  SPE_CHECK(!is.fail()) << "truncated regression tree";
  return tree;
}

}  // namespace gbdt
}  // namespace spe
