#include "spe/classifiers/decision_tree.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "spe/common/check.h"

namespace spe {
namespace {

// Impurity of a (weight_total, weight_positive) node.
double Impurity(DecisionTreeConfig::Criterion criterion, double total,
                double positive) {
  if (total <= 0.0) return 0.0;
  const double p = positive / total;
  if (criterion == DecisionTreeConfig::Criterion::kGini) {
    return 2.0 * p * (1.0 - p);
  }
  double h = 0.0;
  if (p > 0.0) h -= p * std::log2(p);
  if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
  return h;
}

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  // weighted child impurity
};

}  // namespace

// Split-finding scratch, allocated once per Fit and reused by every
// node (only the first `count` entries are live at a node; the sort
// runs on exactly that prefix, so reuse cannot change which split
// wins). Hoisting this out of Build removes an allocation plus a full
// re-reserve per node, which dominated deep-tree fits.
struct DecisionTree::BuildScratch {
  // (value, weight, label) triples sorted per candidate feature.
  struct Entry {
    double value;
    double weight;
    int label;
  };
  std::vector<Entry> entries;
  std::vector<int> features;  // candidate features for the current node
};

DecisionTree::DecisionTree(const DecisionTreeConfig& config) : config_(config) {}

void DecisionTree::Fit(const DatasetView& train) { FitWeighted(train, {}); }

void DecisionTree::FitWeighted(const DatasetView& train,
                               const std::vector<double>& weights) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  std::vector<double> w = weights;
  if (w.empty()) {
    w.assign(train.num_rows(), 1.0);
  } else {
    SPE_CHECK_EQ(w.size(), train.num_rows());
  }

  nodes_.clear();
  importances_.assign(train.num_features(), 0.0);
  std::vector<std::size_t> indices(train.num_rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Rng rng(config_.seed);
  BuildScratch scratch;
  scratch.entries.resize(train.num_rows());
  Build(train, w, indices, 0, indices.size(), /*depth=*/0, scratch, rng);
}

std::int32_t DecisionTree::Build(const DatasetView& train,
                                 const std::vector<double>& weights,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, int depth,
                                 BuildScratch& scratch, Rng& rng) {
  double total = 0.0;
  double positive = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    total += weights[indices[i]];
    positive += weights[indices[i]] * static_cast<double>(train.Label(indices[i]));
  }

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.value = total > 0.0 ? positive / total : 0.0;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const std::size_t count = end - begin;
  const double node_impurity = Impurity(config_.criterion, total, positive);
  if (count < config_.min_samples_split || depth >= config_.max_depth ||
      node_impurity == 0.0 || total <= 0.0) {
    return make_leaf();
  }

  // Choose which features to evaluate at this node.
  std::vector<int>& features = scratch.features;
  features.clear();
  const int d = static_cast<int>(train.num_features());
  if (config_.max_features == 0 ||
      config_.max_features >= static_cast<std::size_t>(d)) {
    features.resize(static_cast<std::size_t>(d));
    std::iota(features.begin(), features.end(), 0);
  } else {
    for (std::size_t idx :
         rng.SampleWithoutReplacement(static_cast<std::size_t>(d),
                                      config_.max_features)) {
      features.push_back(static_cast<int>(idx));
    }
  }

  // Only the first `count` scratch entries are live at this node.
  using Entry = BuildScratch::Entry;
  std::vector<Entry>& entries = scratch.entries;

  SplitCandidate best;
  for (int feature : features) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      entries[i] = Entry{train.At(row, static_cast<std::size_t>(feature)),
                         weights[row], train.Label(row)};
    }
    std::sort(entries.begin(),
              entries.begin() + static_cast<std::ptrdiff_t>(count),
              [](const Entry& a, const Entry& b) { return a.value < b.value; });

    double left_total = 0.0;
    double left_positive = 0.0;
    std::size_t left_count = 0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      left_total += entries[i].weight;
      left_positive += entries[i].weight * static_cast<double>(entries[i].label);
      ++left_count;
      // Can only split between distinct feature values.
      if (entries[i].value == entries[i + 1].value) continue;
      if (left_count < config_.min_samples_leaf ||
          count - left_count < config_.min_samples_leaf) {
        continue;
      }
      const double right_total = total - left_total;
      const double right_positive = positive - left_positive;
      const double score =
          left_total * Impurity(config_.criterion, left_total, left_positive) +
          right_total * Impurity(config_.criterion, right_total, right_positive);
      if (score < best.score) {
        best.score = score;
        best.feature = feature;
        best.threshold = (entries[i].value + entries[i + 1].value) / 2.0;
      }
    }
  }

  // No usable split (all candidate features constant) or no impurity
  // reduction: stop here.
  if (best.feature < 0 || best.score >= total * node_impurity - 1e-12) {
    return make_leaf();
  }

  // Partition indices in place around the chosen split.
  const auto split_feature = static_cast<std::size_t>(best.feature);
  auto middle = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return train.At(row, split_feature) <= best.threshold; });
  const auto mid =
      static_cast<std::size_t>(middle - indices.begin());
  // The threshold is a midpoint between two distinct sorted values, so
  // both sides are guaranteed non-empty; defensive check regardless.
  if (mid == begin || mid == end) return make_leaf();

  importances_[split_feature] += total * node_impurity - best.score;

  // Reserve our slot before recursing (children get later indices).
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      Build(train, weights, indices, begin, mid, depth + 1, scratch, rng);
  const std::int32_t right =
      Build(train, weights, indices, mid, end, depth + 1, scratch, rng);
  nodes_[self].feature = best.feature;
  nodes_[self].threshold = best.threshold;
  nodes_[self].left = left;
  nodes_[self].right = right;
  nodes_[self].value = positive / total;
  return self;
}

double DecisionTree::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!nodes_.empty()) << "predict before fit";
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

double DecisionTree::PredictViewRow(const DatasetView& data,
                                    std::size_t row) const {
  SPE_CHECK(!nodes_.empty()) << "predict before fit";
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = data.At(row, static_cast<std::size_t>(n.feature)) <= n.threshold
               ? n.left
               : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

int DecisionTree::Depth() const {
  SPE_CHECK(!nodes_.empty());
  // Iterative depth computation over the node array.
  std::vector<std::pair<std::int32_t, int>> stack = {{0, 0}};
  int depth = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return depth;
}

std::unique_ptr<Classifier> DecisionTree::Clone() const {
  return std::make_unique<DecisionTree>(config_);
}

bool DecisionTree::LowerToFlat(kernels::FlatProgram& program,
                               kernels::MemberOp& op) const {
  if (nodes_.empty()) return false;
  kernels::FlatTreeBuilder builder(program);
  for (const Node& n : nodes_) {
    builder.AddNode(n.feature, n.threshold, n.left, n.right, n.value);
  }
  const std::int32_t tree = builder.Finish();
  op.kind = kernels::MemberOp::Kind::kTree;
  op.tree_begin = tree;
  op.tree_end = tree + 1;
  return true;
}

std::vector<double> DecisionTree::FeatureImportances() const {
  SPE_CHECK(!nodes_.empty()) << "importances before fit";
  std::vector<double> normalized = importances_;
  double sum = 0.0;
  for (double v : normalized) sum += v;
  if (sum > 0.0) {
    for (double& v : normalized) v /= sum;
  }
  return normalized;
}

void DecisionTree::SaveModel(std::ostream& os) const {
  SPE_CHECK(!nodes_.empty()) << "cannot save an unfitted tree";
  // std::to_chars(general, 17) is specified to format exactly as printf
  // %.17g, which is byte-identical to the old `os << double` at
  // max_digits10 precision — but ~4x faster, and batching into one
  // string skips the per-field stream machinery. This path matters:
  // trees are serialized once per member on every checkpointed training
  // run, where formatting was the dominant cost (docs/robustness.md).
  std::string out;
  out.reserve(64 + nodes_.size() * 64);
  char line[160];
  std::snprintf(line, sizeof(line), "nodes %zu\n", nodes_.size());
  out += line;
  for (const Node& n : nodes_) {
    char* p = line;
    const auto put_int = [&p](std::int64_t v) {
      p = std::to_chars(p, p + 24, v).ptr;
      *p++ = ' ';
    };
    const auto put_double = [&p](double v) {
      p = std::to_chars(p, p + 32, v, std::chars_format::general, 17).ptr;
      *p++ = ' ';
    };
    put_int(n.feature);
    put_double(n.threshold);
    put_int(n.left);
    put_int(n.right);
    put_double(n.value);
    p[-1] = '\n';  // the line's last separator becomes its newline
    out.append(line, static_cast<std::size_t>(p - line));
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

DecisionTree DecisionTree::LoadModel(std::istream& is) {
  std::string keyword;
  std::size_t count = 0;
  is >> keyword >> count;
  SPE_CHECK(is.good() && keyword == "nodes") << "malformed tree model";
  DecisionTree tree;
  tree.nodes_.resize(count);
  for (Node& n : tree.nodes_) {
    is >> n.feature >> n.threshold >> n.left >> n.right >> n.value;
  }
  SPE_CHECK(!is.fail()) << "truncated tree model";
  return tree;
}

}  // namespace spe
