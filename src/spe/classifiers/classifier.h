#ifndef SPE_CLASSIFIERS_CLASSIFIER_H_
#define SPE_CLASSIFIERS_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "spe/data/dataset.h"

namespace spe {

namespace kernels {
class FlatForest;
}

namespace internal {
struct FlatKernelCache;
}

/// Abstract binary probabilistic classifier.
///
/// This is the "canonical classifier" abstraction of the paper: anything
/// with Fit / PredictProba can be wrapped by SPE and by every baseline
/// imbalance method (§I: "our methods can be easily adapted to most of
/// existing learning methods"). Implementations are value-like objects
/// configured at construction; Clone() produces a fresh *untrained* copy
/// with the same configuration, which is how ensemble trainers stamp out
/// their base models.
class Classifier {
 public:
  virtual ~Classifier();

  /// Trains on the viewed rows, replacing any previous model. Dataset
  /// converts implicitly, so `clf.Fit(data)` keeps reading naturally;
  /// ensemble trainers pass index views and train with zero row copies.
  virtual void Fit(const DatasetView& train) = 0;

  /// Trains with per-example weights (same length as `train`). Only
  /// meaningful for implementations where SupportsSampleWeights() is
  /// true; the default aborts, because silently ignoring the weights
  /// would corrupt boosting algorithms built on top.
  virtual void FitWeighted(const DatasetView& train,
                           const std::vector<double>& weights);
  virtual bool SupportsSampleWeights() const { return false; }

  /// Probability that `x` belongs to the positive (minority) class.
  /// Must be in [0, 1]. Only valid after Fit.
  virtual double PredictRow(std::span<const double> x) const = 0;

  /// PredictRow for row `row` of a view. The default gathers the row
  /// into per-thread scratch and calls PredictRow (bit-identical: same
  /// values, same arithmetic); models that can walk columnar storage
  /// directly — tree descent touches a handful of features per row —
  /// override it to skip the gather entirely.
  virtual double PredictViewRow(const DatasetView& data, std::size_t row) const;

  /// Batched prediction; the default loops over PredictViewRow,
  /// classifiers with cheaper batch paths override it.
  virtual std::vector<double> PredictProba(const DatasetView& data) const;

  /// Adds this model's batch probabilities element-wise into `acc`
  /// (acc[i] += p[i], acc.size() == data.num_rows()). This is how
  /// VotingEnsemble reduces members without materializing a per-member
  /// probability vector: the default streams PredictViewRow straight
  /// into the accumulator, which is the fused form of the reference
  /// PredictProba-then-add and bit-identical to it. Any class that
  /// overrides PredictProba with a different batch computation MUST
  /// also override this (typically via AccumulateViaPredictProba) so
  /// the accumulated bits keep matching its PredictProba.
  virtual void AccumulateProbaInto(const DatasetView& data,
                                   std::span<double> acc) const;

  /// Fresh untrained copy with identical configuration.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Re-seeds any internal randomness (weight init, shuffling, feature
  /// subsampling). Ensemble trainers call this on cloned members so the
  /// ensemble is diverse even when every member sees similar data.
  /// No-op for deterministic models.
  virtual void Reseed(std::uint64_t /*seed*/) {}

  /// Short name for tables/logs, e.g. "DT", "GBDT10".
  virtual std::string Name() const = 0;

 protected:
  /// AccumulateProbaInto implementation for classes with a custom
  /// PredictProba: scores through the override (one temporary, exactly
  /// the reference arithmetic) and adds element-wise.
  void AccumulateViaPredictProba(const DatasetView& data,
                                 std::span<double> acc) const;
};

/// Averages the probability outputs of an arbitrary set of trained
/// classifiers: F(x) = (1/n) * sum f_m(x) — the combination rule used by
/// SPE (Algorithm 1 line 12) and the bagging-style baselines.
class VotingEnsemble {
 public:
  VotingEnsemble();
  ~VotingEnsemble();
  VotingEnsemble(VotingEnsemble&& other) noexcept;
  VotingEnsemble& operator=(VotingEnsemble&& other) noexcept;

  void Add(std::unique_ptr<Classifier> member);
  /// Drops members past the first `size` (prefix selection, e.g. after
  /// validation-monitored training). No-op when size >= size().
  void Truncate(std::size_t size);
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  const Classifier& member(std::size_t i) const { return *members_[i]; }

  /// Mean member probability for each row. Requires at least one member.
  std::vector<double> PredictProba(const DatasetView& data) const;

  /// Mean probability over only the first min(k, size()) members —
  /// the full hypothesis truncated to an ensemble prefix. Because the
  /// combination rule is a plain average, the prefix is itself a valid
  /// (coarser) SPE hypothesis, which makes it a principled
  /// graceful-degradation knob: an overloaded server can score with
  /// k < n members and pay proportionally less compute. Requires k >= 1.
  std::vector<double> PredictProbaPrefix(const DatasetView& data,
                                         std::size_t k) const;

  /// Mean member probability for a single row.
  double PredictRow(std::span<const double> x) const;

  /// The flat-inference program compiled from the current member list
  /// (see spe/kernels/flat_forest.h), or nullptr when any member cannot
  /// lower (non-tree members) or the kernel is disabled. Compiles
  /// lazily on first use and caches until the member list changes;
  /// thread-safe, so concurrent serve workers share one compile.
  const kernels::FlatForest* flat_kernel() const;

 private:
  /// Drops any compiled program; called whenever members_ changes.
  void InvalidateFlatKernel();

  std::vector<std::unique_ptr<Classifier>> members_;
  mutable std::unique_ptr<internal::FlatKernelCache> flat_cache_;
};

/// Implemented by models whose hypothesis is an average over ordered
/// members and which can therefore answer with a member prefix (see
/// VotingEnsemble::PredictProbaPrefix). The serving layer discovers the
/// capability via dynamic_cast; plain classifiers simply don't have it.
class PrefixVoter {
 public:
  virtual ~PrefixVoter() = default;

  /// Members available for prefix scoring (the full-ensemble size).
  virtual std::size_t NumPrefixMembers() const = 0;

  /// Probabilities from the first min(k, NumPrefixMembers()) members.
  /// Requires k >= 1 and a fitted model.
  virtual std::vector<double> PredictProbaPrefix(const DatasetView& data,
                                                 std::size_t k) const = 0;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_CLASSIFIER_H_
