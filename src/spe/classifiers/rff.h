#ifndef SPE_CLASSIFIERS_RFF_H_
#define SPE_CLASSIFIERS_RFF_H_

#include <cstdint>
#include <span>
#include <vector>

#include "spe/data/dataset.h"

namespace spe {

/// Random Fourier feature map approximating an RBF kernel
/// k(x, x') = exp(-gamma * ||x - x'||^2) (Rahimi & Recht, 2007).
///
/// z(x) = sqrt(2 / D) * cos(W x + b), with rows of W drawn from
/// N(0, 2 * gamma * I) and b ~ U[0, 2*pi). A linear model on z(x)
/// approximates a kernel machine — this is how the library stands in for
/// the paper's RBF-kernel SVC without the O(n^2) kernel matrix
/// (substitution documented in DESIGN.md §3).
class RandomFourierFeatures {
 public:
  /// Samples the projection for `input_dim` inputs. `gamma <= 0` selects
  /// 1 / input_dim (the scale heuristic on standardized features).
  void Init(std::size_t input_dim, std::size_t output_dim, double gamma,
            std::uint64_t seed);

  std::size_t output_dim() const { return biases_.size(); }
  bool initialized() const { return !biases_.empty(); }

  /// Maps one input row to the Fourier feature space.
  std::vector<double> TransformRow(std::span<const double> x) const;

  /// Maps a whole dataset (labels preserved; counted materialization).
  Dataset Transform(const DatasetView& data) const;

  /// Maps row-major scratch to row-major scratch — the copy-free path
  /// LinearSvm's RBF mode fits through.
  void TransformToRows(const RowMatrix& in, RowMatrix& out) const;

 private:
  std::size_t input_dim_ = 0;
  std::vector<double> projection_;  // row-major, output_dim x input_dim
  std::vector<double> biases_;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_RFF_H_
