#include "spe/classifiers/adaboost.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spe/classifiers/decision_tree.h"
#include "spe/common/check.h"

namespace spe {
namespace {

constexpr double kProbClamp = 1e-6;

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Half log-odds contribution of one stage's probability estimate.
double HalfLogOdds(double p) {
  p = std::clamp(p, kProbClamp, 1.0 - kProbClamp);
  return 0.5 * std::log(p / (1.0 - p));
}

}  // namespace

AdaBoost::AdaBoost(const AdaBoostConfig& config) : config_(config) {
  SPE_CHECK_GT(config.n_estimators, 0u);
}

AdaBoost::AdaBoost(const AdaBoostConfig& config,
                   std::unique_ptr<Classifier> base_prototype)
    : config_(config), base_prototype_(std::move(base_prototype)) {
  SPE_CHECK_GT(config.n_estimators, 0u);
  SPE_CHECK(base_prototype_ == nullptr || base_prototype_->SupportsSampleWeights())
      << "AdaBoost base learner must support sample weights";
}

void AdaBoost::Fit(const DatasetView& train) { FitWeighted(train, {}); }

void AdaBoost::FitWeighted(const DatasetView& train,
                           const std::vector<double>& initial_weights) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  const std::size_t n = train.num_rows();
  std::vector<double> w = initial_weights;
  if (w.empty()) {
    w.assign(n, 1.0 / static_cast<double>(n));
  } else {
    SPE_CHECK_EQ(w.size(), n);
    double sum = 0.0;
    for (double v : w) sum += v;
    SPE_CHECK_GT(sum, 0.0);
    for (double& v : w) v /= sum;
  }

  stages_.clear();
  for (std::size_t m = 0; m < config_.n_estimators; ++m) {
    std::unique_ptr<Classifier> stage;
    if (base_prototype_ != nullptr) {
      stage = base_prototype_->Clone();
    } else {
      DecisionTreeConfig tree_config;
      tree_config.max_depth = config_.base_max_depth;
      stage = std::make_unique<DecisionTree>(tree_config);
    }
    stage->Reseed(config_.seed + m);
    stage->FitWeighted(train, w);

    const std::vector<double> probs = stage->PredictProba(train);
    stages_.push_back(std::move(stage));

    // w_i *= exp(-y'_i * lr * h(x_i)) with y' in {-1, +1}, then normalize.
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y = train.Label(i) == 1 ? 1.0 : -1.0;
      w[i] *= std::exp(-y * config_.learning_rate * HalfLogOdds(probs[i]));
      sum += w[i];
    }
    if (sum <= 0.0 || !std::isfinite(sum)) break;  // degenerate stage
    for (double& v : w) v /= sum;
  }
}

double AdaBoost::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!stages_.empty()) << "predict before fit";
  double score = 0.0;
  for (const auto& stage : stages_) score += HalfLogOdds(stage->PredictRow(x));
  return Sigmoid(2.0 * config_.learning_rate * score);
}

std::vector<double> AdaBoost::PredictProba(const DatasetView& data) const {
  SPE_CHECK(!stages_.empty()) << "predict before fit";
  std::vector<double> score(data.num_rows(), 0.0);
  for (const auto& stage : stages_) {
    const std::vector<double> p = stage->PredictProba(data);
    for (std::size_t i = 0; i < score.size(); ++i) score[i] += HalfLogOdds(p[i]);
  }
  for (double& s : score) s = Sigmoid(2.0 * config_.learning_rate * s);
  return score;
}

void AdaBoost::AccumulateProbaInto(const DatasetView& data,
                                   std::span<double> acc) const {
  // PredictProba is a staged vote reduction, not a PredictRow loop;
  // keep that path so the accumulated bits match it.
  AccumulateViaPredictProba(data, acc);
}

std::unique_ptr<AdaBoost> AdaBoost::FromTrainedStages(
    const AdaBoostConfig& config,
    std::vector<std::unique_ptr<Classifier>> stages) {
  SPE_CHECK(!stages.empty());
  auto model = std::make_unique<AdaBoost>(config);
  model->stages_ = std::move(stages);
  return model;
}

std::unique_ptr<Classifier> AdaBoost::Clone() const {
  auto copy = base_prototype_ != nullptr
                  ? std::make_unique<AdaBoost>(config_, base_prototype_->Clone())
                  : std::make_unique<AdaBoost>(config_);
  return copy;
}

std::string AdaBoost::Name() const {
  std::ostringstream os;
  os << "AdaBoost" << config_.n_estimators;
  return os.str();
}

}  // namespace spe
