#include "spe/classifiers/factory.h"

#include <cctype>

#include "spe/classifiers/adaboost.h"
#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/knn.h"
#include "spe/classifiers/lda.h"
#include "spe/classifiers/linear_svm.h"
#include "spe/classifiers/logistic_regression.h"
#include "spe/classifiers/mlp.h"
#include "spe/classifiers/naive_bayes.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/check.h"

namespace spe {
namespace {

// Splits "AdaBoost10" into ("AdaBoost", 10); count is 0 when the name has
// no trailing digits.
std::pair<std::string, std::size_t> SplitTrailingCount(const std::string& name) {
  std::size_t pos = name.size();
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1]))) {
    --pos;
  }
  const std::string head = name.substr(0, pos);
  const std::size_t count =
      pos == name.size() ? 0 : static_cast<std::size_t>(std::stoul(name.substr(pos)));
  return {head, count};
}

}  // namespace

std::unique_ptr<Classifier> MakeClassifier(const std::string& name,
                                           std::uint64_t seed) {
  // "C4.5" would confuse the trailing-count parser; match it verbatim.
  if (name == "C4.5") {
    DecisionTreeConfig config;
    config.criterion = DecisionTreeConfig::Criterion::kEntropy;
    config.max_depth = 10;
    config.seed = seed;
    return std::make_unique<DecisionTree>(config);
  }

  const auto [head, count] = SplitTrailingCount(name);
  const std::size_t n = count == 0 ? 10 : count;

  if (head == "KNN") {
    return std::make_unique<Knn>(KnnConfig{.k = 5});
  }
  if (head == "DT") {
    DecisionTreeConfig config;
    config.max_depth = 10;
    config.seed = seed;
    return std::make_unique<DecisionTree>(config);
  }
  if (head == "MLP") {
    MlpConfig config;
    config.hidden_units = 128;
    // The multi-cluster benchmark tasks need more passes than the class
    // default to converge from a cold start on balanced subsets.
    config.epochs = 60;
    config.seed = seed;
    return std::make_unique<Mlp>(config);
  }
  if (head == "SVM") {
    SvmConfig config;
    config.kernel = SvmConfig::Kernel::kRbfApprox;
    config.c = 1000.0;
    config.seed = seed;
    return std::make_unique<LinearSvm>(config);
  }
  if (head == "LR") {
    LogisticRegressionConfig config;
    config.seed = seed;
    return std::make_unique<LogisticRegression>(config);
  }
  if (head == "GNB") {
    return std::make_unique<GaussianNaiveBayes>();
  }
  if (head == "LDA") {
    return std::make_unique<LinearDiscriminant>();
  }
  if (head == "AdaBoost") {
    AdaBoostConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<AdaBoost>(config);
  }
  if (head == "Bagging") {
    BaggingConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<Bagging>(config);
  }
  if (head == "RandForest") {
    RandomForestConfig config;
    config.n_estimators = n;
    config.seed = seed;
    return std::make_unique<RandomForest>(config);
  }
  if (head == "GBDT") {
    GbdtConfig config;
    config.boost_rounds = n;
    return std::make_unique<Gbdt>(config);
  }
  SPE_CHECK(false) << "unknown classifier name: " << name;
  return nullptr;  // unreachable
}

std::vector<std::string> KnownClassifierNames() {
  return {"KNN",        "DT",        "MLP",          "SVM",    "LR",
          "AdaBoost10", "Bagging10", "RandForest10", "GBDT10", "C4.5",
          // Extensions beyond the paper's model zoo:
          "GNB", "LDA"};
}

}  // namespace spe
