#include "spe/classifiers/knn.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spe/common/check.h"
#include "spe/common/parallel.h"

namespace spe {

Knn::Knn(const KnnConfig& config) : config_(config) {
  SPE_CHECK_GT(config.k, 0u);
}

void Knn::Fit(const DatasetView& train) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  if (config_.standardize) {
    scaler_.Fit(train);
    scaler_.TransformToRows(train, train_rows_);
  } else {
    train_rows_.GatherFrom(train);
  }
  labels_ = train.LabelsVector();
}

double Knn::PredictScaledRow(std::span<const double> x) const {
  const std::size_t n = train_rows_.num_rows();
  const std::size_t k = std::min(config_.k, n);

  // Keep the k smallest distances with a max-heap over (distance, label).
  std::vector<std::pair<double, int>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = train_rows_.Row(i);
    double dist = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double d = row[j] - x[j];
      dist += d * d;
    }
    if (heap.size() < k) {
      heap.emplace_back(dist, labels_[i]);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, labels_[i]};
      std::push_heap(heap.begin(), heap.end());
    }
  }

  if (!config_.distance_weighted) {
    double positives = 0.0;
    for (const auto& [dist, label] : heap) {
      positives += static_cast<double>(label);
    }
    return positives / static_cast<double>(heap.size());
  }
  // Inverse-distance weighting (epsilon guards exact duplicates).
  constexpr double kEps = 1e-9;
  double weighted_positives = 0.0;
  double weight_total = 0.0;
  for (const auto& [squared_dist, label] : heap) {
    const double weight = 1.0 / (std::sqrt(squared_dist) + kEps);
    weighted_positives += weight * static_cast<double>(label);
    weight_total += weight;
  }
  return weighted_positives / weight_total;
}

double Knn::PredictRow(std::span<const double> x) const {
  SPE_CHECK(train_rows_.num_rows() > 0) << "predict before fit";
  if (!config_.standardize) return PredictScaledRow(x);
  std::vector<double> scaled(x.size());
  scaler_.TransformRow(x, scaled);
  return PredictScaledRow(scaled);
}

std::vector<double> Knn::PredictProba(const DatasetView& data) const {
  SPE_CHECK(train_rows_.num_rows() > 0) << "predict before fit";
  data.CheckAlive();
  RowMatrix queries;
  if (config_.standardize) {
    scaler_.TransformToRows(data, queries);
  } else {
    queries.GatherFrom(data);
  }
  std::vector<double> out(queries.num_rows());
  ParallelFor(0, queries.num_rows(),
              [&](std::size_t i) { out[i] = PredictScaledRow(queries.Row(i)); });
  return out;
}

void Knn::AccumulateProbaInto(const DatasetView& data,
                              std::span<double> acc) const {
  // PredictProba standardizes the whole batch up front; keep that path
  // so the accumulated bits match it.
  AccumulateViaPredictProba(data, acc);
}

std::unique_ptr<Classifier> Knn::Clone() const {
  return std::make_unique<Knn>(config_);
}

}  // namespace spe
