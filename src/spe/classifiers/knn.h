#ifndef SPE_CLASSIFIERS_KNN_H_
#define SPE_CLASSIFIERS_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/data/dataset.h"

namespace spe {

struct KnnConfig {
  std::size_t k = 5;  // paper's Table II uses k=5
  /// Standardize features with statistics from the training set before
  /// computing distances (recommended whenever feature scales differ).
  bool standardize = true;
  /// Weight neighbour votes by inverse distance instead of uniformly.
  /// Produces continuous probability estimates (useful for AUCPRC, where
  /// uniform k-NN votes give only k+1 distinct scores).
  bool distance_weighted = false;
};

/// Brute-force k-nearest-neighbours classifier with Euclidean distance.
/// PredictRow returns the fraction of the k nearest training examples
/// that are positive; queries over a dataset run in parallel.
///
/// The O(n_train * n_query) scan is intentional: the library's point
/// (and the paper's) is that distance computations dominate on large
/// data, which the Table V timing bench demonstrates directly.
class Knn final : public Classifier {
 public:
  explicit Knn(const KnnConfig& config = {});

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "KNN"; }

 private:
  double PredictScaledRow(std::span<const double> x) const;

  KnnConfig config_;
  FeatureScaler scaler_;
  RowMatrix train_rows_;     // standardized training rows (row-major scratch)
  std::vector<int> labels_;  // labels parallel to train_rows_
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_KNN_H_
