#include "spe/classifiers/mlp.h"

#include <cmath>
#include <numeric>

#include "spe/common/check.h"
#include "spe/common/rng.h"

namespace spe {
namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Adam state for one parameter vector.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;

  explicit AdamState(std::size_t size) : m(size, 0.0), v(size, 0.0) {}

  // One Adam update with bias correction; t is the global step (1-based).
  void Apply(std::vector<double>& params, const std::vector<double>& grad,
             double lr, std::size_t t) {
    constexpr double kBeta1 = 0.9;
    constexpr double kBeta2 = 0.999;
    constexpr double kEps = 1e-8;
    const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(t));
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grad[i];
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
      params[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + kEps);
    }
  }
};

}  // namespace

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  SPE_CHECK_GT(config.hidden_units, 0u);
}

double Mlp::Forward(std::span<const double> scaled,
                    std::vector<double>& hidden) const {
  const std::size_t h = config_.hidden_units;
  hidden.resize(h);
  for (std::size_t u = 0; u < h; ++u) {
    const double* w = w1_.data() + u * input_dim_;
    double z = b1_[u];
    for (std::size_t j = 0; j < input_dim_; ++j) z += w[j] * scaled[j];
    hidden[u] = z > 0.0 ? z : 0.0;  // ReLU
  }
  double out = b2_;
  for (std::size_t u = 0; u < h; ++u) out += w2_[u] * hidden[u];
  return Sigmoid(out);
}

void Mlp::Fit(const DatasetView& train) {
  train.CheckAlive();
  SPE_CHECK_GT(train.num_rows(), 0u);
  scaler_.Fit(train);
  RowMatrix x;
  scaler_.TransformToRows(train, x);
  const std::size_t n = x.num_rows();
  input_dim_ = x.num_features();
  const std::size_t h = config_.hidden_units;

  Rng rng(config_.seed);
  // He initialization for the ReLU layer, Xavier-ish for the output.
  const double init1 = std::sqrt(2.0 / static_cast<double>(input_dim_));
  const double init2 = std::sqrt(1.0 / static_cast<double>(h));
  w1_.resize(h * input_dim_);
  for (double& w : w1_) w = rng.Gaussian(0.0, init1);
  b1_.assign(h, 0.0);
  w2_.resize(h);
  for (double& w : w2_) w = rng.Gaussian(0.0, init2);
  b2_ = 0.0;

  AdamState adam_w1(w1_.size());
  AdamState adam_b1(b1_.size());
  AdamState adam_w2(w2_.size());
  AdamState adam_b2(1);
  std::vector<double> b2_vec = {b2_};

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> hidden;
  std::vector<double> grad_w1(w1_.size());
  std::vector<double> grad_b1(b1_.size());
  std::vector<double> grad_w2(w2_.size());
  std::vector<double> grad_b2(1);

  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t stop = std::min(start + config_.batch_size, n);
      std::fill(grad_w1.begin(), grad_w1.end(), 0.0);
      std::fill(grad_b1.begin(), grad_b1.end(), 0.0);
      std::fill(grad_w2.begin(), grad_w2.end(), 0.0);
      grad_b2[0] = 0.0;

      for (std::size_t b = start; b < stop; ++b) {
        const std::size_t row = order[b];
        auto features = x.Row(row);
        const double p = Forward(features, hidden);
        // dL/dz_out for BCE + sigmoid is simply (p - y).
        const double delta_out = p - static_cast<double>(train.Label(row));
        grad_b2[0] += delta_out;
        for (std::size_t u = 0; u < h; ++u) {
          grad_w2[u] += delta_out * hidden[u];
          if (hidden[u] > 0.0) {  // ReLU gate
            const double delta_h = delta_out * w2_[u];
            grad_b1[u] += delta_h;
            double* gw = grad_w1.data() + u * input_dim_;
            for (std::size_t j = 0; j < input_dim_; ++j) {
              gw[j] += delta_h * features[j];
            }
          }
        }
      }

      const double inv = 1.0 / static_cast<double>(stop - start);
      for (std::size_t i = 0; i < grad_w1.size(); ++i) {
        grad_w1[i] = grad_w1[i] * inv + config_.l2 * w1_[i];
      }
      for (double& g : grad_b1) g *= inv;
      for (std::size_t i = 0; i < grad_w2.size(); ++i) {
        grad_w2[i] = grad_w2[i] * inv + config_.l2 * w2_[i];
      }
      grad_b2[0] *= inv;

      ++step;
      adam_w1.Apply(w1_, grad_w1, config_.learning_rate, step);
      adam_b1.Apply(b1_, grad_b1, config_.learning_rate, step);
      adam_w2.Apply(w2_, grad_w2, config_.learning_rate, step);
      b2_vec[0] = b2_;
      adam_b2.Apply(b2_vec, grad_b2, config_.learning_rate, step);
      b2_ = b2_vec[0];
    }
  }
}

double Mlp::PredictRow(std::span<const double> x) const {
  SPE_CHECK(!w1_.empty()) << "predict before fit";
  std::vector<double> scaled(x.size());
  scaler_.TransformRow(x, scaled);
  std::vector<double> hidden;
  return Forward(scaled, hidden);
}

std::unique_ptr<Classifier> Mlp::Clone() const {
  return std::make_unique<Mlp>(config_);
}

}  // namespace spe
