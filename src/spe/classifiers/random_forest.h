#ifndef SPE_CLASSIFIERS_RANDOM_FOREST_H_
#define SPE_CLASSIFIERS_RANDOM_FOREST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/kernels/program.h"

namespace spe {

struct RandomForestConfig {
  std::size_t n_estimators = 10;
  int max_depth = 12;
  /// Features examined per node; 0 = floor(sqrt(d)).
  std::size_t max_features = 0;
  std::size_t min_samples_leaf = 1;
  std::uint64_t seed = 0;
};

/// Random forest: bootstrap-resampled, feature-subsampled decision trees
/// with averaged probability votes.
class RandomForest final : public Classifier,
                           public kernels::FlatCompilable,
                           public kernels::FlatScorable {
 public:
  explicit RandomForest(const RandomForestConfig& config = {});

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override;

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  /// The trained trees (model persistence / inspection).
  const VotingEnsemble& members() const { return ensemble_; }

 private:
  RandomForestConfig config_;
  VotingEnsemble ensemble_;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_RANDOM_FOREST_H_
