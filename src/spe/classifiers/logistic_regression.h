#ifndef SPE_CLASSIFIERS_LOGISTIC_REGRESSION_H_
#define SPE_CLASSIFIERS_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/data/dataset.h"

namespace spe {

struct LogisticRegressionConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t epochs = 60;
  std::size_t batch_size = 64;
  std::uint64_t seed = 0;
};

/// L2-regularized logistic regression trained with mini-batch SGD on
/// internally standardized features. Supports per-example weights (the
/// weight multiplies the example's gradient contribution), so it can act
/// as a boosting base learner.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(const LogisticRegressionConfig& config = {});

  void Fit(const DatasetView& train) override;
  void FitWeighted(const DatasetView& train,
                   const std::vector<double>& weights) override;
  bool SupportsSampleWeights() const override { return true; }
  double PredictRow(std::span<const double> x) const override;
  std::unique_ptr<Classifier> Clone() const override;
  void Reseed(std::uint64_t seed) override { config_.seed = seed; }
  std::string Name() const override { return "LR"; }

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return bias_; }

  /// Text serialization of the fitted model (weights + scaler).
  void SaveModel(std::ostream& os) const;
  static LogisticRegression LoadModel(std::istream& is);

 private:
  LogisticRegressionConfig config_;
  FeatureScaler scaler_;
  std::vector<double> w_;
  double bias_ = 0.0;
};

}  // namespace spe

#endif  // SPE_CLASSIFIERS_LOGISTIC_REGRESSION_H_
