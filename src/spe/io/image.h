#ifndef SPE_IO_IMAGE_H_
#define SPE_IO_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/data/dataset.h"

namespace spe {

/// Minimal 8-bit grayscale raster with binary PGM (P5) output — enough
/// to turn prediction surfaces and training-set scatters into real
/// figure files (Fig. 6) without an imaging dependency.
class GrayscaleImage {
 public:
  GrayscaleImage(std::size_t width, std::size_t height,
                 std::uint8_t fill = 255);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  std::uint8_t At(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }
  void Set(std::size_t x, std::size_t y, std::uint8_t value) {
    pixels_[y * width_ + x] = value;
  }

  /// Writes a binary PGM (P5). Aborts if the file cannot be written.
  void SavePgm(const std::string& path) const;

  /// Reads a binary PGM written by SavePgm.
  static GrayscaleImage LoadPgm(const std::string& path);

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> pixels_;
};

/// Axis-aligned view rectangle in feature space (2-D models only).
struct ViewPort {
  double x_lo = -1.0;
  double x_hi = 4.0;
  double y_lo = -1.0;
  double y_hi = 4.0;
};

/// Renders PredictRow over a 2-D grid: black = P(y=1) -> 1, white -> 0.
/// The model must accept 2-feature rows.
GrayscaleImage RenderPredictionSurface(const Classifier& model,
                                       const ViewPort& view,
                                       std::size_t resolution = 200);

/// Renders a 2-feature dataset scatter: minority samples paint black
/// (0), majority mid-gray (160), empty cells stay white.
GrayscaleImage RenderScatter(const DatasetView& data, const ViewPort& view,
                             std::size_t resolution = 200);

}  // namespace spe

#endif  // SPE_IO_IMAGE_H_
