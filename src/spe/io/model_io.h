#ifndef SPE_IO_MODEL_IO_H_
#define SPE_IO_MODEL_IO_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>

#include "spe/classifiers/classifier.h"
#include "spe/core/hardness.h"
#include "spe/kernels/program.h"

namespace spe {

/// Inference-only classifier reconstructed from persisted ensemble
/// members: predicts the mean member probability (the combination rule
/// of SPE and every bagging-style method in this library). Fit / Clone
/// abort — retraining requires the original trainer, not the artifact.
/// Supports prefix scoring (PrefixVoter), so a served artifact keeps the
/// ensemble-truncation degradation knob of the live trainer.
class VotingEnsembleModel final : public Classifier,
                                  public PrefixVoter,
                                  public HardnessProfiled,
                                  public kernels::FlatCompilable,
                                  public kernels::FlatScorable {
 public:
  explicit VotingEnsembleModel(VotingEnsemble members);

  void Fit(const DatasetView& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const DatasetView& data) const override;
  void AccumulateProbaInto(const DatasetView& data,
                           std::span<double> acc) const override;
  std::size_t NumPrefixMembers() const override { return members_.size(); }
  std::vector<double> PredictProbaPrefix(const DatasetView& data,
                                         std::size_t k) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "VotingEnsemble"; }

  bool LowerToFlat(kernels::FlatProgram& program,
                   kernels::MemberOp& op) const override;
  const kernels::FlatForest* flat_kernel() const override;

  const VotingEnsemble& members() const { return members_; }

  /// HardnessProfiled: the training-time histogram restored from a v3
  /// bundle (LoadModelBundle installs it), nullptr otherwise. Keeping it
  /// on the model means re-saving a loaded artifact round-trips the
  /// histogram byte-identically.
  const HardnessHistogram* training_hardness() const override {
    return training_hardness_.empty() ? nullptr : &training_hardness_;
  }
  void set_training_hardness(HardnessHistogram histogram) {
    training_hardness_ = std::move(histogram);
  }

 private:
  VotingEnsemble members_;
  HardnessHistogram training_hardness_;
};

/// Persists a *fitted* classifier as a self-describing text artifact.
///
/// Supported:
///   - DecisionTree, Gbdt, LogisticRegression (full state);
///   - AdaBoost (stages serialized recursively);
///   - SelfPacedEnsemble, UnderBagging / EasyEnsemble, BalanceCascade,
///     Bagging, RandomForest, SmoteBagging and VotingEnsembleModel —
///     persisted as their member list; loading returns an inference-only
///     VotingEnsembleModel, because a trained probability-averaging
///     ensemble is exactly its members.
/// Aborts (CHECK) on unsupported types (e.g. KNN, whose "model" is the
/// training set itself) and on unfitted models.
void SaveClassifier(const Classifier& model, std::ostream& os);
void SaveClassifierToFile(const Classifier& model, const std::string& path);

/// Restores a classifier persisted by SaveClassifier. The returned
/// object predicts identically to the saved one. Also accepts bundle
/// streams (below), skipping the schema header.
std::unique_ptr<Classifier> LoadClassifier(std::istream& is);
std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path);

/// A model together with the input schema the serving layer needs to
/// validate incoming rows, plus the manifest fields the model registry
/// (spe/lifecycle/model_registry.h) records about the artifact it came
/// from. Classifiers do not record their feature count, so the trainer
/// (which knows the dataset width) supplies it at save time.
struct ModelBundle {
  std::unique_ptr<Classifier> model;
  std::size_t num_features = 0;  // 0 = unknown (legacy spe-model stream)
  /// Artifact provenance, filled by LoadModelBundle: 0 for bare
  /// spe-model streams, otherwise the "spe-bundle" header version.
  int format_version = 0;
  /// Payload size and checksum from the header; 0 / empty for artifacts
  /// that predate the integrity fields (bare streams, v1 bundles).
  std::size_t payload_bytes = 0;
  std::string crc32_hex;
  /// Training-time hardness histogram from a v3 header; empty otherwise.
  HardnessHistogram hardness_histogram;
};

/// Persists `model` prefixed with a schema-and-integrity header:
///
///   spe-bundle 3 num_features N payload_bytes B crc32 HHHHHHHH
///   hardness_histogram K [KIND MIN MAX C0 .. C(K-1)]
///   <payload>
///
/// The header records the payload size and its CRC-32, so loaders detect
/// truncation and bit rot instead of parsing garbage. Version 3 adds the
/// hardness_histogram line — the training-time hardness-bin distribution
/// that hot-reload drift detection compares live traffic against; K is 0
/// (and the bracketed fields absent) when the model carries none. The
/// histogram is taken from `histogram` when non-null, else from the
/// model's HardnessProfiled capability when it has one. MIN/MAX print
/// with 17 significant digits so the line round-trips byte-identically.
/// Readers that only want the classifier (LoadClassifier) skip the
/// header transparently.
void SaveModelBundle(const Classifier& model, std::size_t num_features,
                     std::ostream& os,
                     const HardnessHistogram* histogram = nullptr);

/// File variant is crash-safe: the bundle is written to a temporary
/// file in the same directory and rename(2)d over `path`, so a crash or
/// injected fault mid-write never leaves a torn artifact at `path` —
/// either the old file survives intact or the new one is complete.
void SaveModelBundleToFile(const Classifier& model, std::size_t num_features,
                           const std::string& path);

/// Loads a bundle stream or a bare classifier stream. Version-2/3
/// bundle headers are verified: a payload shorter than advertised aborts
/// with a truncation message, a CRC mismatch with a corruption message.
/// Legacy artifacts (bare "spe-model" streams and version-1 bundles)
/// still load, with a stderr warning that they carry no checksum; for
/// bare streams num_features is 0 and the caller must know the width.
/// A v3 hardness histogram is reported on the bundle and, when the model
/// is a VotingEnsembleModel, installed on it so a re-save round-trips.
ModelBundle LoadModelBundle(std::istream& is);
ModelBundle LoadModelBundleFromFile(const std::string& path);

/// Outcome of a non-aborting artifact inspection (ProbeModelBundleFile).
struct BundleProbe {
  bool ok = false;
  std::string error;  // human-readable reason when !ok
  int format_version = 0;  // 0 = bare spe-model stream
  std::size_t num_features = 0;
  std::size_t payload_bytes = 0;
  std::string crc32_hex;
  bool has_hardness_histogram = false;
};

/// Validates an artifact without loading the model and without aborting:
/// parses the header, checks the payload length against the promise and
/// the payload CRC against the checksum. The hot-reload path probes
/// before LoadModelBundleFromFile so a truncated or bit-flipped
/// candidate is refused with an error response instead of taking the
/// serving process down with it. Legacy artifacts (bare streams, v1
/// bundles) probe ok with their limitations reflected in the fields.
BundleProbe ProbeModelBundleFile(const std::string& path);

}  // namespace spe

#endif  // SPE_IO_MODEL_IO_H_
