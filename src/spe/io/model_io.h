#ifndef SPE_IO_MODEL_IO_H_
#define SPE_IO_MODEL_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "spe/classifiers/classifier.h"

namespace spe {

/// Inference-only classifier reconstructed from persisted ensemble
/// members: predicts the mean member probability (the combination rule
/// of SPE and every bagging-style method in this library). Fit / Clone
/// abort — retraining requires the original trainer, not the artifact.
class VotingEnsembleModel final : public Classifier {
 public:
  explicit VotingEnsembleModel(VotingEnsemble members);

  void Fit(const Dataset& train) override;
  double PredictRow(std::span<const double> x) const override;
  std::vector<double> PredictProba(const Dataset& data) const override;
  std::unique_ptr<Classifier> Clone() const override;
  std::string Name() const override { return "VotingEnsemble"; }

  const VotingEnsemble& members() const { return members_; }

 private:
  VotingEnsemble members_;
};

/// Persists a *fitted* classifier as a self-describing text artifact.
///
/// Supported:
///   - DecisionTree, Gbdt, LogisticRegression (full state);
///   - AdaBoost (stages serialized recursively);
///   - SelfPacedEnsemble, UnderBagging / EasyEnsemble, BalanceCascade,
///     Bagging, RandomForest, SmoteBagging and VotingEnsembleModel —
///     persisted as their member list; loading returns an inference-only
///     VotingEnsembleModel, because a trained probability-averaging
///     ensemble is exactly its members.
/// Aborts (CHECK) on unsupported types (e.g. KNN, whose "model" is the
/// training set itself) and on unfitted models.
void SaveClassifier(const Classifier& model, std::ostream& os);
void SaveClassifierToFile(const Classifier& model, const std::string& path);

/// Restores a classifier persisted by SaveClassifier. The returned
/// object predicts identically to the saved one.
std::unique_ptr<Classifier> LoadClassifier(std::istream& is);
std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path);

}  // namespace spe

#endif  // SPE_IO_MODEL_IO_H_
