#include "spe/io/image.h"

#include <array>
#include <fstream>

#include "spe/common/check.h"

namespace spe {

GrayscaleImage::GrayscaleImage(std::size_t width, std::size_t height,
                               std::uint8_t fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  SPE_CHECK_GT(width, 0u);
  SPE_CHECK_GT(height, 0u);
}

void GrayscaleImage::SavePgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SPE_CHECK(out.good()) << "cannot write " << path;
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  SPE_CHECK(out.good()) << "write failed: " << path;
}

GrayscaleImage GrayscaleImage::LoadPgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPE_CHECK(in.good()) << "cannot open " << path;
  std::string magic;
  std::size_t width = 0;
  std::size_t height = 0;
  int max_value = 0;
  in >> magic >> width >> height >> max_value;
  SPE_CHECK(magic == "P5") << path << ": not a binary PGM";
  SPE_CHECK_EQ(max_value, 255);
  in.get();  // the single whitespace byte after the header
  GrayscaleImage image(width, height);
  in.read(reinterpret_cast<char*>(image.pixels_.data()),
          static_cast<std::streamsize>(image.pixels_.size()));
  SPE_CHECK(!in.fail()) << path << ": truncated PGM";
  return image;
}

GrayscaleImage RenderPredictionSurface(const Classifier& model,
                                       const ViewPort& view,
                                       std::size_t resolution) {
  SPE_CHECK_GT(resolution, 0u);
  GrayscaleImage image(resolution, resolution);
  for (std::size_t py = 0; py < resolution; ++py) {
    // Image rows go top-down; feature y goes bottom-up.
    const double fy = view.y_hi - (static_cast<double>(py) + 0.5) /
                                      static_cast<double>(resolution) *
                                      (view.y_hi - view.y_lo);
    for (std::size_t px = 0; px < resolution; ++px) {
      const double fx = view.x_lo + (static_cast<double>(px) + 0.5) /
                                        static_cast<double>(resolution) *
                                        (view.x_hi - view.x_lo);
      const std::array<double, 2> point = {fx, fy};
      const double p = model.PredictRow(point);
      image.Set(px, py, static_cast<std::uint8_t>(255.0 * (1.0 - p)));
    }
  }
  return image;
}

GrayscaleImage RenderScatter(const DatasetView& data, const ViewPort& view,
                             std::size_t resolution) {
  SPE_CHECK_GT(resolution, 0u);
  SPE_CHECK_EQ(data.num_features(), 2u);
  GrayscaleImage image(resolution, resolution);
  const double x_span = view.x_hi - view.x_lo;
  const double y_span = view.y_hi - view.y_lo;
  // Majority first so minority dots stay visible on top.
  for (const int wanted_label : {0, 1}) {
    const std::uint8_t shade = wanted_label == 1 ? 0 : 160;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      if (data.Label(i) != wanted_label) continue;
      const double fx = (data.At(i, 0) - view.x_lo) / x_span;
      const double fy = (view.y_hi - data.At(i, 1)) / y_span;
      if (fx < 0.0 || fx >= 1.0 || fy < 0.0 || fy >= 1.0) continue;
      image.Set(static_cast<std::size_t>(fx * static_cast<double>(resolution)),
                static_cast<std::size_t>(fy * static_cast<double>(resolution)),
                shade);
    }
  }
  return image;
}

}  // namespace spe
