#include "spe/io/model_io.h"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "spe/classifiers/adaboost.h"
#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/logistic_regression.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/check.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/imbalance/smote_bagging.h"
#include "spe/imbalance/under_bagging.h"

namespace spe {
namespace {

constexpr char kMagic[] = "spe-model";
constexpr int kFormatVersion = 1;
constexpr char kBundleMagic[] = "spe-bundle";
constexpr int kBundleVersion = 1;

void SaveEnsembleMembers(const VotingEnsemble& members, std::ostream& os) {
  os << "members " << members.size() << "\n";
  for (std::size_t i = 0; i < members.size(); ++i) {
    SaveClassifier(members.member(i), os);
  }
}

VotingEnsemble LoadEnsembleMembers(std::istream& is) {
  std::string keyword;
  std::size_t count = 0;
  is >> keyword >> count;
  SPE_CHECK(is.good() && keyword == "members") << "malformed ensemble model";
  VotingEnsemble members;
  for (std::size_t i = 0; i < count; ++i) {
    members.Add(LoadClassifier(is));
  }
  return members;
}

}  // namespace

VotingEnsembleModel::VotingEnsembleModel(VotingEnsemble members)
    : members_(std::move(members)) {
  SPE_CHECK(!members_.empty());
}

void VotingEnsembleModel::Fit(const Dataset& /*train*/) {
  SPE_CHECK(false) << "VotingEnsembleModel is an inference-only artifact; "
                      "retrain with the original ensemble trainer";
}

double VotingEnsembleModel::PredictRow(std::span<const double> x) const {
  return members_.PredictRow(x);
}

std::vector<double> VotingEnsembleModel::PredictProba(const Dataset& data) const {
  return members_.PredictProba(data);
}

std::unique_ptr<Classifier> VotingEnsembleModel::Clone() const {
  SPE_CHECK(false) << "VotingEnsembleModel cannot be cloned untrained";
  return nullptr;  // unreachable
}

void SaveClassifier(const Classifier& model, std::ostream& os) {
  os << kMagic << " " << kFormatVersion << " ";
  if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    os << "DecisionTree\n";
    tree->SaveModel(os);
    return;
  }
  if (const auto* gbdt = dynamic_cast<const Gbdt*>(&model)) {
    os << "Gbdt\n";
    gbdt->SaveModel(os);
    return;
  }
  if (const auto* lr = dynamic_cast<const LogisticRegression*>(&model)) {
    os << "LogisticRegression\n";
    lr->SaveModel(os);
    return;
  }
  if (const auto* boost = dynamic_cast<const AdaBoost*>(&model)) {
    SPE_CHECK_GT(boost->NumStages(), 0u) << "cannot save an unfitted booster";
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "AdaBoost\n";
    os << "learning_rate " << boost->learning_rate() << "\n";
    os << "stages " << boost->NumStages() << "\n";
    for (std::size_t i = 0; i < boost->NumStages(); ++i) {
      SaveClassifier(boost->stage(i), os);
    }
    return;
  }

  // Probability-averaging ensembles all persist as their member list.
  const VotingEnsemble* members = nullptr;
  if (const auto* m = dynamic_cast<const SelfPacedEnsemble*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const UnderBagging*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const BalanceCascade*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const Bagging*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const RandomForest*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const SmoteBagging*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const VotingEnsembleModel*>(&model)) {
    members = &m->members();
  }
  SPE_CHECK(members != nullptr)
      << model.Name() << " does not support persistence";
  SPE_CHECK(!members->empty()) << "cannot save an unfitted ensemble";
  os << "VotingEnsemble\n";
  SaveEnsembleMembers(*members, os);
}

namespace {

/// Reads the leading magic word; when it is a bundle header, consumes
/// the schema fields (reporting the width via `num_features`) and reads
/// on to the inner model magic.
std::string ReadMagicSkippingBundle(std::istream& is,
                                    std::size_t* num_features) {
  std::string magic;
  is >> magic;
  if (magic == kBundleMagic) {
    int version = 0;
    std::string keyword;
    std::size_t width = 0;
    is >> version >> keyword >> width;
    SPE_CHECK(is.good() && keyword == "num_features")
        << "malformed bundle header";
    SPE_CHECK_EQ(version, kBundleVersion);
    if (num_features != nullptr) *num_features = width;
    is >> magic;
  }
  return magic;
}

/// Restores a model whose "spe-model VERSION TAG" preamble has already
/// been consumed (shared by LoadClassifier and LoadModelBundle).
std::unique_ptr<Classifier> LoadTagged(int version, const std::string& tag,
                                       std::istream& is) {
  SPE_CHECK_EQ(version, kFormatVersion);

  if (tag == "DecisionTree") {
    return std::make_unique<DecisionTree>(DecisionTree::LoadModel(is));
  }
  if (tag == "Gbdt") {
    return std::make_unique<Gbdt>(Gbdt::LoadModel(is));
  }
  if (tag == "LogisticRegression") {
    return std::make_unique<LogisticRegression>(
        LogisticRegression::LoadModel(is));
  }
  if (tag == "AdaBoost") {
    std::string keyword;
    AdaBoostConfig config;
    std::size_t stage_count = 0;
    is >> keyword >> config.learning_rate;
    SPE_CHECK(is.good() && keyword == "learning_rate") << "malformed AdaBoost";
    is >> keyword >> stage_count;
    SPE_CHECK(is.good() && keyword == "stages") << "malformed AdaBoost";
    config.n_estimators = stage_count;
    std::vector<std::unique_ptr<Classifier>> stages;
    stages.reserve(stage_count);
    for (std::size_t i = 0; i < stage_count; ++i) {
      stages.push_back(LoadClassifier(is));
    }
    return AdaBoost::FromTrainedStages(config, std::move(stages));
  }
  if (tag == "VotingEnsemble") {
    return std::make_unique<VotingEnsembleModel>(LoadEnsembleMembers(is));
  }
  SPE_CHECK(false) << "unknown model tag: " << tag;
  return nullptr;  // unreachable
}

}  // namespace

std::unique_ptr<Classifier> LoadClassifier(std::istream& is) {
  const std::string magic = ReadMagicSkippingBundle(is, nullptr);
  int version = 0;
  std::string tag;
  is >> version >> tag;
  SPE_CHECK(is.good() && magic == kMagic) << "not an spe model stream";
  return LoadTagged(version, tag, is);
}

void SaveClassifierToFile(const Classifier& model, const std::string& path) {
  std::ofstream os(path);
  SPE_CHECK(os.good()) << "cannot write " << path;
  SaveClassifier(model, os);
  SPE_CHECK(os.good()) << "write failed: " << path;
}

std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path) {
  std::ifstream is(path);
  SPE_CHECK(is.good()) << "cannot open " << path;
  return LoadClassifier(is);
}

void SaveModelBundle(const Classifier& model, std::size_t num_features,
                     std::ostream& os) {
  SPE_CHECK_GT(num_features, 0u);
  os << kBundleMagic << " " << kBundleVersion << " num_features "
     << num_features << "\n";
  SaveClassifier(model, os);
}

void SaveModelBundleToFile(const Classifier& model, std::size_t num_features,
                           const std::string& path) {
  std::ofstream os(path);
  SPE_CHECK(os.good()) << "cannot write " << path;
  SaveModelBundle(model, num_features, os);
  SPE_CHECK(os.good()) << "write failed: " << path;
}

ModelBundle LoadModelBundle(std::istream& is) {
  ModelBundle bundle;
  const std::string magic = ReadMagicSkippingBundle(is, &bundle.num_features);
  SPE_CHECK(is.good() && magic == kMagic) << "not an spe model stream";
  int version = 0;
  std::string tag;
  is >> version >> tag;
  SPE_CHECK(is.good()) << "truncated model stream";
  bundle.model = LoadTagged(version, tag, is);
  return bundle;
}

ModelBundle LoadModelBundleFromFile(const std::string& path) {
  std::ifstream is(path);
  SPE_CHECK(is.good()) << "cannot open " << path;
  return LoadModelBundle(is);
}

}  // namespace spe
