#include "spe/io/model_io.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "spe/classifiers/adaboost.h"
#include "spe/classifiers/bagging.h"
#include "spe/classifiers/decision_tree.h"
#include "spe/classifiers/gbdt/gbdt.h"
#include "spe/classifiers/logistic_regression.h"
#include "spe/classifiers/random_forest.h"
#include "spe/common/check.h"
#include "spe/common/crc32.h"
#include "spe/common/fault.h"
#include "spe/common/retry.h"
#include "spe/core/self_paced_ensemble.h"
#include "spe/imbalance/balance_cascade.h"
#include "spe/kernels/flat_forest.h"
#include "spe/imbalance/smote_bagging.h"
#include "spe/imbalance/under_bagging.h"

namespace spe {
namespace {

constexpr char kMagic[] = "spe-model";
constexpr int kFormatVersion = 1;
constexpr char kBundleMagic[] = "spe-bundle";
// Version 2 added "payload_bytes B crc32 HHHHHHHH" to the header so
// loaders detect truncated / bit-flipped artifacts. Version 3 added the
// "hardness_histogram" line — the training-time drift baseline for the
// lifecycle layer. Version 2 loads unchanged (no histogram); version 1
// (schema only) and bare spe-model streams load with a warning.
constexpr int kBundleVersion = 3;

// "hardness_histogram K [KIND MIN MAX C0 .. C(K-1)]". Doubles print
// with max_digits10 so a parse-and-reprint reproduces the exact bytes.
void WriteHistogramLine(const HardnessHistogram* histogram, std::ostream& os) {
  if (histogram == nullptr || histogram->empty()) {
    os << "hardness_histogram 0\n";
    return;
  }
  char num[40];
  os << "hardness_histogram " << histogram->counts.size() << " "
     << histogram->kind;
  std::snprintf(num, sizeof(num), "%.17g", histogram->min);
  os << " " << num;
  std::snprintf(num, sizeof(num), "%.17g", histogram->max);
  os << " " << num;
  for (const std::uint64_t c : histogram->counts) os << " " << c;
  os << "\n";
}

// Consumes the histogram line's fields (the leading "hardness_histogram"
// keyword included). Returns false on malformed input.
bool ReadHistogramFields(std::istream& is, HardnessHistogram* out) {
  std::string keyword;
  std::size_t num_bins = 0;
  is >> keyword >> num_bins;
  if (!is.good() || keyword != "hardness_histogram") return false;
  if (num_bins == 0) return true;  // model carries no histogram
  HardnessHistogram histogram;
  is >> histogram.kind >> histogram.min >> histogram.max;
  if (!is.good()) return false;
  histogram.counts.resize(num_bins);
  for (std::size_t b = 0; b < num_bins; ++b) {
    is >> histogram.counts[b];
    if (is.fail()) return false;
  }
  if (out != nullptr) *out = std::move(histogram);
  return true;
}

void WarnLegacyArtifact(const char* kind) {
  std::fprintf(stderr,
               "warning: loading %s without an integrity checksum; re-save "
               "with spe_cli train (or SaveModelBundle) to upgrade\n",
               kind);
}

void SaveEnsembleMembers(const VotingEnsemble& members, std::ostream& os) {
  os << "members " << members.size() << "\n";
  for (std::size_t i = 0; i < members.size(); ++i) {
    SaveClassifier(members.member(i), os);
  }
}

VotingEnsemble LoadEnsembleMembers(std::istream& is) {
  std::string keyword;
  std::size_t count = 0;
  is >> keyword >> count;
  SPE_CHECK(is.good() && keyword == "members") << "malformed ensemble model";
  VotingEnsemble members;
  for (std::size_t i = 0; i < count; ++i) {
    members.Add(LoadClassifier(is));
  }
  return members;
}

// Compile-on-load: ActiveKernel triggers the lazy flat-inference
// compile, so a serving process pays it at startup rather than on the
// first scored batch. Models that cannot lower (non-tree members)
// simply stay on the reference path.
ModelBundle FinishBundle(ModelBundle bundle) {
  if (bundle.model != nullptr) {
    (void)kernels::ActiveKernel(*bundle.model);
  }
  return bundle;
}

}  // namespace

VotingEnsembleModel::VotingEnsembleModel(VotingEnsemble members)
    : members_(std::move(members)) {
  SPE_CHECK(!members_.empty());
}

void VotingEnsembleModel::Fit(const DatasetView& /*train*/) {
  SPE_CHECK(false) << "VotingEnsembleModel is an inference-only artifact; "
                      "retrain with the original ensemble trainer";
}

double VotingEnsembleModel::PredictRow(std::span<const double> x) const {
  return members_.PredictRow(x);
}

std::vector<double> VotingEnsembleModel::PredictProba(const DatasetView& data) const {
  return members_.PredictProba(data);
}

std::vector<double> VotingEnsembleModel::PredictProbaPrefix(
    const DatasetView& data, std::size_t k) const {
  return members_.PredictProbaPrefix(data, k);
}

void VotingEnsembleModel::AccumulateProbaInto(const DatasetView& data,
                                              std::span<double> acc) const {
  // PredictProba averages the inner ensemble, so the fused default
  // (PredictRow streaming) would change the bits; go through the batch
  // path instead.
  AccumulateViaPredictProba(data, acc);
}

bool VotingEnsembleModel::LowerToFlat(kernels::FlatProgram& program,
                                      kernels::MemberOp& op) const {
  return kernels::FlatForest::LowerEnsemble(members_, program, op);
}

const kernels::FlatForest* VotingEnsembleModel::flat_kernel() const {
  return members_.flat_kernel();
}

std::unique_ptr<Classifier> VotingEnsembleModel::Clone() const {
  SPE_CHECK(false) << "VotingEnsembleModel cannot be cloned untrained";
  return nullptr;  // unreachable
}

void SaveClassifier(const Classifier& model, std::ostream& os) {
  os << kMagic << " " << kFormatVersion << " ";
  if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    os << "DecisionTree\n";
    tree->SaveModel(os);
    return;
  }
  if (const auto* gbdt = dynamic_cast<const Gbdt*>(&model)) {
    os << "Gbdt\n";
    gbdt->SaveModel(os);
    return;
  }
  if (const auto* lr = dynamic_cast<const LogisticRegression*>(&model)) {
    os << "LogisticRegression\n";
    lr->SaveModel(os);
    return;
  }
  if (const auto* boost = dynamic_cast<const AdaBoost*>(&model)) {
    SPE_CHECK_GT(boost->NumStages(), 0u) << "cannot save an unfitted booster";
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "AdaBoost\n";
    os << "learning_rate " << boost->learning_rate() << "\n";
    os << "stages " << boost->NumStages() << "\n";
    for (std::size_t i = 0; i < boost->NumStages(); ++i) {
      SaveClassifier(boost->stage(i), os);
    }
    return;
  }

  // Probability-averaging ensembles all persist as their member list.
  const VotingEnsemble* members = nullptr;
  if (const auto* m = dynamic_cast<const SelfPacedEnsemble*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const UnderBagging*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const BalanceCascade*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const Bagging*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const RandomForest*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const SmoteBagging*>(&model)) {
    members = &m->members();
  } else if (const auto* m = dynamic_cast<const VotingEnsembleModel*>(&model)) {
    members = &m->members();
  }
  SPE_CHECK(members != nullptr)
      << model.Name() << " does not support persistence";
  SPE_CHECK(!members->empty()) << "cannot save an unfitted ensemble";
  os << "VotingEnsemble\n";
  SaveEnsembleMembers(*members, os);
}

namespace {

/// Reads the leading magic word; when it is a bundle header (version 1,
/// 2 or 3), consumes the header fields (reporting the width via
/// `num_features`) and reads on to the inner model magic. Does NOT
/// verify integrity — that is LoadModelBundle's job; this path exists
/// for LoadClassifier callers that only want the model.
std::string ReadMagicSkippingBundle(std::istream& is,
                                    std::size_t* num_features) {
  std::string magic;
  is >> magic;
  if (magic == kBundleMagic) {
    int version = 0;
    std::string keyword;
    std::size_t width = 0;
    is >> version >> keyword >> width;
    SPE_CHECK(is.good() && keyword == "num_features")
        << "malformed bundle header";
    if (version >= 2) {
      SPE_CHECK_LE(version, kBundleVersion) << "unsupported bundle version";
      std::size_t payload_bytes = 0;
      std::string crc_hex;
      is >> keyword >> payload_bytes;
      SPE_CHECK(is.good() && keyword == "payload_bytes")
          << "malformed bundle header";
      is >> keyword >> crc_hex;
      SPE_CHECK(is.good() && keyword == "crc32") << "malformed bundle header";
      if (version >= 3) {
        SPE_CHECK(ReadHistogramFields(is, nullptr))
            << "malformed bundle header";
      }
    } else {
      SPE_CHECK_EQ(version, 1) << "unsupported bundle version";
    }
    if (num_features != nullptr) *num_features = width;
    is >> magic;
  }
  return magic;
}

/// Restores a model whose "spe-model VERSION TAG" preamble has already
/// been consumed (shared by LoadClassifier and LoadModelBundle).
std::unique_ptr<Classifier> LoadTagged(int version, const std::string& tag,
                                       std::istream& is) {
  SPE_CHECK_EQ(version, kFormatVersion);

  if (tag == "DecisionTree") {
    return std::make_unique<DecisionTree>(DecisionTree::LoadModel(is));
  }
  if (tag == "Gbdt") {
    return std::make_unique<Gbdt>(Gbdt::LoadModel(is));
  }
  if (tag == "LogisticRegression") {
    return std::make_unique<LogisticRegression>(
        LogisticRegression::LoadModel(is));
  }
  if (tag == "AdaBoost") {
    std::string keyword;
    AdaBoostConfig config;
    std::size_t stage_count = 0;
    is >> keyword >> config.learning_rate;
    SPE_CHECK(is.good() && keyword == "learning_rate") << "malformed AdaBoost";
    is >> keyword >> stage_count;
    SPE_CHECK(is.good() && keyword == "stages") << "malformed AdaBoost";
    config.n_estimators = stage_count;
    std::vector<std::unique_ptr<Classifier>> stages;
    stages.reserve(stage_count);
    for (std::size_t i = 0; i < stage_count; ++i) {
      stages.push_back(LoadClassifier(is));
    }
    return AdaBoost::FromTrainedStages(config, std::move(stages));
  }
  if (tag == "VotingEnsemble") {
    return std::make_unique<VotingEnsembleModel>(LoadEnsembleMembers(is));
  }
  SPE_CHECK(false) << "unknown model tag: " << tag;
  return nullptr;  // unreachable
}

}  // namespace

std::unique_ptr<Classifier> LoadClassifier(std::istream& is) {
  const std::string magic = ReadMagicSkippingBundle(is, nullptr);
  int version = 0;
  std::string tag;
  is >> version >> tag;
  SPE_CHECK(is.good() && magic == kMagic) << "not an spe model stream";
  return LoadTagged(version, tag, is);
}

void SaveClassifierToFile(const Classifier& model, const std::string& path) {
  std::ofstream os(path);
  SPE_CHECK(os.good()) << "cannot write " << path;
  SaveClassifier(model, os);
  SPE_CHECK(os.good()) << "write failed: " << path;
}

std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path) {
  std::ifstream is(path);
  SPE_CHECK(is.good()) << "cannot open " << path;
  return LoadClassifier(is);
}

void SaveModelBundle(const Classifier& model, std::size_t num_features,
                     std::ostream& os, const HardnessHistogram* histogram) {
  SPE_CHECK_GT(num_features, 0u);
  if (histogram == nullptr) {
    if (const auto* profiled = dynamic_cast<const HardnessProfiled*>(&model)) {
      histogram = profiled->training_hardness();
    }
  }
  // Serialize the model first so the header can promise the exact
  // payload size and checksum the loader will verify.
  std::ostringstream payload_stream;
  SaveClassifier(model, payload_stream);
  const std::string payload = payload_stream.str();
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  os << kBundleMagic << " " << kBundleVersion << " num_features "
     << num_features << " payload_bytes " << payload.size() << " crc32 "
     << crc_hex << "\n";
  WriteHistogramLine(histogram, os);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void SaveModelBundleToFile(const Classifier& model, std::size_t num_features,
                           const std::string& path) {
  // Crash safety: write the whole bundle to a sibling tmp file, then
  // rename(2) it over `path`. rename on the same filesystem is atomic,
  // so a reader of `path` only ever sees the complete old artifact or
  // the complete new one — never a torn half-write.
  // Transient fault point: a recoverable write failure (disk full, EIO)
  // before any side effect. Thrown, not aborted, so callers can retry
  // under spe/common/retry — unlike the model_io_fail_rate point below,
  // which keeps its historical abort semantics.
  if (Faults().ShouldFailArtifactWrite()) {
    throw TransientIoError(
        "injected fault: transient artifact write failed for " + path,
        /*injected=*/true);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    SPE_CHECK(os.good()) << "cannot write " << tmp;
    SaveModelBundle(model, num_features, os);
    os.flush();
    SPE_CHECK(os.good()) << "write failed: " << tmp;
  }
  // Fault point: an injected failure here models a crash mid-save. The
  // tmp file may be left behind (harmless; overwritten next save), but
  // `path` keeps its previous, intact content.
  SPE_CHECK(!Faults().ShouldFailModelIo())
      << "injected fault: model artifact write failed before publishing "
      << path;
  SPE_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0)
      << "cannot rename " << tmp << " over " << path;
}

ModelBundle LoadModelBundle(std::istream& is) {
  ModelBundle bundle;
  std::string magic;
  is >> magic;
  SPE_CHECK(is.good()) << "empty or unreadable model stream";

  if (magic != kBundleMagic) {
    // Bare classifier stream (pre-bundle era): no schema, no checksum.
    SPE_CHECK(magic == kMagic) << "not an spe model stream";
    WarnLegacyArtifact("a bare spe-model artifact (no schema header)");
    int version = 0;
    std::string tag;
    is >> version >> tag;
    SPE_CHECK(is.good()) << "truncated model stream";
    bundle.model = LoadTagged(version, tag, is);
    return FinishBundle(std::move(bundle));
  }

  int version = 0;
  std::string keyword;
  is >> version >> keyword >> bundle.num_features;
  SPE_CHECK(is.good() && keyword == "num_features")
      << "malformed bundle header";
  bundle.format_version = version;

  if (version == 1) {
    // Legacy bundle: schema header but no integrity fields.
    WarnLegacyArtifact("a version-1 model bundle (schema only)");
    int model_version = 0;
    std::string tag;
    is >> magic >> model_version >> tag;
    SPE_CHECK(is.good() && magic == kMagic) << "not an spe model stream";
    bundle.model = LoadTagged(model_version, tag, is);
    return FinishBundle(std::move(bundle));
  }
  SPE_CHECK(version == 2 || version == kBundleVersion)
      << "unsupported bundle version";

  std::size_t payload_bytes = 0;
  std::string crc_hex;
  is >> keyword >> payload_bytes;
  SPE_CHECK(is.good() && keyword == "payload_bytes")
      << "malformed bundle header";
  is >> keyword >> crc_hex;
  SPE_CHECK(is.good() && keyword == "crc32") << "malformed bundle header";
  if (version >= 3) {
    SPE_CHECK(ReadHistogramFields(is, &bundle.hardness_histogram))
        << "malformed bundle header";
  }
  SPE_CHECK(is.get() == '\n') << "malformed bundle header";
  bundle.payload_bytes = payload_bytes;
  bundle.crc32_hex = crc_hex;

  // Read exactly the promised payload, then verify before parsing a
  // single byte of it: a short read is truncation, a checksum mismatch
  // is corruption, and both fail with the artifact left untouched by
  // the parser (so the error names the real problem, not a downstream
  // parse confusion).
  std::string payload(payload_bytes, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  const std::size_t got = static_cast<std::size_t>(is.gcount());
  SPE_CHECK(got == payload_bytes)
      << "model artifact truncated: header promises " << payload_bytes
      << " payload bytes but only " << got << " are present";
  const std::uint32_t expected =
      static_cast<std::uint32_t>(std::strtoul(crc_hex.c_str(), nullptr, 16));
  const std::uint32_t actual = Crc32(payload);
  char actual_hex[16];
  std::snprintf(actual_hex, sizeof(actual_hex), "%08x", actual);
  SPE_CHECK(actual == expected)
      << "model artifact corrupted: payload crc32 " << actual_hex
      << " does not match header crc32 " << crc_hex;

  std::istringstream payload_is(payload);
  int model_version = 0;
  std::string tag;
  payload_is >> magic >> model_version >> tag;
  SPE_CHECK(payload_is.good() && magic == kMagic) << "not an spe model stream";
  bundle.model = LoadTagged(model_version, tag, payload_is);
  if (!bundle.hardness_histogram.empty()) {
    if (auto* voting = dynamic_cast<VotingEnsembleModel*>(bundle.model.get())) {
      voting->set_training_hardness(bundle.hardness_histogram);
    }
  }
  return FinishBundle(std::move(bundle));
}

BundleProbe ProbeModelBundleFile(const std::string& path) {
  BundleProbe probe;
  std::ifstream is(path);
  if (!is.good()) {
    probe.error = "cannot open " + path;
    return probe;
  }
  std::string magic;
  is >> magic;
  if (!is.good()) {
    probe.error = "empty or unreadable model stream";
    return probe;
  }
  if (magic == kMagic) {
    // Bare classifier stream: nothing to verify, nothing to report.
    probe.ok = true;
    return probe;
  }
  if (magic != kBundleMagic) {
    probe.error = "not an spe model stream";
    return probe;
  }
  std::string keyword;
  is >> probe.format_version >> keyword >> probe.num_features;
  if (!is.good() || keyword != "num_features") {
    probe.error = "malformed bundle header";
    return probe;
  }
  if (probe.format_version == 1) {
    probe.ok = true;  // schema only; no integrity promise to check
    return probe;
  }
  if (probe.format_version != 2 && probe.format_version != kBundleVersion) {
    probe.error = "unsupported bundle version";
    return probe;
  }
  is >> keyword >> probe.payload_bytes;
  if (!is.good() || keyword != "payload_bytes") {
    probe.error = "malformed bundle header";
    return probe;
  }
  is >> keyword >> probe.crc32_hex;
  if (!is.good() || keyword != "crc32") {
    probe.error = "malformed bundle header";
    return probe;
  }
  if (probe.format_version >= 3) {
    HardnessHistogram histogram;
    if (!ReadHistogramFields(is, &histogram)) {
      probe.error = "malformed bundle header";
      return probe;
    }
    probe.has_hardness_histogram = !histogram.empty();
  }
  if (is.get() != '\n') {
    probe.error = "malformed bundle header";
    return probe;
  }
  std::string payload(probe.payload_bytes, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(probe.payload_bytes));
  const std::size_t got = static_cast<std::size_t>(is.gcount());
  if (got != probe.payload_bytes) {
    probe.error = "model artifact truncated: header promises " +
                  std::to_string(probe.payload_bytes) +
                  " payload bytes but only " + std::to_string(got) +
                  " are present";
    return probe;
  }
  const std::uint32_t expected = static_cast<std::uint32_t>(
      std::strtoul(probe.crc32_hex.c_str(), nullptr, 16));
  if (Crc32(payload) != expected) {
    probe.error = "model artifact corrupted: payload crc32 does not match "
                  "header crc32 " +
                  probe.crc32_hex;
    return probe;
  }
  probe.ok = true;
  return probe;
}

ModelBundle LoadModelBundleFromFile(const std::string& path) {
  // Transient fault point: a recoverable read failure, retryable by the
  // caller (ModelRegistry::LoadFromFile does exactly that).
  if (Faults().ShouldFailArtifactRead()) {
    throw TransientIoError(
        "injected fault: transient artifact read failed for " + path,
        /*injected=*/true);
  }
  // Fault point: simulates an unreadable artifact (bad disk, lost
  // mount) so server startup failure paths are testable.
  SPE_CHECK(!Faults().ShouldFailModelIo())
      << "injected fault: model artifact read failed for " << path;
  std::ifstream is(path);
  SPE_CHECK(is.good()) << "cannot open " << path;
  return LoadModelBundle(is);
}

}  // namespace spe
