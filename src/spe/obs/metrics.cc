#include "spe/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/obs/trace.h"

namespace spe {
namespace obs {
namespace {

bool InitEnabledFromEnv() {
  const char* env = std::getenv("SPE_OBS");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{InitEnabledFromEnv()};
  return flag;
}

// Family name for the "# TYPE" line: the metric name with any inline
// label set stripped.
std::string BareName(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Labeled metrics share one family; the registry map is sorted, so
// members of a family are adjacent and one "last family" cursor
// suffices to emit each TYPE line exactly once.
void AppendTypeOnce(std::string& out, std::string& last_family,
                    const std::string& name, const char* type) {
  std::string family = BareName(name);
  if (family == last_family) return;
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
  last_family = std::move(family);
}

void AppendLine(std::string& out, const std::string& name,
                const std::string& value) {
  out += name;
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->RemoveCollector(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CollectorHandle::~CollectorHandle() {
  if (registry_ != nullptr) registry_->RemoveCollector(id_);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrumented statics destroyed after main can still
  // resolve their metrics safely.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

GeometricHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                  int sub_bits,
                                                  std::size_t num_buckets) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<GeometricHistogram>(sub_bits, num_buckets);
  } else {
    SPE_CHECK_EQ(slot->sub_bits(), sub_bits)
        << "histogram \"" << name << "\" re-registered with new geometry";
    SPE_CHECK_EQ(slot->num_buckets(), num_buckets)
        << "histogram \"" << name << "\" re-registered with new geometry";
  }
  return *slot;
}

CollectorHandle MetricsRegistry::AddCollector(
    std::function<void(std::string&)> collector) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return CollectorHandle(this, id);
}

void MetricsRegistry::RemoveCollector(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  out.reserve(4096);
  const std::lock_guard<std::mutex> lock(mu_);

  std::string last_family;
  for (const auto& [name, counter] : counters_) {
    AppendTypeOnce(out, last_family, name, "counter");
    AppendLine(out, name, std::to_string(counter->value()));
  }
  last_family.clear();
  for (const auto& [name, gauge] : gauges_) {
    AppendTypeOnce(out, last_family, name, "gauge");
    AppendLine(out, name, FormatMetricValue(gauge->value()));
  }
  last_family.clear();
  for (const auto& [name, hist] : histograms_) {
    AppendTypeOnce(out, last_family, name, "histogram");
    AppendHistogramExposition(out, name, *hist);
  }

  // Process family: thread configuration plus the scheduling counters
  // kept by the parallel runtime (obs cannot be a dependency of
  // common/, so the runtime owns its counters and we render them here).
  out += "# TYPE spe_threads gauge\n";
  AppendLine(out, "spe_threads", std::to_string(NumThreads()));
  const ParallelCounters pc = GetParallelCounters();
  out += "# TYPE spe_parallel_loops_total counter\n";
  AppendLine(out, "spe_parallel_loops_total{mode=\"parallel\"}",
             std::to_string(pc.parallel_loops));
  AppendLine(out, "spe_parallel_loops_total{mode=\"serial\"}",
             std::to_string(pc.serial_loops));
  AppendLine(out, "spe_parallel_loops_total{mode=\"nested_inline\"}",
             std::to_string(pc.nested_inline_loops));
  out += "# TYPE spe_parallel_chunks_total counter\n";
  AppendLine(out, "spe_parallel_chunks_total", std::to_string(pc.chunks));
  out += "# TYPE spe_parallel_workers_spawned counter\n";
  AppendLine(out, "spe_parallel_workers_spawned",
             std::to_string(pc.workers_spawned));

  AppendSpanExposition(out);

  for (const auto& [id, collector] : collectors_) collector(out);

  out += "# EOF\n";
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Integral values (counters exposed through gauges, bin populations)
  // read better without an exponent or fraction.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

void AppendHistogramExposition(std::string& out, const std::string& name,
                               const GeometricHistogram& hist) {
  const std::size_t n = hist.num_buckets();
  std::vector<std::uint64_t> counts(n);
  std::size_t populated = 0;  // one past the last non-empty bucket
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = hist.bucket_count(i);
    if (counts[i] != 0) populated = i + 1;
  }
  // Trailing all-empty buckets are elided; cumulative semantics survive
  // because the "+Inf" bucket always carries the total.
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < populated && i + 1 < n; ++i) {
    cumulative += counts[i];
    out += name;
    out += "_bucket{le=\"";
    // Values are integers, so the inclusive upper bound of bucket i is
    // one below the next bucket's lower bound.
    out += std::to_string(hist.BucketLowerBound(i + 1) - 1);
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  out += std::to_string(hist.count());
  out += '\n';
  AppendLine(out, name + "_sum", std::to_string(hist.sum()));
  AppendLine(out, name + "_count", std::to_string(hist.count()));
}

}  // namespace obs
}  // namespace spe
