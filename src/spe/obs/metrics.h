#ifndef SPE_OBS_METRICS_H_
#define SPE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spe/obs/histogram.h"

namespace spe {
namespace obs {

/// Process-wide instrumentation kill switch. Defaults to on; the
/// environment variable SPE_OBS=0|off|false disables it at startup, and
/// tests/benches can flip it at runtime. When disabled, TraceSpan is a
/// no-op and instrumented call sites are expected to skip metric
/// updates; the registry itself keeps working (RenderText still
/// answers) so an admin query never fails.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic counter. Add is one relaxed atomic; call sites should
/// resolve the registry lookup once and cache the reference.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry;

/// RAII registration of a collector callback (see AddCollector).
/// Movable; unregisters on destruction. A moved-from handle is inert.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& other) noexcept;
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  ~CollectorHandle();

  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;

 private:
  friend class MetricsRegistry;
  CollectorHandle(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Named metrics plus a text exposition over them. Lookup takes a
/// mutex; the returned references are stable for the registry's
/// lifetime, so steady-state updates are lock-free.
///
/// Names follow Prometheus conventions: snake_case, counters end in
/// `_total`, and a name may carry labels inline —
/// `spe_fit_bin_population{bin="3"}` is simply a distinct metric whose
/// name embeds its label set.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry that `spe_serve`'s "!stats" command and
  /// --metrics-dump render.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// Find-or-create; if the histogram already exists its geometry must
  /// match (checked).
  GeometricHistogram& GetHistogram(const std::string& name, int sub_bits,
                                   std::size_t num_buckets);

  /// Registers a callback that appends already-formatted exposition
  /// lines during RenderText. Collectors let a component with its own
  /// instance state (e.g. a BatchScorer's ServerStats) expose metrics
  /// without copying them into the registry on every update. The
  /// callback runs under the registry mutex: it must not touch the
  /// registry and must not block.
  [[nodiscard]] CollectorHandle AddCollector(
      std::function<void(std::string&)> collector);

  /// Prometheus-style text exposition: owned counters, gauges and
  /// histograms (sorted by name, `# TYPE` once per metric family),
  /// then the process family (spe_threads, spe_parallel_*), the span
  /// family, then collector output, terminated by "# EOF\n".
  std::string RenderText() const;

 private:
  friend class CollectorHandle;
  void RemoveCollector(std::uint64_t id);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<GeometricHistogram>> histograms_;
  std::vector<std::pair<std::uint64_t, std::function<void(std::string&)>>>
      collectors_;
  std::uint64_t next_collector_id_ = 1;
};

/// Renders a double the way the exposition format expects ("+Inf",
/// "-Inf", "NaN", integers without a fraction part).
std::string FormatMetricValue(double value);

/// Appends a histogram in exposition form: cumulative
/// `<name>_bucket{le="..."}` lines (trailing all-empty buckets are
/// elided; the "+Inf" bucket always closes the series), then
/// `<name>_sum` and `<name>_count`. Bucket upper bounds are inclusive
/// integer bounds derived from the geometric layout.
void AppendHistogramExposition(std::string& out, const std::string& name,
                               const GeometricHistogram& hist);

}  // namespace obs
}  // namespace spe

#endif  // SPE_OBS_METRICS_H_
