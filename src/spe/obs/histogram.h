#ifndef SPE_OBS_HISTOGRAM_H_
#define SPE_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spe {
namespace obs {

/// Lock-free fixed-layout geometric histogram, generalized out of the
/// serve-layer latency histogram so every subsystem (serve latency,
/// batch sizes, span durations) shares one bucket geometry.
///
/// `sub_bits` sub-buckets per power of two: values below 2^sub_bits get
/// exact buckets; larger values share their top (sub_bits + 1)
/// significant bits, which bounds the relative error of any percentile
/// estimate at 1 / 2^sub_bits. sub_bits = 3 (12.5% error) is the serve
/// latency setting; sub_bits = 0 degenerates to plain power-of-two
/// buckets. Values past the last bucket land in the last bucket.
///
/// All methods are safe to call concurrently; Record is a handful of
/// relaxed atomics. Reads see a consistent-enough view for monitoring.
class GeometricHistogram {
 public:
  GeometricHistogram(int sub_bits, std::size_t num_buckets);

  GeometricHistogram(const GeometricHistogram&) = delete;
  GeometricHistogram& operator=(const GeometricHistogram&) = delete;

  void Record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t index) const {
    return counts_[index].load(std::memory_order_relaxed);
  }
  std::size_t num_buckets() const { return counts_.size(); }
  int sub_bits() const { return sub_bits_; }

  /// Percentile estimate (q in [0, 1]) by linear interpolation inside
  /// the covering bucket, capped by the exact max. 0 when empty.
  double Percentile(double q) const;

  /// Bucket for `value`, clamped to the last bucket.
  std::size_t BucketIndex(std::uint64_t value) const;
  /// Inclusive lower bound of bucket `index`.
  std::uint64_t BucketLowerBound(std::size_t index) const;

  /// The unclamped bucket geometry, exposed so layers that pin their own
  /// bucket count (ServerStats) share one formula instead of a copy.
  /// LowerBoundFor requires `index <= MaxIndexFor(sub_bits)` — larger
  /// indices name buckets whose lower bound does not fit in 64 bits.
  static std::size_t IndexFor(int sub_bits, std::uint64_t value);
  static std::uint64_t LowerBoundFor(int sub_bits, std::size_t index);
  /// Largest index IndexFor can produce: the bucket holding UINT64_MAX.
  /// The constructor rejects num_buckets beyond this, so every bucket a
  /// histogram owns has a representable lower bound.
  static std::size_t MaxIndexFor(int sub_bits);

 private:
  const int sub_bits_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace obs
}  // namespace spe

#endif  // SPE_OBS_HISTOGRAM_H_
