#include "spe/obs/trace.h"

#include <atomic>
#include <chrono>

#include "spe/obs/metrics.h"

namespace spe {
namespace obs {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

// Per-name aggregates survive ring overwrites, so the exposition keeps
// full counts even after the flight recorder wraps.
struct Aggregates {
  std::mutex mu;
  std::map<std::string, SpanStats> by_name;  // guarded by mu
};

Aggregates& GlobalAggregates() {
  static Aggregates* aggregates = new Aggregates;
  return *aggregates;
}

thread_local std::uint32_t t_depth = 0;
thread_local std::uint32_t t_thread_id = UINT32_MAX;
std::atomic<std::uint32_t> g_next_thread_id{0};

std::uint32_t ThreadId() {
  if (t_thread_id == UINT32_MAX) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing(4096);
  return *ring;
}

void TraceRing::Record(const SpanRecord& span) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[total_ % capacity_] = span;
  }
  ++total_;
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (total_ <= capacity_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  const std::size_t start = total_ % capacity_;  // oldest retained record
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::uint64_t TraceRing::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRing::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void TraceRing::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  ++t_depth;
  start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  // active_, not Enabled(): a span that observed the switch on at
  // construction completes normally even if it flips mid-flight.
  if (!active_) return;
  const std::uint64_t end_us = NowMicros();
  --t_depth;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = end_us - start_us_;
  record.depth = t_depth;
  record.thread = ThreadId();
  TraceRing::Global().Record(record);
  Aggregates& aggregates = GlobalAggregates();
  const std::lock_guard<std::mutex> lock(aggregates.mu);
  SpanStats& stats = aggregates.by_name[name_];
  ++stats.count;
  stats.total_us += record.duration_us;
  if (record.duration_us > stats.max_us) stats.max_us = record.duration_us;
}

std::size_t TraceSpan::CurrentDepth() { return t_depth; }

std::map<std::string, SpanStats> SpanAggregates() {
  Aggregates& aggregates = GlobalAggregates();
  const std::lock_guard<std::mutex> lock(aggregates.mu);
  return aggregates.by_name;
}

void AppendSpanExposition(std::string& out) {
  TraceRing& ring = TraceRing::Global();
  out += "# TYPE spe_spans_total counter\nspe_spans_total ";
  out += std::to_string(ring.total());
  out += "\n# TYPE spe_spans_dropped counter\nspe_spans_dropped ";
  out += std::to_string(ring.dropped());
  out += '\n';
  const std::map<std::string, SpanStats> aggregates = SpanAggregates();
  if (aggregates.empty()) return;
  out += "# TYPE spe_span_count counter\n";
  for (const auto& [name, stats] : aggregates) {
    out += "spe_span_count{span=\"" + name + "\"} " +
           std::to_string(stats.count) + "\n";
  }
  out += "# TYPE spe_span_total_us counter\n";
  for (const auto& [name, stats] : aggregates) {
    out += "spe_span_total_us{span=\"" + name + "\"} " +
           std::to_string(stats.total_us) + "\n";
  }
  out += "# TYPE spe_span_max_us gauge\n";
  for (const auto& [name, stats] : aggregates) {
    out += "spe_span_max_us{span=\"" + name + "\"} " +
           std::to_string(stats.max_us) + "\n";
  }
}

std::string SpanSummariesJson() {
  const std::map<std::string, SpanStats> aggregates = SpanAggregates();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, stats] : aggregates) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(stats.count) +
           ",\"total_us\":" + std::to_string(stats.total_us) +
           ",\"max_us\":" + std::to_string(stats.max_us) + "}";
  }
  out += "}";
  return out;
}

void ResetSpansForTest() {
  TraceRing::Global().Clear();
  Aggregates& aggregates = GlobalAggregates();
  const std::lock_guard<std::mutex> lock(aggregates.mu);
  aggregates.by_name.clear();
}

}  // namespace obs
}  // namespace spe
