#ifndef SPE_OBS_TRACE_H_
#define SPE_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace spe {
namespace obs {

/// One completed span. `name` must be a string with static storage
/// duration (span call sites pass literals), so records are 32 bytes and
/// recording never allocates.
struct SpanRecord {
  const char* name = "";
  std::uint64_t start_us = 0;     ///< since the process trace epoch
  std::uint64_t duration_us = 0;
  std::uint32_t depth = 0;        ///< nesting level on the owning thread
  std::uint32_t thread = 0;       ///< small per-thread id, assigned lazily
};

/// Bounded in-memory ring of completed spans. When full, the oldest
/// record is overwritten — tracing is a flight recorder, not a log.
/// Thread-safe; spans complete at chunk granularity (an iteration, a
/// batch), so a mutex is far below contention levels that would matter.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Process-wide ring used by TraceSpan (capacity 4096).
  static TraceRing& Global();

  void Record(const SpanRecord& span);

  /// Retained records, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans ever recorded / overwritten because the ring was full.
  std::uint64_t total() const;
  std::uint64_t dropped() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // guarded by mu_
  const std::size_t capacity_;
  std::uint64_t total_ = 0;  // guarded by mu_
};

/// RAII trace scope: construction stamps a start time, destruction
/// records a SpanRecord into TraceRing::Global() and folds the duration
/// into the per-name aggregates rendered by the metrics exposition.
/// Depth is tracked with a thread-local counter, so nested spans carry
/// their nesting level without a heap-allocated stack.
///
/// Determinism contract: spans read the steady clock and nothing else —
/// never an Rng — so instrumented training produces bit-identical
/// artifacts with tracing on, off, or at any thread count. When
/// obs::Enabled() is false, construction and destruction are no-ops
/// (not even a clock read).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Number of open spans on the calling thread.
  static std::size_t CurrentDepth();

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Cumulative per-name span statistics since process start.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

/// Copy of the per-name aggregates, keyed by span name.
std::map<std::string, SpanStats> SpanAggregates();

/// Appends the span exposition family (spe_spans_total,
/// spe_spans_dropped, spe_span_{count,total_us,max_us}{span="..."}).
void AppendSpanExposition(std::string& out);

/// Span aggregates as one JSON object, for bench reports:
/// {"name":{"count":N,"total_us":T,"max_us":M},...}.
std::string SpanSummariesJson();

/// Clears the global ring and the aggregates. Test seam.
void ResetSpansForTest();

}  // namespace obs
}  // namespace spe

#endif  // SPE_OBS_TRACE_H_
