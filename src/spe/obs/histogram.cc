#include "spe/obs/histogram.h"

#include <bit>
#include <limits>

#include "spe/common/check.h"

namespace spe {
namespace obs {
namespace {

void UpdateMax(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

GeometricHistogram::GeometricHistogram(int sub_bits, std::size_t num_buckets)
    : sub_bits_(sub_bits), counts_(num_buckets) {
  SPE_CHECK_GE(sub_bits, 0);
  SPE_CHECK_LE(sub_bits, 8);
  SPE_CHECK_GT(num_buckets, 0u);
  SPE_CHECK_LE(num_buckets - 1, MaxIndexFor(sub_bits))
      << "bucket lower bounds past the one holding UINT64_MAX overflow";
}

std::size_t GeometricHistogram::MaxIndexFor(int sub_bits) {
  return IndexFor(sub_bits, std::numeric_limits<std::uint64_t>::max());
}

std::size_t GeometricHistogram::IndexFor(int sub_bits, std::uint64_t value) {
  const std::uint64_t sub = std::uint64_t{1} << sub_bits;
  if (value < sub) return static_cast<std::size_t>(value);
  const int msb = std::bit_width(value) - 1;  // >= sub_bits
  const std::uint64_t low = (value >> (msb - sub_bits)) & (sub - 1);
  return static_cast<std::size_t>(msb - sub_bits + 1) * sub +
         static_cast<std::size_t>(low);
}

std::uint64_t GeometricHistogram::LowerBoundFor(int sub_bits,
                                                std::size_t index) {
  const std::uint64_t sub = std::uint64_t{1} << sub_bits;
  if (index < sub) return index;
  const std::uint64_t octave = index / sub - 1;
  const std::uint64_t low = index % sub;
  return (sub + low) << octave;
}

std::size_t GeometricHistogram::BucketIndex(std::uint64_t value) const {
  const std::size_t index = IndexFor(sub_bits_, value);
  return index < counts_.size() ? index : counts_.size() - 1;
}

std::uint64_t GeometricHistogram::BucketLowerBound(std::size_t index) const {
  return LowerBoundFor(sub_bits_, index);
}

void GeometricHistogram::Record(std::uint64_t value) {
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  UpdateMax(max_, value);
}

double GeometricHistogram::Percentile(double q) const {
  std::vector<std::uint64_t> counts(counts_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double exact_max = static_cast<double>(max());
  // Rank of the q-th sample (1-based); walk buckets until reached, then
  // interpolate linearly inside the bucket.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = i + 1 < counts.size()
                            ? static_cast<double>(BucketLowerBound(i + 1))
                            : exact_max;
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(counts[i]);
      const double estimate = lo + (hi > lo ? (hi - lo) * frac : 0.0);
      // Interpolation works on bucket bounds, which can exceed the
      // largest value actually seen; the exact max caps it.
      return estimate < exact_max ? estimate : exact_max;
    }
    cumulative = next;
  }
  return exact_max;
}

}  // namespace obs
}  // namespace spe
