#ifndef SPE_EVAL_CROSS_VALIDATION_H_
#define SPE_EVAL_CROSS_VALIDATION_H_

#include <cstddef>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/rng.h"
#include "spe/common/stats.h"
#include "spe/data/dataset.h"
#include "spe/eval/experiment.h"
#include "spe/metrics/metrics.h"

namespace spe {

/// Stratified k-fold assignment: fold id per row, with positives and
/// negatives distributed separately so every fold preserves the
/// imbalance ratio (critical when |P| is tiny — plain k-fold can easily
/// produce folds with zero positives, making AUCPRC undefined).
std::vector<std::size_t> StratifiedFolds(const Dataset& data, std::size_t k,
                                         Rng& rng);

/// Result of one cross-validation: the per-fold summaries plus
/// mean ± std aggregates of the four paper criteria.
struct CrossValidationResult {
  std::vector<ScoreSummary> folds;
  AggregateScores aggregate() const;
};

/// Stratified k-fold cross-validation of `prototype`: for each fold a
/// fresh clone (reseeded per fold) trains on the other k-1 folds and is
/// scored on the held-out one. The prototype itself is not modified.
CrossValidationResult CrossValidate(const Classifier& prototype,
                                    const Dataset& data, std::size_t k,
                                    Rng& rng);

}  // namespace spe

#endif  // SPE_EVAL_CROSS_VALIDATION_H_
