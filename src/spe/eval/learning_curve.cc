#include "spe/eval/learning_curve.h"

#include <algorithm>

#include "spe/common/check.h"

namespace spe {

std::vector<LearningCurvePoint> LearningCurve(
    const Classifier& prototype, const Dataset& train, const Dataset& test,
    const std::vector<double>& fractions, Rng& rng) {
  SPE_CHECK(!fractions.empty());
  const std::vector<std::size_t> pos = train.PositiveIndices();
  const std::vector<std::size_t> neg = train.NegativeIndices();
  SPE_CHECK(!pos.empty());
  SPE_CHECK(!neg.empty());

  std::vector<LearningCurvePoint> curve;
  curve.reserve(fractions.size());
  for (double fraction : fractions) {
    SPE_CHECK_GT(fraction, 0.0);
    SPE_CHECK_LE(fraction, 1.0);
    // Stratified subset: scale each class separately, at least one row
    // of each so the subset stays trainable.
    const auto take_pos = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * static_cast<double>(pos.size())));
    const auto take_neg = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * static_cast<double>(neg.size())));
    std::vector<std::size_t> rows;
    rows.reserve(take_pos + take_neg);
    for (std::size_t i : rng.SampleWithoutReplacement(pos.size(), take_pos)) {
      rows.push_back(pos[i]);
    }
    for (std::size_t i : rng.SampleWithoutReplacement(neg.size(), take_neg)) {
      rows.push_back(neg[i]);
    }
    // The stratified subset is just an index view — no rows copied per
    // curve point.
    const DatasetView subset(train, rows);

    std::unique_ptr<Classifier> model = prototype.Clone();
    model->Reseed(rng.engine()());
    model->Fit(subset);

    LearningCurvePoint point;
    point.train_fraction = fraction;
    point.train_rows = subset.num_rows();
    point.test_scores = Evaluate(test.labels(), model->PredictProba(test));
    curve.push_back(point);
  }
  return curve;
}

}  // namespace spe
