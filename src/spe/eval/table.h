#ifndef SPE_EVAL_TABLE_H_
#define SPE_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "spe/common/stats.h"

namespace spe {

/// Fixed-width console table used by the bench binaries to print
/// paper-style result tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.783±0.015"-style cell, matching the paper's table formatting.
std::string FormatMeanStd(const MeanStd& value, int precision = 3);

/// Plain fixed-precision number.
std::string FormatNumber(double value, int precision = 3);

}  // namespace spe

#endif  // SPE_EVAL_TABLE_H_
