#ifndef SPE_EVAL_EXPERIMENT_H_
#define SPE_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "spe/classifiers/classifier.h"
#include "spe/common/stats.h"
#include "spe/data/dataset.h"
#include "spe/metrics/metrics.h"

namespace spe {

/// Mean ± std of the four paper criteria over repeated runs.
struct AggregateScores {
  MeanStd aucprc;
  MeanStd f1;
  MeanStd gmean;
  MeanStd mcc;
};

/// One experiment repetition: everything stochastic must derive from
/// `seed` so repetitions are independent and reproducible.
using RunFn = std::function<ScoreSummary(std::uint64_t seed)>;

/// Runs `fn` for seeds base_seed .. base_seed + runs - 1 and aggregates —
/// the "mean and standard deviation of 10 independent runs" protocol the
/// paper uses for every table.
AggregateScores Repeat(const RunFn& fn, std::size_t runs,
                       std::uint64_t base_seed = 0);

/// Fits `model` on `train` and scores it on `test` with the fixed 0.5
/// threshold for the threshold metrics. Accepts views (a Dataset
/// converts implicitly), so fold splits and resamples can stay index
/// views all the way into the fit.
ScoreSummary TrainAndEvaluate(Classifier& model, const DatasetView& train,
                              const DatasetView& test);

/// Number of repetitions benches should run: SPE_RUNS env var, default 5.
/// (The paper uses 10; 5 keeps the default single-machine suite fast and
/// the spread estimates honest.)
std::size_t BenchRuns();

/// Dataset scale multiplier for benches: SPE_BENCH_SCALE env, default 1.
double BenchScale();

}  // namespace spe

#endif  // SPE_EVAL_EXPERIMENT_H_
