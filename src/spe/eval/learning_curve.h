#ifndef SPE_EVAL_LEARNING_CURVE_H_
#define SPE_EVAL_LEARNING_CURVE_H_

#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/rng.h"
#include "spe/data/dataset.h"
#include "spe/metrics/metrics.h"

namespace spe {

/// One point of a learning curve.
struct LearningCurvePoint {
  double train_fraction = 0.0;
  std::size_t train_rows = 0;
  ScoreSummary test_scores;
};

/// Learning curve: clones of `prototype` train on growing stratified
/// subsets of `train` (the given fractions, each a superset-free fresh
/// draw) and are scored on `test`. Answers the practical question the
/// paper's massive-data framing raises — how much data a method needs
/// before its ranking quality saturates.
std::vector<LearningCurvePoint> LearningCurve(
    const Classifier& prototype, const Dataset& train, const Dataset& test,
    const std::vector<double>& fractions, Rng& rng);

}  // namespace spe

#endif  // SPE_EVAL_LEARNING_CURVE_H_
