#ifndef SPE_EVAL_STOPWATCH_H_
#define SPE_EVAL_STOPWATCH_H_

#include <chrono>

namespace spe {

/// Wall-clock stopwatch for the timing columns (e.g. Table V's
/// "Re-sampling Time(s)").
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / last Restart.
  double Seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spe

#endif  // SPE_EVAL_STOPWATCH_H_
