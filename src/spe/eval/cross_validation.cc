#include "spe/eval/cross_validation.h"

#include "spe/common/check.h"

namespace spe {
namespace {

// AggregateScores field extraction shared with experiment.cc's Repeat.
AggregateScores AggregateSummaries(const std::vector<ScoreSummary>& summaries) {
  std::vector<double> aucprc;
  std::vector<double> f1;
  std::vector<double> gmean;
  std::vector<double> mcc;
  for (const ScoreSummary& s : summaries) {
    aucprc.push_back(s.aucprc);
    f1.push_back(s.f1);
    gmean.push_back(s.gmean);
    mcc.push_back(s.mcc);
  }
  return AggregateScores{Aggregate(aucprc), Aggregate(f1), Aggregate(gmean),
                         Aggregate(mcc)};
}

}  // namespace

std::vector<std::size_t> StratifiedFolds(const Dataset& data, std::size_t k,
                                         Rng& rng) {
  SPE_CHECK_GE(k, 2u);
  SPE_CHECK_GE(data.CountPositives(), k)
      << "need at least one positive per fold";
  SPE_CHECK_GE(data.CountNegatives(), k);

  std::vector<std::size_t> fold_of(data.num_rows());
  for (std::vector<std::size_t> group :
       {data.PositiveIndices(), data.NegativeIndices()}) {
    rng.Shuffle(group);
    for (std::size_t i = 0; i < group.size(); ++i) {
      fold_of[group[i]] = i % k;
    }
  }
  return fold_of;
}

AggregateScores CrossValidationResult::aggregate() const {
  SPE_CHECK(!folds.empty());
  return AggregateSummaries(folds);
}

CrossValidationResult CrossValidate(const Classifier& prototype,
                                    const Dataset& data, std::size_t k,
                                    Rng& rng) {
  const std::vector<std::size_t> fold_of = StratifiedFolds(data, k, rng);

  CrossValidationResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      (fold_of[i] == fold ? test_rows : train_rows).push_back(i);
    }
    // Folds are index views over the one dataset: the k-way split never
    // copies a row.
    const DatasetView train(data, train_rows);
    const DatasetView test(data, test_rows);

    std::unique_ptr<Classifier> model = prototype.Clone();
    model->Reseed(rng.engine()());
    model->Fit(train);
    result.folds.push_back(
        Evaluate(test.LabelsVector(), model->PredictProba(test)));
  }
  return result;
}

}  // namespace spe
