#include "spe/eval/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "spe/common/check.h"

namespace spe {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SPE_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  SPE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " ";
    }
    os << "|\n";
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string FormatMeanStd(const MeanStd& value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value.mean << "±"
     << value.std;
  return os.str();
}

std::string FormatNumber(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace spe
