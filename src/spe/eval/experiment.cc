#include "spe/eval/experiment.h"

#include <cstdlib>
#include <vector>

#include "spe/common/check.h"

namespace spe {

AggregateScores Repeat(const RunFn& fn, std::size_t runs, std::uint64_t base_seed) {
  SPE_CHECK_GT(runs, 0u);
  std::vector<double> aucprc;
  std::vector<double> f1;
  std::vector<double> gmean;
  std::vector<double> mcc;
  aucprc.reserve(runs);
  f1.reserve(runs);
  gmean.reserve(runs);
  mcc.reserve(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    const ScoreSummary s = fn(base_seed + r);
    aucprc.push_back(s.aucprc);
    f1.push_back(s.f1);
    gmean.push_back(s.gmean);
    mcc.push_back(s.mcc);
  }
  return AggregateScores{Aggregate(aucprc), Aggregate(f1), Aggregate(gmean),
                         Aggregate(mcc)};
}

ScoreSummary TrainAndEvaluate(Classifier& model, const DatasetView& train,
                              const DatasetView& test) {
  model.Fit(train);
  return Evaluate(test.LabelsVector(), model.PredictProba(test));
}

std::size_t BenchRuns() {
  if (const char* env = std::getenv("SPE_RUNS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 5;
}

double BenchScale() {
  if (const char* env = std::getenv("SPE_BENCH_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) return v;
  }
  return 1.0;
}

}  // namespace spe
