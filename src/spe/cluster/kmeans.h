#ifndef SPE_CLUSTER_KMEANS_H_
#define SPE_CLUSTER_KMEANS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "spe/common/rng.h"
#include "spe/data/dataset.h"

namespace spe {

struct KMeansConfig {
  std::size_t num_clusters = 8;
  std::size_t max_iterations = 50;
  /// Converged when no assignment changes in an iteration.
  std::uint64_t seed = 0;
};

/// Lloyd's k-means with k-means++ seeding on (standardized) features.
/// The clustering substrate behind the cluster-aware samplers
/// (ClusterCentroids, KMeansSMOTE). Labels are ignored.
class KMeans {
 public:
  explicit KMeans(const KMeansConfig& config = {});

  /// Clusters the rows of `data`. Aborts on categorical features (the
  /// same no-valid-distance argument as NeighborIndex). If data has
  /// fewer rows than clusters, the cluster count collapses to the row
  /// count.
  void Fit(const Dataset& data);

  std::size_t num_clusters() const { return centroids_.size(); }
  bool fitted() const { return !centroids_.empty(); }

  /// Centroids in the *original* (unstandardized) feature space.
  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }

  /// Cluster assignment of every training row (aligned with Fit input).
  const std::vector<std::size_t>& assignments() const { return assignments_; }

  /// Nearest centroid of an arbitrary raw feature row.
  std::size_t AssignRow(std::span<const double> x) const;

 private:
  KMeansConfig config_;
  FeatureScaler scaler_;
  std::vector<std::vector<double>> centroids_;             // raw space
  std::vector<std::vector<double>> standardized_centroids_;
  std::vector<std::size_t> assignments_;
};

}  // namespace spe

#endif  // SPE_CLUSTER_KMEANS_H_
