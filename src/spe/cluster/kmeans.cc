#include "spe/cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "spe/common/check.h"

namespace spe {
namespace {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMeans::KMeans(const KMeansConfig& config) : config_(config) {
  SPE_CHECK_GT(config.num_clusters, 0u);
  SPE_CHECK_GT(config.max_iterations, 0u);
}

void KMeans::Fit(const Dataset& data) {
  SPE_CHECK(!data.HasCategoricalFeatures())
      << "k-means needs a numeric feature space";
  SPE_CHECK_GT(data.num_rows(), 0u);
  const std::size_t k = std::min(config_.num_clusters, data.num_rows());
  const std::size_t d = data.num_features();

  scaler_.Fit(data);
  RowMatrix x;
  scaler_.TransformToRows(data, x);
  Rng rng(config_.seed);

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest chosen centroid.
  standardized_centroids_.clear();
  standardized_centroids_.reserve(k);
  {
    const std::size_t first = rng.Index(x.num_rows());
    standardized_centroids_.emplace_back(x.Row(first).begin(),
                                         x.Row(first).end());
    std::vector<double> nearest(x.num_rows(),
                                std::numeric_limits<double>::infinity());
    while (standardized_centroids_.size() < k) {
      double total = 0.0;
      for (std::size_t i = 0; i < x.num_rows(); ++i) {
        nearest[i] = std::min(
            nearest[i], SquaredDistance(x.Row(i), standardized_centroids_.back()));
        total += nearest[i];
      }
      std::size_t chosen = 0;
      if (total > 0.0) {
        double u = rng.Uniform() * total;
        for (std::size_t i = 0; i < x.num_rows(); ++i) {
          u -= nearest[i];
          if (u <= 0.0) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = rng.Index(x.num_rows());  // all points coincide
      }
      standardized_centroids_.emplace_back(x.Row(chosen).begin(),
                                           x.Row(chosen).end());
    }
  }

  // Lloyd iterations.
  assignments_.assign(x.num_rows(), 0);
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < x.num_rows(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_cluster = 0;
      for (std::size_t c = 0; c < standardized_centroids_.size(); ++c) {
        const double dist = SquaredDistance(x.Row(i), standardized_centroids_[c]);
        if (dist < best) {
          best = dist;
          best_cluster = c;
        }
      }
      if (assignments_[i] != best_cluster) {
        assignments_[i] = best_cluster;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute centroids; empty clusters keep their previous position.
    std::vector<std::vector<double>> sums(standardized_centroids_.size(),
                                          std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(standardized_centroids_.size(), 0);
    for (std::size_t i = 0; i < x.num_rows(); ++i) {
      const auto row = x.Row(i);
      auto& sum = sums[assignments_[i]];
      for (std::size_t j = 0; j < d; ++j) sum[j] += row[j];
      ++counts[assignments_[i]];
    }
    for (std::size_t c = 0; c < standardized_centroids_.size(); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        standardized_centroids_[c][j] =
            sums[c][j] / static_cast<double>(counts[c]);
      }
    }
  }

  // Map centroids back to the raw feature space.
  centroids_.assign(standardized_centroids_.size(), std::vector<double>(d));
  const auto& means = scaler_.means();
  const auto& stds = scaler_.stds();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      centroids_[c][j] = standardized_centroids_[c][j] * stds[j] + means[j];
    }
  }
}

std::size_t KMeans::AssignRow(std::span<const double> x) const {
  SPE_CHECK(fitted()) << "assign before fit";
  std::vector<double> scaled(x.size());
  scaler_.TransformRow(x, scaled);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_cluster = 0;
  for (std::size_t c = 0; c < standardized_centroids_.size(); ++c) {
    const double dist = SquaredDistance(scaled, standardized_centroids_[c]);
    if (dist < best) {
      best = dist;
      best_cluster = c;
    }
  }
  return best_cluster;
}

}  // namespace spe
