#ifndef SPE_KERNELS_PROGRAM_H_
#define SPE_KERNELS_PROGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spe {
namespace kernels {

/// Structure-of-arrays node pool shared by every tree of a compiled
/// forest. One contiguous allocation per field instead of one AoS node
/// array per tree: the predict kernel streams `feature`/`threshold`/
/// `left`/`right` with unit-stride loads while a row block descends,
/// and reads `value` only at the leaves.
///
/// Leaves are stored self-looping (left == right == own index, feature
/// 0, threshold 0): a walk that has reached a leaf stays there under
/// further descent steps — including for NaN inputs, which take the
/// `right` edge exactly like the reference `x <= threshold` comparison —
/// so the kernel can run a fixed, branch-free number of steps per tree.
struct NodePool {
  std::vector<std::int32_t> feature;
  std::vector<double> threshold;
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  std::vector<double> value;

  std::size_t size() const { return feature.size(); }
};

/// One compiled tree: its root in the pool and the number of descent
/// steps that guarantees every input has reached (and parked on) a leaf.
struct TreeRef {
  std::int32_t root = 0;
  std::int32_t depth = 0;
};

/// One ensemble member lowered to kernel form. The three kinds cover
/// every tree-backed model in this library; anything else fails to
/// lower and the ensemble keeps the reference scoring loop.
struct MemberOp {
  enum class Kind {
    kTree,        ///< single decision tree: value = leaf value
    kBoostLogit,  ///< GBDT: value = sigmoid(base + sum lr * leaf), tree order
    kGroup,       ///< nested voting ensemble: value = mean of children
  };

  Kind kind = Kind::kTree;
  std::int32_t tree_begin = 0;  ///< [tree_begin, tree_end) into FlatProgram::trees
  std::int32_t tree_end = 0;
  double base_score = 0.0;     ///< kBoostLogit prior log-odds
  double learning_rate = 0.0;  ///< kBoostLogit shrinkage
  std::vector<MemberOp> children;  ///< kGroup only
};

/// A voting ensemble lowered to one node pool plus a member program.
/// Members are stored in ensemble index order, which is what lets the
/// kernel honor the prefix-scoring (graceful degradation) contract: the
/// first k members of the program are exactly the first k members of
/// the ensemble.
struct FlatProgram {
  NodePool pool;
  std::vector<TreeRef> trees;
  std::vector<MemberOp> members;
};

/// Appends one tree to a program. Callers push nodes in their native
/// storage order with tree-local child indices (matching the Node
/// layout of DecisionTree / gbdt::RegressionTree, root at local index
/// 0); the builder rewrites children to pool-global indices, converts
/// leaves (feature < 0) to the self-looping form, and computes the
/// guaranteed-leaf depth on Finish.
class FlatTreeBuilder {
 public:
  explicit FlatTreeBuilder(FlatProgram& program);

  void AddNode(int feature, double threshold, std::int32_t left,
               std::int32_t right, double value);

  /// Seals the tree and returns its index in FlatProgram::trees.
  /// Requires at least one node.
  std::int32_t Finish();

 private:
  struct LocalNode {
    std::int32_t left;
    std::int32_t right;
    bool leaf;
  };

  FlatProgram& program_;
  std::size_t base_;  // pool size when this tree started
  std::vector<LocalNode> local_;
};

/// Capability interface for the flat-inference compiler, discovered via
/// dynamic_cast exactly like PrefixVoter is by the serving layer: a
/// fitted classifier that can lower itself into a FlatProgram member op
/// implements it; ensembles compile when every member does and fall
/// back to the reference loop otherwise.
class FlatCompilable {
 public:
  virtual ~FlatCompilable() = default;

  /// Appends this model's trees to `program` and fills `op` with the
  /// member program that reproduces PredictProba bit-for-bit. Returns
  /// false when the current (e.g. unfitted) state has no flat lowering;
  /// the caller then abandons the whole program.
  virtual bool LowerToFlat(FlatProgram& program, MemberOp& op) const = 0;
};

class FlatForest;

/// Implemented by models whose batch scoring can ride a compiled
/// FlatForest. Purely observational — the kernel dispatch itself lives
/// inside VotingEnsemble — so the serving layer and benches can report
/// which path a model actually takes (see kernels::ActiveKernel).
class FlatScorable {
 public:
  virtual ~FlatScorable() = default;

  /// The compiled program this model's batch scoring currently uses, or
  /// nullptr when it runs the reference loop (a member failed to lower,
  /// or the kernel is disabled). May compile lazily on first call.
  virtual const FlatForest* flat_kernel() const = 0;
};

}  // namespace kernels
}  // namespace spe

#endif  // SPE_KERNELS_PROGRAM_H_
