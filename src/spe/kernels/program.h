#ifndef SPE_KERNELS_PROGRAM_H_
#define SPE_KERNELS_PROGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "spe/classifiers/gbdt/binning.h"

namespace spe {
namespace kernels {

/// Structure-of-arrays node pool shared by every tree of a compiled
/// forest. One contiguous allocation per field instead of one AoS node
/// array per tree: the predict kernel streams `feature`/`threshold`/
/// `left`/`right` with unit-stride loads while a row block descends,
/// and reads `value` only at the leaves.
///
/// Leaves are stored self-looping (left == right == own index, feature
/// 0, threshold 0): a walk that has reached a leaf stays there under
/// further descent steps — including for NaN inputs, which take the
/// `right` edge exactly like the reference `x <= threshold` comparison —
/// so the kernel can run a fixed, branch-free number of steps per tree.
struct NodePool {
  std::vector<std::int32_t> feature;
  std::vector<double> threshold;
  std::vector<std::int32_t> left;
  std::vector<std::int32_t> right;
  std::vector<double> value;

  std::size_t size() const { return feature.size(); }
};

/// One compiled tree: its root in the pool and the number of descent
/// steps that guarantees every input has reached (and parked on) a leaf.
struct TreeRef {
  std::int32_t root = 0;
  std::int32_t depth = 0;
};

/// One ensemble member lowered to kernel form. The three kinds cover
/// every tree-backed model in this library; anything else fails to
/// lower and the ensemble keeps the reference scoring loop.
struct MemberOp {
  enum class Kind {
    kTree,        ///< single decision tree: value = leaf value
    kBoostLogit,  ///< GBDT: value = sigmoid(base + sum lr * leaf), tree order
    kGroup,       ///< nested voting ensemble: value = mean of children
  };

  Kind kind = Kind::kTree;
  std::int32_t tree_begin = 0;  ///< [tree_begin, tree_end) into FlatProgram::trees
  std::int32_t tree_end = 0;
  double base_score = 0.0;     ///< kBoostLogit prior log-odds
  double learning_rate = 0.0;  ///< kBoostLogit shrinkage
  std::vector<MemberOp> children;  ///< kGroup only
};

/// A voting ensemble lowered to one node pool plus a member program.
/// Members are stored in ensemble index order, which is what lets the
/// kernel honor the prefix-scoring (graceful degradation) contract: the
/// first k members of the program are exactly the first k members of
/// the ensemble.
struct FlatProgram {
  NodePool pool;
  std::vector<TreeRef> trees;
  std::vector<MemberOp> members;
};

/// Appends one tree to a program. Callers push nodes in their native
/// storage order with tree-local child indices (matching the Node
/// layout of DecisionTree / gbdt::RegressionTree, root at local index
/// 0); the builder rewrites children to pool-global indices, converts
/// leaves (feature < 0) to the self-looping form, and computes the
/// guaranteed-leaf depth on Finish.
class FlatTreeBuilder {
 public:
  explicit FlatTreeBuilder(FlatProgram& program);

  void AddNode(int feature, double threshold, std::int32_t left,
               std::int32_t right, double value);

  /// Seals the tree and returns its index in FlatProgram::trees.
  /// Requires at least one node.
  std::int32_t Finish();

 private:
  struct LocalNode {
    std::int32_t left;
    std::int32_t right;
    bool leaf;
  };

  FlatProgram& program_;
  std::size_t base_;  // pool size when this tree started
  std::vector<LocalNode> local_;
};

/// Float-32 mirror of a FlatProgram's floating-point payload. The
/// integer topology (feature/left/right and the tree/member program) is
/// shared with the f64 pool; only thresholds and leaf values are
/// narrowed. Scoring through it is the opt-in "flat_f32" mode: every
/// comparison, accumulation, and the sigmoid run in float, and only the
/// final mean is widened back to double. Parity with f64 is therefore
/// statistical (golden AUC tests), not bit-level — a value that lands
/// between a float threshold and its double original can route the
/// other way.
struct F32Program {
  std::vector<float> threshold;
  std::vector<float> value;
};

/// Narrows pool.threshold / pool.value to float, element for element.
F32Program BuildF32Program(const FlatProgram& program);

/// Quantized mirror of a FlatProgram: split thresholds lowered through
/// gbdt::FeatureBinner into uint8 bin ranks so descent compares bytes
/// instead of doubles.
///
/// Lowering rule: the binner's cut list for feature f is the sorted set
/// of distinct thresholds the program splits f on (for GBDT members
/// these are exactly the quantile boundaries the trainer binned with —
/// recorded thresholds are FeatureBinner::UpperEdge values). With
/// bin(v) = #{cuts < v} (FeatureBinner::BinOf) and cut[n] = the rank of
/// node n's threshold in that list,
///
///     v <= threshold[n]  ⟺  bin(v) <= cut[n]
///
/// holds for every representable double v including ±Inf, because both
/// sides are the same rank comparison in the feature's order. NaN is
/// the one value BinOf cannot express (it compares false with every
/// cut, landing in bin 0 — the left edge); rows are therefore binned
/// with an explicit NaN sentinel of 255, which is > every cut rank and
/// routes right exactly like the reference `!(v <= t)`. Leaf values and
/// accumulation stay double, so binned scoring is byte-identical to the
/// f64 path.
///
/// Capacity: a feature may carry at most kBinnedMaxCuts distinct
/// thresholds (bin indices reach #cuts, which must stay below the 255
/// sentinel). Programs that exceed it — or that split on a NaN
/// threshold — do not lower; `ok` stays false and callers fall back to
/// the f64 kernel.
inline constexpr std::size_t kBinnedMaxCuts = 254;

/// Bin index given to NaN feature values (see BinnedProgram).
inline constexpr std::uint8_t kBinnedNaN = 255;

struct BinnedProgram {
  bool ok = false;
  gbdt::FeatureBinner binner;     ///< cuts = distinct split thresholds
  std::vector<std::uint8_t> cut;  ///< per-node threshold rank (leaves: 0)
};

BinnedProgram BuildBinnedProgram(const FlatProgram& program);

/// Implicit-children ("complete") relayout of a tree: node at slot c has
/// its children at 2c+1 / 2c+2, so descent needs no left/right loads —
/// the index update is pure arithmetic. That matters because the pooled
/// walk is load-port bound: five loads per step (feature, threshold,
/// left, right, row value) put its floor at ~2.5 cycles/step on a
/// 2-load/cycle core, while the complete walk's three put it near 1.5.
///
/// Each qualifying tree is padded to its full depth: an interior slot
/// whose pool node is a leaf becomes a don't-care split (feature 0,
/// threshold 0) with the leaf replicated across its whole subtree, so
/// every row routes — in either direction, including the NaN right-edge
/// — to a bottom slot holding the same pool leaf. After exactly `depth`
/// steps the slot index lands in the bottom level, where `value` holds
/// that pool leaf's exact value: the walk returns leaf values directly,
/// skipping the slot→node→value double indirection, and stays
/// byte-identical with the reference.
///
/// Trees relayout only when depth <= kCompleteMaxDepth and the padded
/// slot count stays within kCompleteMaxExpansion x the tree's real node
/// count. Padding never slows the walk — it runs a fixed `depth` steps
/// either way — so both limits are purely memory guards: the depth cap
/// bounds one tree at ~128 KiB of slots, and the expansion cap keeps a
/// forest of them cache-resident. Real forests sit well inside it
/// (depth-10 trees on ~2k-row samples run ~5x; a degenerate chain would
/// run into the hundreds), and excluded trees keep the pooled descent
/// (per-tree `ok`).
inline constexpr std::int32_t kCompleteMaxDepth = 12;
inline constexpr std::size_t kCompleteMaxExpansion = 24;

struct CompleteTree {
  bool ok = false;
  std::int32_t depth = 0;      ///< descent steps (== TreeRef::depth)
  std::size_t node_base = 0;   ///< into CompleteProgram::feature/threshold
  std::size_t leaf_base = 0;   ///< into CompleteProgram::value
};

struct CompleteProgram {
  bool any = false;                    ///< at least one tree relayouted
  std::vector<CompleteTree> trees;     ///< parallel to FlatProgram::trees
  std::vector<std::int32_t> feature;   ///< interior slots, level order
  std::vector<double> threshold;       ///< interior slots, level order
  std::vector<double> value;           ///< bottom slot -> pool leaf value
};

CompleteProgram BuildCompleteProgram(const FlatProgram& program);

/// Capability interface for the flat-inference compiler, discovered via
/// dynamic_cast exactly like PrefixVoter is by the serving layer: a
/// fitted classifier that can lower itself into a FlatProgram member op
/// implements it; ensembles compile when every member does and fall
/// back to the reference loop otherwise.
class FlatCompilable {
 public:
  virtual ~FlatCompilable() = default;

  /// Appends this model's trees to `program` and fills `op` with the
  /// member program that reproduces PredictProba bit-for-bit. Returns
  /// false when the current (e.g. unfitted) state has no flat lowering;
  /// the caller then abandons the whole program.
  virtual bool LowerToFlat(FlatProgram& program, MemberOp& op) const = 0;
};

class FlatForest;

/// Implemented by models whose batch scoring can ride a compiled
/// FlatForest. Purely observational — the kernel dispatch itself lives
/// inside VotingEnsemble — so the serving layer and benches can report
/// which path a model actually takes (see kernels::ActiveKernel).
class FlatScorable {
 public:
  virtual ~FlatScorable() = default;

  /// The compiled program this model's batch scoring currently uses, or
  /// nullptr when it runs the reference loop (a member failed to lower,
  /// or the kernel is disabled). May compile lazily on first call.
  virtual const FlatForest* flat_kernel() const = 0;
};

}  // namespace kernels
}  // namespace spe

#endif  // SPE_KERNELS_PROGRAM_H_
