#include "spe/kernels/flat_forest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "spe/classifiers/classifier.h"
#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/data/dataset.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"

namespace spe {
namespace kernels {
namespace {

// Rows walked together through each tree. 64 rows of descent state is
// one pair of cache lines of indices plus a block of sums — small
// enough to live in L1 across the whole member program, large enough
// that the per-tree setup (root broadcast, SoA base pointers) amortizes
// and the independent per-row steps keep several loads in flight.
constexpr std::size_t kBlockRows = 64;

// Blocks per worker below which the kernel stays serial. 4 blocks =
// 256 rows, the same serial threshold as the reference row-chunked
// scoring (kScoreGrain in classifier.cc), so serving-sized
// micro-batches keep their latency profile on the calling thread.
constexpr std::size_t kBlockGrain = 4;

// Byte-for-byte copy of the sigmoid in gbdt.cc. The kernel must
// reproduce Gbdt::PredictRow bit-for-bit, and that includes taking the
// same branch (exp(-z) vs exp(z)) for the same score.
double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

bool FlatKernelDefault() {
  const char* env = std::getenv("SPE_FLAT_KERNEL");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& FlatKernelFlag() {
  static std::atomic<bool> enabled{FlatKernelDefault()};
  return enabled;
}

// Advances `count` rows (x, row-major with `stride` doubles per row)
// from the tree's root to their leaves, leaving leaf indices in `idx`.
// The descent runs exactly tree.depth steps with no leaf test: leaves
// self-loop (program.h), so a row that arrives early just stays put.
//
// The child select is deliberately arithmetic, not a ternary. A split
// comparison is data-dependent and close to a coin flip, so a compare-
// and-branch (what gcc emits for `cond ? left : right` here) eats a
// pipeline flush every other node — that is the cost profile of the
// reference per-row walk, and matching it would make blocking
// pointless. Materializing the comparison with setcc and selecting via
// mask keeps the loop branch-free; with no branches, the independent
// per-row iterations overlap their node fetches and the walk runs at
// load throughput instead of mispredict latency. NaN compares false
// (unordered comisd clears the setae result) and takes the right
// edge — same routing as the reference PredictRow.
void WalkTree(const NodePool& pool, const TreeRef tree, const double* x,
              std::size_t stride, std::size_t count, std::int32_t* idx) {
  for (std::size_t r = 0; r < count; ++r) idx[r] = tree.root;
  const std::int32_t* const feature = pool.feature.data();
  const double* const threshold = pool.threshold.data();
  const std::int32_t* const left = pool.left.data();
  const std::int32_t* const right = pool.right.data();
  for (std::int32_t d = 0; d < tree.depth; ++d) {
    for (std::size_t r = 0; r < count; ++r) {
      const auto n = static_cast<std::size_t>(idx[r]);
      const double v = x[r * stride + static_cast<std::size_t>(feature[n])];
      const auto l = static_cast<std::uint32_t>(left[n]);
      const auto rt = static_cast<std::uint32_t>(right[n]);
      const auto go_right = static_cast<std::uint32_t>(!(v <= threshold[n]));
      idx[r] = static_cast<std::int32_t>(l + ((rt - l) & (0u - go_right)));
    }
  }
}

// One member's probability for each of `count` rows, into val[0..count).
// Each kind replays the reference arithmetic of the model it was
// lowered from, in the same order, so the bits match.
void EvalMember(const FlatProgram& program, const MemberOp& op,
                const double* x, std::size_t stride, std::size_t count,
                double* val) {
  std::int32_t idx[kBlockRows];
  switch (op.kind) {
    case MemberOp::Kind::kTree: {
      // DecisionTree::PredictRow: the leaf value is the probability.
      WalkTree(program.pool, program.trees[static_cast<std::size_t>(op.tree_begin)],
               x, stride, count, idx);
      for (std::size_t r = 0; r < count; ++r) {
        val[r] = program.pool.value[static_cast<std::size_t>(idx[r])];
      }
      break;
    }
    case MemberOp::Kind::kBoostLogit: {
      // Gbdt::PredictRow: score = base; score += lr * leaf per tree in
      // order; sigmoid(score).
      double score[kBlockRows];
      for (std::size_t r = 0; r < count; ++r) score[r] = op.base_score;
      for (std::int32_t t = op.tree_begin; t < op.tree_end; ++t) {
        WalkTree(program.pool, program.trees[static_cast<std::size_t>(t)], x,
                 stride, count, idx);
        for (std::size_t r = 0; r < count; ++r) {
          score[r] += op.learning_rate *
                      program.pool.value[static_cast<std::size_t>(idx[r])];
        }
      }
      for (std::size_t r = 0; r < count; ++r) val[r] = Sigmoid(score[r]);
      break;
    }
    case MemberOp::Kind::kGroup: {
      // Nested VotingEnsemble: children accumulate in index order, then
      // one multiply by 1/n — the same reduction PredictProbaPrefix
      // performs over all members.
      double child[kBlockRows];
      for (std::size_t r = 0; r < count; ++r) val[r] = 0.0;
      for (const MemberOp& c : op.children) {
        EvalMember(program, c, x, stride, count, child);
        for (std::size_t r = 0; r < count; ++r) val[r] += child[r];
      }
      const double inv = 1.0 / static_cast<double>(op.children.size());
      for (std::size_t r = 0; r < count; ++r) val[r] *= inv;
      break;
    }
  }
}

}  // namespace

bool FlatKernelEnabled() {
  return FlatKernelFlag().load(std::memory_order_relaxed);
}

void SetFlatKernelEnabled(bool enabled) {
  FlatKernelFlag().store(enabled, std::memory_order_relaxed);
}

bool FlatForest::LowerEnsemble(const VotingEnsemble& ensemble,
                               FlatProgram& program, MemberOp& op) {
  if (ensemble.empty()) return false;
  op.kind = MemberOp::Kind::kGroup;
  op.children.clear();
  op.children.reserve(ensemble.size());
  for (std::size_t m = 0; m < ensemble.size(); ++m) {
    const auto* compilable =
        dynamic_cast<const FlatCompilable*>(&ensemble.member(m));
    MemberOp child;
    if (compilable == nullptr || !compilable->LowerToFlat(program, child)) {
      return false;
    }
    op.children.push_back(std::move(child));
  }
  return true;
}

std::unique_ptr<const FlatForest> FlatForest::Compile(
    const VotingEnsemble& ensemble) {
  auto forest = std::unique_ptr<FlatForest>(new FlatForest());
  MemberOp top;
  if (!LowerEnsemble(ensemble, forest->program_, top)) return nullptr;
  // The ensemble's own averaging is applied by PredictPrefixInto (it
  // depends on the prefix length k), so the compiled program keeps the
  // members flat rather than wrapped in the top-level group op.
  forest->program_.members = std::move(top.children);
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("spe_kernels_compiled_trees")
        .Set(static_cast<double>(forest->program_.trees.size()));
    registry.GetCounter("spe_kernels_compiles_total").Add();
  }
  return forest;
}

void FlatForest::PredictPrefixInto(const Dataset& data, std::size_t k,
                                   std::span<double> out) const {
  SPE_CHECK_GT(k, 0u);
  SPE_CHECK_EQ(out.size(), data.num_rows());
  const std::size_t rows = data.num_rows();
  if (rows == 0) return;
  const std::size_t n = std::min(k, program_.members.size());
  const obs::TraceSpan span("kernels.flat_predict");
  const double* const x = data.Row(0).data();
  const std::size_t stride = data.num_features();
  const double inv = 1.0 / static_cast<double>(n);
  const std::size_t num_blocks = (rows + kBlockRows - 1) / kBlockRows;
  // Blocks write disjoint output ranges from identical per-row
  // arithmetic, so chunking cannot change the result: the kernel is
  // bit-identical for any SPE_THREADS.
  ParallelForGrain(0, num_blocks, kBlockGrain, [&](std::size_t b) {
    const std::size_t base = b * kBlockRows;
    const std::size_t count = std::min(kBlockRows, rows - base);
    double sum[kBlockRows];
    double val[kBlockRows];
    for (std::size_t r = 0; r < count; ++r) sum[r] = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      EvalMember(program_, program_.members[m], x + base * stride, stride,
                 count, val);
      for (std::size_t r = 0; r < count; ++r) sum[r] += val[r];
    }
    for (std::size_t r = 0; r < count; ++r) out[base + r] = sum[r] * inv;
  });
}

const char* ActiveKernel(const Classifier& model) {
  const auto* scorable = dynamic_cast<const FlatScorable*>(&model);
  return scorable != nullptr && scorable->flat_kernel() != nullptr
             ? "flat"
             : "reference";
}

}  // namespace kernels
}  // namespace spe
