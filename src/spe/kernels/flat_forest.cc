#include "spe/kernels/flat_forest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "spe/classifiers/classifier.h"
#include "spe/common/check.h"
#include "spe/common/parallel.h"
#include "spe/data/dataset.h"
#include "spe/kernels/simd.h"
#include "spe/obs/metrics.h"
#include "spe/obs/trace.h"

// The scalar walks below are hand-shaped for the out-of-order core:
// depth-outer/rows-inner loops of branch-free dependent chains that run
// at load-port throughput. gcc's autovectorizer, handed -mavx2 by the
// SPE_SIMD build, rewrites them into emulated-gather vector loops that
// measure ~2x SLOWER (gathers on most x86 cores are one load uop per
// lane plus setup — all cost, no width). Pin those functions to scalar
// codegen so the SIMD build compiles them exactly like the default
// build; vectorized descent happens only where it is written by hand
// (WalkTreeSimd). Plain -O2/-O3 builds without vector ISAs are
// unaffected — the attribute just restates what they already do.
#if defined(__GNUC__) && !defined(__clang__)
#define SPE_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define SPE_NO_AUTOVEC
#endif

namespace spe {
namespace kernels {
namespace {

// Rows walked together through each tree. 256 rows of descent state is
// a few KiB of indices and sums — still comfortably L1-resident across
// the whole member program — while each tree's nodes, streamed from L2
// on deep trees (a depth-10 complete layout is ~24 KiB, a full SPE
// forest of them ~10x that), are touched once per block: quadrupling
// the block from the original 64 rows quarters that per-row refill
// traffic, which is where the walk's cycles go once the inner loop is
// issue-bound. The independent per-row steps keep the load ports full
// either way.
constexpr std::size_t kBlockRows = 256;

// Blocks per worker below which the kernel stays serial. 1 block =
// 256 rows, the same serial threshold as the reference row-chunked
// scoring (kScoreGrain in classifier.cc), so serving-sized
// micro-batches keep their latency profile on the calling thread.
constexpr std::size_t kBlockGrain = 1;

// Byte-for-byte copy of the sigmoid in gbdt.cc. The kernel must
// reproduce Gbdt::PredictRow bit-for-bit, and that includes taking the
// same branch (exp(-z) vs exp(z)) for the same score.
double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Float twin for the f32 mode: same branch structure, float arithmetic
// throughout. Part of the documented f32 contract (docs/performance.md)
// so the mode is reproducible across builds, not an accident of
// whatever the optimizer picked.
float Sigmoid(float z) {
  if (z >= 0.0f) {
    const float e = std::exp(-z);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(z);
  return e / (1.0f + e);
}

bool EnvFlagOff(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "false") == 0;
}

bool EnvFlagOn(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

bool FlatKernelDefault() { return !EnvFlagOff("SPE_FLAT_KERNEL"); }

std::atomic<bool>& FlatKernelFlag() {
  static std::atomic<bool> enabled{FlatKernelDefault()};
  return enabled;
}

// Vectorized descent defaults on only where the backend's gathers pay
// for themselves (see kGatherDescentProfitable in simd.h): NEON yes,
// AVX2 no. SPE_SIMD=1 forces the gather walk on regardless — that is
// how the conformance suite covers it on x86 — and SPE_SIMD=0 forces
// it off everywhere.
bool SimdDefault() {
  if (EnvFlagOff("SPE_SIMD")) return false;
  if (EnvFlagOn("SPE_SIMD")) return simd::kHasSimd;
  return simd::kHasSimd && simd::kGatherDescentProfitable;
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> enabled{SimdDefault()};
  return enabled;
}

ScoreMode ScoreModeDefault() {
  const char* env = std::getenv("SPE_KERNEL_MODE");
  ScoreMode mode = ScoreMode::kF64;
  if (env != nullptr) ParseScoreMode(env, &mode);  // unknown → default
  return mode;
}

std::atomic<ScoreMode>& ScoreModeFlag() {
  static std::atomic<ScoreMode> mode{ScoreModeDefault()};
  return mode;
}

// The arrays one scoring representation walks and accumulates with.
// Feat is the element type compared during descent (double, float, or
// uint8 bin rank); Acc the type leaves are stored and summed in. The
// integer topology is always the shared f64 pool's.
template <typename Feat, typename Acc>
struct Rep {
  const std::int32_t* feature;
  const Feat* threshold;
  const std::int32_t* left;
  const std::int32_t* right;
  const Acc* value;
  bool simd;  // vectorized descent (f64/f32 only; ignored for uint8)
  // Implicit-children relayout for the f64 walk (null for the other
  // representations); trees it covers skip the pooled descent.
  const CompleteProgram* complete = nullptr;
};

// Advances `count` rows (x, row-major with `stride` Feat per row) from
// the tree's root to their leaves, leaving leaf indices in `idx`. The
// descent runs exactly tree.depth steps with no leaf test: leaves
// self-loop (program.h), so a row that arrives early just stays put.
//
// The child select is deliberately arithmetic, not a ternary. A split
// comparison is data-dependent and close to a coin flip, so a compare-
// and-branch (what gcc emits for `cond ? left : right` here) eats a
// pipeline flush every other node — that is the cost profile of the
// reference per-row walk, and matching it would make blocking
// pointless. Materializing the comparison with setcc and selecting via
// mask keeps the loop branch-free; with no branches, the independent
// per-row iterations overlap their node fetches and the walk runs at
// load throughput instead of mispredict latency. For floating Feat,
// NaN compares false (unordered comisd clears the setae result) and
// takes the right edge — same routing as the reference PredictRow. For
// uint8 Feat the same `!(v <= t)` is the bin-rank comparison, with the
// NaN sentinel 255 > every cut rank (program.h).
template <typename Feat>
SPE_NO_AUTOVEC void WalkTreeScalar(const std::int32_t* feature,
                                   const Feat* threshold,
                                   const std::int32_t* left,
                                   const std::int32_t* right,
                                   const TreeRef tree, const Feat* x,
                                   std::size_t stride, std::size_t count,
                                   std::int32_t* idx) {
  for (std::size_t r = 0; r < count; ++r) idx[r] = tree.root;
  for (std::int32_t d = 0; d < tree.depth; ++d) {
    for (std::size_t r = 0; r < count; ++r) {
      const auto n = static_cast<std::size_t>(idx[r]);
      const Feat v = x[r * stride + static_cast<std::size_t>(feature[n])];
      const auto l = static_cast<std::uint32_t>(left[n]);
      const auto rt = static_cast<std::uint32_t>(right[n]);
      const auto go_right = static_cast<std::uint32_t>(!(v <= threshold[n]));
      idx[r] = static_cast<std::int32_t>(l + ((rt - l) & (0u - go_right)));
    }
  }
}

#if defined(SPE_KERNELS_SIMD_AVX2) || defined(SPE_KERNELS_SIMD_NEON)
// Vectorized twin of WalkTreeScalar: Lanes rows descend per register
// group, gathers keyed by the per-lane node index, children selected by
// the mask Descend builds from the IEEE `!(v <= t)` comparison (see
// simd.h). Every lane computes exactly the scalar walk's comparisons
// on exactly the scalar walk's values, so the stored leaf indices are
// identical — the remainder rows simply run the scalar loop.
template <typename Lanes, typename Feat>
void WalkTreeSimd(const std::int32_t* feature, const Feat* threshold,
                  const std::int32_t* left, const std::int32_t* right,
                  const TreeRef tree, const Feat* x, std::size_t stride,
                  std::size_t count, std::int32_t* idx) {
  const std::size_t groups = count / Lanes::kLanes;
  const auto row_off = Lanes::IotaTimes(static_cast<std::int32_t>(stride));
  for (std::size_t g = 0; g < groups; ++g) {
    const Feat* const xg = x + g * Lanes::kLanes * stride;
    auto node = Lanes::BroadcastIndex(tree.root);
    for (std::int32_t d = 0; d < tree.depth; ++d) {
      const auto feat = Lanes::GatherIndex(feature, node);
      const auto v = Lanes::GatherValue(xg, Lanes::AddIndex(row_off, feat));
      const auto t = Lanes::GatherValue(threshold, node);
      const auto l = Lanes::GatherIndex(left, node);
      const auto r = Lanes::GatherIndex(right, node);
      node = Lanes::Descend(l, r, v, t);
    }
    Lanes::StoreIndex(idx + g * Lanes::kLanes, node);
  }
  const std::size_t done = groups * Lanes::kLanes;
  if (done < count) {
    WalkTreeScalar(feature, threshold, left, right, tree, x + done * stride,
                   stride, count - done, idx + done);
  }
}
#endif

// Descent over a complete-layout tree (program.h): children live at
// 2c+1 / 2c+2, so one step is three loads (feature, threshold, row
// value) and pure index arithmetic — no left/right loads and no select
// mask. The loop nest mirrors WalkTreeScalar (depth outer, rows inner):
// a single row's step is a serial load→compare→index chain of ~15
// cycles latency, and the wide inner row loop is what lets the
// out-of-order core run dozens of independent chains at once, pushing
// the walk from chain latency down toward the load-port floor (~1.5
// cycles/step with 3 loads, vs ~2.5 for the 5-load pooled walk). The
// depth dimension is carved to minimize slot-state spills per row: a
// peeled opening visit (levels 0-1) that starts from the constant root
// slot — level 0's feature/threshold are loop-invariant scalars, so it
// needs neither a slot load nor an init loop — then two-step middle
// visits, then a closing one- or two-step visit fused with the leaf
// emit, so the slot array is never touched again after its last load.
// (Four-step visits — middle or tail — consistently measured slower:
// the spill they save costs less than gcc's schedule for the longer
// dependent chain, so everything stays at two steps.)
// The comparisons are the pooled walk's own `!(v <= t)` on the same
// double thresholds — NaN compares false and takes the right edge, and
// a padded slot carries its leaf down both edges — so the bottom slot
// holds exactly the value of the pool leaf the pooled walk parks on:
// byte-identical. The leaf emit is a
// template policy — kStore writes the leaf value (single trees), kAxpy
// folds the GBDT `score += lr * leaf` into the same pass, and kAccum
// folds the voting `sum += leaf` of a single-tree member, each saving
// a whole intermediate-array round trip per tree. All three compute
// exactly the reference expression on exactly the pooled walk's leaf.
enum class EmitMode { kStore, kAxpy, kAccum };

template <EmitMode M>
SPE_NO_AUTOVEC void WalkTreeComplete(const CompleteProgram& cp,
                                     std::size_t t, const double* x,
                                     std::size_t stride, std::size_t count,
                                     double scale, double* out) {
  const CompleteTree& tree = cp.trees[t];
  const std::int32_t* const feature = cp.feature.data() + tree.node_base;
  const double* const threshold = cp.threshold.data() + tree.node_base;
  const double* const value = cp.value.data() + tree.leaf_base;
  const std::size_t origin =
      (std::size_t(1) << static_cast<std::size_t>(tree.depth)) - 1;
  // One descent step; compiles to movslq+movsd+comisd+setcc+lea.
  const auto step = [&](const double* xr, std::uint32_t c) {
    return 2 * c + 1 +
           static_cast<std::uint32_t>(
               !(xr[static_cast<std::size_t>(feature[c])] <= threshold[c]));
  };
  const auto emit = [&](std::size_t r, std::uint32_t c) {
    const double leaf = value[c - origin];
    if constexpr (M == EmitMode::kStore) {
      out[r] = leaf;
    } else if constexpr (M == EmitMode::kAccum) {
      out[r] += leaf;
    } else {
      out[r] += scale * leaf;
    }
  };
  std::uint32_t slot[kBlockRows];
  std::int32_t d = 0;
  if (tree.depth >= 2) {
    const auto f0 = static_cast<std::size_t>(feature[0]);
    const double t0 = threshold[0];
    for (std::size_t r = 0; r < count; ++r) {
      const double* const xr = x + r * stride;
      const std::uint32_t c0 =
          1 + static_cast<std::uint32_t>(!(xr[f0] <= t0));
      slot[r] = step(xr, c0);
    }
    d = 2;
  } else {
    for (std::size_t r = 0; r < count; ++r) slot[r] = 0;
  }
  for (; d + 2 < tree.depth; d += 2) {
    for (std::size_t r = 0; r < count; ++r) {
      const double* const xr = x + r * stride;
      slot[r] = step(xr, step(xr, slot[r]));
    }
  }
  switch (tree.depth - d) {
    case 2:
      for (std::size_t r = 0; r < count; ++r) {
        const double* const xr = x + r * stride;
        emit(r, step(xr, step(xr, slot[r])));
      }
      break;
    case 1:
      for (std::size_t r = 0; r < count; ++r) {
        emit(r, step(x + r * stride, slot[r]));
      }
      break;
    default:  // depth 0 or exactly the peeled 2: already at the bottom
      for (std::size_t r = 0; r < count; ++r) emit(r, slot[r]);
      break;
  }
}

// Whether tree `t` of this representation descends through the complete
// relayout. Only the f64 representation carries one — its thresholds
// and bottom-slot values are doubles — so the other representations
// resolve to false at compile time.
template <typename Feat, typename Acc>
bool CompleteWalkable(const Rep<Feat, Acc>& rep, std::size_t t) {
  if constexpr (std::is_same_v<Feat, double>) {
    return rep.complete != nullptr && rep.complete->trees[t].ok;
  } else {
    (void)rep;
    (void)t;
    return false;
  }
}

// A member whose whole contribution is one complete-covered tree: its
// leaf can accumulate straight into the caller's running vote sum
// (`sum += leaf`, the exact reference expression) instead of round-
// tripping through the per-member val array.
template <typename Feat, typename Acc>
bool AccumulableTree(const Rep<Feat, Acc>& rep, const MemberOp& op) {
  return op.kind == MemberOp::Kind::kTree &&
         CompleteWalkable(rep, static_cast<std::size_t>(op.tree_begin));
}

template <typename Feat, typename Acc>
void WalkTree(const Rep<Feat, Acc>& rep, const FlatProgram& program,
              std::size_t t, const Feat* x, std::size_t stride,
              std::size_t count, std::int32_t* idx) {
  const TreeRef tree = program.trees[t];
#if defined(SPE_KERNELS_SIMD_AVX2) || defined(SPE_KERNELS_SIMD_NEON)
  if (rep.simd) {
    if constexpr (std::is_same_v<Feat, double>) {
      WalkTreeSimd<simd::F64Lanes>(rep.feature, rep.threshold, rep.left,
                                   rep.right, tree, x, stride, count, idx);
      return;
    } else if constexpr (std::is_same_v<Feat, float>) {
      WalkTreeSimd<simd::F32Lanes>(rep.feature, rep.threshold, rep.left,
                                   rep.right, tree, x, stride, count, idx);
      return;
    }
    // uint8 descent stays scalar: no byte gathers in either ISA.
  }
#endif
  WalkTreeScalar(rep.feature, rep.threshold, rep.left, rep.right, tree, x,
                 stride, count, idx);
}

// One member's probability for each of `count` rows, into val[0..count).
// Each kind replays the reference arithmetic of the model it was
// lowered from, in the same order — in Acc precision. For Acc = double
// (f64 and binned representations) that makes the bits match the
// reference; for Acc = float it defines the f32 mode's arithmetic.
template <typename Feat, typename Acc>
void EvalMember(const FlatProgram& program, const Rep<Feat, Acc>& rep,
                const MemberOp& op, const Feat* x, std::size_t stride,
                std::size_t count, Acc* val) {
  std::int32_t idx[kBlockRows];
  switch (op.kind) {
    case MemberOp::Kind::kTree: {
      // DecisionTree::PredictRow: the leaf value is the probability.
      const auto t = static_cast<std::size_t>(op.tree_begin);
      if constexpr (std::is_same_v<Feat, double>) {
        if (CompleteWalkable(rep, t)) {
          WalkTreeComplete<EmitMode::kStore>(*rep.complete, t, x, stride,
                                             count, 1.0, val);
          break;
        }
      }
      WalkTree(rep, program, t, x, stride, count, idx);
      for (std::size_t r = 0; r < count; ++r) {
        val[r] = rep.value[static_cast<std::size_t>(idx[r])];
      }
      break;
    }
    case MemberOp::Kind::kBoostLogit: {
      // Gbdt::PredictRow: score = base; score += lr * leaf per tree in
      // order; sigmoid(score).
      Acc score[kBlockRows];
      const auto base = static_cast<Acc>(op.base_score);
      const auto lr = static_cast<Acc>(op.learning_rate);
      for (std::size_t r = 0; r < count; ++r) score[r] = base;
      for (std::int32_t t = op.tree_begin; t < op.tree_end; ++t) {
        if constexpr (std::is_same_v<Feat, double>) {
          if (CompleteWalkable(rep, static_cast<std::size_t>(t))) {
            WalkTreeComplete<EmitMode::kAxpy>(*rep.complete,
                                              static_cast<std::size_t>(t), x,
                                              stride, count, lr, score);
            continue;
          }
        }
        WalkTree(rep, program, static_cast<std::size_t>(t), x, stride, count,
                 idx);
        for (std::size_t r = 0; r < count; ++r) {
          score[r] += lr * rep.value[static_cast<std::size_t>(idx[r])];
        }
      }
      for (std::size_t r = 0; r < count; ++r) val[r] = Sigmoid(score[r]);
      break;
    }
    case MemberOp::Kind::kGroup: {
      // Nested VotingEnsemble: children accumulate in index order, then
      // one multiply by 1/n — the same reduction PredictProbaPrefix
      // performs over all members.
      Acc child[kBlockRows];
      for (std::size_t r = 0; r < count; ++r) val[r] = Acc(0);
      for (const MemberOp& c : op.children) {
        if constexpr (std::is_same_v<Feat, double>) {
          if (AccumulableTree(rep, c)) {
            WalkTreeComplete<EmitMode::kAccum>(
                *rep.complete, static_cast<std::size_t>(c.tree_begin), x,
                stride, count, 1.0, val);
            continue;
          }
        }
        EvalMember(program, rep, c, x, stride, count, child);
        for (std::size_t r = 0; r < count; ++r) val[r] += child[r];
      }
      const Acc inv = Acc(1) / static_cast<Acc>(op.children.size());
      for (std::size_t r = 0; r < count; ++r) val[r] *= inv;
      break;
    }
  }
}

// Blocked driver shared by the three representations. `prep` maps a
// block (first row, row count) to this representation's row-major
// feature block and its stride — a pointer straight into the dataset
// for f64, a per-thread converted buffer for f32/binned. Blocks write
// disjoint output ranges from identical per-row arithmetic, so
// chunking cannot change the result: every path is bit-identical for
// any SPE_THREADS.
template <typename Feat, typename Acc, typename Prep>
void ScoreBlocks(const FlatProgram& program, const Rep<Feat, Acc>& rep,
                 std::size_t rows, std::size_t n, std::span<double> out,
                 Prep prep) {
  const Acc inv = Acc(1) / static_cast<Acc>(n);
  const std::size_t num_blocks = (rows + kBlockRows - 1) / kBlockRows;
  ParallelForGrain(0, num_blocks, kBlockGrain, [&](std::size_t b) {
    const std::size_t base = b * kBlockRows;
    const std::size_t count = std::min(kBlockRows, rows - base);
    const auto [x, stride] = prep(base, count);
    Acc sum[kBlockRows];
    Acc val[kBlockRows];
    for (std::size_t r = 0; r < count; ++r) sum[r] = Acc(0);
    for (std::size_t m = 0; m < n; ++m) {
      const MemberOp& op = program.members[m];
      if constexpr (std::is_same_v<Feat, double>) {
        if (AccumulableTree(rep, op)) {
          WalkTreeComplete<EmitMode::kAccum>(
              *rep.complete, static_cast<std::size_t>(op.tree_begin), x,
              stride, count, 1.0, sum);
          continue;
        }
      }
      EvalMember(program, rep, op, x, stride, count, val);
      for (std::size_t r = 0; r < count; ++r) sum[r] += val[r];
    }
    for (std::size_t r = 0; r < count; ++r) {
      out[base + r] = static_cast<double>(sum[r] * inv);
    }
  });
}

}  // namespace

bool FlatKernelEnabled() {
  return FlatKernelFlag().load(std::memory_order_relaxed);
}

void SetFlatKernelEnabled(bool enabled) {
  FlatKernelFlag().store(enabled, std::memory_order_relaxed);
}

ScoreMode ActiveScoreMode() {
  return ScoreModeFlag().load(std::memory_order_relaxed);
}

void SetScoreMode(ScoreMode mode) {
  ScoreModeFlag().store(mode, std::memory_order_relaxed);
}

const char* ScoreModeName(ScoreMode mode) {
  switch (mode) {
    case ScoreMode::kF32:
      return "f32";
    case ScoreMode::kBinned:
      return "binned";
    case ScoreMode::kF64:
      break;
  }
  return "f64";
}

bool ParseScoreMode(std::string_view name, ScoreMode* out) {
  if (name == "f64") {
    *out = ScoreMode::kF64;
  } else if (name == "f32") {
    *out = ScoreMode::kF32;
  } else if (name == "binned") {
    *out = ScoreMode::kBinned;
  } else {
    return false;
  }
  return true;
}

bool SimdEnabled() {
  return simd::kHasSimd && SimdFlag().load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) {
  SimdFlag().store(enabled && simd::kHasSimd, std::memory_order_relaxed);
}

const char* SimdIsa() { return simd::kIsa; }

bool FlatForest::LowerEnsemble(const VotingEnsemble& ensemble,
                               FlatProgram& program, MemberOp& op) {
  if (ensemble.empty()) return false;
  op.kind = MemberOp::Kind::kGroup;
  op.children.clear();
  op.children.reserve(ensemble.size());
  for (std::size_t m = 0; m < ensemble.size(); ++m) {
    const auto* compilable =
        dynamic_cast<const FlatCompilable*>(&ensemble.member(m));
    MemberOp child;
    if (compilable == nullptr || !compilable->LowerToFlat(program, child)) {
      return false;
    }
    op.children.push_back(std::move(child));
  }
  return true;
}

std::unique_ptr<const FlatForest> FlatForest::Compile(
    const VotingEnsemble& ensemble) {
  auto forest = std::unique_ptr<FlatForest>(new FlatForest());
  MemberOp top;
  if (!LowerEnsemble(ensemble, forest->program_, top)) return nullptr;
  // The ensemble's own averaging is applied by PredictPrefixInto (it
  // depends on the prefix length k), so the compiled program keeps the
  // members flat rather than wrapped in the top-level group op.
  forest->program_.members = std::move(top.children);
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("spe_kernels_compiled_trees")
        .Set(static_cast<double>(forest->program_.trees.size()));
    registry.GetCounter("spe_kernels_compiles_total").Add();
  }
  return forest;
}

const F32Program& FlatForest::F32() const {
  std::call_once(f32_once_, [this] { f32_ = BuildF32Program(program_); });
  return f32_;
}

const BinnedProgram& FlatForest::Binned() const {
  std::call_once(binned_once_,
                 [this] { binned_ = BuildBinnedProgram(program_); });
  return binned_;
}

const CompleteProgram& FlatForest::Complete() const {
  std::call_once(complete_once_,
                 [this] { complete_ = BuildCompleteProgram(program_); });
  return complete_;
}

bool FlatForest::BinnedAvailable() const { return Binned().ok; }

void FlatForest::PredictPrefixInto(const DatasetView& data, std::size_t k,
                                   std::span<double> out) const {
  SPE_CHECK_GT(k, 0u);
  SPE_CHECK_EQ(out.size(), data.num_rows());
  data.CheckAlive();
  const std::size_t rows = data.num_rows();
  if (rows == 0) return;
  const std::size_t n = std::min(k, program_.members.size());
  const obs::TraceSpan span("kernels.flat_predict");
  const std::size_t stride = data.num_features();
  // Row-major views walk in place; columnar views stage each ~64-row
  // block into per-thread scratch below. `x` is null in the latter case
  // and must not be dereferenced outside a feeder.
  const double* const x = data.row_major() ? data.rows_data() : nullptr;
  const bool use_simd = SimdEnabled();

  ScoreMode mode = ActiveScoreMode();
  if (mode == ScoreMode::kBinned && !BinnedAvailable()) mode = ScoreMode::kF64;

  switch (mode) {
    case ScoreMode::kF32: {
      const F32Program& f32 = F32();
      const Rep<float, float> rep{program_.pool.feature.data(),
                                  f32.threshold.data(),
                                  program_.pool.left.data(),
                                  program_.pool.right.data(),
                                  f32.value.data(),
                                  use_simd};
      // One float conversion of the block, amortized over every tree
      // that walks it. thread_local so pool workers reuse the buffer
      // across blocks instead of allocating per block.
      ScoreBlocks(program_, rep, rows, n, out,
                  [&](std::size_t base, std::size_t count) {
                    thread_local std::vector<float> buf;
                    buf.resize(count * stride);
                    if (x != nullptr) {
                      const double* src = x + base * stride;
                      for (std::size_t i = 0; i < count * stride; ++i) {
                        buf[i] = static_cast<float>(src[i]);
                      }
                    } else {
                      for (std::size_t r = 0; r < count; ++r) {
                        for (std::size_t j = 0; j < stride; ++j) {
                          buf[r * stride + j] =
                              static_cast<float>(data.At(base + r, j));
                        }
                      }
                    }
                    return std::pair<const float*, std::size_t>{buf.data(),
                                                                stride};
                  });
      break;
    }
    case ScoreMode::kBinned: {
      const BinnedProgram& binned = Binned();
      const Rep<std::uint8_t, double> rep{program_.pool.feature.data(),
                                          binned.cut.data(),
                                          program_.pool.left.data(),
                                          program_.pool.right.data(),
                                          program_.pool.value.data(),
                                          /*simd=*/false};
      // Bin only the features the program can split on — the binner is
      // sized to the highest split feature, which may be narrower than
      // the dataset. NaN takes the sentinel (BinOf cannot: every
      // comparison with NaN is false, which would rank it bin 0 — the
      // left edge — while the reference routes NaN right).
      const std::size_t width = binned.binner.num_features();
      ScoreBlocks(program_, rep, rows, n, out,
                  [&](std::size_t base, std::size_t count) {
                    thread_local std::vector<std::uint8_t> buf;
                    buf.resize(count * width);
                    for (std::size_t r = 0; r < count; ++r) {
                      for (std::size_t f = 0; f < width; ++f) {
                        const double v = x != nullptr
                                             ? x[(base + r) * stride + f]
                                             : data.At(base + r, f);
                        buf[r * width + f] =
                            std::isnan(v) ? kBinnedNaN
                                          : binned.binner.BinOf(f, v);
                      }
                    }
                    return std::pair<const std::uint8_t*, std::size_t>{
                        buf.data(), width};
                  });
      break;
    }
    case ScoreMode::kF64: {
      const CompleteProgram& complete = Complete();
      const Rep<double, double> rep{program_.pool.feature.data(),
                                    program_.pool.threshold.data(),
                                    program_.pool.left.data(),
                                    program_.pool.right.data(),
                                    program_.pool.value.data(),
                                    use_simd,
                                    complete.any ? &complete : nullptr};
      ScoreBlocks(program_, rep, rows, n, out,
                  [&](std::size_t base, std::size_t count) {
                    if (x != nullptr) {
                      return std::pair<const double*, std::size_t>{
                          x + base * stride, stride};
                    }
                    // Columnar feed: stage the block row-major in reused
                    // per-thread scratch. A verbatim value copy, so the
                    // descent reads identical bits to the direct path.
                    thread_local std::vector<double> buf;
                    buf.resize(count * stride);
                    for (std::size_t r = 0; r < count; ++r) {
                      for (std::size_t j = 0; j < stride; ++j) {
                        buf[r * stride + j] = data.At(base + r, j);
                      }
                    }
                    AddScratchBytes(count * stride * sizeof(double));
                    return std::pair<const double*, std::size_t>{buf.data(),
                                                                 stride};
                  });
      break;
    }
  }
}

const char* ActiveKernel(const Classifier& model) {
  const auto* scorable = dynamic_cast<const FlatScorable*>(&model);
  const FlatForest* forest =
      scorable != nullptr ? scorable->flat_kernel() : nullptr;
  if (forest == nullptr) return "reference";
  switch (ActiveScoreMode()) {
    case ScoreMode::kF32:
      return "flat_f32";
    case ScoreMode::kBinned:
      return forest->BinnedAvailable() ? "flat_binned" : "flat";
    case ScoreMode::kF64:
      break;
  }
  return "flat";
}

}  // namespace kernels
}  // namespace spe
