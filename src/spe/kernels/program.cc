#include "spe/kernels/program.h"

#include <algorithm>
#include <utility>

#include "spe/common/check.h"

namespace spe {
namespace kernels {

FlatTreeBuilder::FlatTreeBuilder(FlatProgram& program)
    : program_(program), base_(program.pool.size()) {}

void FlatTreeBuilder::AddNode(int feature, double threshold, std::int32_t left,
                              std::int32_t right, double value) {
  NodePool& pool = program_.pool;
  const auto self = static_cast<std::int32_t>(pool.size());
  if (feature < 0) {
    // Leaf: park descents here forever. Feature 0 / threshold 0 are
    // read by the branch-free walk but cannot change the destination.
    pool.feature.push_back(0);
    pool.threshold.push_back(0.0);
    pool.left.push_back(self);
    pool.right.push_back(self);
  } else {
    pool.feature.push_back(feature);
    pool.threshold.push_back(threshold);
    pool.left.push_back(static_cast<std::int32_t>(base_) + left);
    pool.right.push_back(static_cast<std::int32_t>(base_) + right);
  }
  pool.value.push_back(value);
  local_.push_back(LocalNode{left, right, feature < 0});
}

std::int32_t FlatTreeBuilder::Finish() {
  SPE_CHECK(!local_.empty()) << "flat tree with no nodes";
  // Depth = the longest root-to-leaf path in steps; running the kernel
  // for exactly this many steps lands every row on a leaf.
  std::int32_t depth = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    const LocalNode& n = local_[static_cast<std::size_t>(node)];
    if (n.leaf) {
      depth = std::max(depth, d);
    } else {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  const auto index = static_cast<std::int32_t>(program_.trees.size());
  program_.trees.push_back(TreeRef{static_cast<std::int32_t>(base_), depth});
  return index;
}

}  // namespace kernels
}  // namespace spe
