#include "spe/kernels/program.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "spe/common/check.h"

namespace spe {
namespace kernels {

FlatTreeBuilder::FlatTreeBuilder(FlatProgram& program)
    : program_(program), base_(program.pool.size()) {}

void FlatTreeBuilder::AddNode(int feature, double threshold, std::int32_t left,
                              std::int32_t right, double value) {
  NodePool& pool = program_.pool;
  const auto self = static_cast<std::int32_t>(pool.size());
  if (feature < 0) {
    // Leaf: park descents here forever. Feature 0 / threshold 0 are
    // read by the branch-free walk but cannot change the destination.
    pool.feature.push_back(0);
    pool.threshold.push_back(0.0);
    pool.left.push_back(self);
    pool.right.push_back(self);
  } else {
    pool.feature.push_back(feature);
    pool.threshold.push_back(threshold);
    pool.left.push_back(static_cast<std::int32_t>(base_) + left);
    pool.right.push_back(static_cast<std::int32_t>(base_) + right);
  }
  pool.value.push_back(value);
  local_.push_back(LocalNode{left, right, feature < 0});
}

std::int32_t FlatTreeBuilder::Finish() {
  SPE_CHECK(!local_.empty()) << "flat tree with no nodes";
  // Depth = the longest root-to-leaf path in steps; running the kernel
  // for exactly this many steps lands every row on a leaf.
  std::int32_t depth = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    const LocalNode& n = local_[static_cast<std::size_t>(node)];
    if (n.leaf) {
      depth = std::max(depth, d);
    } else {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  const auto index = static_cast<std::int32_t>(program_.trees.size());
  program_.trees.push_back(TreeRef{static_cast<std::int32_t>(base_), depth});
  return index;
}

F32Program BuildF32Program(const FlatProgram& program) {
  const NodePool& pool = program.pool;
  F32Program out;
  out.threshold.reserve(pool.size());
  out.value.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    out.threshold.push_back(static_cast<float>(pool.threshold[i]));
    out.value.push_back(static_cast<float>(pool.value[i]));
  }
  return out;
}

namespace {

// Self-looping leaves (program.h) are the only nodes whose children
// point back at themselves, so this is an exact leaf test.
bool IsLeaf(const NodePool& pool, std::size_t i) {
  const auto self = static_cast<std::int32_t>(i);
  return pool.left[i] == self && pool.right[i] == self;
}

}  // namespace

BinnedProgram BuildBinnedProgram(const FlatProgram& program) {
  const NodePool& pool = program.pool;
  BinnedProgram out;

  std::int32_t max_feature = -1;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (IsLeaf(pool, i)) continue;
    // A NaN threshold has no rank in the feature's order (every
    // comparison with it is false), so such a program cannot lower.
    // Tree learners never record one; this guards hand-built programs.
    if (std::isnan(pool.threshold[i])) return out;
    max_feature = std::max(max_feature, pool.feature[i]);
  }

  std::vector<std::vector<double>> cuts(
      static_cast<std::size_t>(max_feature + 1));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (IsLeaf(pool, i)) continue;
    cuts[static_cast<std::size_t>(pool.feature[i])].push_back(
        pool.threshold[i]);
  }
  for (std::vector<double>& c : cuts) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    if (c.size() > kBinnedMaxCuts) return out;  // bins would reach the sentinel
  }

  out.cut.assign(pool.size(), 0);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (IsLeaf(pool, i)) continue;
    const std::vector<double>& c =
        cuts[static_cast<std::size_t>(pool.feature[i])];
    const auto it = std::lower_bound(c.begin(), c.end(), pool.threshold[i]);
    // The cut list was built from exactly these thresholds, so the
    // lookup is an exact hit and the rank fits uint8 (<= 253).
    SPE_CHECK(it != c.end() && *it == pool.threshold[i]);
    out.cut[i] = static_cast<std::uint8_t>(it - c.begin());
  }
  out.binner = gbdt::FeatureBinner::FromBoundaries(std::move(cuts));
  out.ok = true;
  return out;
}

namespace {

// Real node count of the tree rooted at `node` — leaves count once
// (they self-loop, so recursion must not follow their edges).
std::size_t CountNodes(const NodePool& pool, std::int32_t node) {
  const auto n = static_cast<std::size_t>(node);
  if (IsLeaf(pool, n)) return 1;
  return 1 + CountNodes(pool, pool.left[n]) + CountNodes(pool, pool.right[n]);
}

// Copies the subtree rooted at `node` into complete slot `c` at `level`.
// A leaf met above the bottom becomes a don't-care split whose entire
// subtree carries the leaf forward, so either routing direction —
// including the NaN right edge — reaches the same pool node at the
// bottom level.
void FillComplete(const NodePool& pool, std::int32_t node, std::size_t c,
                  std::int32_t level, std::int32_t depth, std::int32_t* feature,
                  double* threshold, double* value) {
  const auto n = static_cast<std::size_t>(node);
  const bool is_leaf = IsLeaf(pool, n);
  if (level == depth) {
    // Finish() guarantees every path parks on a leaf within `depth`
    // steps, so whatever arrives at the bottom level is one.
    SPE_CHECK(is_leaf);
    value[c - ((std::size_t(1) << depth) - 1)] = pool.value[n];
    return;
  }
  if (is_leaf) {
    feature[c] = 0;
    threshold[c] = 0.0;
    FillComplete(pool, node, 2 * c + 1, level + 1, depth, feature, threshold,
                 value);
    FillComplete(pool, node, 2 * c + 2, level + 1, depth, feature, threshold,
                 value);
    return;
  }
  feature[c] = pool.feature[n];
  threshold[c] = pool.threshold[n];
  FillComplete(pool, pool.left[n], 2 * c + 1, level + 1, depth, feature,
               threshold, value);
  FillComplete(pool, pool.right[n], 2 * c + 2, level + 1, depth, feature,
               threshold, value);
}

}  // namespace

CompleteProgram BuildCompleteProgram(const FlatProgram& program) {
  CompleteProgram out;
  out.trees.resize(program.trees.size());
  for (std::size_t t = 0; t < program.trees.size(); ++t) {
    const TreeRef& ref = program.trees[t];
    CompleteTree& tree = out.trees[t];
    tree.depth = ref.depth;
    if (ref.depth > kCompleteMaxDepth) continue;
    const std::size_t slots =
        (std::size_t(2) << static_cast<std::size_t>(ref.depth)) - 1;
    if (slots > kCompleteMaxExpansion * CountNodes(program.pool, ref.root)) {
      continue;  // sparse: padding would dwarf the tree
    }
    const std::size_t interior =
        (std::size_t(1) << static_cast<std::size_t>(ref.depth)) - 1;
    tree.node_base = out.feature.size();
    tree.leaf_base = out.value.size();
    out.feature.resize(tree.node_base + interior);
    out.threshold.resize(tree.node_base + interior);
    out.value.resize(tree.leaf_base + (slots - interior));
    FillComplete(program.pool, ref.root, 0, 0, ref.depth,
                 out.feature.data() + tree.node_base,
                 out.threshold.data() + tree.node_base,
                 out.value.data() + tree.leaf_base);
    tree.ok = true;
    out.any = true;
  }
  return out;
}

}  // namespace kernels
}  // namespace spe
